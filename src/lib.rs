//! # fedadmm
//!
//! A from-scratch Rust reproduction of **FedADMM: A Robust Federated Deep
//! Learning Framework with Adaptivity to System Heterogeneity** (Gong, Li,
//! Freris — ICDE 2022), including the FedADMM algorithm itself, the
//! baselines it is evaluated against (FedSGD, FedAvg, FedProx, SCAFFOLD,
//! FedPD), and every substrate the evaluation needs: a dense-tensor /
//! neural-network training stack, synthetic federated datasets with the
//! paper's partitioning schemes, a round-based simulation engine, and an
//! experiment harness regenerating each table and figure.
//!
//! This crate is a façade that re-exports the workspace members:
//!
//! * [`tensor`] — dense f32 tensors, matmul, conv2d, pooling
//!   (`fedadmm-tensor`);
//! * [`nn`] — layers, the paper's CNN 1 / CNN 2, losses, SGD (`fedadmm-nn`);
//! * [`data`] — synthetic MNIST/FMNIST/CIFAR-10 stand-ins and federated
//!   partitioners (`fedadmm-data`);
//! * [`clientstore`] — sharded / spill-to-disk client-state storage and
//!   hierarchical aggregation for million-client rounds
//!   (`fedadmm-clientstore`);
//! * [`core`] — the algorithms and the federated simulation engine
//!   (`fedadmm-core`);
//! * [`system`] — device profiles, network models and wall-clock /
//!   straggler simulation (`fedadmm-system`);
//! * [`privacy`] — differential privacy and secure aggregation extensions
//!   (`fedadmm-privacy`);
//! * [`telemetry`] — structured tracing, metrics registry and the
//!   `bench-snapshot` observability substrate (`fedadmm-telemetry`).
//!
//! ## Quickstart
//!
//! ```
//! use fedadmm::prelude::*;
//!
//! // Ten clients, non-IID data, the paper's FedADMM with ρ = 0.01 and η = 1.
//! let config = FedConfig {
//!     num_clients: 10,
//!     participation: Participation::Fraction(0.2),
//!     local_epochs: 2,
//!     system_heterogeneity: true,
//!     batch_size: BatchSize::Size(16),
//!     local_learning_rate: 0.1,
//!     model: ModelSpec::Logistic { input_dim: 784, num_classes: 10 },
//!     seed: 1,
//!     eval_subset: usize::MAX,
//! };
//! let (train, test) = SyntheticDataset::Mnist.generate(300, 100, 1);
//! let partition = DataDistribution::NonIidShards.partition(&train, config.num_clients, 1);
//! let mut sim = RoundEngine::new(config, train, test, partition, FedAdmm::paper_default(), SyncRounds).unwrap();
//! sim.run_rounds(3).unwrap();
//! assert_eq!(sim.history().len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use fedadmm_clientstore as clientstore;
pub use fedadmm_core as core;
pub use fedadmm_data as data;
pub use fedadmm_nn as nn;
pub use fedadmm_privacy as privacy;
pub use fedadmm_system as system;
pub use fedadmm_telemetry as telemetry;
pub use fedadmm_tensor as tensor;

/// One-stop imports for applications built on the reproduction.
pub mod prelude {
    pub use fedadmm_core::prelude::*;
    pub use fedadmm_data::synthetic::{SyntheticConfig, SyntheticDataset};
    pub use fedadmm_data::Dataset;
    pub use fedadmm_nn::models::ModelSpec;
    pub use fedadmm_privacy::prelude::*;
    pub use fedadmm_system::prelude::*;
    pub use fedadmm_tensor::Tensor;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable() {
        let spec = ModelSpec::Logistic {
            input_dim: 4,
            num_classes: 2,
        };
        assert_eq!(spec.num_params(), 10);
        let t = Tensor::zeros(&[2, 2]);
        assert_eq!(t.len(), 4);
        assert_eq!(SyntheticDataset::Mnist.num_classes(), 10);
    }
}
