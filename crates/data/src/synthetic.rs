//! Deterministic synthetic class-conditional image datasets.
//!
//! These generators stand in for MNIST, Fashion-MNIST and CIFAR-10 (see the
//! substitution table in `DESIGN.md`). Each class is defined by one or more
//! smooth spatial "prototype" patterns; a sample is a randomly scaled and
//! shifted prototype plus pixel noise. The three presets differ in the
//! number of prototype modes per class and the noise level, which controls
//! how hard the classification task is — mirroring the fact that the
//! paper's CIFAR-10 target accuracy (45%) is much lower than its MNIST
//! target (97%).

use crate::dataset::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Which synthetic dataset preset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyntheticDataset {
    /// MNIST-like: 1×28×28 images (784 features), low noise, one mode per
    /// class. Easy — high accuracies are reachable quickly, as with MNIST.
    Mnist,
    /// Fashion-MNIST-like: 1×28×28 images, moderate noise, two modes per
    /// class.
    Fmnist,
    /// CIFAR-10-like: 3×32×32 images (3,072 features), high noise, three
    /// modes per class. Hard — accuracies saturate much lower, as with the
    /// paper's 45% CIFAR-10 target.
    Cifar10,
}

impl SyntheticDataset {
    /// Flattened feature dimension of a sample.
    pub fn feature_dim(&self) -> usize {
        match self {
            SyntheticDataset::Mnist | SyntheticDataset::Fmnist => 784,
            SyntheticDataset::Cifar10 => 3072,
        }
    }

    /// Image shape `[channels, height, width]`.
    pub fn image_shape(&self) -> [usize; 3] {
        match self {
            SyntheticDataset::Mnist | SyntheticDataset::Fmnist => [1, 28, 28],
            SyntheticDataset::Cifar10 => [3, 32, 32],
        }
    }

    /// Number of classes (always 10, matching the paper's ten-class tasks).
    pub fn num_classes(&self) -> usize {
        10
    }

    /// Size of the real training split this preset stands in for
    /// (60,000 for MNIST/FMNIST, 50,000 for CIFAR-10).
    pub fn reference_train_size(&self) -> usize {
        match self {
            SyntheticDataset::Mnist | SyntheticDataset::Fmnist => 60_000,
            SyntheticDataset::Cifar10 => 50_000,
        }
    }

    /// Default generation parameters for the preset.
    pub fn default_config(&self) -> SyntheticConfig {
        match self {
            // The noise levels are tuned so that, at the reproduction's
            // scaled configuration, the *rounds-to-accuracy* ordering of the
            // paper emerges: the tasks must be hard enough that tens of
            // federated rounds are needed (trivially separable data lets
            // every method converge in a couple of rounds and hides the
            // comparisons the paper makes).
            SyntheticDataset::Mnist => SyntheticConfig {
                modes_per_class: 2,
                noise_std: 1.0,
                prototype_scale: 0.8,
                sample_scale_jitter: 0.3,
            },
            SyntheticDataset::Fmnist => SyntheticConfig {
                modes_per_class: 3,
                noise_std: 1.3,
                prototype_scale: 0.7,
                sample_scale_jitter: 0.4,
            },
            SyntheticDataset::Cifar10 => SyntheticConfig {
                modes_per_class: 4,
                noise_std: 1.7,
                prototype_scale: 0.55,
                sample_scale_jitter: 0.5,
            },
        }
    }

    /// Generates `train_size` training samples and `test_size` test samples
    /// with the preset's default difficulty.
    ///
    /// The same `seed` always yields the same data; train and test are drawn
    /// from the same class-conditional distribution (different noise).
    pub fn generate(&self, train_size: usize, test_size: usize, seed: u64) -> (Dataset, Dataset) {
        let config = self.default_config();
        generate_with_config(*self, &config, train_size, test_size, seed)
    }
}

/// Tunable parameters of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of distinct prototype patterns per class. More modes →
    /// harder task (higher intra-class variance).
    pub modes_per_class: usize,
    /// Standard deviation of the i.i.d. pixel noise added to each sample.
    pub noise_std: f32,
    /// Amplitude of the class prototype patterns.
    pub prototype_scale: f32,
    /// Relative jitter of the per-sample prototype amplitude.
    pub sample_scale_jitter: f32,
}

/// Generates a train/test pair with explicit generation parameters.
pub fn generate_with_config(
    kind: SyntheticDataset,
    config: &SyntheticConfig,
    train_size: usize,
    test_size: usize,
    seed: u64,
) -> (Dataset, Dataset) {
    let dim = kind.feature_dim();
    let classes = kind.num_classes();
    let [channels, height, width] = kind.image_shape();
    let modes = config.modes_per_class.max(1);

    // Prototype patterns are smooth 2-D bumps whose centre/frequency depend
    // on (class, mode); this gives CNN-friendly spatial structure while
    // remaining fully deterministic in the seed.
    let mut proto_rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut prototypes = vec![vec![0.0f32; dim]; classes * modes];
    for class in 0..classes {
        for mode in 0..modes {
            let proto = &mut prototypes[class * modes + mode];
            // Each prototype superimposes a few Gaussian bumps and a plane wave.
            let bumps = 3;
            let centres: Vec<(f32, f32, f32)> = (0..bumps)
                .map(|_| {
                    (
                        proto_rng.gen_range(0.2..0.8) * height as f32,
                        proto_rng.gen_range(0.2..0.8) * width as f32,
                        proto_rng.gen_range(2.0..5.0),
                    )
                })
                .collect();
            let freq_y = proto_rng.gen_range(0.15..0.6);
            let freq_x = proto_rng.gen_range(0.15..0.6);
            let phase = proto_rng.gen_range(0.0..std::f32::consts::TAU);
            for c in 0..channels {
                let channel_sign = if c % 2 == 0 { 1.0 } else { -1.0 };
                for y in 0..height {
                    for x in 0..width {
                        let mut v = 0.0f32;
                        for &(cy, cx, sigma) in &centres {
                            let dy = y as f32 - cy;
                            let dx = x as f32 - cx;
                            v += (-(dy * dy + dx * dx) / (2.0 * sigma * sigma)).exp();
                        }
                        v += 0.5
                            * (freq_y * y as f32 + freq_x * x as f32 * channel_sign + phase).sin();
                        proto[(c * height + y) * width + x] = v * config.prototype_scale;
                    }
                }
            }
        }
    }

    let make_split = |n: usize, split_seed: u64| -> Dataset {
        let mut rng = SmallRng::seed_from_u64(split_seed);
        let noise = Normal::new(0.0f32, config.noise_std.max(f32::EPSILON)).expect("valid std");
        let mut features = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Round-robin over classes keeps the class distribution balanced,
            // matching MNIST/FMNIST/CIFAR-10 which are (nearly) balanced.
            let class = i % classes;
            let mode = rng.gen_range(0..modes);
            let proto = &prototypes[class * modes + mode];
            let scale = 1.0 + config.sample_scale_jitter * rng.gen_range(-1.0f32..1.0);
            for &p in proto.iter() {
                features.push(p * scale + noise.sample(&mut rng));
            }
            labels.push(class);
        }
        Dataset::new(features, labels, dim, classes).expect("generator produces consistent data")
    };

    let train = make_split(train_size, seed.wrapping_add(1));
    let test = make_split(test_size, seed.wrapping_add(2));
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper_inputs() {
        assert_eq!(SyntheticDataset::Mnist.feature_dim(), 784);
        assert_eq!(SyntheticDataset::Fmnist.feature_dim(), 784);
        assert_eq!(SyntheticDataset::Cifar10.feature_dim(), 3072);
        assert_eq!(SyntheticDataset::Mnist.image_shape(), [1, 28, 28]);
        assert_eq!(SyntheticDataset::Cifar10.image_shape(), [3, 32, 32]);
        assert_eq!(SyntheticDataset::Mnist.num_classes(), 10);
        assert_eq!(SyntheticDataset::Mnist.reference_train_size(), 60_000);
        assert_eq!(SyntheticDataset::Cifar10.reference_train_size(), 50_000);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let (a_train, a_test) = SyntheticDataset::Mnist.generate(50, 20, 7);
        let (b_train, b_test) = SyntheticDataset::Mnist.generate(50, 20, 7);
        assert_eq!(a_train.features_of(3), b_train.features_of(3));
        assert_eq!(a_test.features_of(7), b_test.features_of(7));
        let (c_train, _) = SyntheticDataset::Mnist.generate(50, 20, 8);
        assert_ne!(a_train.features_of(3), c_train.features_of(3));
    }

    #[test]
    fn labels_are_balanced() {
        let (train, _) = SyntheticDataset::Fmnist.generate(100, 10, 0);
        let hist = train.class_histogram();
        assert_eq!(hist.len(), 10);
        assert!(hist.iter().all(|&c| c == 10));
    }

    #[test]
    fn presets_have_increasing_difficulty() {
        let easy = SyntheticDataset::Mnist.default_config();
        let medium = SyntheticDataset::Fmnist.default_config();
        let hard = SyntheticDataset::Cifar10.default_config();
        assert!(easy.noise_std < medium.noise_std);
        assert!(medium.noise_std < hard.noise_std);
        assert!(easy.modes_per_class <= medium.modes_per_class);
        assert!(medium.modes_per_class <= hard.modes_per_class);
    }

    #[test]
    fn samples_are_finite_and_not_constant() {
        let (train, _) = SyntheticDataset::Cifar10.generate(20, 5, 3);
        for i in 0..train.len() {
            let row = train.features_of(i);
            assert!(row.iter().all(|v| v.is_finite()));
            let first = row[0];
            assert!(row.iter().any(|&v| (v - first).abs() > 1e-6));
        }
    }

    /// A linear probe must separate the synthetic classes far better than
    /// chance — otherwise the federated experiments could never reach the
    /// paper's target accuracies.
    #[test]
    fn classes_are_learnably_separated() {
        let (train, _) = SyntheticDataset::Mnist.generate(200, 1, 11);
        // Nearest-class-mean classifier accuracy on the training data.
        let dim = train.feature_dim();
        let classes = train.num_classes();
        let mut means = vec![vec![0.0f32; dim]; classes];
        let mut counts = vec![0usize; classes];
        for i in 0..train.len() {
            let label = train.label(i);
            counts[label] += 1;
            for (m, &v) in means[label].iter_mut().zip(train.features_of(i).iter()) {
                *m += v;
            }
        }
        for (mean, &count) in means.iter_mut().zip(counts.iter()) {
            for m in mean.iter_mut() {
                *m /= count.max(1) as f32;
            }
        }
        let mut correct = 0usize;
        for i in 0..train.len() {
            let row = train.features_of(i);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, mean) in means.iter().enumerate() {
                let d: f32 = row
                    .iter()
                    .zip(mean.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == train.label(i) {
                correct += 1;
            }
        }
        let acc = correct as f32 / train.len() as f32;
        // The presets are deliberately noisy (see `default_config`), so the
        // bar is "far better than the 10% chance level", not near-perfect.
        assert!(acc > 0.4, "nearest-mean accuracy only {acc}");
    }
}
