//! Federated partitioning of a dataset across clients.
//!
//! The paper studies three data distributions across clients:
//!
//! 1. **IID** — "data are evenly distributed to clients" ([`iid`]);
//! 2. **non-IID** — "we first arrange the training data by label and then
//!    distribute them evenly into shards: each client is assigned two
//!    shards uniformly at random" ([`shards_non_iid`]);
//! 3. **imbalanced volumes** (Table VI) — data sorted by label, split into
//!    10,000 shards, 200 clients divided into 100 groups, each member of a
//!    group gets as many shards as its group index ([`imbalanced_groups`]).

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A partition of a dataset across `m` clients: client `i` owns the sample
/// indices in `clients[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    clients: Vec<Vec<usize>>,
}

impl Partition {
    /// Creates a partition from explicit per-client index lists.
    pub fn new(clients: Vec<Vec<usize>>) -> Self {
        Partition { clients }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Index list of client `i`.
    pub fn client(&self, i: usize) -> &[usize] {
        &self.clients[i]
    }

    /// Iterates over all per-client index lists.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<usize>> {
        self.clients.iter()
    }

    /// Consumes the partition into its per-client index lists (how client
    /// stores are seeded — avoids cloning every list at million-client
    /// scale).
    pub fn into_client_indices(self) -> Vec<Vec<usize>> {
        self.clients
    }

    /// Per-client sample counts.
    pub fn sizes(&self) -> Vec<usize> {
        self.clients.iter().map(|c| c.len()).collect()
    }

    /// Total number of assigned samples.
    pub fn total_samples(&self) -> usize {
        self.clients.iter().map(|c| c.len()).sum()
    }

    /// Mean and (population) standard deviation of client sizes — the
    /// statistics the paper reports in Table VI.
    pub fn size_stats(&self) -> (f64, f64) {
        if self.clients.is_empty() {
            return (0.0, 0.0);
        }
        let sizes = self.sizes();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let var = sizes
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / sizes.len() as f64;
        (mean, var.sqrt())
    }

    /// Number of distinct labels held by client `i`.
    pub fn distinct_labels(&self, i: usize, dataset: &Dataset) -> usize {
        let mut seen = vec![false; dataset.num_classes()];
        for &idx in &self.clients[i] {
            seen[dataset.label(idx)] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Average number of distinct labels per client — a simple measure of
    /// label skew (10 in the IID setting, ≈2 in the paper's non-IID setting).
    pub fn mean_distinct_labels(&self, dataset: &Dataset) -> f64 {
        if self.clients.is_empty() {
            return 0.0;
        }
        let total: usize = (0..self.num_clients())
            .map(|i| self.distinct_labels(i, dataset))
            .sum();
        total as f64 / self.num_clients() as f64
    }

    /// Verifies that no sample index is assigned to more than one client and
    /// all indices are in bounds. Returns the number of assigned samples.
    pub fn validate(&self, dataset_len: usize) -> Result<usize, String> {
        let mut seen = vec![false; dataset_len];
        let mut count = 0usize;
        for (client, indices) in self.clients.iter().enumerate() {
            for &idx in indices {
                if idx >= dataset_len {
                    return Err(format!("client {client} holds out-of-bounds index {idx}"));
                }
                if seen[idx] {
                    return Err(format!("sample {idx} assigned to more than one client"));
                }
                seen[idx] = true;
                count += 1;
            }
        }
        Ok(count)
    }

    /// The label histogram of client `i` (length = `dataset.num_classes()`).
    pub fn label_histogram(&self, i: usize, dataset: &Dataset) -> Vec<usize> {
        let mut hist = vec![0usize; dataset.num_classes()];
        for &idx in &self.clients[i] {
            hist[dataset.label(idx)] += 1;
        }
        hist
    }

    /// Mean total-variation distance between each client's label
    /// distribution and the global label distribution, a scalar measure of
    /// statistical heterogeneity in `[0, 1]`.
    ///
    /// An IID partition scores close to 0; the paper's two-shards-per-client
    /// partition of a balanced 10-class dataset scores close to 0.8 (each
    /// client holds 2 of the 10 classes). Empty clients are skipped.
    pub fn label_skew(&self, dataset: &Dataset) -> f64 {
        let classes = dataset.num_classes();
        if classes == 0 || self.clients.is_empty() {
            return 0.0;
        }
        let global_hist = dataset.class_histogram();
        let total: usize = global_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let global: Vec<f64> = global_hist
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect();
        let mut sum = 0.0;
        let mut counted = 0usize;
        for i in 0..self.clients.len() {
            let n = self.clients[i].len();
            if n == 0 {
                continue;
            }
            let hist = self.label_histogram(i, dataset);
            let tv: f64 = hist
                .iter()
                .zip(global.iter())
                .map(|(&c, &g)| (c as f64 / n as f64 - g).abs())
                .sum::<f64>()
                / 2.0;
            sum += tv;
            counted += 1;
        }
        if counted == 0 {
            0.0
        } else {
            sum / counted as f64
        }
    }

    /// Ratio of the largest to the smallest (non-zero) client volume — a
    /// scalar measure of *quantity* skew. Returns 1.0 for a perfectly
    /// balanced partition and grows with imbalance.
    pub fn volume_imbalance(&self) -> f64 {
        let sizes: Vec<usize> = self.sizes().into_iter().filter(|&s| s > 0).collect();
        match (sizes.iter().max(), sizes.iter().min()) {
            (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
            _ => 1.0,
        }
    }
}

/// IID partition: shuffle all indices and split them evenly across
/// `num_clients` (the first `len % num_clients` clients get one extra
/// sample).
///
/// # Panics
/// Panics if `num_clients == 0`.
pub fn iid(dataset: &Dataset, num_clients: usize, rng: &mut impl Rng) -> Partition {
    assert!(num_clients > 0, "num_clients must be positive");
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.shuffle(rng);
    let base = dataset.len() / num_clients;
    let extra = dataset.len() % num_clients;
    let mut clients = Vec::with_capacity(num_clients);
    let mut cursor = 0usize;
    for i in 0..num_clients {
        let size = base + usize::from(i < extra);
        clients.push(indices[cursor..cursor + size].to_vec());
        cursor += size;
    }
    Partition::new(clients)
}

/// The paper's non-IID partition: sort indices by label, split into
/// `shards_per_client * num_clients` equal shards, and hand each client
/// `shards_per_client` shards uniformly at random (the paper uses two).
///
/// # Panics
/// Panics if `num_clients == 0` or `shards_per_client == 0`.
pub fn shards_non_iid(
    dataset: &Dataset,
    num_clients: usize,
    shards_per_client: usize,
    rng: &mut impl Rng,
) -> Partition {
    assert!(num_clients > 0, "num_clients must be positive");
    assert!(shards_per_client > 0, "shards_per_client must be positive");
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.sort_by_key(|&i| dataset.label(i));

    let num_shards = num_clients * shards_per_client;
    let shard_size = dataset.len() / num_shards;
    // Shard order is randomised, then dealt round-robin so every client gets
    // exactly `shards_per_client` shards.
    let mut shard_ids: Vec<usize> = (0..num_shards).collect();
    shard_ids.shuffle(rng);

    let mut clients = vec![Vec::with_capacity(shards_per_client * shard_size); num_clients];
    for (pos, &shard) in shard_ids.iter().enumerate() {
        let client = pos % num_clients;
        let start = shard * shard_size;
        let end = if shard == num_shards - 1 {
            dataset.len()
        } else {
            start + shard_size
        };
        clients[client].extend_from_slice(&indices[start..end]);
    }
    Partition::new(clients)
}

/// Dirichlet label-skew partition (extension).
///
/// This is the other non-IID construction commonly used in the federated
/// learning literature (and a natural extension point for the paper's
/// evaluation): for every class, a proportion vector over the clients is
/// drawn from `Dirichlet(alpha)` and the class's samples are split
/// accordingly. Small `alpha` (e.g. 0.1) produces extreme label skew similar
/// to the paper's two-shards-per-client scheme; large `alpha` (e.g. 100)
/// approaches the IID partition.
///
/// # Panics
/// Panics if `num_clients == 0` or `alpha <= 0`.
pub fn dirichlet(
    dataset: &Dataset,
    num_clients: usize,
    alpha: f64,
    rng: &mut impl Rng,
) -> Partition {
    assert!(num_clients > 0, "num_clients must be positive");
    assert!(alpha > 0.0, "the Dirichlet concentration must be positive");
    use rand_distr::{Distribution, Gamma};
    let gamma = Gamma::new(alpha, 1.0).expect("valid gamma parameters");

    // Group sample indices by label, shuffled within each label.
    let mut by_label: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
    for i in 0..dataset.len() {
        by_label[dataset.label(i)].push(i);
    }
    let mut clients: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
    for indices in by_label.iter_mut() {
        if indices.is_empty() {
            continue;
        }
        indices.shuffle(rng);
        // Dirichlet sample via normalised Gamma draws.
        let mut weights: Vec<f64> = (0..num_clients)
            .map(|_| gamma.sample(rng).max(1e-12))
            .collect();
        let total: f64 = weights.iter().sum();
        for w in weights.iter_mut() {
            *w /= total;
        }
        // Convert proportions into contiguous cut points over this label's
        // samples so that every sample is assigned exactly once.
        let n = indices.len();
        let mut cursor = 0usize;
        let mut assigned = 0usize;
        for (client, &w) in weights.iter().enumerate() {
            let take = if client + 1 == num_clients {
                n - assigned
            } else {
                ((w * n as f64).round() as usize).min(n - assigned)
            };
            clients[client].extend_from_slice(&indices[cursor..cursor + take]);
            cursor += take;
            assigned += take;
        }
    }
    Partition::new(clients)
}

/// The Table VI imbalanced-volume partition.
///
/// Data are sorted by label and divided into `num_shards` equally sized
/// shards. Clients are divided evenly into `num_groups` groups; every member
/// of group `g` (1-based) receives `g` shards, except that the last group
/// collects all remaining shards. With the paper's numbers (200 clients, 100
/// groups, 10,000 shards) this produces client volumes from 5 samples up to
/// thousands, with the mean/stdev reported in Table VI.
///
/// # Panics
/// Panics if any of the counts is zero or `num_clients % num_groups != 0`.
pub fn imbalanced_groups(
    dataset: &Dataset,
    num_clients: usize,
    num_groups: usize,
    num_shards: usize,
    rng: &mut impl Rng,
) -> Partition {
    assert!(num_clients > 0 && num_groups > 0 && num_shards > 0);
    assert!(
        num_clients.is_multiple_of(num_groups),
        "clients must divide evenly into groups (paper: 200 clients, 100 groups)"
    );
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.sort_by_key(|&i| dataset.label(i));

    let shard_size = (dataset.len() / num_shards).max(1);
    let mut shard_ids: Vec<usize> = (0..num_shards).collect();
    shard_ids.shuffle(rng);

    let group_size = num_clients / num_groups;
    let mut clients: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
    let mut cursor = 0usize;
    'outer: for group in 1..=num_groups {
        for member in 0..group_size {
            let client = (group - 1) * group_size + member;
            for _ in 0..group {
                if cursor >= shard_ids.len() {
                    break 'outer;
                }
                let shard = shard_ids[cursor];
                cursor += 1;
                let start = shard * shard_size;
                let end = ((shard + 1) * shard_size).min(dataset.len());
                clients[client].extend_from_slice(&indices[start..end]);
            }
        }
    }
    // The last client collects the remaining shards (the paper: "except for
    // the last group that collects the remaining data").
    if cursor < shard_ids.len() {
        let last = num_clients - 1;
        for &shard in &shard_ids[cursor..] {
            let start = shard * shard_size;
            let end = ((shard + 1) * shard_size).min(dataset.len());
            clients[last].extend_from_slice(&indices[start..end]);
        }
    }
    Partition::new(clients)
}

/// Quantity-skew partition: IID label composition but power-law client
/// volumes (extension).
///
/// Client `i` receives a share of the data proportional to
/// `(i + 1)^{-gamma}` (after shuffling client order), so `gamma = 0`
/// recovers the balanced IID partition while larger `gamma` concentrates
/// data on a few clients — the "imbalanced data volumes" axis of the paper's
/// Table VI isolated from its label skew. Every client receives at least one
/// sample as long as the dataset is large enough.
///
/// # Panics
/// Panics if `num_clients == 0` or `gamma < 0`.
pub fn quantity_skew(
    dataset: &Dataset,
    num_clients: usize,
    gamma: f64,
    rng: &mut impl Rng,
) -> Partition {
    assert!(num_clients > 0, "num_clients must be positive");
    assert!(gamma >= 0.0, "the power-law exponent must be non-negative");
    let n = dataset.len();
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);

    // Power-law weights over a shuffled client order (so that client id does
    // not correlate with volume).
    let mut order: Vec<usize> = (0..num_clients).collect();
    order.shuffle(rng);
    let weights: Vec<f64> = (0..num_clients)
        .map(|rank| ((rank + 1) as f64).powf(-gamma))
        .collect();
    let total_weight: f64 = weights.iter().sum();

    // Give every client one guaranteed sample (when possible), then split the
    // remainder proportionally to the weights.
    let guaranteed = num_clients.min(n);
    let remaining = n - guaranteed;
    let mut counts = vec![0usize; num_clients];
    for c in counts.iter_mut().take(guaranteed) {
        *c = 1;
    }
    let mut assigned = 0usize;
    for (rank, &w) in weights.iter().enumerate() {
        let extra = if rank + 1 == num_clients {
            remaining - assigned
        } else {
            (((w / total_weight) * remaining as f64).floor() as usize).min(remaining - assigned)
        };
        counts[rank] += extra;
        assigned += extra;
    }

    let mut clients = vec![Vec::new(); num_clients];
    let mut cursor = 0usize;
    for (rank, &client) in order.iter().enumerate() {
        let take = counts[rank].min(n - cursor);
        clients[client] = indices[cursor..cursor + take].to_vec();
        cursor += take;
    }
    Partition::new(clients)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticDataset;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize) -> Dataset {
        // n samples, 1 feature, 10 classes, labels round-robin.
        let features: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 10).collect();
        Dataset::new(features, labels, 1, 10).unwrap()
    }

    #[test]
    fn iid_covers_all_samples_evenly() {
        let d = toy_dataset(103);
        let mut rng = SmallRng::seed_from_u64(0);
        let p = iid(&d, 10, &mut rng);
        assert_eq!(p.num_clients(), 10);
        assert_eq!(p.validate(d.len()).unwrap(), 103);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn iid_clients_see_most_classes() {
        let d = toy_dataset(1000);
        let mut rng = SmallRng::seed_from_u64(1);
        let p = iid(&d, 10, &mut rng);
        assert!(p.mean_distinct_labels(&d) > 9.0);
    }

    #[test]
    fn shards_non_iid_two_labels_per_client() {
        // 1000 samples, 10 classes sorted by label, 50 clients × 2 shards:
        // each shard holds a single label, so clients see at most 2 labels.
        let d = toy_dataset(1000);
        let mut rng = SmallRng::seed_from_u64(2);
        let p = shards_non_iid(&d, 50, 2, &mut rng);
        assert_eq!(p.num_clients(), 50);
        assert_eq!(p.validate(d.len()).unwrap(), 1000);
        for i in 0..p.num_clients() {
            assert!(
                p.distinct_labels(i, &d) <= 2,
                "client {i} sees too many labels"
            );
        }
        assert!(p.mean_distinct_labels(&d) <= 2.0);
    }

    #[test]
    fn shards_non_iid_is_much_more_skewed_than_iid() {
        let (train, _) = SyntheticDataset::Mnist.generate(500, 10, 0);
        let mut rng = SmallRng::seed_from_u64(3);
        let p_iid = iid(&train, 20, &mut rng);
        let p_noniid = shards_non_iid(&train, 20, 2, &mut rng);
        assert!(p_iid.mean_distinct_labels(&train) > p_noniid.mean_distinct_labels(&train) + 3.0);
    }

    #[test]
    fn imbalanced_groups_match_paper_statistics() {
        // Paper Table VI (FMNIST): 200 clients, 60,000 samples, mean 300.
        // We use a scaled-down version with the same construction: the mean
        // must equal total/clients and the standard deviation must be large
        // (heavily imbalanced).
        let d = toy_dataset(10_000);
        let mut rng = SmallRng::seed_from_u64(4);
        let p = imbalanced_groups(&d, 200, 100, 10_000 / 5, &mut rng);
        assert_eq!(p.validate(d.len()).unwrap(), 10_000);
        let (mean, stdev) = p.size_stats();
        assert!((mean - 50.0).abs() < 1e-9, "mean {mean}");
        // The paper's ratio stdev/mean ≈ 0.57; the group construction gives a
        // similar strongly imbalanced spread.
        assert!(
            stdev > 0.4 * mean,
            "stdev {stdev} too small for mean {mean}"
        );
    }

    #[test]
    fn imbalanced_groups_last_client_collects_remainder() {
        let d = toy_dataset(1000);
        let mut rng = SmallRng::seed_from_u64(5);
        let p = imbalanced_groups(&d, 10, 5, 100, &mut rng);
        assert_eq!(p.validate(d.len()).unwrap(), 1000);
        // Group sizes 1..=5 over 10 clients consume 2*(1+2+3+4+5)=30 shards;
        // the remaining 70 shards all land on the last client.
        let sizes = p.sizes();
        assert!(sizes[9] > sizes[0] * 10);
    }

    #[test]
    fn dirichlet_covers_every_sample_exactly_once() {
        let d = toy_dataset(1000);
        let mut rng = SmallRng::seed_from_u64(8);
        let p = dirichlet(&d, 20, 0.5, &mut rng);
        assert_eq!(p.num_clients(), 20);
        assert_eq!(p.validate(d.len()).unwrap(), 1000);
    }

    #[test]
    fn dirichlet_small_alpha_is_more_skewed_than_large_alpha() {
        let d = toy_dataset(2000);
        let mut rng = SmallRng::seed_from_u64(9);
        let skewed = dirichlet(&d, 20, 0.1, &mut rng);
        let near_iid = dirichlet(&d, 20, 100.0, &mut rng);
        assert!(
            skewed.mean_distinct_labels(&d) < near_iid.mean_distinct_labels(&d),
            "alpha=0.1 gave {} distinct labels vs {} for alpha=100",
            skewed.mean_distinct_labels(&d),
            near_iid.mean_distinct_labels(&d)
        );
        // With a large concentration every client sees (almost) every label.
        assert!(near_iid.mean_distinct_labels(&d) > 9.0);
    }

    #[test]
    #[should_panic(expected = "concentration must be positive")]
    fn dirichlet_rejects_nonpositive_alpha() {
        let d = toy_dataset(100);
        let mut rng = SmallRng::seed_from_u64(0);
        dirichlet(&d, 5, 0.0, &mut rng);
    }

    #[test]
    fn validate_detects_duplicates_and_oob() {
        let p = Partition::new(vec![vec![0, 1], vec![1]]);
        assert!(p.validate(3).unwrap_err().contains("more than one"));
        let p = Partition::new(vec![vec![5]]);
        assert!(p.validate(3).unwrap_err().contains("out-of-bounds"));
    }

    #[test]
    fn size_stats_simple() {
        let p = Partition::new(vec![vec![0, 1, 2], vec![3]]);
        let (mean, stdev) = p.size_stats();
        assert_eq!(mean, 2.0);
        assert_eq!(stdev, 1.0);
        assert_eq!(p.total_samples(), 4);
    }

    #[test]
    fn label_histogram_counts_per_class() {
        let d = toy_dataset(100);
        let p = Partition::new(vec![(0..20).collect(), (20..100).collect()]);
        let hist = p.label_histogram(0, &d);
        assert_eq!(hist.len(), 10);
        assert_eq!(hist.iter().sum::<usize>(), 20);
        // Labels are round-robin, so the first 20 samples hold 2 per class.
        assert!(hist.iter().all(|&c| c == 2));
    }

    #[test]
    fn label_skew_separates_iid_from_shard_partitions() {
        let d = toy_dataset(1000);
        let mut rng = SmallRng::seed_from_u64(9);
        let p_iid = iid(&d, 20, &mut rng);
        let p_shards = shards_non_iid(&d, 20, 2, &mut rng);
        let skew_iid = p_iid.label_skew(&d);
        let skew_shards = p_shards.label_skew(&d);
        // 50 samples per client leave some sampling noise; IID skew stays low
        // but not exactly zero.
        assert!(skew_iid < 0.3, "IID skew should be small, got {skew_iid}");
        // Two of ten classes per client → TV distance 1 − 2/10 = 0.8.
        assert!(
            (skew_shards - 0.8).abs() < 0.1,
            "shard skew was {skew_shards}"
        );
        assert!(skew_shards > skew_iid + 0.3);
    }

    #[test]
    fn label_skew_handles_empty_partitions() {
        let d = toy_dataset(50);
        let p = Partition::new(vec![Vec::new(), Vec::new()]);
        assert_eq!(p.label_skew(&d), 0.0);
    }

    #[test]
    fn volume_imbalance_measures_quantity_skew() {
        let balanced = Partition::new(vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(balanced.volume_imbalance(), 1.0);
        let skewed = Partition::new(vec![vec![0, 1, 2, 3, 4, 5], vec![6], Vec::new()]);
        assert_eq!(skewed.volume_imbalance(), 6.0);
    }

    #[test]
    fn quantity_skew_zero_gamma_is_balanced() {
        let d = toy_dataset(200);
        let mut rng = SmallRng::seed_from_u64(10);
        let p = quantity_skew(&d, 10, 0.0, &mut rng);
        assert_eq!(p.validate(200).unwrap(), 200);
        assert!(p.volume_imbalance() < 1.3);
        // Label composition stays (roughly) IID — well below the 0.8 of the
        // shard partition (20 samples per client leave sampling noise).
        assert!(p.label_skew(&d) < 0.4);
    }

    #[test]
    fn quantity_skew_concentrates_data_with_large_gamma() {
        let d = toy_dataset(500);
        let mut rng = SmallRng::seed_from_u64(11);
        let p = quantity_skew(&d, 10, 1.5, &mut rng);
        assert_eq!(p.validate(500).unwrap(), 500);
        assert!(
            p.volume_imbalance() > 10.0,
            "imbalance was {}",
            p.volume_imbalance()
        );
        // Every client still owns at least one sample.
        assert!(p.sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn quantity_skew_is_deterministic_in_seed() {
        let d = toy_dataset(300);
        let a = quantity_skew(&d, 8, 1.0, &mut SmallRng::seed_from_u64(3));
        let b = quantity_skew(&d, 8, 1.0, &mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The quantity-skew partition is an exact partition for any gamma:
        /// all samples assigned, no duplicates, no empty clients when
        /// n ≥ num_clients.
        #[test]
        fn prop_quantity_skew_is_exact_partition(
            n in 100usize..400,
            clients in 2usize..20,
            gamma in 0.0f64..2.5,
            seed in 0u64..1000,
        ) {
            let d = toy_dataset(n);
            let mut rng = SmallRng::seed_from_u64(seed);
            let p = quantity_skew(&d, clients, gamma, &mut rng);
            prop_assert_eq!(p.validate(n).unwrap(), n);
            prop_assert!(p.sizes().iter().all(|&s| s > 0));
        }

        /// Label skew is always a value in [0, 1].
        #[test]
        fn prop_label_skew_is_bounded(
            n in 50usize..300,
            clients in 2usize..10,
            seed in 0u64..1000,
        ) {
            let d = toy_dataset(n);
            let mut rng = SmallRng::seed_from_u64(seed);
            for p in [iid(&d, clients, &mut rng), shards_non_iid(&d, clients, 2, &mut rng)] {
                let skew = p.label_skew(&d);
                prop_assert!((0.0..=1.0).contains(&skew));
            }
        }

        /// Both IID and shard partitions are exact partitions: every sample
        /// is assigned to exactly one client.
        #[test]
        fn prop_partitions_are_disjoint_and_near_complete(
            n in 100usize..400,
            clients in 2usize..20,
            seed in 0u64..1000,
        ) {
            let d = toy_dataset(n);
            let mut rng = SmallRng::seed_from_u64(seed);
            let p1 = iid(&d, clients, &mut rng);
            prop_assert_eq!(p1.validate(n).unwrap(), n);
            let p2 = shards_non_iid(&d, clients, 2, &mut rng);
            let assigned = p2.validate(n).unwrap();
            // Shard partitions may drop at most (num_shards - 1) remainder
            // samples when n is not divisible by the shard count — never more.
            prop_assert!(assigned >= n - 2 * clients);
        }

        /// The shard partition never gives a client more labels than shards.
        #[test]
        fn prop_shard_partition_label_bound(
            clients in 2usize..15,
            shards_per_client in 1usize..4,
            seed in 0u64..1000,
        ) {
            let d = toy_dataset(600);
            let mut rng = SmallRng::seed_from_u64(seed);
            let p = shards_non_iid(&d, clients, shards_per_client, &mut rng);
            // Each label owns 60 consecutive sorted samples; a shard of size s
            // can straddle at most s/60 + 1 labels, so a client holding
            // `shards_per_client` shards sees at most that many per shard.
            let shard_size = 600 / (clients * shards_per_client);
            let labels_per_shard = shard_size / 60 + 2;
            for i in 0..p.num_clients() {
                prop_assert!(p.distinct_labels(i, &d) <= labels_per_shard * shards_per_client);
            }
        }
    }
}
