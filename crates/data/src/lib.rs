//! # fedadmm-data
//!
//! Datasets and federated partitioning for the FedADMM reproduction.
//!
//! The paper evaluates on MNIST, Fashion-MNIST and CIFAR-10. Those datasets
//! cannot be downloaded in this offline environment, so this crate provides
//! deterministic **synthetic class-conditional image generators** with the
//! same tensor shapes (1×28×28 flattened to 784, and 3×32×32 flattened to
//! 3,072), ten classes, and tunable difficulty (see
//! [`synthetic::SyntheticDataset`]). The phenomena the paper studies —
//! client drift under label-skewed partitions, sensitivity to ρ/η/E,
//! scaling with the client population — are driven by **how labels are
//! partitioned across clients**, which this crate reproduces exactly:
//!
//! * [`partition::iid`] — data shuffled and split evenly (the paper's IID
//!   setting),
//! * [`partition::shards_non_iid`] — data sorted by label, split into
//!   `2·m` shards, two shards per client (the paper's non-IID setting),
//! * [`partition::imbalanced_groups`] — the Table VI imbalanced-volume
//!   setting (10,000 shards, clients grouped, shard count = group index),
//! * [`partition::dirichlet`] — a Dirichlet label-skew partitioner
//!   (extension; the other non-IID construction common in the FL
//!   literature).
//!
//! [`batching::BatchIterator`] reproduces the paper's local batching
//! (`B = 10 / 50 / 200 / ∞`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batching;
pub mod dataset;
pub mod partition;
pub mod synthetic;

pub use dataset::Dataset;
pub use partition::Partition;
pub use synthetic::{SyntheticConfig, SyntheticDataset};
