//! Mini-batch iteration over a client's local samples.
//!
//! The paper's local solver is mini-batch SGD with batch size `B`
//! (`B = 200` for MNIST with 100 clients, `B = 10` for the 1,000-client
//! non-IID runs, `B = ∞` i.e. full batch for the 1,000-client IID runs,
//! `B = 50` for Figures 5 and 10). [`BatchIterator`] reproduces exactly
//! that: it shuffles the client's indices once per epoch and yields
//! consecutive chunks of `B` indices (the final chunk may be smaller).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Local batch size. `Full` reproduces the paper's `B = ∞` setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchSize {
    /// Mini-batches of the given size.
    Size(usize),
    /// One batch containing every local sample (`B = ∞`).
    Full,
}

impl BatchSize {
    /// Resolves to a concrete batch size for a client holding `n` samples.
    pub fn resolve(&self, n: usize) -> usize {
        match *self {
            BatchSize::Size(b) => b.max(1).min(n.max(1)),
            BatchSize::Full => n.max(1),
        }
    }

    /// Number of batches per epoch for a client holding `n` samples.
    pub fn batches_per_epoch(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let b = self.resolve(n);
        n.div_ceil(b)
    }
}

/// Iterates over shuffled mini-batches of a client's sample indices for one
/// epoch.
#[derive(Debug, Clone)]
pub struct BatchIterator {
    shuffled: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIterator {
    /// Creates a one-epoch batch iterator over `indices`.
    ///
    /// The indices are shuffled with `rng` (a fresh shuffle per epoch, as in
    /// standard SGD practice and the paper's PyTorch loaders).
    pub fn new(indices: &[usize], batch_size: BatchSize, rng: &mut impl Rng) -> Self {
        let mut shuffled = indices.to_vec();
        shuffled.shuffle(rng);
        let bs = batch_size.resolve(indices.len());
        BatchIterator {
            shuffled,
            batch_size: bs,
            cursor: 0,
        }
    }
}

/// Shuffles `indices` into `buf`, reusing its allocation — one epoch's worth
/// of batch order for allocation-free training loops.
///
/// Consumes the RNG identically to [`BatchIterator::new`] (one shuffle of a
/// same-length slice), so `buf.chunks(batch_size.resolve(indices.len()))`
/// yields bit-identical batches to the iterator without the per-batch `Vec`s.
pub fn shuffle_epoch_into(indices: &[usize], rng: &mut impl Rng, buf: &mut Vec<usize>) {
    buf.clear();
    buf.extend_from_slice(indices);
    buf.shuffle(rng);
}

impl Iterator for BatchIterator {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.shuffled.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.shuffled.len());
        let batch = self.shuffled[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn batch_size_resolution() {
        assert_eq!(BatchSize::Size(10).resolve(100), 10);
        assert_eq!(BatchSize::Size(10).resolve(4), 4);
        assert_eq!(BatchSize::Size(0).resolve(4), 1);
        assert_eq!(BatchSize::Full.resolve(37), 37);
        assert_eq!(BatchSize::Full.resolve(0), 1);
    }

    #[test]
    fn batches_per_epoch_counts() {
        assert_eq!(BatchSize::Size(10).batches_per_epoch(100), 10);
        assert_eq!(BatchSize::Size(10).batches_per_epoch(101), 11);
        assert_eq!(BatchSize::Full.batches_per_epoch(1000), 1);
        assert_eq!(BatchSize::Size(10).batches_per_epoch(0), 0);
    }

    #[test]
    fn iterator_covers_every_index_once() {
        let indices: Vec<usize> = (100..137).collect();
        let mut rng = SmallRng::seed_from_u64(0);
        let batches: Vec<Vec<usize>> =
            BatchIterator::new(&indices, BatchSize::Size(10), &mut rng).collect();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches.last().unwrap().len(), 7);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, indices);
    }

    #[test]
    fn full_batch_yields_single_batch() {
        let indices: Vec<usize> = (0..25).collect();
        let mut rng = SmallRng::seed_from_u64(0);
        let batches: Vec<Vec<usize>> =
            BatchIterator::new(&indices, BatchSize::Full, &mut rng).collect();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 25);
    }

    #[test]
    fn empty_client_yields_no_batches() {
        let mut rng = SmallRng::seed_from_u64(0);
        let batches: Vec<Vec<usize>> =
            BatchIterator::new(&[], BatchSize::Size(8), &mut rng).collect();
        assert!(batches.is_empty());
    }

    #[test]
    fn shuffling_changes_order_but_not_contents() {
        let indices: Vec<usize> = (0..50).collect();
        let mut rng1 = SmallRng::seed_from_u64(1);
        let mut rng2 = SmallRng::seed_from_u64(2);
        let a: Vec<usize> = BatchIterator::new(&indices, BatchSize::Full, &mut rng1)
            .flatten()
            .collect();
        let b: Vec<usize> = BatchIterator::new(&indices, BatchSize::Full, &mut rng2)
            .flatten()
            .collect();
        assert_ne!(a, b);
        let mut a_sorted = a.clone();
        let mut b_sorted = b.clone();
        a_sorted.sort_unstable();
        b_sorted.sort_unstable();
        assert_eq!(a_sorted, b_sorted);
    }

    #[test]
    fn shuffle_epoch_into_matches_batch_iterator() {
        let indices: Vec<usize> = (5..47).collect();
        let mut rng_iter = SmallRng::seed_from_u64(9);
        let mut rng_into = SmallRng::seed_from_u64(9);
        let mut buf = Vec::new();
        // Two consecutive epochs must consume the RNG identically.
        for _ in 0..2 {
            let via_iter: Vec<Vec<usize>> =
                BatchIterator::new(&indices, BatchSize::Size(8), &mut rng_iter).collect();
            shuffle_epoch_into(&indices, &mut rng_into, &mut buf);
            let via_into: Vec<Vec<usize>> = buf
                .chunks(BatchSize::Size(8).resolve(indices.len()))
                .map(|c| c.to_vec())
                .collect();
            assert_eq!(via_iter, via_into);
        }
        let cap = buf.capacity();
        shuffle_epoch_into(&indices, &mut rng_into, &mut buf);
        assert_eq!(buf.capacity(), cap, "epoch shuffle must reuse the buffer");
    }

    proptest! {
        /// Every epoch covers each index exactly once, for any batch size.
        #[test]
        fn prop_epoch_is_a_permutation(n in 1usize..200, b in 1usize..64, seed in 0u64..100) {
            let indices: Vec<usize> = (0..n).collect();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut all: Vec<usize> =
                BatchIterator::new(&indices, BatchSize::Size(b), &mut rng).flatten().collect();
            all.sort_unstable();
            prop_assert_eq!(all, indices);
        }

        /// All batches except possibly the last have exactly the requested size.
        #[test]
        fn prop_batch_sizes(n in 1usize..200, b in 1usize..64) {
            let indices: Vec<usize> = (0..n).collect();
            let mut rng = SmallRng::seed_from_u64(0);
            let batches: Vec<Vec<usize>> =
                BatchIterator::new(&indices, BatchSize::Size(b), &mut rng).collect();
            let expect = b.min(n);
            for batch in &batches[..batches.len() - 1] {
                prop_assert_eq!(batch.len(), expect);
            }
            prop_assert!(batches.last().unwrap().len() <= expect);
        }
    }
}
