//! In-memory labelled dataset.

use fedadmm_tensor::{Tensor, TensorError, TensorResult};
use std::sync::Arc;

/// A labelled classification dataset held in memory.
///
/// Features are stored as one contiguous row-major matrix
/// (`num_samples × feature_dim`) so that mini-batches can be materialised
/// with a simple gather. Datasets are cheap to clone: the storage is shared
/// behind an [`Arc`], which matters because every simulated client holds a
/// *view* (a list of indices) into the same training set.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Arc<Vec<f32>>,
    labels: Arc<Vec<usize>>,
    feature_dim: usize,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from a flat feature buffer and labels.
    ///
    /// `features.len()` must equal `labels.len() * feature_dim`, and every
    /// label must be `< num_classes`.
    pub fn new(
        features: Vec<f32>,
        labels: Vec<usize>,
        feature_dim: usize,
        num_classes: usize,
    ) -> TensorResult<Self> {
        if feature_dim == 0 {
            return Err(TensorError::InvalidArgument(
                "feature_dim must be positive".into(),
            ));
        }
        if features.len() != labels.len() * feature_dim {
            return Err(TensorError::InvalidArgument(format!(
                "feature buffer has {} values but {} samples × {} features were expected",
                features.len(),
                labels.len(),
                feature_dim
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(TensorError::InvalidArgument(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Dataset {
            features: Arc::new(features),
            labels: Arc::new(labels),
            feature_dim,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Dimensionality of each (flattened) sample.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The feature row of sample `i`.
    pub fn features_of(&self, i: usize) -> &[f32] {
        &self.features[i * self.feature_dim..(i + 1) * self.feature_dim]
    }

    /// Gathers the samples at `indices` into a `[batch, feature_dim]` tensor
    /// and a label vector — the form consumed by `fedadmm-nn` models.
    pub fn gather(&self, indices: &[usize]) -> TensorResult<(Tensor, Vec<usize>)> {
        let mut data = Vec::with_capacity(indices.len() * self.feature_dim);
        let mut labels = Vec::with_capacity(indices.len());
        self.gather_into(indices, &mut data, &mut labels)?;
        let x = Tensor::from_vec(data, &[indices.len(), self.feature_dim])?;
        Ok((x, labels))
    }

    /// Gathers the samples at `indices` into caller-owned buffers, reusing
    /// their allocations — the scratch-friendly twin of [`Dataset::gather`]
    /// for per-batch hot loops. `data` receives the row-major
    /// `[indices.len() × feature_dim]` feature block and `labels` the
    /// matching labels; both are cleared first.
    pub fn gather_into(
        &self,
        indices: &[usize],
        data: &mut Vec<f32>,
        labels: &mut Vec<usize>,
    ) -> TensorResult<()> {
        data.clear();
        data.reserve(indices.len() * self.feature_dim);
        labels.clear();
        labels.reserve(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![i],
                    shape: vec![self.len()],
                });
            }
            data.extend_from_slice(self.features_of(i));
            labels.push(self.labels[i]);
        }
        Ok(())
    }

    /// Gathers the whole dataset (used for full-batch evaluation).
    pub fn gather_all(&self) -> TensorResult<(Tensor, Vec<usize>)> {
        let indices: Vec<usize> = (0..self.len()).collect();
        self.gather(&indices)
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in self.labels.iter() {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // 4 samples, 2 features each, 3 classes.
        Dataset::new(
            vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1, 3.0, 3.1],
            vec![0, 1, 2, 0],
            2,
            3,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(Dataset::new(vec![1.0, 2.0], vec![0], 2, 1).is_ok());
        assert!(Dataset::new(vec![1.0, 2.0, 3.0], vec![0], 2, 1).is_err());
        assert!(Dataset::new(vec![1.0, 2.0], vec![5], 2, 3).is_err());
        assert!(Dataset::new(vec![], vec![], 0, 1).is_err());
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.label(2), 2);
        assert_eq!(d.features_of(1), &[1.0, 1.1]);
        assert_eq!(d.class_histogram(), vec![2, 1, 1]);
    }

    #[test]
    fn gather_builds_batch() {
        let d = toy();
        let (x, labels) = d.gather(&[3, 0]).unwrap();
        assert_eq!(x.dims(), &[2, 2]);
        assert_eq!(x.data(), &[3.0, 3.1, 0.0, 0.1]);
        assert_eq!(labels, vec![0, 0]);
    }

    #[test]
    fn gather_into_matches_gather_and_reuses_buffers() {
        let d = toy();
        let mut data = Vec::new();
        let mut labels = Vec::new();
        d.gather_into(&[3, 0], &mut data, &mut labels).unwrap();
        let (x, expected_labels) = d.gather(&[3, 0]).unwrap();
        assert_eq!(data, x.data());
        assert_eq!(labels, expected_labels);
        let cap = data.capacity();
        d.gather_into(&[1, 2], &mut data, &mut labels).unwrap();
        assert_eq!(data, &[1.0, 1.1, 2.0, 2.1]);
        assert_eq!(labels, vec![1, 2]);
        assert_eq!(data.capacity(), cap, "gather_into must reuse the buffer");
        assert!(d.gather_into(&[4], &mut data, &mut labels).is_err());
    }

    #[test]
    fn gather_rejects_out_of_bounds() {
        let d = toy();
        assert!(d.gather(&[4]).is_err());
    }

    #[test]
    fn gather_all_covers_everything() {
        let d = toy();
        let (x, labels) = d.gather_all().unwrap();
        assert_eq!(x.dims(), &[4, 2]);
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn clone_shares_storage() {
        let d = toy();
        let d2 = d.clone();
        assert!(Arc::ptr_eq(&d.features, &d2.features));
    }
}
