//! Synchronous-round wall-clock timing and straggler handling.
//!
//! In the canonical FL round of Figure 1, the server waits for every
//! selected client before aggregating, so the round time is the *maximum*
//! over selected clients of download + local-training + upload time. This is
//! exactly why the paper calls out "the straggler problem (where the server
//! has to wait for the slowest client before proceeding to the next round)"
//! when arguing against full-participation methods such as FedPD.
//!
//! [`RoundTiming`] computes that maximum from per-client work descriptions
//! and device profiles; [`StragglerPolicy`] optionally imposes a deadline
//! after which slow clients are dropped (their update is lost, trading
//! statistical efficiency for time); [`WallClockTrace`] accumulates the
//! simulated clock over a whole run so that accuracy-vs-time curves can be
//! produced next to the paper's accuracy-vs-rounds curves.

use crate::device::DevicePopulation;
use crate::network::NetworkModel;
use serde::{Deserialize, Serialize};

/// The work one selected client performs in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientRoundWork {
    /// Which client (indexes into the [`DevicePopulation`]).
    pub client_id: usize,
    /// Training samples the client processes locally this round
    /// (epochs × local dataset size).
    pub samples_processed: usize,
    /// Floats the client downloads at the start of the round (the global
    /// model: `d` for every algorithm).
    pub download_floats: usize,
    /// Floats the client uploads at the end of the round (`d` for
    /// FedADMM/FedAvg/FedProx, `2d` for SCAFFOLD).
    pub upload_floats: usize,
}

/// How the server treats slow clients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StragglerPolicy {
    /// Wait for every selected client (the synchronous protocol of the
    /// paper's experiments).
    WaitForAll,
    /// Drop any client that has not finished within `seconds`; the round
    /// completes at `min(deadline, slowest surviving client)`.
    Deadline {
        /// The per-round deadline in seconds.
        seconds: f64,
    },
}

/// The timing outcome of one synchronous round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTiming {
    /// Seconds the round takes (the server-side wait).
    pub round_seconds: f64,
    /// Per-client completion times, in the order of the work descriptors.
    pub client_seconds: Vec<f64>,
    /// Clients that finished within the deadline (all of them under
    /// [`StragglerPolicy::WaitForAll`]).
    pub completed: Vec<usize>,
    /// Clients dropped by the deadline.
    pub dropped: Vec<usize>,
    /// Total bytes uploaded by the clients that completed.
    pub upload_bytes: usize,
}

impl RoundTiming {
    /// Computes the timing of one round.
    pub fn compute(
        work: &[ClientRoundWork],
        devices: &DevicePopulation,
        network: &NetworkModel,
        policy: StragglerPolicy,
    ) -> Self {
        assert!(
            !work.is_empty(),
            "a round needs at least one selected client"
        );
        let client_seconds: Vec<f64> = work
            .iter()
            .map(|w| {
                let device = devices.profile(w.client_id);
                network.download_seconds(device, w.download_floats)
                    + device.compute_seconds(w.samples_processed)
                    + network.upload_seconds(device, w.upload_floats)
            })
            .collect();
        let (completed, dropped): (Vec<usize>, Vec<usize>) = match policy {
            StragglerPolicy::WaitForAll => (work.iter().map(|w| w.client_id).collect(), vec![]),
            StragglerPolicy::Deadline { seconds } => {
                assert!(seconds > 0.0, "the deadline must be positive");
                let mut done = Vec::new();
                let mut late = Vec::new();
                for (w, &t) in work.iter().zip(client_seconds.iter()) {
                    if t <= seconds {
                        done.push(w.client_id);
                    } else {
                        late.push(w.client_id);
                    }
                }
                (done, late)
            }
        };
        let round_seconds = match policy {
            StragglerPolicy::WaitForAll => client_seconds.iter().copied().fold(0.0f64, f64::max),
            StragglerPolicy::Deadline { seconds } => {
                let slowest_survivor = work
                    .iter()
                    .zip(client_seconds.iter())
                    .filter(|(w, _)| completed.contains(&w.client_id))
                    .map(|(_, &t)| t)
                    .fold(0.0f64, f64::max);
                if dropped.is_empty() {
                    slowest_survivor
                } else {
                    // The server still waits until the deadline before
                    // declaring the stragglers lost.
                    seconds
                }
            }
        };
        let upload_bytes = network.round_upload_bytes(
            &work
                .iter()
                .filter(|w| completed.contains(&w.client_id))
                .map(|w| w.upload_floats)
                .collect::<Vec<_>>(),
        );
        RoundTiming {
            round_seconds,
            client_seconds,
            completed,
            dropped,
            upload_bytes,
        }
    }

    /// Fraction of selected clients that completed the round.
    pub fn completion_rate(&self) -> f64 {
        let total = self.completed.len() + self.dropped.len();
        if total == 0 {
            0.0
        } else {
            self.completed.len() as f64 / total as f64
        }
    }

    /// The straggler gap: slowest ÷ fastest client time in this round. A
    /// value near 1 means a homogeneous round; large values mean the server
    /// spends most of the round waiting.
    pub fn straggler_ratio(&self) -> f64 {
        let min = self
            .client_seconds
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = self.client_seconds.iter().copied().fold(0.0f64, f64::max);
        if min > 0.0 {
            max / min
        } else {
            f64::INFINITY
        }
    }
}

/// Accumulates round timings into a cumulative wall-clock trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WallClockTrace {
    cumulative_seconds: Vec<f64>,
    cumulative_upload_bytes: Vec<usize>,
    dropped_per_round: Vec<usize>,
}

impl WallClockTrace {
    /// An empty trace.
    pub fn new() -> Self {
        WallClockTrace::default()
    }

    /// Appends one round's timing.
    pub fn push(&mut self, timing: &RoundTiming) {
        let prev_s = self.cumulative_seconds.last().copied().unwrap_or(0.0);
        let prev_b = self.cumulative_upload_bytes.last().copied().unwrap_or(0);
        self.cumulative_seconds.push(prev_s + timing.round_seconds);
        self.cumulative_upload_bytes
            .push(prev_b + timing.upload_bytes);
        self.dropped_per_round.push(timing.dropped.len());
    }

    /// Number of rounds recorded.
    pub fn len(&self) -> usize {
        self.cumulative_seconds.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.cumulative_seconds.is_empty()
    }

    /// Total simulated seconds so far.
    pub fn total_seconds(&self) -> f64 {
        self.cumulative_seconds.last().copied().unwrap_or(0.0)
    }

    /// Total uploaded bytes so far.
    pub fn total_upload_bytes(&self) -> usize {
        self.cumulative_upload_bytes.last().copied().unwrap_or(0)
    }

    /// Total number of dropped client updates so far.
    pub fn total_dropped(&self) -> usize {
        self.dropped_per_round.iter().sum()
    }

    /// The cumulative seconds after each round (for accuracy-vs-time plots).
    pub fn seconds_series(&self) -> &[f64] {
        &self.cumulative_seconds
    }

    /// Simulated seconds at which round `r` (0-based) completed.
    pub fn seconds_at(&self, round: usize) -> Option<f64> {
        self.cumulative_seconds.get(round).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceClass, DevicePopulation, DeviceProfile};

    fn uniform_work(clients: &[usize], samples: usize, d: usize) -> Vec<ClientRoundWork> {
        clients
            .iter()
            .map(|&c| ClientRoundWork {
                client_id: c,
                samples_processed: samples,
                download_floats: d,
                upload_floats: d,
            })
            .collect()
    }

    #[test]
    fn round_time_is_the_slowest_client() {
        // One fast and one slow device doing the same work.
        let devices = DevicePopulation::new(vec![
            DeviceProfile::new(1000.0, 100.0, 100.0, 0.0),
            DeviceProfile::new(100.0, 100.0, 100.0, 0.0),
        ]);
        let net = NetworkModel::ideal();
        let work = uniform_work(&[0, 1], 1000, 0);
        let timing = RoundTiming::compute(&work, &devices, &net, StragglerPolicy::WaitForAll);
        assert!((timing.client_seconds[0] - 1.0).abs() < 1e-9);
        assert!((timing.client_seconds[1] - 10.0).abs() < 1e-9);
        assert!((timing.round_seconds - 10.0).abs() < 1e-9);
        assert_eq!(timing.completed, vec![0, 1]);
        assert!(timing.dropped.is_empty());
        assert_eq!(timing.completion_rate(), 1.0);
        assert!((timing.straggler_ratio() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_drops_stragglers_and_caps_round_time() {
        let devices = DevicePopulation::new(vec![
            DeviceProfile::new(1000.0, 100.0, 100.0, 0.0),
            DeviceProfile::new(10.0, 100.0, 100.0, 0.0),
        ]);
        let net = NetworkModel::ideal();
        let work = uniform_work(&[0, 1], 1000, 0);
        let timing = RoundTiming::compute(
            &work,
            &devices,
            &net,
            StragglerPolicy::Deadline { seconds: 5.0 },
        );
        assert_eq!(timing.completed, vec![0]);
        assert_eq!(timing.dropped, vec![1]);
        assert!((timing.round_seconds - 5.0).abs() < 1e-9);
        assert_eq!(timing.completion_rate(), 0.5);
    }

    #[test]
    fn deadline_with_no_stragglers_ends_at_the_slowest_survivor() {
        let devices =
            DevicePopulation::homogeneous(4, DeviceProfile::new(100.0, 100.0, 100.0, 0.0));
        let net = NetworkModel::ideal();
        let work = uniform_work(&[0, 1, 2, 3], 100, 0);
        let timing = RoundTiming::compute(
            &work,
            &devices,
            &net,
            StragglerPolicy::Deadline { seconds: 100.0 },
        );
        assert!(timing.dropped.is_empty());
        assert!((timing.round_seconds - 1.0).abs() < 1e-9);
    }

    #[test]
    fn upload_bytes_only_count_completed_clients() {
        let devices = DevicePopulation::new(vec![
            DeviceProfile::new(1000.0, 100.0, 100.0, 0.0),
            DeviceProfile::new(1.0, 100.0, 100.0, 0.0),
        ]);
        let net = NetworkModel::ideal();
        let d = 1000usize;
        let work = uniform_work(&[0, 1], 100, d);
        let all = RoundTiming::compute(&work, &devices, &net, StragglerPolicy::WaitForAll);
        assert_eq!(all.upload_bytes, 2 * d * 4);
        let dropped = RoundTiming::compute(
            &work,
            &devices,
            &net,
            StragglerPolicy::Deadline { seconds: 1.0 },
        );
        assert_eq!(dropped.upload_bytes, d * 4);
    }

    #[test]
    fn variable_work_shrinks_the_straggler_gap() {
        // The FedADMM/FedProx protocol lets a slow device do less work
        // (fewer epochs). Halving the slow client's samples must reduce the
        // round time accordingly — the wall-clock benefit of tolerating
        // variable work.
        let devices = DevicePopulation::new(vec![
            DeviceClass::HighEnd.profile(),
            DeviceClass::LowEnd.profile(),
        ]);
        let net = NetworkModel::default();
        let d = 100_000;
        let fixed = uniform_work(&[0, 1], 2000, d);
        let mut variable = fixed.clone();
        variable[1].samples_processed = 200; // slow device runs 1 epoch instead of 10.
        let t_fixed = RoundTiming::compute(&fixed, &devices, &net, StragglerPolicy::WaitForAll);
        let t_variable =
            RoundTiming::compute(&variable, &devices, &net, StragglerPolicy::WaitForAll);
        assert!(t_variable.round_seconds < t_fixed.round_seconds * 0.5);
    }

    #[test]
    fn wall_clock_trace_accumulates() {
        let devices = DevicePopulation::homogeneous(2, DeviceProfile::new(100.0, 8.0, 8.0, 0.0));
        let net = NetworkModel::ideal();
        let work = uniform_work(&[0, 1], 100, 1000);
        let timing = RoundTiming::compute(&work, &devices, &net, StragglerPolicy::WaitForAll);
        let mut trace = WallClockTrace::new();
        assert!(trace.is_empty());
        trace.push(&timing);
        trace.push(&timing);
        assert_eq!(trace.len(), 2);
        assert!((trace.total_seconds() - 2.0 * timing.round_seconds).abs() < 1e-9);
        assert_eq!(trace.total_upload_bytes(), 2 * timing.upload_bytes);
        assert_eq!(trace.total_dropped(), 0);
        assert_eq!(trace.seconds_series().len(), 2);
        assert!(trace.seconds_at(1).unwrap() > trace.seconds_at(0).unwrap());
        assert_eq!(trace.seconds_at(2), None);
    }

    #[test]
    #[should_panic(expected = "at least one selected client")]
    fn empty_round_is_rejected() {
        let devices = DevicePopulation::homogeneous(1, DeviceClass::HighEnd.profile());
        RoundTiming::compute(
            &[],
            &devices,
            &NetworkModel::ideal(),
            StragglerPolicy::WaitForAll,
        );
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn non_positive_deadline_is_rejected() {
        let devices = DevicePopulation::homogeneous(1, DeviceClass::HighEnd.profile());
        let work = uniform_work(&[0], 10, 10);
        RoundTiming::compute(
            &work,
            &devices,
            &NetworkModel::ideal(),
            StragglerPolicy::Deadline { seconds: 0.0 },
        );
    }
}
