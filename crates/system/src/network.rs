//! Message-size and transfer accounting.
//!
//! The paper's central efficiency claim is stated in *floats uploaded per
//! round*: FedADMM uploads one `d`-vector per selected client (identical to
//! FedAvg/FedProx), SCAFFOLD uploads two. [`NetworkModel`] converts float
//! counts into bytes and transfer times, including per-message protocol
//! overhead, so that wall-clock experiments can express the same comparison
//! in seconds on a concrete link.

use crate::device::DeviceProfile;
use serde::{Deserialize, Serialize};

/// Bytes used by one model parameter on the wire (f32).
pub const BYTES_PER_FLOAT: usize = 4;

/// A simple network cost model shared by all clients of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Fixed protocol overhead added to every message, in bytes (framing,
    /// TLS, client metadata…).
    pub per_message_overhead_bytes: usize,
    /// Multiplicative overhead on the payload (serialization framing,
    /// retransmissions). `1.0` means the payload travels as-is.
    pub payload_expansion: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            per_message_overhead_bytes: 1024,
            payload_expansion: 1.0,
        }
    }
}

impl NetworkModel {
    /// A model with no overhead at all — useful for unit tests and for
    /// reporting the paper's idealised float counts.
    pub fn ideal() -> Self {
        NetworkModel {
            per_message_overhead_bytes: 0,
            payload_expansion: 1.0,
        }
    }

    /// Bytes on the wire for a message carrying `floats` model parameters.
    pub fn message_bytes(&self, floats: usize) -> usize {
        assert!(
            self.payload_expansion >= 1.0,
            "payload expansion cannot shrink the payload"
        );
        let payload = (floats * BYTES_PER_FLOAT) as f64 * self.payload_expansion;
        self.per_message_overhead_bytes + payload.ceil() as usize
    }

    /// Seconds for `device` to upload a message of `floats` parameters.
    pub fn upload_seconds(&self, device: &DeviceProfile, floats: usize) -> f64 {
        device.upload_seconds(self.message_bytes(floats))
    }

    /// Seconds for `device` to download a message of `floats` parameters.
    pub fn download_seconds(&self, device: &DeviceProfile, floats: usize) -> f64 {
        device.download_seconds(self.message_bytes(floats))
    }

    /// Total bytes uploaded by a round in which each entry of
    /// `floats_per_client` is one client's upload size.
    pub fn round_upload_bytes(&self, floats_per_client: &[usize]) -> usize {
        floats_per_client
            .iter()
            .map(|&f| self.message_bytes(f))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;

    #[test]
    fn ideal_model_counts_exactly_four_bytes_per_float() {
        let net = NetworkModel::ideal();
        assert_eq!(net.message_bytes(0), 0);
        assert_eq!(net.message_bytes(1_663_370), 1_663_370 * 4);
    }

    #[test]
    fn default_model_adds_fixed_overhead() {
        let net = NetworkModel::default();
        assert_eq!(net.message_bytes(0), 1024);
        assert_eq!(net.message_bytes(100), 1024 + 400);
    }

    #[test]
    fn payload_expansion_inflates_the_payload_only() {
        let net = NetworkModel {
            per_message_overhead_bytes: 10,
            payload_expansion: 1.5,
        };
        assert_eq!(net.message_bytes(100), 10 + 600);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn shrinking_expansion_is_rejected() {
        let net = NetworkModel {
            per_message_overhead_bytes: 0,
            payload_expansion: 0.5,
        };
        net.message_bytes(10);
    }

    #[test]
    fn scaffold_upload_takes_twice_as_long_as_fedadmm() {
        // The communication-cost comparison of Section III-B expressed in
        // seconds: SCAFFOLD's 2d-float message takes ~2× the time of the
        // d-float FedADMM/FedAvg/FedProx message on the same link.
        let net = NetworkModel::ideal();
        let device = DeviceClass::MidRange.profile();
        let d = 1_105_098; // CNN 2 of Table II.
        let fedadmm = net.upload_seconds(&device, d);
        let scaffold = net.upload_seconds(&device, 2 * d);
        let ratio = (scaffold - device.latency_ms / 1e3) / (fedadmm - device.latency_ms / 1e3);
        assert!((ratio - 2.0).abs() < 1e-9);
        assert!(scaffold > fedadmm);
    }

    #[test]
    fn round_upload_bytes_sums_all_clients() {
        let net = NetworkModel::ideal();
        assert_eq!(net.round_upload_bytes(&[10, 20, 30]), 60 * 4);
        assert_eq!(net.round_upload_bytes(&[]), 0);
    }

    #[test]
    fn faster_downlink_downloads_faster_than_uplink() {
        let net = NetworkModel::default();
        let device = DeviceClass::LowEnd.profile();
        assert!(net.download_seconds(&device, 100_000) < net.upload_seconds(&device, 100_000));
    }
}
