//! Per-client device profiles and fleet generators.
//!
//! The FL motivation of the paper is edge hardware: "the rapid increase of
//! the computational power of personal devices such as smartphones surges
//! pushing computation to the edge". Real fleets mix device generations, so
//! compute throughput and network bandwidth span more than an order of
//! magnitude — this is what produces stragglers in synchronous rounds.
//! [`DeviceProfile`] captures one device; [`DevicePopulation`] generates a
//! whole fleet, either from discrete tiers ([`DeviceClass`]) or from a
//! log-normal throughput spread.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The hardware/network capabilities of one simulated client device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Training throughput: samples the device can process per second
    /// (forward + backward + update for the model under study).
    pub compute_samples_per_sec: f64,
    /// Uplink bandwidth in megabits per second.
    pub upload_mbps: f64,
    /// Downlink bandwidth in megabits per second.
    pub download_mbps: f64,
    /// One-way network latency in milliseconds (paid once per transfer).
    pub latency_ms: f64,
}

impl DeviceProfile {
    /// Creates a profile, validating that every rate is positive.
    pub fn new(
        compute_samples_per_sec: f64,
        upload_mbps: f64,
        download_mbps: f64,
        latency_ms: f64,
    ) -> Self {
        assert!(
            compute_samples_per_sec > 0.0,
            "compute throughput must be positive"
        );
        assert!(
            upload_mbps > 0.0 && download_mbps > 0.0,
            "bandwidths must be positive"
        );
        assert!(latency_ms >= 0.0, "latency cannot be negative");
        DeviceProfile {
            compute_samples_per_sec,
            upload_mbps,
            download_mbps,
            latency_ms,
        }
    }

    /// Seconds this device needs to process `samples` training samples.
    pub fn compute_seconds(&self, samples: usize) -> f64 {
        samples as f64 / self.compute_samples_per_sec
    }

    /// Seconds this device needs to upload `bytes` bytes (latency included).
    pub fn upload_seconds(&self, bytes: usize) -> f64 {
        self.latency_ms / 1e3 + bytes as f64 * 8.0 / (self.upload_mbps * 1e6)
    }

    /// Seconds this device needs to download `bytes` bytes (latency
    /// included).
    pub fn download_seconds(&self, bytes: usize) -> f64 {
        self.latency_ms / 1e3 + bytes as f64 * 8.0 / (self.download_mbps * 1e6)
    }
}

/// Discrete device tiers used to compose realistic fleets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Recent flagship phone on Wi-Fi.
    HighEnd,
    /// Mid-range phone on LTE.
    MidRange,
    /// Old budget phone on congested LTE — the typical straggler.
    LowEnd,
    /// Always-powered edge gateway (e.g. hospital or smart-grid node).
    EdgeGateway,
}

impl DeviceClass {
    /// All tiers, from fastest to slowest compute.
    pub fn all() -> [DeviceClass; 4] {
        [
            DeviceClass::EdgeGateway,
            DeviceClass::HighEnd,
            DeviceClass::MidRange,
            DeviceClass::LowEnd,
        ]
    }

    /// The nominal profile of this tier. The absolute numbers are
    /// order-of-magnitude realistic; what matters for the experiments is the
    /// *ratio* between tiers (≈ 30× between `EdgeGateway` and `LowEnd`).
    pub fn profile(&self) -> DeviceProfile {
        match self {
            DeviceClass::EdgeGateway => DeviceProfile::new(3000.0, 100.0, 200.0, 5.0),
            DeviceClass::HighEnd => DeviceProfile::new(1200.0, 30.0, 80.0, 20.0),
            DeviceClass::MidRange => DeviceProfile::new(400.0, 10.0, 30.0, 40.0),
            DeviceClass::LowEnd => DeviceProfile::new(100.0, 2.0, 8.0, 80.0),
        }
    }
}

/// A fleet of device profiles, one per client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePopulation {
    profiles: Vec<DeviceProfile>,
}

impl DevicePopulation {
    /// Wraps an explicit list of profiles.
    pub fn new(profiles: Vec<DeviceProfile>) -> Self {
        assert!(
            !profiles.is_empty(),
            "a population needs at least one device"
        );
        DevicePopulation { profiles }
    }

    /// Every client gets the same profile (the homogeneous control case).
    pub fn homogeneous(num_clients: usize, profile: DeviceProfile) -> Self {
        assert!(num_clients > 0);
        DevicePopulation {
            profiles: vec![profile; num_clients],
        }
    }

    /// Builds a fleet from `(class, fraction)` tiers; fractions are
    /// normalised, clients are assigned tier-by-tier and shuffled.
    pub fn tiered(num_clients: usize, tiers: &[(DeviceClass, f64)], seed: u64) -> Self {
        assert!(num_clients > 0);
        assert!(!tiers.is_empty(), "at least one tier is required");
        let total: f64 = tiers.iter().map(|(_, f)| f.max(0.0)).sum();
        assert!(total > 0.0, "tier fractions must sum to a positive value");
        let mut profiles = Vec::with_capacity(num_clients);
        for (class, fraction) in tiers {
            let count = ((fraction.max(0.0) / total) * num_clients as f64).round() as usize;
            for _ in 0..count {
                profiles.push(class.profile());
            }
        }
        // Rounding may leave the fleet short or long; pad with the last tier
        // and truncate to the exact size.
        while profiles.len() < num_clients {
            profiles.push(tiers.last().unwrap().0.profile());
        }
        profiles.truncate(num_clients);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Fisher–Yates shuffle so tier membership is not correlated with
        // client id (client ids are also data-partition indices).
        for i in (1..profiles.len()).rev() {
            let j = rng.gen_range(0..=i);
            profiles.swap(i, j);
        }
        DevicePopulation { profiles }
    }

    /// Builds a fleet whose compute throughput is log-normally distributed
    /// around `median_samples_per_sec` with multiplicative spread
    /// `sigma` (a value of 1.0 gives roughly a 3–5× interquartile ratio);
    /// bandwidth scales with the square root of the same draw.
    pub fn lognormal(
        num_clients: usize,
        median_samples_per_sec: f64,
        sigma: f64,
        seed: u64,
    ) -> Self {
        assert!(num_clients > 0);
        assert!(median_samples_per_sec > 0.0 && sigma >= 0.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let profiles = (0..num_clients)
            .map(|_| {
                // Box–Muller standard normal.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let factor = (sigma * z).exp();
                DeviceProfile::new(
                    median_samples_per_sec * factor,
                    10.0 * factor.sqrt(),
                    30.0 * factor.sqrt(),
                    30.0,
                )
            })
            .collect();
        DevicePopulation { profiles }
    }

    /// Number of devices in the fleet.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the fleet is empty (never true for constructed populations).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile of client `i` (wraps around if `i ≥ len`, so a small
    /// fleet description can serve a larger client population).
    pub fn profile(&self, client: usize) -> &DeviceProfile {
        &self.profiles[client % self.profiles.len()]
    }

    /// Iterates over all profiles.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceProfile> {
        self.profiles.iter()
    }

    /// Per-client virtual seconds needed to run one local epoch of
    /// `samples_per_epoch` samples, for a population of `num_clients`
    /// (profiles wrap around, as in [`DevicePopulation::profile`]).
    ///
    /// This is the bridge from device modelling to the engine's
    /// event-driven schedulers: the returned vector plugs directly into
    /// `SemiAsyncConfig::seconds_per_epoch` / `AsyncConfig::seconds_per_epoch`,
    /// so bench scenarios can drive the straggler schedules with realistic
    /// fleet heterogeneity instead of hand-picked tier constants.
    pub fn seconds_per_epoch(&self, num_clients: usize, samples_per_epoch: usize) -> Vec<f64> {
        (0..num_clients)
            .map(|i| self.profile(i).compute_seconds(samples_per_epoch))
            .collect()
    }

    /// `(min, median, max)` compute throughput across the fleet — a quick
    /// summary of how heterogeneous the fleet is.
    pub fn compute_spread(&self) -> (f64, f64, f64) {
        let mut speeds: Vec<f64> = self
            .profiles
            .iter()
            .map(|p| p.compute_samples_per_sec)
            .collect();
        speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (
            speeds[0],
            speeds[speeds.len() / 2],
            speeds[speeds.len() - 1],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_time_accounting_is_dimensionally_consistent() {
        let p = DeviceProfile::new(100.0, 8.0, 16.0, 50.0);
        assert!((p.compute_seconds(200) - 2.0).abs() < 1e-12);
        // 1 MB at 8 Mbit/s = 1 s, plus 50 ms latency.
        assert!((p.upload_seconds(1_000_000) - 1.05).abs() < 1e-9);
        // Same payload downloads twice as fast.
        assert!((p.download_seconds(1_000_000) - 0.55).abs() < 1e-9);
        // Zero-byte transfers still pay the latency.
        assert!((p.upload_seconds(0) - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_throughput_is_rejected() {
        DeviceProfile::new(0.0, 1.0, 1.0, 0.0);
    }

    #[test]
    fn device_classes_are_ordered_by_speed() {
        let speeds: Vec<f64> = DeviceClass::all()
            .iter()
            .map(|c| c.profile().compute_samples_per_sec)
            .collect();
        for pair in speeds.windows(2) {
            assert!(
                pair[0] > pair[1],
                "classes must be listed fastest first: {speeds:?}"
            );
        }
        // The fleet spans more than an order of magnitude — the regime where
        // stragglers dominate synchronous rounds.
        assert!(speeds[0] / speeds[speeds.len() - 1] >= 10.0);
    }

    #[test]
    fn tiered_population_has_requested_size_and_mixture() {
        let pop = DevicePopulation::tiered(
            100,
            &[
                (DeviceClass::HighEnd, 0.2),
                (DeviceClass::MidRange, 0.5),
                (DeviceClass::LowEnd, 0.3),
            ],
            7,
        );
        assert_eq!(pop.len(), 100);
        let high = pop
            .iter()
            .filter(|p| {
                p.compute_samples_per_sec == DeviceClass::HighEnd.profile().compute_samples_per_sec
            })
            .count();
        assert!(
            (15..=25).contains(&high),
            "expected ≈20 high-end devices, got {high}"
        );
        let (min, _, max) = pop.compute_spread();
        assert!(max > min);
    }

    #[test]
    fn tiered_population_is_deterministic_in_seed() {
        let tiers = [(DeviceClass::HighEnd, 0.5), (DeviceClass::LowEnd, 0.5)];
        let a = DevicePopulation::tiered(20, &tiers, 3);
        let b = DevicePopulation::tiered(20, &tiers, 3);
        let c = DevicePopulation::tiered(20, &tiers, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn lognormal_population_spreads_around_the_median() {
        let pop = DevicePopulation::lognormal(500, 400.0, 1.0, 11);
        assert_eq!(pop.len(), 500);
        let (min, median, max) = pop.compute_spread();
        assert!(min < 400.0 && max > 400.0);
        assert!(
            (median / 400.0) > 0.5 && (median / 400.0) < 2.0,
            "median {median}"
        );
        // σ = 1 must produce a genuinely heterogeneous fleet.
        assert!(max / min > 10.0);
    }

    #[test]
    fn homogeneous_population_has_zero_spread() {
        let pop = DevicePopulation::homogeneous(10, DeviceClass::MidRange.profile());
        let (min, median, max) = pop.compute_spread();
        assert_eq!(min, max);
        assert_eq!(min, median);
    }

    #[test]
    fn profile_lookup_wraps_around() {
        let pop = DevicePopulation::new(vec![
            DeviceClass::HighEnd.profile(),
            DeviceClass::LowEnd.profile(),
        ]);
        assert_eq!(pop.profile(0), pop.profile(2));
        assert_eq!(pop.profile(1), pop.profile(3));
        assert!(!pop.is_empty());
    }

    #[test]
    fn seconds_per_epoch_bridges_to_scheduler_configs() {
        let pop = DevicePopulation::new(vec![
            DeviceClass::HighEnd.profile(), // 1200 samples/s
            DeviceClass::LowEnd.profile(),  // 100 samples/s
        ]);
        let secs = pop.seconds_per_epoch(4, 600);
        assert_eq!(secs.len(), 4);
        assert!((secs[0] - 0.5).abs() < 1e-12);
        assert!((secs[1] - 6.0).abs() < 1e-12);
        // Profiles wrap around for populations larger than the fleet spec.
        assert_eq!(secs[0], secs[2]);
        assert_eq!(secs[1], secs[3]);
    }

    #[test]
    fn population_serializes_round_trip() {
        let pop = DevicePopulation::tiered(5, &[(DeviceClass::HighEnd, 1.0)], 0);
        let json = serde_json::to_string(&pop).unwrap();
        let back: DevicePopulation = serde_json::from_str(&json).unwrap();
        assert_eq!(pop, back);
    }
}
