//! Client availability over time and mid-round dropout.
//!
//! The paper lists "low device participation rate and unreliable
//! connections" among the defining features of FL and stresses that
//! FedADMM's analysis only needs every client to participate *infinitely
//! often* (Remark 2) — there is no bounded-delay assumption. This module
//! provides the availability processes used to exercise that claim:
//!
//! * [`AvailabilityModel`] decides which clients are reachable at the start
//!   of a round (always-on, independent Bernoulli, or a two-state Markov
//!   chain that produces bursty offline periods);
//! * [`DropoutInjector`] models clients that accept a round but fail before
//!   reporting back (battery death, connection loss), which is how the
//!   failure-injection tests remove updates after local work has started.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which clients are reachable at the start of each round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AvailabilityModel {
    /// Every client is always reachable.
    AlwaysOn,
    /// Each client is independently reachable with probability `p` each
    /// round (memoryless availability).
    Bernoulli {
        /// Per-round availability probability.
        p: f64,
    },
    /// A two-state Markov chain per client: an *online* client goes offline
    /// with probability `p_fail`, an *offline* client recovers with
    /// probability `p_recover`. Produces bursty, correlated unavailability —
    /// the realistic "device lost connectivity for a while" pattern.
    Markov {
        /// Probability an online client goes offline at the next round.
        p_fail: f64,
        /// Probability an offline client comes back online.
        p_recover: f64,
    },
}

impl AvailabilityModel {
    fn validate(&self) {
        match *self {
            AvailabilityModel::AlwaysOn => {}
            AvailabilityModel::Bernoulli { p } => {
                assert!(
                    (0.0..=1.0).contains(&p),
                    "availability probability must lie in [0, 1]"
                );
                assert!(p > 0.0, "p = 0 would starve every client forever");
            }
            AvailabilityModel::Markov { p_fail, p_recover } => {
                assert!((0.0..=1.0).contains(&p_fail), "p_fail must lie in [0, 1]");
                assert!(
                    (0.0..=1.0).contains(&p_recover),
                    "p_recover must lie in [0, 1]"
                );
                assert!(
                    p_recover > 0.0,
                    "p_recover = 0 would let clients go offline forever, violating the \
                     infinitely-often participation requirement"
                );
            }
        }
    }

    /// The long-run fraction of time a client is available under this model.
    pub fn steady_state_availability(&self) -> f64 {
        match *self {
            AvailabilityModel::AlwaysOn => 1.0,
            AvailabilityModel::Bernoulli { p } => p,
            AvailabilityModel::Markov { p_fail, p_recover } => {
                if p_fail + p_recover == 0.0 {
                    1.0
                } else {
                    p_recover / (p_fail + p_recover)
                }
            }
        }
    }
}

/// Tracks the availability state of a fleet across rounds.
#[derive(Debug, Clone)]
pub struct AvailabilityState {
    model: AvailabilityModel,
    online: Vec<bool>,
}

impl AvailabilityState {
    /// Creates the tracker with every client initially online.
    pub fn new(model: AvailabilityModel, num_clients: usize) -> Self {
        model.validate();
        assert!(num_clients > 0, "need at least one client");
        AvailabilityState {
            model,
            online: vec![true; num_clients],
        }
    }

    /// Number of clients tracked.
    pub fn num_clients(&self) -> usize {
        self.online.len()
    }

    /// Advances one round and returns the ids of the clients available this
    /// round.
    pub fn step(&mut self, rng: &mut impl Rng) -> Vec<usize> {
        match self.model {
            AvailabilityModel::AlwaysOn => (0..self.online.len()).collect(),
            AvailabilityModel::Bernoulli { p } => {
                (0..self.online.len()).filter(|_| rng.gen_bool(p)).collect()
            }
            AvailabilityModel::Markov { p_fail, p_recover } => {
                for state in self.online.iter_mut() {
                    *state = if *state {
                        !rng.gen_bool(p_fail)
                    } else {
                        rng.gen_bool(p_recover)
                    };
                }
                self.online
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &on)| on.then_some(i))
                    .collect()
            }
        }
    }

    /// Whether client `i` was available after the most recent [`Self::step`].
    pub fn is_online(&self, client: usize) -> bool {
        matches!(self.model, AvailabilityModel::AlwaysOn) || self.online[client]
    }

    /// Intersects an availability draw with a proposed selection: only
    /// clients that are both selected and available take part in the round.
    pub fn filter_selection(selected: &[usize], available: &[usize]) -> Vec<usize> {
        let set: std::collections::HashSet<usize> = available.iter().copied().collect();
        selected
            .iter()
            .copied()
            .filter(|c| set.contains(c))
            .collect()
    }
}

/// Mid-round failures: a client that started the round drops out before its
/// update reaches the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropoutInjector {
    /// Probability that any individual participating client fails to report
    /// back this round.
    pub dropout_prob: f64,
}

impl DropoutInjector {
    /// Creates the injector.
    pub fn new(dropout_prob: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&dropout_prob),
            "the dropout probability must lie in [0, 1)"
        );
        DropoutInjector { dropout_prob }
    }

    /// Partitions the participating clients into (survivors, dropped). At
    /// least one client always survives so the round is never empty — the
    /// same never-empty guarantee the selectors provide.
    pub fn split(&self, participants: &[usize], rng: &mut impl Rng) -> (Vec<usize>, Vec<usize>) {
        if participants.is_empty() {
            return (vec![], vec![]);
        }
        let mut survivors = Vec::new();
        let mut dropped = Vec::new();
        for &c in participants {
            if rng.gen_bool(self.dropout_prob) {
                dropped.push(c);
            } else {
                survivors.push(c);
            }
        }
        if survivors.is_empty() {
            let rescued = dropped.remove(0);
            survivors.push(rescued);
        }
        (survivors, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn always_on_returns_everyone_every_round() {
        let mut state = AvailabilityState::new(AvailabilityModel::AlwaysOn, 5);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(state.step(&mut rng), vec![0, 1, 2, 3, 4]);
        }
        assert!(state.is_online(3));
        assert_eq!(AvailabilityModel::AlwaysOn.steady_state_availability(), 1.0);
    }

    #[test]
    fn bernoulli_availability_matches_probability_on_average() {
        let mut state = AvailabilityState::new(AvailabilityModel::Bernoulli { p: 0.3 }, 100);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut total = 0usize;
        let rounds = 200;
        for _ in 0..rounds {
            total += state.step(&mut rng).len();
        }
        let rate = total as f64 / (rounds * 100) as f64;
        assert!((rate - 0.3).abs() < 0.03, "empirical availability {rate}");
    }

    #[test]
    fn markov_availability_is_bursty_but_recovers() {
        let model = AvailabilityModel::Markov {
            p_fail: 0.1,
            p_recover: 0.3,
        };
        assert!((model.steady_state_availability() - 0.75).abs() < 1e-12);
        let mut state = AvailabilityState::new(model, 50);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ever_available: HashSet<usize> = HashSet::new();
        let mut total = 0usize;
        let rounds = 400;
        for _ in 0..rounds {
            let online = state.step(&mut rng);
            total += online.len();
            ever_available.extend(online);
        }
        // Every client comes back eventually (infinitely-often participation).
        assert_eq!(ever_available.len(), 50);
        let rate = total as f64 / (rounds * 50) as f64;
        assert!((rate - 0.75).abs() < 0.05, "empirical availability {rate}");
    }

    #[test]
    fn filter_selection_intersects() {
        let filtered = AvailabilityState::filter_selection(&[1, 3, 5, 7], &[0, 3, 7, 9]);
        assert_eq!(filtered, vec![3, 7]);
        assert!(AvailabilityState::filter_selection(&[1], &[]).is_empty());
    }

    #[test]
    fn dropout_injector_splits_and_never_empties_the_round() {
        let injector = DropoutInjector::new(0.9);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let (survivors, dropped) = injector.split(&[0, 1, 2, 3], &mut rng);
            assert!(!survivors.is_empty());
            assert_eq!(survivors.len() + dropped.len(), 4);
            let all: HashSet<usize> = survivors.iter().chain(dropped.iter()).copied().collect();
            assert_eq!(all.len(), 4);
        }
    }

    #[test]
    fn zero_dropout_keeps_everyone() {
        let injector = DropoutInjector::new(0.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let (survivors, dropped) = injector.split(&[2, 4, 6], &mut rng);
        assert_eq!(survivors, vec![2, 4, 6]);
        assert!(dropped.is_empty());
        let (s, d) = injector.split(&[], &mut rng);
        assert!(s.is_empty() && d.is_empty());
    }

    #[test]
    #[should_panic(expected = "starve")]
    fn zero_bernoulli_availability_is_rejected() {
        AvailabilityState::new(AvailabilityModel::Bernoulli { p: 0.0 }, 3);
    }

    #[test]
    #[should_panic(expected = "infinitely-often")]
    fn markov_without_recovery_is_rejected() {
        AvailabilityState::new(
            AvailabilityModel::Markov {
                p_fail: 0.5,
                p_recover: 0.0,
            },
            3,
        );
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn dropout_probability_one_is_rejected() {
        DropoutInjector::new(1.0);
    }
}
