//! # fedadmm-system
//!
//! Device, network and wall-clock models for simulating *system
//! heterogeneity* — the second kind of heterogeneity the FedADMM paper
//! addresses ("heterogeneity in … computational resources", the "straggler
//! problem in a heterogeneous network", Section I).
//!
//! The paper's experiments model system heterogeneity purely through the
//! local epoch count (each FedADMM/FedProx client draws `E_i` uniformly from
//! `{1..E}`), because its evaluation metric is *communication rounds*. This
//! crate supplies the substrate needed to go one step further and ask the
//! wall-clock question the paper's motivation raises: when devices differ in
//! compute speed and network bandwidth, how long does a synchronous round
//! actually take, and how much of FedADMM's tolerance for variable work
//! translates into time saved waiting for stragglers?
//!
//! * [`device`] — per-client device profiles (compute throughput, uplink /
//!   downlink bandwidth) and population generators (tiered fleets,
//!   log-normal speed spreads);
//! * [`network`] — message-size and transfer-time accounting (the paper's
//!   upload costs `d` vs `2d` floats, converted to bytes and seconds);
//! * [`timing`] — synchronous-round timing: per-client download + compute +
//!   upload, the round time as the maximum over selected clients, deadlines
//!   that drop stragglers, and cumulative wall-clock traces;
//! * [`availability`] — client availability over rounds (always-on,
//!   Bernoulli, two-state Markov) and mid-round dropout injection.
//!
//! The crate is deliberately independent of the training stack: it consumes
//! plain numbers (samples processed, floats uploaded) so that it can replay
//! the output of `fedadmm-core` simulations or purely synthetic workloads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod availability;
pub mod device;
pub mod network;
pub mod timing;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::availability::{AvailabilityModel, AvailabilityState, DropoutInjector};
    pub use crate::device::{DeviceClass, DevicePopulation, DeviceProfile};
    pub use crate::network::NetworkModel;
    pub use crate::timing::{ClientRoundWork, RoundTiming, StragglerPolicy, WallClockTrace};
}
