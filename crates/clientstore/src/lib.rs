//! # fedadmm-clientstore
//!
//! Client-state storage backends for million-client federated rounds.
//!
//! FedADMM keeps a dense dual variable `y_i` plus a local model `w_i` per
//! client (Algorithm 1: "Store wi and yi"), so with a dense layout client
//! *count* — not compute — is the memory wall. This crate makes the layout
//! pluggable behind [`ClientStateStore`]:
//!
//! * [`InMemoryStore`] — the legacy dense `Vec<ClientState>`, byte-identical
//!   to the engine before the abstraction existed;
//! * [`ShardedStore`] — `S` contiguous shards materialized lazily on
//!   selection; the never-selected tail is stored implicitly (local model =
//!   initial θ, dual = control = 0) at zero bytes per client;
//! * [`SpillStore`] — the sharded layout plus an LRU spill-to-disk budget:
//!   resident state stays under `budget_bytes`, with evicted shards written
//!   through a bit-exact binary codec and reloaded transparently.
//!
//! The crate also owns the shared value types ([`ParamVector`],
//! [`ClientState`] — re-exported by `fedadmm-core` at their historical
//! paths), the shard geometry ([`ShardMap`], whose [`ShardMap::group`]
//! turns a sorted cohort into shard-local index lists in O(selected)), and
//! the opt-in [hierarchical tree aggregation](hierarchical_weighted_sum)
//! used by the engine's `AggregationMode::Hierarchical`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agg;
pub(crate) mod codec;
pub mod param;
pub mod shard;
pub mod sharded;
pub mod spill;
pub mod state;
pub mod store;

pub use agg::{hierarchical_dequant_sum, hierarchical_weighted_sum, ShardFoldStat};
pub use param::ParamVector;
pub use shard::{ClientIndices, ShardMap};
pub use sharded::ShardedStore;
pub use spill::SpillStore;
pub use state::ClientState;
pub use store::{ClientStateStore, InMemoryStore, StoreConfig, StoreStats};
