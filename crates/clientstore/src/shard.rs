//! Shard geometry: how `m` client ids map onto `S` contiguous shards, and
//! how a selected cohort is regrouped into shard-local index lists.
//!
//! Shards are contiguous id ranges (`shard = id / ⌈m/S⌉`), so a *sorted*
//! cohort decomposes into per-shard sub-slices with one linear scan —
//! [`ShardMap::group`] is O(selected), never O(m) or O(S). That is the
//! property that keeps shard materialization proportional to the number of
//! selected clients per round.

use fedadmm_tensor::{TensorError, TensorResult};
use std::ops::Range;

/// The mapping of client ids `0..m` onto `S` contiguous shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    num_clients: usize,
    num_shards: usize,
    shard_size: usize,
}

impl ShardMap {
    /// Creates a map of `num_clients` ids onto at most `num_shards`
    /// contiguous shards (the shard count is clamped to `1..=m` and may be
    /// reduced so that every shard is non-empty).
    pub fn new(num_clients: usize, num_shards: usize) -> Self {
        let m = num_clients.max(1);
        let shards = num_shards.clamp(1, m);
        let shard_size = m.div_ceil(shards);
        ShardMap {
            num_clients,
            num_shards: m.div_ceil(shard_size),
            shard_size,
        }
    }

    /// The number of client ids covered by the map.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// The number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The number of ids per shard (the last shard may be smaller).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// The shard holding client `id`.
    pub fn shard_of(&self, id: usize) -> usize {
        id / self.shard_size
    }

    /// The id range of shard `s`.
    pub fn shard_range(&self, s: usize) -> Range<usize> {
        let start = s * self.shard_size;
        start..((start + self.shard_size).min(self.num_clients))
    }

    /// Splits a **sorted** cohort of client ids into shard-local runs: each
    /// `(shard, range)` pair identifies the sub-slice `cohort[range]` whose
    /// ids live in `shard`. One linear scan over the cohort — O(selected).
    ///
    /// Returns an error if the cohort is not strictly ascending or contains
    /// an id outside `0..num_clients`.
    pub fn group(&self, cohort: &[usize]) -> TensorResult<Vec<(usize, Range<usize>)>> {
        let mut runs: Vec<(usize, Range<usize>)> = Vec::new();
        for (k, &id) in cohort.iter().enumerate() {
            if id >= self.num_clients {
                return Err(TensorError::InvalidArgument(format!(
                    "cohort contains client {id} but the store holds {} clients",
                    self.num_clients
                )));
            }
            if k > 0 && cohort[k - 1] >= id {
                return Err(TensorError::InvalidArgument(format!(
                    "cohort must be strictly ascending (saw {} then {id})",
                    cohort[k - 1]
                )));
            }
            let s = self.shard_of(id);
            match runs.last_mut() {
                Some((shard, range)) if *shard == s => range.end = k + 1,
                _ => runs.push((s, k..k + 1)),
            }
        }
        Ok(runs)
    }
}

/// Per-client sample indices in CSR form: one flat array plus offsets, so a
/// million clients cost two allocations instead of a million `Vec`s. Sharded
/// stores rebuild a client's owned index list from this on materialization.
#[derive(Debug, Clone)]
pub struct ClientIndices {
    offsets: Vec<usize>,
    data: Vec<usize>,
}

impl ClientIndices {
    /// Flattens per-client index lists into CSR form.
    pub fn from_lists(lists: Vec<Vec<usize>>) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0);
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut data = Vec::with_capacity(total);
        for list in lists {
            data.extend_from_slice(&list);
            offsets.push(data.len());
        }
        ClientIndices { offsets, data }
    }

    /// Number of clients covered.
    pub fn num_clients(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sample indices of client `id`.
    pub fn get(&self, id: usize) -> &[usize] {
        &self.data[self.offsets[id]..self.offsets[id + 1]]
    }

    /// Heap bytes held by the CSR arrays themselves.
    pub fn heap_bytes(&self) -> u64 {
        ((self.offsets.len() + self.data.len()) * std::mem::size_of::<usize>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_covers_all_ids_contiguously() {
        let map = ShardMap::new(10, 3);
        assert_eq!(map.shard_size(), 4);
        assert_eq!(map.num_shards(), 3);
        let mut seen = 0;
        for s in 0..map.num_shards() {
            let range = map.shard_range(s);
            for id in range.clone() {
                assert_eq!(map.shard_of(id), s);
            }
            seen += range.len();
        }
        assert_eq!(seen, 10);
    }

    #[test]
    fn shard_map_clamps_degenerate_requests() {
        assert_eq!(ShardMap::new(5, 0).num_shards(), 1);
        assert_eq!(ShardMap::new(5, 99).num_shards(), 5);
        assert_eq!(ShardMap::new(0, 4).num_shards(), 1);
    }

    #[test]
    fn group_splits_a_sorted_cohort_into_shard_runs() {
        let map = ShardMap::new(12, 4); // shards of 3
        let cohort = [0, 2, 3, 7, 9, 10, 11];
        let runs = map.group(&cohort).unwrap();
        assert_eq!(runs, vec![(0, 0..2), (1, 2..3), (2, 3..4), (3, 4..7)]);
        // Each run's slice really is shard-local.
        for (shard, range) in runs {
            for &id in &cohort[range] {
                assert_eq!(map.shard_of(id), shard);
            }
        }
    }

    #[test]
    fn group_rejects_unsorted_and_out_of_range_cohorts() {
        let map = ShardMap::new(8, 2);
        assert!(map.group(&[3, 2]).is_err());
        assert!(map.group(&[1, 1]).is_err());
        assert!(map.group(&[7, 8]).is_err());
        assert!(map.group(&[]).unwrap().is_empty());
    }

    #[test]
    fn csr_round_trips_index_lists() {
        let idx = ClientIndices::from_lists(vec![vec![5, 1], vec![], vec![9]]);
        assert_eq!(idx.num_clients(), 3);
        assert_eq!(idx.get(0), &[5, 1]);
        assert_eq!(idx.get(1), &[] as &[usize]);
        assert_eq!(idx.get(2), &[9]);
        assert!(idx.heap_bytes() > 0);
    }
}
