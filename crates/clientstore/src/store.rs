//! The [`ClientStateStore`] abstraction and its dense in-memory backend.
//!
//! The engine used to own a dense `Vec<ClientState>` — `m` clients × three
//! ℝ^d vectors, which makes client *count* (not compute) the memory wall.
//! The store trait inverts the relationship: the engine asks to *borrow*
//! the states of the selected cohort for the duration of one dispatch, and
//! the backend decides how the other `m − |S_t|` clients are represented.
//!
//! | Backend | Representation | Memory |
//! |---------|----------------|--------|
//! | [`InMemoryStore`] | dense `Vec<ClientState>` (the legacy layout, byte-identical) | O(m·d) |
//! | [`ShardedStore`](crate::ShardedStore) | lazy per-shard slots; never-selected clients stay implicit | O(touched·d) |
//! | [`SpillStore`](crate::SpillStore) | LRU-resident shards, spill-to-disk beyond a byte budget | O(budget) |

use crate::param::ParamVector;
use crate::shard::ShardMap;
use crate::state::ClientState;
use fedadmm_tensor::{TensorError, TensorResult};
use std::path::PathBuf;

/// Rough heap footprint of one materialized [`ClientState`]: three dense
/// ℝ^d vectors, the owned index list, and struct overhead.
pub(crate) fn state_bytes(d: usize, num_indices: usize) -> u64 {
    (3 * d * std::mem::size_of::<f32>()
        + num_indices * std::mem::size_of::<usize>()
        + std::mem::size_of::<ClientState>()) as u64
}

/// Cumulative lifecycle counters a store exposes for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Client states materialized from their implicit initial form.
    pub materializations: u64,
    /// Shards written to disk by an eviction.
    pub spill_writes: u64,
    /// Shards loaded back from disk.
    pub spill_loads: u64,
    /// Shards evicted from residency (spilled or dropped as pristine).
    pub evictions: u64,
}

/// Storage backend for per-client persistent state.
///
/// The contract every backend upholds:
///
/// * `with_states(ids, f)` lends `f` one `&mut ClientState` per requested
///   id, **aligned with `ids`** (which must be strictly ascending and within
///   `0..num_clients`). A client that has never been touched is
///   materialized on demand in its initial form — local model at the
///   initial θ, zero dual/control — so borrowing is indistinguishable from
///   the dense layout.
/// * Mutations persist across calls: the engine's dual variables and
///   `times_selected` counters survive eviction and spill round trips
///   bit-exactly.
/// * `for_each_state` visits every client in id order (materialized or
///   not), for diagnostics and tests.
pub trait ClientStateStore: Send {
    /// Short backend label (`"in-memory"`, `"sharded"`, `"spill"`).
    fn backend(&self) -> &'static str;

    /// Total number of clients the store covers.
    fn num_clients(&self) -> usize;

    /// The shard geometry (a single shard for the dense backend).
    fn shard_map(&self) -> &ShardMap;

    /// The dense client slice, if this backend keeps one (the in-memory
    /// backend only). Diagnostics that need all `m` states at once use this.
    fn dense(&self) -> Option<&[ClientState]>;

    /// Lends the states of the strictly-ascending cohort `ids` to `f`,
    /// materializing missing states on demand. The slice passed to `f` is
    /// aligned with `ids`.
    fn with_states(
        &mut self,
        ids: &[usize],
        f: &mut dyn FnMut(&mut [&mut ClientState]) -> TensorResult<()>,
    ) -> TensorResult<()>;

    /// Streams every client's state (id order 0..m) through `visit`,
    /// synthesizing the implicit initial state for never-touched clients
    /// without keeping it resident.
    fn for_each_state(
        &mut self,
        visit: &mut dyn FnMut(&ClientState) -> TensorResult<()>,
    ) -> TensorResult<()>;

    /// Bytes of client state currently resident in memory.
    fn resident_bytes(&self) -> u64;

    /// Lifecycle counters since construction.
    fn stats(&self) -> StoreStats;
}

/// Which backend an engine should construct, plus its tuning knobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StoreConfig {
    /// Dense `Vec<ClientState>` — the legacy layout, byte-identical to the
    /// pre-store engine.
    #[default]
    InMemory,
    /// Lazily materialized shards; never-selected clients stay implicit.
    Sharded {
        /// Number of contiguous shards `S` (clamped to `1..=m`).
        num_shards: usize,
    },
    /// Sharded with LRU spill-to-disk once resident state exceeds a budget.
    Spill {
        /// Number of contiguous shards `S` (clamped to `1..=m`).
        num_shards: usize,
        /// Soft ceiling on resident client-state bytes; enforced between
        /// borrows (a single cohort may transiently overshoot).
        budget_bytes: u64,
        /// Spill directory; `None` creates (and later removes) a unique
        /// directory under the system temp dir.
        dir: Option<PathBuf>,
    },
}

impl StoreConfig {
    /// Builds the configured backend from per-client sample-index lists and
    /// the initial global model.
    pub fn build(
        &self,
        indices: Vec<Vec<usize>>,
        initial: &ParamVector,
    ) -> TensorResult<Box<dyn ClientStateStore>> {
        Ok(match self {
            StoreConfig::InMemory => Box::new(InMemoryStore::new(indices, initial)),
            StoreConfig::Sharded { num_shards } => {
                Box::new(crate::ShardedStore::new(indices, initial, *num_shards))
            }
            StoreConfig::Spill {
                num_shards,
                budget_bytes,
                dir,
            } => Box::new(crate::SpillStore::new(
                indices,
                initial,
                *num_shards,
                *budget_bytes,
                dir.clone(),
            )?),
        })
    }
}

pub(crate) fn validate_cohort(ids: &[usize], num_clients: usize) -> TensorResult<()> {
    for (k, &id) in ids.iter().enumerate() {
        if id >= num_clients {
            return Err(TensorError::InvalidArgument(format!(
                "cohort contains client {id} but the store holds {num_clients} clients"
            )));
        }
        if k > 0 && ids[k - 1] >= id {
            return Err(TensorError::InvalidArgument(format!(
                "cohort must be strictly ascending (saw {} then {id})",
                ids[k - 1]
            )));
        }
    }
    Ok(())
}

/// The dense backend: every client state lives in one `Vec`, exactly as the
/// engine stored it before the store abstraction existed. Construction,
/// iteration order and float-op order are byte-identical to the legacy
/// layout, which `tests/engine_parity.rs` pins against a golden digest.
#[derive(Debug, Clone)]
pub struct InMemoryStore {
    states: Vec<ClientState>,
    map: ShardMap,
    resident_bytes: u64,
}

impl InMemoryStore {
    /// Materializes every client eagerly, mirroring the legacy engine:
    /// client `i` owns `indices[i]`, starts at `initial` with zero
    /// dual/control.
    pub fn new(indices: Vec<Vec<usize>>, initial: &ParamVector) -> Self {
        let d = initial.len();
        let num_clients = indices.len();
        let mut resident_bytes = 0;
        let states: Vec<ClientState> = indices
            .into_iter()
            .enumerate()
            .map(|(i, idx)| {
                resident_bytes += state_bytes(d, idx.len());
                ClientState::new(i, idx, initial)
            })
            .collect();
        // One shard per ~√m keeps hierarchical aggregation meaningful on
        // the dense backend too.
        let shards = (num_clients as f64).sqrt().ceil() as usize;
        InMemoryStore {
            states,
            map: ShardMap::new(num_clients, shards.max(1)),
            resident_bytes,
        }
    }

    /// Wraps pre-built states (tests and adapters).
    pub fn from_states(states: Vec<ClientState>, initial_dim: usize) -> Self {
        let resident_bytes = states
            .iter()
            .map(|s| state_bytes(initial_dim, s.indices.len()))
            .sum();
        let num_clients = states.len();
        let shards = (num_clients as f64).sqrt().ceil() as usize;
        InMemoryStore {
            states,
            map: ShardMap::new(num_clients, shards.max(1)),
            resident_bytes,
        }
    }
}

impl ClientStateStore for InMemoryStore {
    fn backend(&self) -> &'static str {
        "in-memory"
    }

    fn num_clients(&self) -> usize {
        self.states.len()
    }

    fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    fn dense(&self) -> Option<&[ClientState]> {
        Some(&self.states)
    }

    fn with_states(
        &mut self,
        ids: &[usize],
        f: &mut dyn FnMut(&mut [&mut ClientState]) -> TensorResult<()>,
    ) -> TensorResult<()> {
        validate_cohort(ids, self.states.len())?;
        // Strictly ascending ids ⇒ one forward split walk, O(selected).
        let mut refs: Vec<&mut ClientState> = Vec::with_capacity(ids.len());
        let mut tail: &mut [ClientState] = &mut self.states;
        let mut offset = 0usize;
        for &id in ids {
            let rest = tail.split_at_mut(id - offset).1;
            let (first, rest) = rest.split_first_mut().expect("id validated above");
            refs.push(first);
            tail = rest;
            offset = id + 1;
        }
        f(&mut refs)
    }

    fn for_each_state(
        &mut self,
        visit: &mut dyn FnMut(&ClientState) -> TensorResult<()>,
    ) -> TensorResult<()> {
        for state in &self.states {
            visit(state)?;
        }
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(m: usize, d: usize) -> InMemoryStore {
        let initial = ParamVector::from_vec((0..d).map(|i| i as f32).collect());
        InMemoryStore::new((0..m).map(|i| vec![i, i + 1]).collect(), &initial)
    }

    #[test]
    fn construction_matches_legacy_layout() {
        let s = store(5, 3);
        let dense = s.dense().unwrap();
        assert_eq!(dense.len(), 5);
        for (i, c) in dense.iter().enumerate() {
            assert_eq!(c.id, i);
            assert_eq!(c.indices, vec![i, i + 1]);
            assert_eq!(c.local_model.as_slice(), &[0.0, 1.0, 2.0]);
        }
        assert!(s.resident_bytes() > 0);
    }

    #[test]
    fn with_states_aligns_borrows_with_ids() {
        let mut s = store(6, 2);
        s.with_states(&[1, 3, 5], &mut |states| {
            assert_eq!(states.len(), 3);
            assert_eq!(states[0].id, 1);
            assert_eq!(states[1].id, 3);
            assert_eq!(states[2].id, 5);
            states[1].times_selected += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(s.dense().unwrap()[3].times_selected, 1);
    }

    #[test]
    fn with_states_rejects_bad_cohorts() {
        let mut s = store(4, 2);
        let noop = &mut |_: &mut [&mut ClientState]| Ok(());
        assert!(s.with_states(&[2, 1], noop).is_err());
        assert!(s.with_states(&[1, 1], noop).is_err());
        assert!(s.with_states(&[4], noop).is_err());
        assert!(s.with_states(&[], noop).is_ok());
    }

    #[test]
    fn for_each_visits_in_id_order() {
        let mut s = store(4, 2);
        let mut seen = Vec::new();
        s.for_each_state(&mut |c| {
            seen.push(c.id);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
