//! Per-client state.

use crate::param::ParamVector;
use serde::{Deserialize, Serialize};

/// The state a simulated client carries across rounds.
///
/// The paper's Algorithm 1 requires each FedADMM client to *store* its local
/// model `w_i` and dual variable `y_i` between the rounds in which it is
/// selected ("ClientUpdate(i, θ): // Store wi and yi"). SCAFFOLD similarly
/// stores a client control variate `c_i`. Primal-only methods (FedSGD,
/// FedAvg, FedProx) ignore these fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientState {
    /// Client identifier in `0..m`.
    pub id: usize,
    /// Indices into the shared training set owned by this client.
    pub indices: Vec<usize>,
    /// Local primal model `w_i` (initialised to the initial global model).
    pub local_model: ParamVector,
    /// Dual variable `y_i` (zero-initialised, per the paper).
    pub dual: ParamVector,
    /// SCAFFOLD client control variate `c_i` (zero-initialised, as
    /// recommended by the SCAFFOLD paper and stated in Section V-A).
    pub control: ParamVector,
    /// How many times this client has been selected so far.
    pub times_selected: usize,
}

impl ClientState {
    /// Creates the initial state of client `id` owning `indices`, with all
    /// vectors of dimension `d`. The local model starts at `initial_model`
    /// and the dual/control variates start at zero.
    pub fn new(id: usize, indices: Vec<usize>, initial_model: &ParamVector) -> Self {
        let d = initial_model.len();
        ClientState {
            id,
            indices,
            local_model: initial_model.clone(),
            dual: ParamVector::zeros(d),
            control: ParamVector::zeros(d),
            times_selected: 0,
        }
    }

    /// Number of local samples `n_i`.
    pub fn num_samples(&self) -> usize {
        self.indices.len()
    }

    /// The augmented model `u_i = w_i + y_i / ρ` of equation (4).
    pub fn augmented_model(&self, rho: f32) -> ParamVector {
        let mut u = self.local_model.clone();
        u.axpy(1.0 / rho, &self.dual);
        u
    }

    /// Whether this state is still the initial (never-trained) state for
    /// `initial_model`: local model at the initial θ, zero dual and control,
    /// never selected. Sharded stores drop such states back to their
    /// implicit representation instead of keeping them resident.
    pub fn is_pristine(&self, initial_model: &ParamVector) -> bool {
        self.times_selected == 0
            && self.local_model == *initial_model
            && self.dual.as_slice().iter().all(|&x| x == 0.0)
            && self.control.as_slice().iter().all(|&x| x == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_client_starts_at_global_model_with_zero_dual() {
        let theta = ParamVector::from_vec(vec![1.0, -2.0, 3.0]);
        let c = ClientState::new(4, vec![1, 2, 3, 5], &theta);
        assert_eq!(c.id, 4);
        assert_eq!(c.num_samples(), 4);
        assert_eq!(c.local_model, theta);
        assert_eq!(c.dual, ParamVector::zeros(3));
        assert_eq!(c.control, ParamVector::zeros(3));
        assert_eq!(c.times_selected, 0);
        assert!(c.is_pristine(&theta));
    }

    #[test]
    fn augmented_model_formula() {
        let theta = ParamVector::from_vec(vec![1.0, 2.0]);
        let mut c = ClientState::new(0, vec![], &theta);
        c.dual = ParamVector::from_vec(vec![0.5, -1.0]);
        let u = c.augmented_model(0.5);
        // u = w + y/ρ = [1, 2] + [0.5, -1]/0.5 = [2, 0]
        assert_eq!(u.as_slice(), &[2.0, 0.0]);
        assert!(!c.is_pristine(&theta));
    }

    #[test]
    fn augmented_model_with_zero_dual_is_local_model() {
        let theta = ParamVector::from_vec(vec![3.0, 4.0]);
        let c = ClientState::new(0, vec![0], &theta);
        assert_eq!(c.augmented_model(0.01), theta);
    }
}
