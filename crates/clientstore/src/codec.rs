//! Bit-exact binary codec for spilled shards.
//!
//! The serde-derived text formats round-trip floats through decimal, which
//! is not guaranteed bit-exact for every `f32`; the spill path therefore
//! writes raw little-endian IEEE-754 bit patterns. Sample-index lists are
//! *not* written — they are immutable and rebuilt from the store's CSR
//! index on load — so a spilled client costs `16 + 3·d·4` bytes.

use crate::shard::ClientIndices;
use crate::state::ClientState;
use fedadmm_tensor::{TensorError, TensorResult};

const MAGIC: u32 = 0x4653_5348; // "FSSH"
const VERSION: u32 = 1;

/// Encodes the materialized entries of one shard.
pub(crate) fn encode_shard(entries: &[Option<Box<ClientState>>], d: usize) -> Vec<u8> {
    let count = entries.iter().filter(|e| e.is_some()).count();
    let mut buf = Vec::with_capacity(24 + count * (16 + 3 * d * 4));
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(d as u64).to_le_bytes());
    buf.extend_from_slice(&(count as u64).to_le_bytes());
    for state in entries.iter().flatten() {
        buf.extend_from_slice(&(state.id as u64).to_le_bytes());
        buf.extend_from_slice(&(state.times_selected as u64).to_le_bytes());
        for vector in [&state.local_model, &state.dual, &state.control] {
            for &x in vector.as_slice() {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    buf
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> TensorResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end =
            end.ok_or_else(|| TensorError::InvalidArgument("truncated spill file".to_string()))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> TensorResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> TensorResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32s(&mut self, n: usize) -> TensorResult<Vec<f32>> {
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Decodes a shard written by [`encode_shard`] back into its slot vector
/// (length `shard_len`, ids in `shard_start..shard_start + shard_len`),
/// rebuilding each client's index list from the CSR `index`.
pub(crate) fn decode_shard(
    bytes: &[u8],
    shard_start: usize,
    shard_len: usize,
    d: usize,
    index: &ClientIndices,
) -> TensorResult<Vec<Option<Box<ClientState>>>> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.u32()? != MAGIC || cur.u32()? != VERSION {
        return Err(TensorError::InvalidArgument(
            "spill file has an unknown header".to_string(),
        ));
    }
    let file_d = cur.u64()? as usize;
    if file_d != d {
        return Err(TensorError::InvalidArgument(format!(
            "spill file holds dimension-{file_d} states but the store expects {d}"
        )));
    }
    let count = cur.u64()? as usize;
    let mut entries: Vec<Option<Box<ClientState>>> = Vec::with_capacity(shard_len);
    entries.resize_with(shard_len, || None);
    for _ in 0..count {
        let id = cur.u64()? as usize;
        let times_selected = cur.u64()? as usize;
        let slot = id
            .checked_sub(shard_start)
            .filter(|&k| k < shard_len)
            .ok_or_else(|| {
                TensorError::InvalidArgument(format!(
                    "spill file contains client {id} outside its shard"
                ))
            })?;
        let local_model = cur.f32s(d)?.into();
        let dual = cur.f32s(d)?.into();
        let control = cur.f32s(d)?.into();
        entries[slot] = Some(Box::new(ClientState {
            id,
            indices: index.get(id).to_vec(),
            local_model,
            dual,
            control,
            times_selected,
        }));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamVector;
    use proptest::prelude::*;

    fn shard_of_states(
        states: Vec<ClientState>,
        len: usize,
        start: usize,
    ) -> Vec<Option<Box<ClientState>>> {
        let mut entries: Vec<Option<Box<ClientState>>> = Vec::new();
        entries.resize_with(len, || None);
        for s in states {
            let k = s.id - start;
            entries[k] = Some(Box::new(s));
        }
        entries
    }

    #[test]
    fn empty_shard_round_trips() {
        let index = ClientIndices::from_lists(vec![vec![]; 4]);
        let bytes = encode_shard(&[None, None], 3);
        let back = decode_shard(&bytes, 2, 2, 3, &index).unwrap();
        assert!(back.iter().all(Option::is_none));
    }

    #[test]
    fn rejects_corrupt_headers_and_truncation() {
        let index = ClientIndices::from_lists(vec![vec![]; 2]);
        assert!(decode_shard(&[0u8; 10], 0, 2, 3, &index).is_err());
        let mut bytes = encode_shard(&[None, None], 3);
        bytes[0] ^= 0xff;
        assert!(decode_shard(&bytes, 0, 2, 3, &index).is_err());
        let good = encode_shard(&[None, None], 3);
        assert!(
            decode_shard(&good, 0, 2, 5, &index).is_err(),
            "dimension mismatch"
        );
    }

    proptest! {
        /// Every f32 bit pattern (including subnormals, -0.0, and extreme
        /// exponents) survives the spill round trip exactly.
        #[test]
        fn prop_round_trip_is_bit_exact(
            bits in proptest::collection::vec(any::<u32>(), 6),
            times in 0usize..1000,
        ) {
            // Skip NaNs: ParamVector equality is IEEE (NaN != NaN), so
            // compare bit patterns directly instead.
            let vals: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
            let d = 2;
            let index = ClientIndices::from_lists(vec![vec![7, 8], vec![1]]);
            let mut state = ClientState::new(1, index.get(1).to_vec(), &ParamVector::zeros(d));
            state.local_model = ParamVector::from_vec(vals[0..2].to_vec());
            state.dual = ParamVector::from_vec(vals[2..4].to_vec());
            state.control = ParamVector::from_vec(vals[4..6].to_vec());
            state.times_selected = times;
            let entries = shard_of_states(vec![state], 2, 0);
            let bytes = encode_shard(&entries, d);
            let back = decode_shard(&bytes, 0, 2, d, &index).unwrap();
            prop_assert!(back[0].is_none());
            let got = back[1].as_ref().unwrap();
            prop_assert_eq!(got.id, 1);
            prop_assert_eq!(got.times_selected, times);
            prop_assert_eq!(&got.indices, &vec![1usize]);
            let all_bits: Vec<u32> = got
                .local_model
                .as_slice()
                .iter()
                .chain(got.dual.as_slice())
                .chain(got.control.as_slice())
                .map(|x| x.to_bits())
                .collect();
            prop_assert_eq!(all_bits, bits);
        }
    }
}
