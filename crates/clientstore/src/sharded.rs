//! Lazily-materialized sharded client state.
//!
//! Client ids are split into `S` contiguous shards. A shard allocates
//! nothing until one of its clients is borrowed; a client allocates nothing
//! until it is borrowed. The inactive tail — clients never selected so far
//! — is therefore stored *implicitly*: its local model is "the initial θ"
//! and its dual/control variates are "zero", a delta/sparse representation
//! that costs 0 bytes per client instead of `3·d·4`. Under the paper's
//! partial-participation regime (`C·m` clients per round, arbitrary
//! participation is provably sound per arXiv:2203.15104) this makes
//! resident memory proportional to the number of clients *ever touched*,
//! not to `m`.
//!
//! Sample-index lists are kept in CSR form ([`ClientIndices`]) — two flat
//! arrays for the whole population — and an owned copy is handed to a
//! client only on materialization.

use crate::param::ParamVector;
use crate::shard::{ClientIndices, ShardMap};
use crate::state::ClientState;
use crate::store::{state_bytes, ClientStateStore, StoreStats};
use fedadmm_tensor::TensorResult;

/// A shard's materialized slots (`None` = client still implicit).
type Shard = Vec<Option<Box<ClientState>>>;

/// Sharded, lazily-materialized client-state backend.
pub struct ShardedStore {
    map: ShardMap,
    index: ClientIndices,
    initial: ParamVector,
    /// Per-shard slot vectors; empty until the shard is first touched.
    shards: Vec<Shard>,
    resident_bytes: u64,
    stats: StoreStats,
}

impl ShardedStore {
    /// Creates a store of `indices.len()` implicit clients split into
    /// `num_shards` contiguous shards, each starting (on materialization)
    /// from `initial` with zero dual/control.
    pub fn new(indices: Vec<Vec<usize>>, initial: &ParamVector, num_shards: usize) -> Self {
        let map = ShardMap::new(indices.len(), num_shards);
        let index = ClientIndices::from_lists(indices);
        let overhead = index_overhead(&index);
        let shards = (0..map.num_shards()).map(|_| Vec::new()).collect();
        ShardedStore {
            map,
            index,
            initial: initial.clone(),
            shards,
            resident_bytes: overhead,
            stats: StoreStats::default(),
        }
    }

    /// Number of clients currently materialized.
    pub fn materialized_clients(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.iter().filter(|c| c.is_some()).count())
            .sum()
    }
}

fn index_overhead(index: &ClientIndices) -> u64 {
    index.heap_bytes()
}

/// Materializes the slot for `id` if still implicit, updating the counters.
/// Free function so callers holding disjoint field borrows can use it.
fn materialize_slot(
    slot: &mut Option<Box<ClientState>>,
    id: usize,
    index: &ClientIndices,
    initial: &ParamVector,
    resident_bytes: &mut u64,
    stats: &mut StoreStats,
) {
    if slot.is_none() {
        let indices = index.get(id).to_vec();
        *resident_bytes += state_bytes(initial.len(), indices.len());
        stats.materializations += 1;
        *slot = Some(Box::new(ClientState::new(id, indices, initial)));
    }
}

impl ClientStateStore for ShardedStore {
    fn backend(&self) -> &'static str {
        "sharded"
    }

    fn num_clients(&self) -> usize {
        self.map.num_clients()
    }

    fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    fn dense(&self) -> Option<&[ClientState]> {
        None
    }

    fn with_states(
        &mut self,
        ids: &[usize],
        f: &mut dyn FnMut(&mut [&mut ClientState]) -> TensorResult<()>,
    ) -> TensorResult<()> {
        // `group` validates ordering and range — O(selected).
        let runs = self.map.group(ids)?;
        let mut refs: Vec<&mut ClientState> = Vec::with_capacity(ids.len());
        let mut shards_tail: &mut [Shard] = &mut self.shards;
        let mut shard_offset = 0usize;
        for (shard, range) in runs {
            let rest = shards_tail.split_at_mut(shard - shard_offset).1;
            let (slots, rest) = rest.split_first_mut().expect("shard index in range");
            shards_tail = rest;
            shard_offset = shard + 1;
            let shard_range = self.map.shard_range(shard);
            if slots.is_empty() {
                slots.resize_with(shard_range.len(), || None);
            }
            // Within a shard ids stay strictly ascending, so another split
            // walk lends each slot's state mutably.
            let mut slot_tail: &mut [Option<Box<ClientState>>] = slots;
            let mut slot_offset = shard_range.start;
            for &id in &ids[range] {
                let rest = slot_tail.split_at_mut(id - slot_offset).1;
                let (slot, rest) = rest.split_first_mut().expect("slot in shard range");
                slot_tail = rest;
                slot_offset = id + 1;
                materialize_slot(
                    slot,
                    id,
                    &self.index,
                    &self.initial,
                    &mut self.resident_bytes,
                    &mut self.stats,
                );
                refs.push(slot.as_mut().expect("just materialized"));
            }
        }
        f(&mut refs)
    }

    fn for_each_state(
        &mut self,
        visit: &mut dyn FnMut(&ClientState) -> TensorResult<()>,
    ) -> TensorResult<()> {
        for shard in 0..self.map.num_shards() {
            let range = self.map.shard_range(shard);
            for id in range.clone() {
                let slot = self.shards[shard]
                    .get(id - range.start)
                    .and_then(Option::as_deref);
                match slot {
                    Some(state) => visit(state)?,
                    None => {
                        // Synthesize the implicit initial state transiently.
                        let state =
                            ClientState::new(id, self.index.get(id).to_vec(), &self.initial);
                        visit(&state)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(m: usize, shards: usize) -> ShardedStore {
        let initial = ParamVector::from_vec(vec![1.0, 2.0]);
        ShardedStore::new((0..m).map(|i| vec![i]).collect(), &initial, shards)
    }

    #[test]
    fn materializes_only_the_selected_cohort() {
        let mut s = store(100, 8);
        assert_eq!(s.materialized_clients(), 0);
        let base = s.resident_bytes();
        s.with_states(&[3, 40, 41, 99], &mut |states| {
            assert_eq!(
                states.iter().map(|c| c.id).collect::<Vec<_>>(),
                vec![3, 40, 41, 99]
            );
            Ok(())
        })
        .unwrap();
        assert_eq!(s.materialized_clients(), 4);
        assert_eq!(s.stats().materializations, 4);
        assert!(s.resident_bytes() > base);
        // Re-borrowing the same clients materializes nothing new.
        s.with_states(&[3, 99], &mut |_| Ok(())).unwrap();
        assert_eq!(s.stats().materializations, 4);
    }

    #[test]
    fn mutations_persist_across_borrows() {
        let mut s = store(20, 4);
        s.with_states(&[7], &mut |states| {
            states[0].times_selected = 5;
            states[0].dual = ParamVector::from_vec(vec![0.5, -0.5]);
            Ok(())
        })
        .unwrap();
        s.with_states(&[6, 7, 8], &mut |states| {
            assert_eq!(states[1].times_selected, 5);
            assert_eq!(states[1].dual.as_slice(), &[0.5, -0.5]);
            assert_eq!(states[0].times_selected, 0);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn for_each_synthesizes_implicit_states() {
        let mut s = store(10, 3);
        s.with_states(&[4], &mut |states| {
            states[0].times_selected = 1;
            Ok(())
        })
        .unwrap();
        let mut ids = Vec::new();
        let mut selected = 0;
        s.for_each_state(&mut |c| {
            ids.push(c.id);
            selected += c.times_selected;
            assert_eq!(c.indices, vec![c.id]);
            Ok(())
        })
        .unwrap();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert_eq!(selected, 1);
        // Streaming did not materialize anything new.
        assert_eq!(s.materialized_clients(), 1);
    }

    #[test]
    fn rejects_bad_cohorts() {
        let mut s = store(10, 2);
        let noop = &mut |_: &mut [&mut ClientState]| Ok(());
        assert!(s.with_states(&[5, 2], noop).is_err());
        assert!(s.with_states(&[10], noop).is_err());
    }
}
