//! Hierarchical (tree) aggregation of client payloads.
//!
//! The engine's default server fold is a single fused pass over ℝ^d — the
//! bit-exact legacy semantics. At million-client scale the fold itself
//! becomes the serial bottleneck, so this module provides the opt-in
//! alternative: payloads are grouped by the shard of their sender, each
//! shard folds its terms into one partial `ParamVector` **in parallel**
//! (scoped OS threads, deterministic outputs regardless of the thread
//! schedule), and a log-depth pairwise combine reduces the partials to the
//! round update. Floating-point addition is not associative, so the tree
//! result differs from the fused pass in the last bits — which is exactly
//! why the engine keeps it opt-in
//! (`AggregationMode::Hierarchical`) rather than tying it to the store
//! backend.

use crate::param::ParamVector;
use fedadmm_tensor::vecops::{self, DequantTerm};
use std::time::Instant;

/// Timing/shape of one shard's partial fold (for telemetry spans).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardFoldStat {
    /// The shard that folded.
    pub shard: usize,
    /// Number of payloads folded into the partial.
    pub messages: usize,
    /// Seconds spent in the partial fold (0 when untimed).
    pub seconds: f64,
}

/// Folds `groups` — per-shard `(shard, [(coeff, payload)])` term lists —
/// into `Σ coeff·payload` by parallel per-shard partial sums and a
/// log-depth pairwise combine. Deterministic for a fixed `groups` order.
/// Per-shard timings are measured only when `timed` is set.
pub fn hierarchical_weighted_sum(
    dim: usize,
    groups: &[(usize, Vec<(f32, &ParamVector)>)],
    timed: bool,
) -> (ParamVector, Vec<ShardFoldStat>) {
    if groups.is_empty() {
        return (ParamVector::zeros(dim), Vec::new());
    }
    let fold_group = |(shard, terms): &(usize, Vec<(f32, &ParamVector)>)| {
        let start = timed.then(Instant::now);
        let mut partial = ParamVector::zeros(dim);
        partial.assign_weighted_sum(terms);
        let stat = ShardFoldStat {
            shard: *shard,
            messages: terms.len(),
            seconds: start.map_or(0.0, |s| s.elapsed().as_secs_f64()),
        };
        (partial, stat)
    };

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(groups.len());
    let folded: Vec<(ParamVector, ShardFoldStat)> = if workers <= 1 {
        groups.iter().map(fold_group).collect()
    } else {
        // Contiguous chunks, joined in order: the output order (and hence
        // the combine tree) is independent of the thread schedule.
        let chunk = groups.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let fold_group = &fold_group;
            let handles: Vec<_> = groups
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(fold_group).collect::<Vec<_>>()))
                .collect();
            let mut all = Vec::with_capacity(groups.len());
            for handle in handles {
                all.extend(handle.join().expect("shard fold worker panicked"));
            }
            all
        })
    };
    let (mut partials, stats): (Vec<ParamVector>, Vec<ShardFoldStat>) = folded.into_iter().unzip();

    // Log-depth pairwise combine: (((p0+p1)+(p2+p3))+…); each level halves
    // the population, each sum is one fused pass.
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut iter = partials.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(a.add(&b)),
                None => next.push(a),
            }
        }
        partials = next;
    }
    (partials.pop().expect("non-empty by construction"), stats)
}

/// The compressed twin of [`hierarchical_weighted_sum`]: folds per-shard
/// [`DequantTerm`] lists — quantized wire payloads with their fold
/// coefficient baked into `alpha` — into `Σ αᵢ·(minᵢ + codeᵢ·stepᵢ)`
/// without ever materializing a dense decode. Each shard's partial is one
/// fused [`vecops::dequant_sum_into`] sweep; the combine is the same
/// log-depth pairwise tree, so determinism and telemetry semantics match
/// the dense fold exactly.
pub fn hierarchical_dequant_sum(
    dim: usize,
    groups: &[(usize, Vec<DequantTerm<'_>>)],
    timed: bool,
) -> (ParamVector, Vec<ShardFoldStat>) {
    if groups.is_empty() {
        return (ParamVector::zeros(dim), Vec::new());
    }
    let fold_group = |(shard, terms): &(usize, Vec<DequantTerm<'_>>)| {
        let start = timed.then(Instant::now);
        let mut partial = ParamVector::zeros(dim);
        vecops::dequant_sum_into(terms, partial.as_mut_slice());
        let stat = ShardFoldStat {
            shard: *shard,
            messages: terms.len(),
            seconds: start.map_or(0.0, |s| s.elapsed().as_secs_f64()),
        };
        (partial, stat)
    };

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(groups.len());
    let folded: Vec<(ParamVector, ShardFoldStat)> = if workers <= 1 {
        groups.iter().map(fold_group).collect()
    } else {
        let chunk = groups.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let fold_group = &fold_group;
            let handles: Vec<_> = groups
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(fold_group).collect::<Vec<_>>()))
                .collect();
            let mut all = Vec::with_capacity(groups.len());
            for handle in handles {
                all.extend(handle.join().expect("shard fold worker panicked"));
            }
            all
        })
    };
    let (mut partials, stats): (Vec<ParamVector>, Vec<ShardFoldStat>) = folded.into_iter().unzip();

    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut iter = partials.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(a.add(&b)),
                None => next.push(a),
            }
        }
        partials = next;
    }
    (partials.pop().expect("non-empty by construction"), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, d: usize) -> Vec<ParamVector> {
        (0..n)
            .map(|i| {
                ParamVector::from_vec((0..d).map(|j| (i * d + j) as f32 * 0.25 - 1.0).collect())
            })
            .collect()
    }

    #[test]
    fn empty_input_folds_to_zero() {
        let (sum, stats) = hierarchical_weighted_sum(3, &[], true);
        assert_eq!(sum, ParamVector::zeros(3));
        assert!(stats.is_empty());
    }

    #[test]
    fn matches_the_fused_single_pass_up_to_rounding() {
        let d = 64;
        let payloads = vecs(13, d);
        // 5 shards of uneven size.
        let mut groups: Vec<(usize, Vec<(f32, &ParamVector)>)> =
            (0..5).map(|s| (s, Vec::new())).collect();
        for (i, p) in payloads.iter().enumerate() {
            groups[i % 5].1.push((0.1 + i as f32 * 0.05, p));
        }
        let (tree, stats) = hierarchical_weighted_sum(d, &groups, true);
        let flat_terms: Vec<(f32, &ParamVector)> =
            groups.iter().flat_map(|(_, t)| t.iter().copied()).collect();
        let mut fused = ParamVector::zeros(d);
        fused.assign_weighted_sum(&flat_terms);
        for (a, b) in tree.as_slice().iter().zip(fused.as_slice()) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
        assert_eq!(stats.len(), 5);
        assert_eq!(stats.iter().map(|s| s.messages).sum::<usize>(), 13);
    }

    #[test]
    fn dequant_sum_matches_decode_then_weighted_sum() {
        let d = 37;
        // Integer-valued codes with exactly representable (min, step) make
        // the decode exact, so the two folds see identical inputs.
        let codes: Vec<Vec<u16>> = (0..9)
            .map(|i| (0..d).map(|j| ((i * 31 + j * 7) % 256) as u16).collect())
            .collect();
        let mut groups: Vec<(usize, Vec<DequantTerm<'_>>)> =
            (0..3).map(|s| (s, Vec::new())).collect();
        let mut decoded_terms: Vec<(f32, ParamVector)> = Vec::new();
        for (i, c) in codes.iter().enumerate() {
            let (alpha, min, step) = (0.25 + i as f32 * 0.125, -2.0, 0.03125);
            groups[i % 3].1.push(DequantTerm {
                alpha,
                min,
                step,
                codes: c,
            });
            decoded_terms.push((
                alpha,
                ParamVector::from_vec(c.iter().map(|&k| min + k as f32 * step).collect()),
            ));
        }
        let (fused, stats) = hierarchical_dequant_sum(d, &groups, true);
        // Reference: decode every payload densely, then run the dense
        // hierarchical fold over the same shard grouping.
        let mut groups_dense: Vec<(usize, Vec<(f32, &ParamVector)>)> =
            (0..3).map(|s| (s, Vec::new())).collect();
        for (i, (a, p)) in decoded_terms.iter().enumerate() {
            groups_dense[i % 3].1.push((*a, p));
        }
        let (reference, _) = hierarchical_weighted_sum(d, &groups_dense, false);
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
        assert_eq!(stats.iter().map(|s| s.messages).sum::<usize>(), 9);
    }

    #[test]
    fn dequant_sum_of_nothing_is_zero() {
        let (sum, stats) = hierarchical_dequant_sum(4, &[], false);
        assert_eq!(sum, ParamVector::zeros(4));
        assert!(stats.is_empty());
    }

    #[test]
    fn deterministic_across_invocations() {
        let d = 128;
        let payloads = vecs(40, d);
        let groups: Vec<(usize, Vec<(f32, &ParamVector)>)> = payloads
            .chunks(4)
            .enumerate()
            .map(|(s, chunk)| (s, chunk.iter().map(|p| (0.3, p)).collect()))
            .collect();
        let (a, _) = hierarchical_weighted_sum(d, &groups, false);
        let (b, _) = hierarchical_weighted_sum(d, &groups, false);
        // Bit-identical: the combine tree does not depend on thread timing.
        let (ab, bb): (Vec<u32>, Vec<u32>) = (
            a.as_slice().iter().map(|x| x.to_bits()).collect(),
            b.as_slice().iter().map(|x| x.to_bits()).collect(),
        );
        assert_eq!(ab, bb);
    }
}
