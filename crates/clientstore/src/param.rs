//! Flat parameter vectors in ℝ^d.
//!
//! Every quantity the federated algorithms manipulate — the global model θ,
//! local models `w_i`, dual variables `y_i`, control variates `c_i`, update
//! messages `Δ_i` — is a vector in ℝ^d where `d` is the model's parameter
//! count. [`ParamVector`] is a thin newtype over `Vec<f32>` with the small
//! amount of vector algebra the algorithms need, so that algorithm code
//! reads like the paper's equations.

use fedadmm_tensor::vecops;
use serde::{Deserialize, Serialize};

/// A dense vector in ℝ^d (model parameters, duals, messages, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamVector(Vec<f32>);

impl ParamVector {
    /// The zero vector of dimension `d`.
    pub fn zeros(d: usize) -> Self {
        ParamVector(vec![0.0; d])
    }

    /// Wraps an existing vector.
    pub fn from_vec(v: Vec<f32>) -> Self {
        ParamVector(v)
    }

    /// Dimension `d`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has dimension zero.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Immutable view of the underlying values.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Mutable view of the underlying values.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.0
    }

    /// Consumes the wrapper and returns the underlying vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.0
    }

    /// `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &ParamVector) {
        vecops::axpy(alpha, &other.0, &mut self.0);
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        vecops::scale(alpha, &mut self.0);
    }

    /// Returns `self - other` as a new vector.
    ///
    /// The result is produced in one fused pass with no intermediate
    /// zero-fill (each output element is written exactly once).
    ///
    /// # Panics
    /// Panics on dimension mismatch (checked in debug and release builds;
    /// the `debug_assert` merely fails earlier with a clearer message).
    pub fn sub(&self, other: &ParamVector) -> ParamVector {
        debug_assert_eq!(
            self.0.len(),
            other.0.len(),
            "ParamVector::sub dimension mismatch"
        );
        ParamVector(vecops::sub_new(&self.0, &other.0))
    }

    /// Returns `self + other` as a new vector.
    ///
    /// The result is produced in one fused pass with no intermediate
    /// zero-fill (each output element is written exactly once).
    ///
    /// # Panics
    /// Panics on dimension mismatch (checked in debug and release builds;
    /// the `debug_assert` merely fails earlier with a clearer message).
    pub fn add(&self, other: &ParamVector) -> ParamVector {
        debug_assert_eq!(
            self.0.len(),
            other.0.len(),
            "ParamVector::add dimension mismatch"
        );
        ParamVector(vecops::add_new(&self.0, &other.0))
    }

    /// Fused accumulation: `self += Σ_k alpha_k · v_k` in a single pass —
    /// the server-aggregation hot path (one sweep over ℝ^d regardless of
    /// how many client messages are folded in, instead of one `axpy` sweep
    /// per message).
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn accumulate(&mut self, terms: &[(f32, &ParamVector)]) {
        let (alphas, xs): (Vec<f32>, Vec<&[f32]>) =
            terms.iter().map(|(a, v)| (*a, v.0.as_slice())).unzip();
        vecops::axpy_fused(&alphas, &xs, &mut self.0);
    }

    /// Fused overwrite: `self = Σ_k alpha_k · v_k` in a single pass (no
    /// zeroing pass beforehand).
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn assign_weighted_sum(&mut self, terms: &[(f32, &ParamVector)]) {
        let (alphas, xs): (Vec<f32>, Vec<&[f32]>) =
            terms.iter().map(|(a, v)| (*a, v.0.as_slice())).unzip();
        vecops::weighted_sum_into(&alphas, &xs, &mut self.0);
    }

    /// Fused dequantizing accumulation:
    /// `self += Σ_k alpha_k · (min_k + code_k · step_k)` in a single pass —
    /// the compressed twin of [`ParamVector::accumulate`], folding a whole
    /// cohort of quantized wire payloads into θ without materializing any
    /// dense decode.
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn dequant_accumulate(&mut self, terms: &[vecops::DequantTerm<'_>]) {
        vecops::dequant_axpy_fused(terms, &mut self.0);
    }

    /// Fused dequantizing overwrite:
    /// `self = Σ_k alpha_k · (min_k + code_k · step_k)` in a single pass —
    /// the compressed twin of [`ParamVector::assign_weighted_sum`].
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn dequant_assign(&mut self, terms: &[vecops::DequantTerm<'_>]) {
        vecops::dequant_sum_into(terms, &mut self.0);
    }

    /// Euclidean norm ‖·‖₂.
    pub fn norm(&self) -> f32 {
        vecops::norm(&self.0)
    }

    /// Euclidean distance to another vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn dist(&self, other: &ParamVector) -> f32 {
        vecops::dist(&self.0, &other.0)
    }

    /// Dot product.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn dot(&self, other: &ParamVector) -> f32 {
        vecops::dot(&self.0, &other.0)
    }

    /// Overwrites this vector with zeros.
    pub fn set_zero(&mut self) {
        vecops::zero(&mut self.0);
    }

    /// Copies the values of `other` into this vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn copy_from(&mut self, other: &ParamVector) {
        vecops::copy(&other.0, &mut self.0);
    }
}

impl From<Vec<f32>> for ParamVector {
    fn from(v: Vec<f32>) -> Self {
        ParamVector(v)
    }
}

impl AsRef<[f32]> for ParamVector {
    fn as_ref(&self) -> &[f32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let z = ParamVector::zeros(4);
        assert_eq!(z.len(), 4);
        assert!(!z.is_empty());
        assert_eq!(z.as_slice(), &[0.0; 4]);
        let v = ParamVector::from_vec(vec![1.0, 2.0]);
        assert_eq!(v.clone().into_vec(), vec![1.0, 2.0]);
        assert_eq!(v.as_ref(), &[1.0, 2.0]);
    }

    #[test]
    fn arithmetic() {
        let a = ParamVector::from_vec(vec![1.0, 2.0]);
        let b = ParamVector::from_vec(vec![3.0, 5.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(b.add(&a).as_slice(), &[4.0, 7.0]);
        assert_eq!(a.dot(&b), 13.0);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[7.0, 12.0]);
        c.scale(0.5);
        assert_eq!(c.as_slice(), &[3.5, 6.0]);
        c.set_zero();
        assert_eq!(c.as_slice(), &[0.0, 0.0]);
        c.copy_from(&b);
        assert_eq!(c.as_slice(), b.as_slice());
    }

    #[test]
    fn norms() {
        let a = ParamVector::from_vec(vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dist(&ParamVector::zeros(2)), 5.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_dims_panic() {
        let a = ParamVector::zeros(2);
        let b = ParamVector::zeros(3);
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic]
    fn mismatched_sub_dims_panic() {
        let a = ParamVector::zeros(2);
        let b = ParamVector::zeros(3);
        let _ = a.sub(&b);
    }

    #[test]
    fn fused_accumulate_matches_sequential_axpys() {
        let v1 = ParamVector::from_vec(vec![1.0, 2.0]);
        let v2 = ParamVector::from_vec(vec![-3.0, 0.5]);
        let mut fused = ParamVector::from_vec(vec![10.0, 10.0]);
        fused.accumulate(&[(2.0, &v1), (4.0, &v2)]);
        let mut sequential = ParamVector::from_vec(vec![10.0, 10.0]);
        sequential.axpy(2.0, &v1);
        sequential.axpy(4.0, &v2);
        assert_eq!(fused, sequential);
    }

    #[test]
    fn assign_weighted_sum_overwrites_in_one_pass() {
        let v1 = ParamVector::from_vec(vec![2.0, 4.0]);
        let v2 = ParamVector::from_vec(vec![6.0, 8.0]);
        let mut out = ParamVector::from_vec(vec![99.0, 99.0]);
        out.assign_weighted_sum(&[(0.5, &v1), (0.5, &v2)]);
        assert_eq!(out.as_slice(), &[4.0, 6.0]);
        out.assign_weighted_sum(&[]);
        assert_eq!(out.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let a = ParamVector::from_vec(vec![1.5, -2.5]);
        let json = serde_json::to_string(&a).unwrap();
        let back: ParamVector = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    proptest! {
        /// The triangle inequality holds for dist.
        #[test]
        fn prop_triangle_inequality(
            a in proptest::collection::vec(-5.0f32..5.0, 8),
            b in proptest::collection::vec(-5.0f32..5.0, 8),
            c in proptest::collection::vec(-5.0f32..5.0, 8),
        ) {
            let a = ParamVector::from_vec(a);
            let b = ParamVector::from_vec(b);
            let c = ParamVector::from_vec(c);
            prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-4);
        }

        /// (a + b) - b == a up to floating-point error.
        #[test]
        fn prop_add_sub_inverse(
            a in proptest::collection::vec(-5.0f32..5.0, 8),
            b in proptest::collection::vec(-5.0f32..5.0, 8),
        ) {
            let a = ParamVector::from_vec(a);
            let b = ParamVector::from_vec(b);
            let r = a.add(&b).sub(&b);
            for (x, y) in r.as_slice().iter().zip(a.as_slice().iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
