//! LRU spill-to-disk client state under a byte budget.
//!
//! [`SpillStore`] keeps the sharded lazy-materialization layout of
//! [`ShardedStore`](crate::ShardedStore) but bounds *resident* state: once
//! materialized client bytes exceed `budget_bytes`, least-recently-borrowed
//! shards are encoded ([bit-exact binary codec](crate::codec)) and written
//! to disk, then reloaded transparently the next time one of their clients
//! is selected. The budget is a soft ceiling enforced **between** borrows —
//! the cohort currently lent out can transiently overshoot it, which is the
//! working-set minimum anyway.
//!
//! Shards whose every resident client is untouched are dropped without a
//! write (the implicit representation is free), so a workload that merely
//! *reads* a pristine population never touches the disk.

use crate::codec::{decode_shard, encode_shard};
use crate::param::ParamVector;
use crate::shard::{ClientIndices, ShardMap};
use crate::state::ClientState;
use crate::store::{state_bytes, ClientStateStore, StoreStats};
use fedadmm_tensor::{TensorError, TensorResult};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes spill directories across stores within one process.
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

enum Slot {
    /// Never materialized (or evicted while fully pristine): every client
    /// is implicit.
    Cold,
    /// Materialized slots in memory.
    Resident {
        entries: Vec<Option<Box<ClientState>>>,
        bytes: u64,
    },
    /// Trained state written to disk.
    Spilled { path: PathBuf, bytes: u64 },
}

/// Sharded client-state backend with an LRU spill-to-disk budget.
pub struct SpillStore {
    map: ShardMap,
    index: ClientIndices,
    initial: ParamVector,
    slots: Vec<Slot>,
    /// Borrow tick at which each shard was last used (LRU clock).
    last_used: Vec<u64>,
    tick: u64,
    budget_bytes: u64,
    resident_bytes: u64,
    dir: PathBuf,
    owns_dir: bool,
    stats: StoreStats,
}

fn io_err(op: &str, path: &Path, err: std::io::Error) -> TensorError {
    TensorError::InvalidArgument(format!("spill {op} {} failed: {err}", path.display()))
}

impl SpillStore {
    /// Creates a store of `indices.len()` implicit clients in `num_shards`
    /// shards, spilling LRU shards to `dir` (or a unique temp directory,
    /// removed on drop) whenever resident state exceeds `budget_bytes`.
    pub fn new(
        indices: Vec<Vec<usize>>,
        initial: &ParamVector,
        num_shards: usize,
        budget_bytes: u64,
        dir: Option<PathBuf>,
    ) -> TensorResult<Self> {
        let map = ShardMap::new(indices.len(), num_shards);
        let index = ClientIndices::from_lists(indices);
        let (dir, owns_dir) = match dir {
            Some(d) => (d, false),
            None => {
                let seq = SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
                let d = std::env::temp_dir()
                    .join(format!("fedadmm-spill-{}-{seq}", std::process::id()));
                (d, true)
            }
        };
        std::fs::create_dir_all(&dir).map_err(|e| io_err("dir create", &dir, e))?;
        let mut slots = Vec::with_capacity(map.num_shards());
        slots.resize_with(map.num_shards(), || Slot::Cold);
        Ok(SpillStore {
            last_used: vec![0; map.num_shards()],
            tick: 0,
            budget_bytes,
            resident_bytes: index.heap_bytes(),
            index,
            initial: initial.clone(),
            slots,
            map,
            dir,
            owns_dir,
            stats: StoreStats::default(),
        })
    }

    /// The configured resident-state budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Number of shards currently resident in memory.
    pub fn resident_shards(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Resident { .. }))
            .count()
    }

    /// Number of shards currently spilled to disk.
    pub fn spilled_shards(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Spilled { .. }))
            .count()
    }

    fn spill_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.bin"))
    }

    /// Brings `shard` into memory (loading a spilled file if needed).
    fn ensure_resident(&mut self, shard: usize) -> TensorResult<()> {
        let shard_len = self.map.shard_range(shard).len();
        match &self.slots[shard] {
            Slot::Resident { .. } => {}
            Slot::Cold => {
                let mut entries = Vec::with_capacity(shard_len);
                entries.resize_with(shard_len, || None);
                self.slots[shard] = Slot::Resident { entries, bytes: 0 };
            }
            Slot::Spilled { path, bytes } => {
                let (path, bytes) = (path.clone(), *bytes);
                let raw = std::fs::read(&path).map_err(|e| io_err("read", &path, e))?;
                let entries = decode_shard(
                    &raw,
                    self.map.shard_range(shard).start,
                    shard_len,
                    self.initial.len(),
                    &self.index,
                )?;
                let _ = std::fs::remove_file(&path);
                self.slots[shard] = Slot::Resident { entries, bytes };
                self.resident_bytes += bytes;
                self.stats.spill_loads += 1;
            }
        }
        Ok(())
    }

    /// Evicts least-recently-borrowed shards until resident state fits the
    /// budget (or nothing evictable remains). Fully pristine shards are
    /// dropped without a write.
    fn enforce_budget(&mut self) -> TensorResult<()> {
        while self.resident_bytes > self.budget_bytes {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Slot::Resident { .. }))
                .min_by_key(|(shard, _)| self.last_used[*shard])
                .map(|(shard, _)| shard);
            let Some(shard) = victim else { break };
            self.evict(shard)?;
        }
        Ok(())
    }

    fn evict(&mut self, shard: usize) -> TensorResult<()> {
        let slot = std::mem::replace(&mut self.slots[shard], Slot::Cold);
        let Slot::Resident { entries, bytes } = slot else {
            self.slots[shard] = slot;
            return Ok(());
        };
        self.stats.evictions += 1;
        self.resident_bytes = self.resident_bytes.saturating_sub(bytes);
        // A shard whose every materialized client is still pristine can go
        // back to the implicit representation for free.
        let trained: Vec<Option<Box<ClientState>>> = entries
            .into_iter()
            .map(|e| e.filter(|s| !s.is_pristine(&self.initial)))
            .collect();
        if trained.iter().all(Option::is_none) {
            return Ok(()); // already Slot::Cold
        }
        let encoded = encode_shard(&trained, self.initial.len());
        let path = self.spill_path(shard);
        std::fs::write(&path, &encoded).map_err(|e| io_err("write", &path, e))?;
        // Recompute bytes for the entries that actually survive on disk, so
        // a later load re-accounts exactly what it rehydrates.
        let kept: u64 = trained
            .iter()
            .flatten()
            .map(|s| state_bytes(self.initial.len(), s.indices.len()))
            .sum();
        self.slots[shard] = Slot::Spilled { path, bytes: kept };
        self.stats.spill_writes += 1;
        Ok(())
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        for slot in &self.slots {
            if let Slot::Spilled { path, .. } = slot {
                let _ = std::fs::remove_file(path);
            }
        }
        if self.owns_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

impl ClientStateStore for SpillStore {
    fn backend(&self) -> &'static str {
        "spill"
    }

    fn num_clients(&self) -> usize {
        self.map.num_clients()
    }

    fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    fn dense(&self) -> Option<&[ClientState]> {
        None
    }

    fn with_states(
        &mut self,
        ids: &[usize],
        f: &mut dyn FnMut(&mut [&mut ClientState]) -> TensorResult<()>,
    ) -> TensorResult<()> {
        let runs = self.map.group(ids)?;
        self.tick += 1;
        for (shard, _) in &runs {
            self.ensure_resident(*shard)?;
            self.last_used[*shard] = self.tick;
        }
        // All touched shards are now Resident; lend the cohort out with the
        // same O(selected) split walk as the sharded backend.
        let mut refs: Vec<&mut ClientState> = Vec::with_capacity(ids.len());
        let mut slots_tail: &mut [Slot] = &mut self.slots;
        let mut shard_offset = 0usize;
        for (shard, range) in &runs {
            let rest = slots_tail.split_at_mut(shard - shard_offset).1;
            let (slot, rest) = rest.split_first_mut().expect("shard index in range");
            slots_tail = rest;
            shard_offset = shard + 1;
            let Slot::Resident { entries, bytes } = slot else {
                unreachable!("shard made resident above")
            };
            let shard_start = self.map.shard_range(*shard).start;
            let mut entry_tail: &mut [Option<Box<ClientState>>] = entries;
            let mut entry_offset = shard_start;
            for &id in &ids[range.clone()] {
                let rest = entry_tail.split_at_mut(id - entry_offset).1;
                let (entry, rest) = rest.split_first_mut().expect("slot in shard range");
                entry_tail = rest;
                entry_offset = id + 1;
                if entry.is_none() {
                    let indices = self.index.get(id).to_vec();
                    let cost = state_bytes(self.initial.len(), indices.len());
                    *bytes += cost;
                    self.resident_bytes += cost;
                    self.stats.materializations += 1;
                    *entry = Some(Box::new(ClientState::new(id, indices, &self.initial)));
                }
                refs.push(entry.as_mut().expect("just materialized"));
            }
        }
        let result = f(&mut refs);
        drop(refs);
        // The budget is enforced between borrows, never while lent out.
        self.enforce_budget()?;
        result
    }

    fn for_each_state(
        &mut self,
        visit: &mut dyn FnMut(&ClientState) -> TensorResult<()>,
    ) -> TensorResult<()> {
        for shard in 0..self.map.num_shards() {
            self.ensure_resident(shard)?;
            let range = self.map.shard_range(shard);
            for id in range.clone() {
                let Slot::Resident { entries, .. } = &self.slots[shard] else {
                    unreachable!("shard made resident above")
                };
                match entries[id - range.start].as_deref() {
                    Some(state) => visit(state)?,
                    None => {
                        let state =
                            ClientState::new(id, self.index.get(id).to_vec(), &self.initial);
                        visit(&state)?;
                    }
                }
            }
            // Stream within the budget: drop or spill as we go.
            self.enforce_budget()?;
        }
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(m: usize, shards: usize, budget: u64) -> SpillStore {
        let initial = ParamVector::from_vec(vec![1.0; 16]);
        SpillStore::new(
            (0..m).map(|i| vec![i]).collect(),
            &initial,
            shards,
            budget,
            None,
        )
        .unwrap()
    }

    #[test]
    fn stays_resident_under_a_large_budget() {
        let mut s = store(32, 4, u64::MAX);
        s.with_states(&[0, 9, 31], &mut |states| {
            for state in states.iter_mut() {
                state.times_selected += 1;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(s.spilled_shards(), 0);
        assert_eq!(s.stats().spill_writes, 0);
        assert_eq!(s.stats().materializations, 3);
    }

    #[test]
    fn spills_trained_shards_and_reloads_them_bit_exactly() {
        // Budget of 0 forces every trained shard out after each borrow.
        let mut s = store(32, 8, 0);
        s.with_states(&[1, 2], &mut |states| {
            states[0].dual = ParamVector::from_vec(vec![0.25; 16]);
            states[0].times_selected = 3;
            states[1].times_selected = 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(s.resident_shards(), 0);
        assert_eq!(s.spilled_shards(), 1);
        assert!(s.stats().spill_writes >= 1);
        // Touch a different shard, then come back.
        s.with_states(&[20], &mut |states| {
            states[0].times_selected = 7;
            Ok(())
        })
        .unwrap();
        s.with_states(&[1, 2, 20], &mut |states| {
            assert_eq!(states[0].dual.as_slice(), &[0.25; 16]);
            assert_eq!(states[0].times_selected, 3);
            assert_eq!(states[1].times_selected, 1);
            assert_eq!(states[2].times_selected, 7);
            Ok(())
        })
        .unwrap();
        assert!(s.stats().spill_loads >= 2);
    }

    #[test]
    fn pristine_shards_are_dropped_without_a_write() {
        let mut s = store(32, 8, 0);
        // Borrow without mutating: the shard is evicted but nothing needs
        // to survive, so no file is written.
        s.with_states(&[5], &mut |_| Ok(())).unwrap();
        assert_eq!(s.spilled_shards(), 0);
        assert_eq!(s.stats().spill_writes, 0);
        assert!(s.stats().evictions >= 1);
    }

    #[test]
    fn for_each_streams_every_client_within_budget() {
        let mut s = store(24, 6, 0);
        s.with_states(&[3], &mut |states| {
            states[0].times_selected = 9;
            Ok(())
        })
        .unwrap();
        let mut total = 0usize;
        let mut count = 0usize;
        s.for_each_state(&mut |c| {
            total += c.times_selected;
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 24);
        assert_eq!(total, 9);
        assert_eq!(s.resident_shards(), 0, "streaming respects the budget");
    }

    #[test]
    fn spill_files_are_cleaned_up_on_drop() {
        let mut s = store(16, 4, 0);
        s.with_states(&[0], &mut |states| {
            states[0].times_selected = 1;
            Ok(())
        })
        .unwrap();
        let dir = s.dir.clone();
        assert!(dir.exists());
        drop(s);
        assert!(!dir.exists(), "owned spill dir must be removed on drop");
    }
}
