//! [`PrivateAlgorithm`]: differential privacy as an algorithm adapter.
//!
//! Wrapping keeps the underlying algorithm untouched: `PrivateAlgorithm`
//! forwards [`Algorithm::client_update`] to the inner method and then clips
//! and noises every vector of the returned payload, exactly as a real
//! client would before uploading. Because the FedADMM/FedAvg/FedProx server
//! updates only consume averages of the payloads, the added noise averages
//! down with `|S_t|` while each individual upload enjoys the Gaussian
//! mechanism's guarantee.
//!
//! The per-client noise seed is derived from the local-training seed the
//! simulation already assigns per `(round, client)`, so private runs remain
//! exactly reproducible.

use crate::dp::GaussianMechanism;
use fedadmm_core::algorithms::{Algorithm, ClientMessage, ServerOutcome};
use fedadmm_core::client::ClientState;
use fedadmm_core::param::ParamVector;
use fedadmm_core::trainer::LocalEnv;
use fedadmm_tensor::TensorResult;

/// Wraps any federated algorithm and privatizes its uploads.
#[derive(Debug, Clone)]
pub struct PrivateAlgorithm<A> {
    inner: A,
    mechanism: GaussianMechanism,
}

impl<A: Algorithm> PrivateAlgorithm<A> {
    /// Wraps `inner` so that every uploaded vector is clipped to
    /// `mechanism.clip_norm` and perturbed with Gaussian noise of multiplier
    /// `mechanism.noise_multiplier`.
    pub fn new(inner: A, mechanism: GaussianMechanism) -> Self {
        PrivateAlgorithm { inner, mechanism }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The privacy mechanism in use.
    pub fn mechanism(&self) -> GaussianMechanism {
        self.mechanism
    }
}

impl<A: Algorithm> Algorithm for PrivateAlgorithm<A> {
    fn name(&self) -> &'static str {
        // A static name is required by the trait; the wrapped algorithm's
        // name remains available through `inner().name()`.
        "DP-wrapped"
    }

    fn init(&mut self, dim: usize, num_clients: usize) {
        self.inner.init(dim, num_clients);
    }

    fn requires_full_participation(&self) -> bool {
        self.inner.requires_full_participation()
    }

    fn supports_variable_work(&self) -> bool {
        self.inner.supports_variable_work()
    }

    fn upload_floats_per_client(&self, dim: usize) -> usize {
        self.inner.upload_floats_per_client(dim)
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        let mut message = self.inner.client_update(client, global, env)?;
        for (k, payload) in message.payload.iter_mut().enumerate() {
            let mut raw = std::mem::replace(payload, ParamVector::zeros(0)).into_vec();
            // One noise stream per (round, client, payload index); env.seed
            // is already unique per (round, client).
            let seed = env.seed ^ 0xD1FF_BEEF_u64.rotate_left(k as u32);
            self.mechanism.privatize(&mut raw, seed);
            *payload = ParamVector::from_vec(raw);
        }
        Ok(message)
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        num_clients: usize,
        rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        self.inner.server_update(global, messages, num_clients, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedadmm_core::algorithms::{FedAdmm, FedAvg, ServerStepSize};
    use fedadmm_core::config::{DataDistribution, FedConfig, Participation};
    use fedadmm_core::engine::{RoundEngine, SyncRounds};
    use fedadmm_data::batching::BatchSize;
    use fedadmm_data::synthetic::SyntheticDataset;
    use fedadmm_nn::models::ModelSpec;

    fn config(num_clients: usize, seed: u64) -> FedConfig {
        FedConfig {
            num_clients,
            participation: Participation::Fraction(0.5),
            local_epochs: 2,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(16),
            local_learning_rate: 0.1,
            model: ModelSpec::Logistic {
                input_dim: 784,
                num_classes: 10,
            },
            seed,
            eval_subset: usize::MAX,
        }
    }

    #[test]
    fn wrapper_preserves_the_inner_algorithm_metadata() {
        let alg = PrivateAlgorithm::new(
            FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
            GaussianMechanism::new(1.0, 0.1),
        );
        assert_eq!(alg.inner().name(), "FedADMM");
        assert_eq!(alg.name(), "DP-wrapped");
        assert!(!alg.requires_full_participation());
        assert!(alg.supports_variable_work());
        assert_eq!(alg.upload_floats_per_client(100), 100);
        assert_eq!(alg.mechanism().clip_norm, 1.0);
    }

    #[test]
    fn clipping_bounds_every_uploaded_vector() {
        // With noise disabled, every uploaded payload must have norm ≤ C.
        let clip = 0.5f32;
        let alg = PrivateAlgorithm::new(FedAvg::new(), GaussianMechanism::new(clip, 0.0));
        let cfg = config(6, 3);
        let (train, test) = SyntheticDataset::Mnist.generate(120, 30, 3);
        let partition = DataDistribution::Iid.partition(&train, 6, 3);
        let mut sim = RoundEngine::new(cfg, train, test, partition, alg, SyncRounds).unwrap();
        sim.run_round().unwrap();
        // FedAvg uploads the full model; after one round the (averaged)
        // global model is an average of clipped vectors, hence also ≤ C.
        assert!(sim.global_model().norm() <= clip + 1e-5);
    }

    #[test]
    fn noiseless_wrapper_with_huge_clip_is_equivalent_to_the_inner_algorithm() {
        let cfg = config(6, 5);
        let (train, test) = SyntheticDataset::Mnist.generate(120, 30, 5);
        let partition = DataDistribution::Iid.partition(&train, 6, 5);

        let mut plain = RoundEngine::new(
            cfg,
            train.clone(),
            test.clone(),
            partition.clone(),
            FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
            SyncRounds,
        )
        .unwrap();
        let mut wrapped = RoundEngine::new(
            cfg,
            train,
            test,
            partition,
            PrivateAlgorithm::new(
                FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
                GaussianMechanism::new(1e6, 0.0),
            ),
            SyncRounds,
        )
        .unwrap();
        plain.run_rounds(3).unwrap();
        wrapped.run_rounds(3).unwrap();
        assert!(
            plain.global_model().dist(wrapped.global_model()) < 1e-5,
            "a no-op mechanism must not change the trajectory"
        );
    }

    #[test]
    fn noise_changes_the_trajectory_but_small_noise_still_learns() {
        let cfg = config(8, 7);
        let (train, test) = SyntheticDataset::Mnist.generate(400, 100, 7);
        let partition = DataDistribution::Iid.partition(&train, 8, 7);

        let mut noisy = RoundEngine::new(
            cfg,
            train.clone(),
            test.clone(),
            partition.clone(),
            PrivateAlgorithm::new(
                FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
                GaussianMechanism::new(20.0, 1e-3),
            ),
            SyncRounds,
        )
        .unwrap();
        let mut plain = RoundEngine::new(
            cfg,
            train,
            test,
            partition,
            FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
            SyncRounds,
        )
        .unwrap();
        let (_, acc0) = noisy.evaluate_global().unwrap();
        noisy.run_rounds(8).unwrap();
        plain.run_rounds(8).unwrap();
        assert!(plain.global_model().dist(noisy.global_model()) > 1e-6);
        let best = noisy.history().best_accuracy();
        assert!(
            best > acc0 + 0.15,
            "private run failed to learn: {acc0} → {best}"
        );
    }

    #[test]
    fn private_runs_are_deterministic_in_the_seed() {
        let cfg = config(6, 11);
        let make = || {
            let (train, test) = SyntheticDataset::Mnist.generate(120, 30, 11);
            let partition = DataDistribution::Iid.partition(&train, 6, 11);
            RoundEngine::new(
                cfg,
                train,
                test,
                partition,
                PrivateAlgorithm::new(FedAvg::new(), GaussianMechanism::new(1.0, 0.05)),
                SyncRounds,
            )
            .unwrap()
        };
        let mut a = make();
        let mut b = make();
        a.run_rounds(2).unwrap();
        b.run_rounds(2).unwrap();
        assert_eq!(a.global_model(), b.global_model());
    }
}
