//! Pairwise-mask secure aggregation.
//!
//! The FedADMM server update (equation 5) only needs the *sum* of the
//! selected clients' messages `Σ_{i∈S_t} Δ_i`, never an individual `Δ_i`.
//! Secure aggregation (Bonawitz et al., the protocol behind \[25\] in the
//! paper's bibliography) exploits exactly this: every ordered pair of
//! participants `(i, j)` with `i < j` derives a shared pseudo-random mask
//! `m_{ij}` from a common seed; client `i` *adds* the mask to its update and
//! client `j` *subtracts* it. Each masked update looks like noise to the
//! server, but the masks cancel exactly in the sum.
//!
//! This module implements the cryptographic *functionality* (mask
//! derivation, application, cancellation, and dropout recovery by mask
//! reconstruction), not the key-agreement protocol itself — the simulation
//! plays all parties, so Diffie–Hellman key exchange is out of scope and a
//! shared seed table stands in for it.
//!
//! The hot-path entry points are [`SecureAggregator::mask_into`] and
//! [`SecureAggregator::apply_mask_with`], which stream the pairwise masks
//! straight out of the RNG into a caller-owned scratch buffer — no per-call
//! allocation, matching the engine's per-worker
//! [`DispatchScratch`](fedadmm_core::engine::DispatchScratch) discipline.
//!
//! **Future work — mask-domain fusion.** Masking currently operates on the
//! dense `f32` update, i.e. *before* the wire path quantizes it. Fusing the
//! two (masking the quantized codes directly, so masked uploads stay at
//! wire width) needs integer masks over the code ring `[0, 2^bits)` with
//! modular cancellation; the dense mechanism here is kept as the reference
//! semantics for that follow-up.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Coordinates pairwise masking for one communication round.
#[derive(Debug, Clone)]
pub struct SecureAggregator {
    round_seed: u64,
    participants: Vec<usize>,
    dim: usize,
}

impl SecureAggregator {
    /// Sets up masking for a round with the given participants and model
    /// dimension. `round_seed` stands in for the session keys agreed for
    /// this round.
    pub fn new(round_seed: u64, participants: &[usize], dim: usize) -> Self {
        assert!(
            !participants.is_empty(),
            "secure aggregation needs at least one participant"
        );
        assert!(dim > 0, "the masked vectors must have positive dimension");
        let mut sorted = participants.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            participants.len(),
            "participant ids must be distinct within a round"
        );
        SecureAggregator {
            round_seed,
            participants: sorted,
            dim,
        }
    }

    /// The participants of this round, sorted.
    pub fn participants(&self) -> &[usize] {
        &self.participants
    }

    /// The pairwise mask shared by clients `a` and `b` (order-insensitive).
    fn pair_mask(&self, a: usize, b: usize) -> Vec<f32> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let seed = self
            .round_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((lo as u64) << 32)
            .wrapping_add(hi as u64);
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..self.dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    /// The total mask client `client` applies to its update: the sum of
    /// `+m_{client,j}` over higher-id partners and `−m_{j,client}` over
    /// lower-id partners.
    pub fn mask_for(&self, client: usize) -> Vec<f32> {
        let mut mask = Vec::new();
        self.mask_into(client, &mut mask);
        mask
    }

    /// Writes client `client`'s total mask into `mask`, reusing its
    /// allocation — the scratch-friendly twin of [`mask_for`]. The pairwise
    /// masks are streamed straight out of each pair's RNG into the
    /// accumulator, so beyond `mask` itself nothing is allocated.
    pub fn mask_into(&self, client: usize, mask: &mut Vec<f32>) {
        assert!(
            self.participants.contains(&client),
            "client {client} is not a participant of this round"
        );
        mask.clear();
        mask.resize(self.dim, 0.0);
        for &other in &self.participants {
            if other == client {
                continue;
            }
            let (lo, hi) = if client < other {
                (client, other)
            } else {
                (other, client)
            };
            let seed = self
                .round_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((lo as u64) << 32)
                .wrapping_add(hi as u64);
            let mut rng = SmallRng::seed_from_u64(seed);
            let sign = if client < other { 1.0f32 } else { -1.0 };
            for m in mask.iter_mut() {
                *m += sign * rng.gen_range(-1.0f32..1.0);
            }
        }
    }

    /// Masks `update` in place on behalf of `client`.
    pub fn apply_mask(&self, client: usize, update: &mut [f32]) {
        let mut scratch = Vec::new();
        self.apply_mask_with(client, update, &mut scratch);
    }

    /// Like [`apply_mask`], but builds the mask in the caller-owned
    /// `scratch` buffer so repeated calls (one per dispatched client, every
    /// round) allocate nothing after the first.
    pub fn apply_mask_with(&self, client: usize, update: &mut [f32], scratch: &mut Vec<f32>) {
        assert_eq!(update.len(), self.dim, "update dimension mismatch");
        self.mask_into(client, scratch);
        for (u, m) in update.iter_mut().zip(scratch.iter()) {
            *u += m;
        }
    }

    /// The correction the server must *add* to the aggregate when `dropped`
    /// clients uploaded nothing: the masks they would have cancelled are
    /// reconstructed from the surviving participants' shares.
    ///
    /// (In the real protocol the survivors reveal their shares of the
    /// dropped clients' seeds; here the aggregator holds the seed table, so
    /// reconstruction is direct.)
    pub fn dropout_correction(&self, dropped: &[usize]) -> Vec<f32> {
        let dropped_set: std::collections::HashSet<usize> = dropped.iter().copied().collect();
        for d in dropped {
            assert!(
                self.participants.contains(d),
                "dropped client {d} was not a participant of this round"
            );
        }
        let mut correction = vec![0.0f32; self.dim];
        for &survivor in self
            .participants
            .iter()
            .filter(|p| !dropped_set.contains(p))
        {
            for &gone in &dropped_set {
                // The survivor applied ±m_{survivor,gone}; the dropped client
                // would have applied the opposite sign. Cancel the survivor's
                // contribution by adding its negation.
                let pair = self.pair_mask(survivor, gone);
                let sign = if survivor < gone { 1.0 } else { -1.0 };
                for (c, p) in correction.iter_mut().zip(pair.iter()) {
                    *c -= sign * p;
                }
            }
        }
        correction
    }

    /// Convenience helper: masks every `(client, update)` pair and returns
    /// the element-wise sum of the masked updates, i.e. what the server
    /// computes. Equals the sum of the raw updates when every participant
    /// reports back.
    pub fn masked_sum(&self, updates: &[(usize, Vec<f32>)]) -> Vec<f32> {
        let mut sum = vec![0.0f32; self.dim];
        for (client, update) in updates {
            let mut masked = update.clone();
            self.apply_mask(*client, &mut masked);
            for (s, v) in sum.iter_mut().zip(masked.iter()) {
                *s += v;
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(clients: &[usize], dim: usize, scale: f32) -> Vec<(usize, Vec<f32>)> {
        clients
            .iter()
            .map(|&c| {
                let v: Vec<f32> = (0..dim)
                    .map(|j| scale * (c as f32 + 1.0) * (j as f32 + 1.0))
                    .collect();
                (c, v)
            })
            .collect()
    }

    fn raw_sum(updates: &[(usize, Vec<f32>)], dim: usize) -> Vec<f32> {
        let mut sum = vec![0.0f32; dim];
        for (_, u) in updates {
            for (s, v) in sum.iter_mut().zip(u.iter()) {
                *s += v;
            }
        }
        sum
    }

    #[test]
    fn masks_cancel_exactly_in_the_sum() {
        let participants = [2usize, 5, 9, 11];
        let dim = 64;
        let agg = SecureAggregator::new(77, &participants, dim);
        let ups = updates(&participants, dim, 0.1);
        let masked = agg.masked_sum(&ups);
        let raw = raw_sum(&ups, dim);
        for (m, r) in masked.iter().zip(raw.iter()) {
            assert!((m - r).abs() < 1e-3, "masked {m} vs raw {r}");
        }
    }

    #[test]
    fn individual_masked_updates_do_not_reveal_the_raw_update() {
        let participants = [0usize, 1, 2];
        let dim = 32;
        let agg = SecureAggregator::new(3, &participants, dim);
        let raw: Vec<f32> = vec![0.01; dim];
        let mut masked = raw.clone();
        agg.apply_mask(0, &mut masked);
        // The mask is O(1) per coordinate while the update is 0.01 — the
        // masked vector is dominated by the mask.
        let dist: f32 = masked
            .iter()
            .zip(raw.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1.0, "masking changed the vector by only {dist}");
    }

    #[test]
    fn mask_into_matches_mask_for_and_reuses_the_buffer() {
        let participants = [1usize, 4, 7, 9];
        let agg = SecureAggregator::new(55, &participants, 96);
        let mut scratch = Vec::new();
        for &c in &participants {
            agg.mask_into(c, &mut scratch);
            assert_eq!(scratch, agg.mask_for(c));
        }
        let cap = scratch.capacity();
        agg.mask_into(1, &mut scratch);
        assert_eq!(scratch.capacity(), cap, "mask_into must reuse the buffer");
    }

    #[test]
    fn apply_mask_with_matches_apply_mask() {
        let participants = [0usize, 2, 5];
        let agg = SecureAggregator::new(17, &participants, 32);
        let raw: Vec<f32> = (0..32).map(|i| i as f32 * 0.01).collect();
        let mut a = raw.clone();
        agg.apply_mask(2, &mut a);
        let mut b = raw;
        let mut scratch = Vec::with_capacity(32);
        agg.apply_mask_with(2, &mut b, &mut scratch);
        assert_eq!(a, b);
    }

    #[test]
    fn single_participant_needs_no_mask() {
        let agg = SecureAggregator::new(1, &[4], 8);
        assert_eq!(agg.mask_for(4), vec![0.0; 8]);
    }

    #[test]
    fn pair_masks_are_antisymmetric() {
        let agg = SecureAggregator::new(9, &[0, 1], 16);
        let m0 = agg.mask_for(0);
        let m1 = agg.mask_for(1);
        for (a, b) in m0.iter().zip(m1.iter()) {
            assert!(
                (a + b).abs() < 1e-7,
                "masks must cancel pairwise: {a} vs {b}"
            );
        }
    }

    #[test]
    fn dropout_correction_restores_the_surviving_sum() {
        let participants = [1usize, 3, 6, 8, 10];
        let dim = 48;
        let agg = SecureAggregator::new(123, &participants, dim);
        let ups = updates(&participants, dim, 0.05);
        // Clients 6 and 10 fail after masking was set up: their updates never
        // arrive. The server sums the surviving masked updates…
        let dropped = [6usize, 10];
        let surviving: Vec<(usize, Vec<f32>)> = ups
            .iter()
            .filter(|(c, _)| !dropped.contains(c))
            .cloned()
            .collect();
        let mut server_sum = agg.masked_sum(&surviving);
        // …and applies the reconstruction correction.
        let correction = agg.dropout_correction(&dropped);
        for (s, c) in server_sum.iter_mut().zip(correction.iter()) {
            *s += c;
        }
        let expected = raw_sum(&surviving, dim);
        for (m, r) in server_sum.iter().zip(expected.iter()) {
            assert!((m - r).abs() < 1e-3, "recovered {m} vs raw {r}");
        }
    }

    #[test]
    fn different_round_seeds_produce_different_masks() {
        let a = SecureAggregator::new(1, &[0, 1], 8);
        let b = SecureAggregator::new(2, &[0, 1], 8);
        assert_ne!(a.mask_for(0), b.mask_for(0));
    }

    #[test]
    #[should_panic(expected = "not a participant")]
    fn masking_for_a_non_participant_is_rejected() {
        let agg = SecureAggregator::new(0, &[1, 2], 4);
        agg.mask_for(3);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_participants_are_rejected() {
        SecureAggregator::new(0, &[1, 1, 2], 4);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_is_rejected() {
        let agg = SecureAggregator::new(0, &[0, 1], 4);
        let mut update = vec![0.0; 3];
        agg.apply_mask(0, &mut update);
    }
}
