//! Update clipping, the Gaussian mechanism, and zCDP accounting.
//!
//! The standard recipe for client-level differential privacy in FL (\[32\]
//! in the paper's bibliography) is:
//!
//! 1. clip each client's update to a fixed ℓ₂ norm `C`, so one client's
//!    contribution to the aggregate has bounded sensitivity;
//! 2. add isotropic Gaussian noise with standard deviation `σ·C` (per
//!    coordinate) to the clipped update;
//! 3. account for the privacy cost of the whole training run.
//!
//! [`GaussianMechanism`] implements steps 1–2 over raw `f32` slices (so it
//! can be applied to any algorithm's upload payload), and
//! [`PrivacyAccountant`] implements step 3 using zero-concentrated
//! differential privacy: a single Gaussian release with multiplier `σ`
//! costs `ρ = 1/(2σ²)`; with client subsampling at rate `q` the standard
//! (and slightly conservative at small `q·ρ`) approximation `ρ_round ≈
//! q²/(2σ²)` is used; zCDP composes additively over rounds and converts to
//! `(ε, δ)`-DP via `ε = ρ + 2·√(ρ·ln(1/δ))`.

use fedadmm_core::engine::WireGuard;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::StandardNormal;
use serde::{Deserialize, Serialize};

/// Clipping + Gaussian noise applied to one uploaded vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMechanism {
    /// ℓ₂ clipping norm `C`: updates longer than this are scaled down to it.
    pub clip_norm: f32,
    /// Noise multiplier `σ`: the per-coordinate noise standard deviation is
    /// `σ · C`. `σ = 0` disables the noise (clipping only).
    pub noise_multiplier: f32,
}

impl GaussianMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics if `clip_norm <= 0` or `noise_multiplier < 0`.
    pub fn new(clip_norm: f32, noise_multiplier: f32) -> Self {
        assert!(clip_norm > 0.0, "the clipping norm must be positive");
        assert!(
            noise_multiplier >= 0.0,
            "the noise multiplier cannot be negative"
        );
        GaussianMechanism {
            clip_norm,
            noise_multiplier,
        }
    }

    /// Clips `update` in place to ℓ₂ norm `clip_norm` and returns the factor
    /// that was applied (1.0 when no clipping was needed). The norm uses the
    /// lane-chunked [`fedadmm_tensor::vecops::norm`] kernel — a serial
    /// sum-of-squares fold
    /// cannot vectorize, and this runs once per upload on the wire path.
    pub fn clip(&self, update: &mut [f32]) -> f32 {
        let norm = fedadmm_tensor::vecops::norm(update);
        if norm <= self.clip_norm || norm == 0.0 {
            return 1.0;
        }
        let factor = self.clip_norm / norm;
        for v in update.iter_mut() {
            *v *= factor;
        }
        factor
    }

    /// Adds `N(0, (σ·C)²)` noise to every coordinate, using `seed` so the
    /// simulation stays deterministic.
    ///
    /// Noise generation sits on the engine's wire hot path (one call per
    /// upload, d draws each), so samples come from `rand_distr`'s ziggurat
    /// [`StandardNormal`]: the common case is one generator step plus a
    /// table lookup and multiply, with no transcendentals — several times
    /// cheaper per coordinate than Box–Muller or the polar method.
    pub fn add_noise(&self, update: &mut [f32], seed: u64) {
        if self.noise_multiplier == 0.0 {
            return;
        }
        let std = self.noise_multiplier * self.clip_norm;
        let mut rng = SmallRng::seed_from_u64(seed);
        for v in update.iter_mut() {
            let z: f32 = rng.sample(StandardNormal);
            *v += std * z;
        }
    }

    /// Clips then noises `update` in place — the full mechanism.
    pub fn privatize(&self, update: &mut [f32], seed: u64) {
        self.clip(update);
        self.add_noise(update, seed);
    }
}

/// Plugs the Gaussian mechanism into the engine's fused wire path: each
/// dispatch worker clips + noises the raw update in place *before*
/// quantization, inside the same timed dispatch window, so privacy-on adds
/// no extra pass over the cohort on the server side.
///
/// The seed the engine hands over is already derived per
/// `(seed, round, client)` (see `fedadmm_core::engine::wire::guard_seed`),
/// which keeps private wire runs exactly reproducible.
impl WireGuard for GaussianMechanism {
    fn name(&self) -> &'static str {
        "gaussian-dp"
    }

    fn privatize(&self, update: &mut [f32], seed: u64) {
        self.clip(update);
        self.add_noise(update, seed);
    }
}

/// The cumulative privacy guarantee of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacySpent {
    /// zCDP parameter ρ accumulated so far.
    pub rho_zcdp: f64,
    /// The ε of the equivalent (ε, δ)-DP guarantee.
    pub epsilon: f64,
    /// The δ at which ε was computed.
    pub delta: f64,
    /// Rounds accounted for.
    pub rounds: usize,
}

/// Composes the per-round zCDP cost of subsampled Gaussian releases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyAccountant {
    /// Noise multiplier σ used every round.
    pub noise_multiplier: f64,
    /// Client sampling rate `q = |S_t| / m` per round.
    pub sampling_rate: f64,
    /// Target δ of the reported (ε, δ) guarantee.
    pub delta: f64,
    rho_accumulated: f64,
    rounds: usize,
}

impl PrivacyAccountant {
    /// Creates an accountant for a run with the given mechanism parameters.
    ///
    /// # Panics
    /// Panics if `noise_multiplier <= 0`, `sampling_rate ∉ (0, 1]` or
    /// `delta ∉ (0, 1)`.
    pub fn new(noise_multiplier: f64, sampling_rate: f64, delta: f64) -> Self {
        assert!(
            noise_multiplier > 0.0,
            "privacy accounting needs a positive noise multiplier"
        );
        assert!(
            sampling_rate > 0.0 && sampling_rate <= 1.0,
            "the sampling rate must lie in (0, 1]"
        );
        assert!(delta > 0.0 && delta < 1.0, "δ must lie in (0, 1)");
        PrivacyAccountant {
            noise_multiplier,
            sampling_rate,
            delta,
            rho_accumulated: 0.0,
            rounds: 0,
        }
    }

    /// The zCDP cost of one round:
    /// `ρ_round = q² / (2σ²)` (amplification-by-subsampling approximation;
    /// exact, `1/(2σ²)`, when `q = 1`).
    pub fn rho_per_round(&self) -> f64 {
        let q = self.sampling_rate;
        q * q / (2.0 * self.noise_multiplier * self.noise_multiplier)
    }

    /// Records `rounds` additional rounds.
    pub fn step(&mut self, rounds: usize) {
        self.rounds += rounds;
        self.rho_accumulated += rounds as f64 * self.rho_per_round();
    }

    /// The guarantee accumulated so far.
    pub fn spent(&self) -> PrivacySpent {
        let rho = self.rho_accumulated;
        let epsilon = rho + 2.0 * (rho * (1.0 / self.delta).ln()).sqrt();
        PrivacySpent {
            rho_zcdp: rho,
            epsilon,
            delta: self.delta,
            rounds: self.rounds,
        }
    }

    /// The guarantee a run of `rounds` rounds would have (without mutating
    /// the accountant) — handy for planning a privacy budget up front.
    pub fn forecast(&self, rounds: usize) -> PrivacySpent {
        let rho = self.rho_accumulated + rounds as f64 * self.rho_per_round();
        let epsilon = rho + 2.0 * (rho * (1.0 / self.delta).ln()).sqrt();
        PrivacySpent {
            rho_zcdp: rho,
            epsilon,
            delta: self.delta,
            rounds: self.rounds + rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clipping_preserves_short_updates_and_rescales_long_ones() {
        let mech = GaussianMechanism::new(1.0, 0.0);
        let mut short = vec![0.3, 0.4]; // norm 0.5 < 1
        assert_eq!(mech.clip(&mut short), 1.0);
        assert_eq!(short, vec![0.3, 0.4]);

        let mut long = vec![3.0, 4.0]; // norm 5 > 1
        let factor = mech.clip(&mut long);
        assert!((factor - 0.2).abs() < 1e-7);
        let norm = (long[0] * long[0] + long[1] * long[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        // Direction is preserved.
        assert!((long[1] / long[0] - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn clipping_a_zero_vector_is_a_noop() {
        let mech = GaussianMechanism::new(0.5, 0.0);
        let mut zero = vec![0.0; 4];
        assert_eq!(mech.clip(&mut zero), 1.0);
        assert!(zero.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn noise_is_deterministic_in_seed_and_zero_when_disabled() {
        let mech = GaussianMechanism::new(1.0, 0.5);
        let mut a = vec![0.0f32; 100];
        let mut b = vec![0.0f32; 100];
        mech.add_noise(&mut a, 42);
        mech.add_noise(&mut b, 42);
        assert_eq!(a, b);
        let mut c = vec![0.0f32; 100];
        mech.add_noise(&mut c, 43);
        assert_ne!(a, c);

        let noiseless = GaussianMechanism::new(1.0, 0.0);
        let mut d = vec![1.0f32; 10];
        noiseless.add_noise(&mut d, 0);
        assert_eq!(d, vec![1.0f32; 10]);
    }

    #[test]
    fn noise_magnitude_scales_with_sigma_and_clip_norm() {
        let small = GaussianMechanism::new(1.0, 0.1);
        let large = GaussianMechanism::new(1.0, 1.0);
        let n = 10_000;
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        small.add_noise(&mut a, 7);
        large.add_noise(&mut b, 7);
        let std = |v: &[f32]| {
            (v.iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!((std(&a) - 0.1).abs() < 0.01, "measured σ = {}", std(&a));
        assert!((std(&b) - 1.0).abs() < 0.05, "measured σ = {}", std(&b));
    }

    #[test]
    fn privatize_applies_both_steps() {
        let mech = GaussianMechanism::new(1.0, 0.2);
        let mut update = vec![30.0f32, 40.0];
        mech.privatize(&mut update, 5);
        // After clipping the norm was 1; noise perturbs it but by far less
        // than the original norm of 50.
        let norm = (update[0] * update[0] + update[1] * update[1]).sqrt();
        assert!(norm < 3.0, "norm after privatization: {norm}");
    }

    #[test]
    #[should_panic(expected = "clipping norm must be positive")]
    fn zero_clip_norm_is_rejected() {
        GaussianMechanism::new(0.0, 1.0);
    }

    #[test]
    fn wire_guard_impl_matches_privatize() {
        let mech = GaussianMechanism::new(1.0, 0.3);
        let base: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.25).collect();
        let mut direct = base.clone();
        mech.privatize(&mut direct, 99);
        let mut via_guard = base;
        WireGuard::privatize(&mech, &mut via_guard, 99);
        assert_eq!(direct, via_guard);
        assert_eq!(WireGuard::name(&mech), "gaussian-dp");
    }

    #[test]
    fn accountant_composes_linearly_in_rho() {
        let mut acc = PrivacyAccountant::new(1.0, 0.1, 1e-5);
        assert_eq!(acc.spent().rho_zcdp, 0.0);
        acc.step(100);
        let spent = acc.spent();
        // ρ per round = 0.01/2 = 0.005; 100 rounds → 0.5.
        assert!((spent.rho_zcdp - 0.5).abs() < 1e-12);
        assert_eq!(spent.rounds, 100);
        acc.step(100);
        assert!((acc.spent().rho_zcdp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_grows_sublinearly_in_rounds() {
        // zCDP composition gives ε = O(√T) for fixed per-round cost — the
        // whole point of using it over naive (ε, δ) composition.
        let acc = PrivacyAccountant::new(1.0, 0.1, 1e-5);
        let e100 = acc.forecast(100).epsilon;
        let e400 = acc.forecast(400).epsilon;
        assert!(e400 > e100);
        assert!(
            e400 < 4.0 * e100,
            "ε must compose sublinearly: {e100} vs {e400}"
        );
        // And with everything else fixed, more noise means less ε.
        let quieter = PrivacyAccountant::new(2.0, 0.1, 1e-5);
        assert!(quieter.forecast(100).epsilon < e100);
    }

    #[test]
    fn full_participation_costs_more_than_subsampling() {
        let sub = PrivacyAccountant::new(1.0, 0.1, 1e-5);
        let full = PrivacyAccountant::new(1.0, 1.0, 1e-5);
        assert!(full.rho_per_round() > sub.rho_per_round() * 50.0);
        assert!((full.rho_per_round() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn forecast_does_not_mutate() {
        let acc = PrivacyAccountant::new(1.0, 0.2, 1e-6);
        let _ = acc.forecast(1000);
        assert_eq!(acc.spent().rounds, 0);
        assert_eq!(acc.spent().rho_zcdp, 0.0);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn invalid_sampling_rate_is_rejected() {
        PrivacyAccountant::new(1.0, 0.0, 1e-5);
    }

    #[test]
    #[should_panic(expected = "δ must lie in")]
    fn invalid_delta_is_rejected() {
        PrivacyAccountant::new(1.0, 0.5, 0.0);
    }
}
