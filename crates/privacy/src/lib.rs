//! # fedadmm-privacy
//!
//! Privacy-preserving extensions for the FedADMM framework.
//!
//! The paper notes (Section III, footnote 1) that "standard
//! privacy-preserving methods, such as differential privacy and secure
//! multi-party computation can be combined with FedADMM". This crate
//! implements the two mechanisms that footnote refers to, in the form used
//! throughout the FL literature the paper cites (\[31\]–\[33\]):
//!
//! * [`dp`] — update clipping and the Gaussian mechanism, with a zero-
//!   concentrated-DP (zCDP) accountant that composes the per-round cost over
//!   a training run and converts it to an (ε, δ) guarantee;
//! * [`secure_agg`] — pairwise-mask secure aggregation: each pair of
//!   participating clients derives a shared mask from a common seed, one
//!   adds it and the other subtracts it, so individual updates are hidden
//!   from the server while the *sum* — the only quantity the FedADMM server
//!   update (equation 5) needs — is recovered exactly;
//! * [`wrapper`] — [`wrapper::PrivateAlgorithm`], an adapter that wraps any
//!   [`fedadmm_core::algorithms::Algorithm`] and applies clipping + noise to
//!   every uploaded vector, so FedADMM/FedAvg/FedProx/SCAFFOLD can be made
//!   differentially private without touching their implementations.
//!
//! The important compatibility property — and the reason these mechanisms
//! compose cleanly with FedADMM — is that the server only ever consumes the
//! *average* of the uploaded messages; it never needs an individual client's
//! `Δ_i` (Algorithm 1, line 10). Masking therefore cancels exactly, and DP
//! noise averages down with the number of participants.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dp;
pub mod secure_agg;
pub mod wrapper;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::dp::{GaussianMechanism, PrivacyAccountant, PrivacySpent};
    pub use crate::secure_agg::SecureAggregator;
    pub use crate::wrapper::PrivateAlgorithm;
}
