//! A hand-rolled metrics registry: counters, gauges and fixed-bucket
//! histograms.
//!
//! Instruments are registered once by name and then updated through cheap
//! integer handles, so the hot path never hashes a string or allocates.
//! Histograms use *fixed* bucket bounds chosen at registration (exponential
//! or linear grids); observation is a linear scan over a handful of bounds,
//! and quantiles are estimated by linear interpolation inside the bucket —
//! the same scheme Prometheus uses, accurate to a bucket width.
//!
//! [`MetricsRegistry::to_json`] exports everything as one `serde_json`
//! [`Value`] so metric snapshots, trace JSONL and run histories all flow
//! through the same vendored serializer.

use serde_json::{json, Value};

/// Handle of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A monotonically increasing event count.
#[derive(Debug, Clone, PartialEq)]
struct Counter {
    name: String,
    value: u64,
}

/// A point-in-time measurement that can move both ways.
#[derive(Debug, Clone, PartialEq)]
struct GaugeCell {
    name: String,
    value: f64,
    set: bool,
}

/// A fixed-bucket histogram of `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    /// Observations above the last bound land in an implicit +∞ bucket.
    bounds: Vec<f64>,
    /// One count per finite bucket plus the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation
    /// within the bucket that holds the target rank. The overflow bucket
    /// reports the observed maximum.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if (next as f64) >= target {
                if idx >= self.bounds.len() {
                    return self.max;
                }
                let lo = if idx == 0 {
                    self.min.min(self.bounds[0])
                } else {
                    self.bounds[idx - 1]
                };
                let hi = self.bounds[idx];
                let into = (target - cumulative as f64) / c as f64;
                return (lo + (hi - lo) * into.clamp(0.0, 1.0))
                    .clamp(self.min.min(hi), self.max.max(lo));
            }
            cumulative = next;
        }
        self.max
    }

    /// `(bound, cumulative_count)` pairs, ending with the +∞ bucket.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cumulative = 0;
        let mut out = Vec::with_capacity(self.counts.len());
        for (idx, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            let bound = self.bounds.get(idx).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cumulative));
        }
        out
    }

    fn to_json(&self) -> Value {
        json!({
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean(),
            "min": self.min(),
            "max": self.max(),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        })
    }
}

/// Builds `count` exponential bucket bounds starting at `start` and growing
/// by `factor` (the usual latency grid).
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0);
    let mut bounds = Vec::with_capacity(count);
    let mut bound = start;
    for _ in 0..count {
        bounds.push(bound);
        bound *= factor;
    }
    bounds
}

/// Builds `count` linear bucket bounds `start, start+width, …`.
pub fn linear_buckets(start: f64, width: f64, count: usize) -> Vec<f64> {
    assert!(width > 0.0 && count > 0);
    (0..count).map(|i| start + width * i as f64).collect()
}

/// The registry holding every instrument (see the [module docs](self)).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<Counter>,
    gauges: Vec<GaugeCell>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(idx) = self.counters.iter().position(|c| c.name == name) {
            return CounterId(idx);
        }
        self.counters.push(Counter {
            name: name.to_string(),
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or looks up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(idx) = self.gauges.iter().position(|g| g.name == name) {
            return GaugeId(idx);
        }
        self.gauges.push(GaugeCell {
            name: name.to_string(),
            value: 0.0,
            set: false,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or looks up) a histogram by name. The bounds are fixed at
    /// first registration; later calls with the same name reuse them.
    pub fn histogram(&mut self, name: &str, bounds: Vec<f64>) -> HistogramId {
        if let Some(idx) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(idx);
        }
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && !bounds.is_empty(),
            "histogram bounds must be non-empty and strictly increasing"
        );
        self.histograms
            .push((name.to_string(), Histogram::new(bounds)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].value += by;
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].value = value;
        self.gauges[id.0].set = true;
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.observe(value);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Current value of a gauge (`None` if never set).
    pub fn gauge_value(&self, id: GaugeId) -> Option<f64> {
        let g = &self.gauges[id.0];
        g.set.then_some(g.value)
    }

    /// Looks up a counter's value by name.
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge's value by name (set gauges only).
    pub fn gauge_by_name(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.set)
            .map(|g| g.value)
    }

    /// Read access to a histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Looks up a histogram by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Exports every instrument as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .iter()
            .map(|c| (c.name.clone(), json!(c.value)))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .gauges
            .iter()
            .filter(|g| g.set)
            .map(|g| (g.name.clone(), json!(g.value)))
            .collect();
        let histograms: Vec<(String, Value)> = self
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.to_json()))
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip_through_handles() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("rounds_total");
        let g = reg.gauge("accuracy");
        assert_eq!(reg.gauge_value(g), None);
        reg.inc(c, 3);
        reg.inc(c, 2);
        reg.set(g, 0.91);
        assert_eq!(reg.counter_value(c), 5);
        assert_eq!(reg.gauge_value(g), Some(0.91));
        // Re-registration returns the same handle.
        assert_eq!(reg.counter("rounds_total"), c);
        assert_eq!(reg.counter_by_name("rounds_total"), Some(5));
        assert_eq!(reg.gauge_by_name("accuracy"), Some(0.91));
    }

    #[test]
    fn histogram_quantiles_are_bucket_accurate() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("latency", linear_buckets(1.0, 1.0, 10));
        for v in 1..=100 {
            reg.observe(h, (v % 10) as f64 + 0.5);
        }
        let hist = reg.histogram_ref(h);
        assert_eq!(hist.count(), 100);
        // Values are 0.5..9.5 uniformly; the median sits near 4.5–5.5.
        let p50 = hist.quantile(0.5);
        assert!((4.0..=6.0).contains(&p50), "p50 = {p50}");
        assert!(hist.quantile(1.0) >= 9.0);
        assert_eq!(hist.quantile(0.0).floor(), 0.0);
        assert!(hist.mean() > 4.0 && hist.mean() < 6.0);
    }

    #[test]
    fn histogram_overflow_bucket_reports_observed_max() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("staleness", exponential_buckets(1.0, 2.0, 4));
        reg.observe(h, 100.0); // beyond the last bound (8.0)
        reg.observe(h, 0.0);
        let hist = reg.histogram_ref(h);
        assert_eq!(hist.quantile(0.99), 100.0);
        assert_eq!(hist.min(), 0.0);
        assert_eq!(hist.max(), 100.0);
        let buckets = hist.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, 2);
        assert!(buckets.last().unwrap().0.is_infinite());
    }

    #[test]
    fn bucket_grids() {
        assert_eq!(exponential_buckets(1.0, 10.0, 3), vec![1.0, 10.0, 100.0]);
        assert_eq!(linear_buckets(0.0, 2.5, 3), vec![0.0, 2.5, 5.0]);
    }

    #[test]
    fn json_export_has_all_sections() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("uploads");
        reg.inc(c, 7);
        let g = reg.gauge("rss");
        reg.set(g, 1234.0);
        let _unset = reg.gauge("never_set");
        let h = reg.histogram("wall", linear_buckets(1.0, 1.0, 4));
        reg.observe(h, 2.0);
        let v = reg.to_json();
        assert_eq!(v["counters"]["uploads"].as_u64(), Some(7));
        assert_eq!(v["gauges"]["rss"].as_f64(), Some(1234.0));
        assert!(v["gauges"]["never_set"].is_null());
        assert_eq!(v["histograms"]["wall"]["count"].as_u64(), Some(1));
        // The export round-trips through the shared serializer.
        let text = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
