//! Process-level probes: resident-set-size readings from the kernel.
//!
//! The bench harness records **peak RSS** alongside throughput so that
//! memory regressions (e.g. a scheduler that starts materializing per-client
//! state eagerly) show up in the `BENCH_*.json` trajectory, not just in
//! out-of-memory kills at scale. On Linux the numbers come from
//! `/proc/self/status` (`VmHWM` = peak, `VmRSS` = current); elsewhere the
//! probes return `None` and the exporters record `null`.

/// Peak resident set size of this process in bytes (`VmHWM`).
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_kib("VmHWM:").map(|kib| kib * 1024)
}

/// Current resident set size of this process in bytes (`VmRSS`).
pub fn current_rss_bytes() -> Option<u64> {
    read_status_kib("VmRSS:").map(|kib| kib * 1024)
}

/// Reads a `kB`-denominated field from `/proc/self/status`.
fn read_status_kib(field: &str) -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            // Format: "VmHWM:\t  123456 kB"
            return rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse::<u64>().ok());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_probes_report_plausible_values() {
        let peak = peak_rss_bytes().expect("VmHWM is present on Linux");
        let current = current_rss_bytes().expect("VmRSS is present on Linux");
        // A running test binary occupies at least a few hundred KiB and
        // (sanity bound) less than a terabyte.
        assert!(peak > 100 * 1024, "peak RSS {peak} too small");
        assert!(peak < 1 << 40, "peak RSS {peak} implausibly large");
        assert!(
            current <= peak + (64 << 20),
            "current {current} > peak {peak}"
        );
    }
}
