//! The [`Telemetry`] hook trait the simulation engine drives, its no-op
//! default, and the full [`Recorder`] implementation.
//!
//! The engine calls these hooks at fixed points of every round — snapshot
//! downloads, per-client local updates (timed on the scoped worker threads),
//! uploads, the fused server-aggregation pass, arrival events and round
//! close. [`NoTelemetry`] implements every hook as an empty default and
//! reports `enabled() == false`, which the engine uses to skip timing
//! altogether — the uninstrumented hot path stays allocation-free and
//! byte-identical to the pre-telemetry engine. [`Recorder`] turns the same
//! hooks into tracer spans and registry metrics.

use crate::metrics::{
    exponential_buckets, linear_buckets, CounterId, GaugeId, HistogramId, MetricsRegistry,
};
use crate::process::peak_rss_bytes;
use crate::trace::{SpanId, Tracer};
use serde_json::Value;
use std::any::Any;

/// Everything the engine knows about a round at close time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSummary {
    /// Round index (0-based).
    pub round: usize,
    /// Wall-clock (synchronous schedules) or virtual (event-driven
    /// schedules) duration of the round in seconds.
    pub wall_seconds: f64,
    /// Number of client updates aggregated.
    pub num_selected: usize,
    /// Floats uploaded by clients for this round.
    pub upload_floats: usize,
    /// Test accuracy after the round's server update.
    pub test_accuracy: f64,
    /// Mean test loss after the round's server update.
    pub test_loss: f64,
    /// Mean staleness of the arrivals folded into this round (0 for
    /// synchronous schedules).
    pub staleness_mean: f64,
    /// Maximum staleness of the arrivals folded into this round.
    pub staleness_max: usize,
}

/// What one parallel dispatch batch looked like to the work-stealing pool.
///
/// Emitted once per [`Telemetry::on_dispatch`] call, after the batch's
/// messages have been collected. `busy_seconds` is indexed by worker and
/// only populated when [`Telemetry::enabled`] returned true for the batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchSummary<'a> {
    /// Jobs (client updates) executed in the batch.
    pub jobs: u64,
    /// Workers the pool ran the batch on (1 = the serial inline path).
    pub workers: usize,
    /// Chunk size jobs were claimed in (0 = static partitioning).
    pub chunk_size: usize,
    /// Chunks claimed from the shared cursor across all workers.
    pub chunks: u64,
    /// Chunk claims beyond each worker's first — work that static
    /// partitioning would have left queued behind a straggler.
    pub steals: u64,
    /// Per-worker busy time in seconds (empty when timing was disabled).
    pub busy_seconds: &'a [f64],
}

/// Observability hooks threaded through the engine (see [module docs](self)).
///
/// Every method has an empty default body, so implementors override only
/// what they consume. Implementations must be `Send`: per-client timings are
/// *measured* on the dispatch worker threads but always *reported* from the
/// engine thread, so hooks themselves never race.
pub trait Telemetry: Send {
    /// Whether the expensive instrumentation (per-client `Instant` reads,
    /// span bookkeeping) should run. The engine consults this once per
    /// dispatch batch; `false` keeps the hot path identical to an
    /// uninstrumented build.
    fn enabled(&self) -> bool {
        false
    }

    /// A scheduler tick is starting (`scheduler` is [`Scheduler::name`]-style
    /// static label).
    fn on_tick_start(&mut self, scheduler: &'static str, round: usize) {
        let _ = (scheduler, round);
    }

    /// The tick that started with the same arguments has finished.
    fn on_tick_end(&mut self, scheduler: &'static str, round: usize) {
        let _ = (scheduler, round);
    }

    /// A named phase of a tick (e.g. `"dispatch"`, `"aggregate"`) starts.
    fn on_phase_start(&mut self, phase: &'static str, round: usize) {
        let _ = (phase, round);
    }

    /// The named phase ends.
    fn on_phase_end(&mut self, phase: &'static str, round: usize) {
        let _ = (phase, round);
    }

    /// A client downloaded a model snapshot of `floats` parameters.
    fn on_download(&mut self, round: usize, client: usize, floats: usize) {
        let _ = (round, client, floats);
    }

    /// A client finished its local update. `seconds` is measured on the
    /// worker thread (0 when `enabled()` is false).
    fn on_client_update(
        &mut self,
        round: usize,
        client: usize,
        seconds: f64,
        epochs: usize,
        samples: usize,
    ) {
        let _ = (round, client, seconds, epochs, samples);
    }

    /// Clients uploaded `floats` parameters to the server.
    fn on_upload(&mut self, floats: usize) {
        let _ = floats;
    }

    /// Clients uploaded `bytes` over the wire (the quantized size when the
    /// engine's wire path is on, the dense `4 · floats` size otherwise).
    fn on_wire_upload(&mut self, bytes: usize) {
        let _ = bytes;
    }

    /// The server folded `num_messages` payloads into θ in `seconds`
    /// (the fused single-pass aggregation).
    fn on_aggregate(&mut self, round: usize, num_messages: usize, seconds: f64) {
        let _ = (round, num_messages, seconds);
    }

    /// The global model was evaluated on the test set in `seconds`.
    fn on_eval(&mut self, round: usize, seconds: f64) {
        let _ = (round, seconds);
    }

    /// An update arrived at the server with the given staleness and was
    /// applied with `weight` (0 = dropped).
    fn on_arrival(&mut self, client: usize, staleness: usize, weight: f32) {
        let _ = (client, staleness, weight);
    }

    /// A round closed; `summary` carries everything the history records.
    fn on_round_end(&mut self, summary: &RoundSummary) {
        let _ = summary;
    }

    /// A named scalar diagnostic (e.g. the optimality gap `V_t`) was
    /// computed for the current round.
    fn on_gauge(&mut self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// The client-state store's cumulative operation counters at round
    /// close. Values are monotone totals since the store was built;
    /// implementations that keep counters should diff against the previous
    /// report (as [`Recorder`] does).
    fn on_store_stats(
        &mut self,
        materializations: u64,
        spill_writes: u64,
        spill_loads: u64,
        evictions: u64,
    ) {
        let _ = (materializations, spill_writes, spill_loads, evictions);
    }

    /// One per-shard partial fold of the hierarchical server aggregation
    /// finished: `messages` payloads were folded for `shard` in `seconds`.
    fn on_shard_fold(&mut self, round: usize, shard: usize, messages: usize, seconds: f64) {
        let _ = (round, shard, messages, seconds);
    }

    /// A parallel dispatch batch finished; `summary` carries the pool's
    /// chunk/steal counters and per-worker busy times.
    fn on_dispatch(&mut self, round: usize, summary: &DispatchSummary<'_>) {
        let _ = (round, summary);
    }

    /// Downcast support so callers can recover a concrete implementation
    /// (e.g. a [`Recorder`]) from a `dyn Telemetry`.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        None
    }
}

/// The default hook: does nothing, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTelemetry;

impl Telemetry for NoTelemetry {}

/// Metric names the [`Recorder`] registers (public so tests and exporters
/// can look them up by name).
pub mod names {
    /// Counter: rounds completed.
    pub const ROUNDS_TOTAL: &str = "rounds_total";
    /// Counter: client local updates completed.
    pub const CLIENT_UPDATES_TOTAL: &str = "client_updates_total";
    /// Counter: server aggregation passes.
    pub const AGGREGATIONS_TOTAL: &str = "aggregations_total";
    /// Counter: arrivals dropped by staleness policies (weight 0).
    pub const DROPPED_ARRIVALS_TOTAL: &str = "dropped_arrivals_total";
    /// Counter: floats uploaded client → server.
    pub const UPLOAD_FLOATS_TOTAL: &str = "upload_floats_total";
    /// Counter: true bytes uploaded client → server (quantized wire size
    /// when the engine's wire path is on, dense `4 · floats` otherwise).
    pub const WIRE_BYTES_TOTAL: &str = "wire_bytes_total";
    /// Counter: floats downloaded server → client (θ snapshots).
    pub const BROADCAST_FLOATS_TOTAL: &str = "broadcast_floats_total";
    /// Counter: local epochs run.
    pub const LOCAL_EPOCHS_TOTAL: &str = "local_epochs_total";
    /// Counter: training samples processed.
    pub const SAMPLES_TOTAL: &str = "samples_total";
    /// Histogram: round wall time in seconds.
    pub const ROUND_WALL_SECONDS: &str = "round_wall_seconds";
    /// Histogram: per-client local-update compute seconds.
    pub const CLIENT_COMPUTE_SECONDS: &str = "client_compute_seconds";
    /// Histogram: fused server-aggregation pass seconds.
    pub const AGGREGATE_SECONDS: &str = "aggregate_seconds";
    /// Histogram: global-model evaluation seconds.
    pub const EVAL_SECONDS: &str = "eval_seconds";
    /// Histogram: staleness (rounds) of applied/dropped arrivals.
    pub const STALENESS_ROUNDS: &str = "staleness_rounds";
    /// Gauge: latest test accuracy.
    pub const TEST_ACCURACY: &str = "test_accuracy";
    /// Gauge: latest test loss.
    pub const TEST_LOSS: &str = "test_loss";
    /// Gauge: peak resident set size in bytes (`VmHWM`).
    pub const PEAK_RSS_BYTES: &str = "peak_rss_bytes";
    /// Gauge: bytes of client state resident in the store.
    pub const STORE_RESIDENT_BYTES: &str = "store_resident_bytes";
    /// Counter: client states materialized lazily by the store.
    pub const STORE_MATERIALIZATIONS_TOTAL: &str = "store_materializations_total";
    /// Counter: shards spilled to disk by the store.
    pub const STORE_SPILL_WRITES_TOTAL: &str = "store_spill_writes_total";
    /// Counter: shards loaded back from disk by the store.
    pub const STORE_SPILL_LOADS_TOTAL: &str = "store_spill_loads_total";
    /// Counter: shard evictions performed by the store's budget enforcement.
    pub const STORE_EVICTIONS_TOTAL: &str = "store_evictions_total";
    /// Counter: per-shard partial folds of the hierarchical aggregation.
    pub const SHARD_FOLDS_TOTAL: &str = "shard_folds_total";
    /// Histogram: per-shard partial-fold seconds.
    pub const SHARD_FOLD_SECONDS: &str = "shard_fold_seconds";
    /// Counter: chunks claimed from the dispatch pool's shared cursor.
    pub const DISPATCH_CHUNKS_TOTAL: &str = "dispatch_chunks_total";
    /// Counter: chunk claims beyond each worker's first (stolen work).
    pub const DISPATCH_STEALS_TOTAL: &str = "dispatch_steals_total";
    /// Histogram: per-worker busy seconds within one dispatch batch.
    pub const WORKER_BUSY_SECONDS: &str = "worker_busy_seconds";
    /// Gauge: max/mean per-worker busy time of the latest dispatch batch
    /// (1.0 = perfectly balanced).
    pub const DISPATCH_IMBALANCE: &str = "dispatch_imbalance";
}

/// The full-fat hook: every engine callback becomes tracer spans and
/// registry metrics, exportable as JSONL / JSON through the shared
/// vendored serializer.
#[derive(Debug)]
pub struct Recorder {
    tracer: Tracer,
    metrics: MetricsRegistry,
    c_rounds: CounterId,
    c_client_updates: CounterId,
    c_aggregations: CounterId,
    c_dropped: CounterId,
    c_upload: CounterId,
    c_wire_bytes: CounterId,
    c_broadcast: CounterId,
    c_epochs: CounterId,
    c_samples: CounterId,
    h_round_wall: HistogramId,
    h_client_compute: HistogramId,
    h_aggregate: HistogramId,
    h_eval: HistogramId,
    h_staleness: HistogramId,
    g_accuracy: GaugeId,
    g_loss: GaugeId,
    g_peak_rss: GaugeId,
    c_store_materializations: CounterId,
    c_store_spill_writes: CounterId,
    c_store_spill_loads: CounterId,
    c_store_evictions: CounterId,
    c_shard_folds: CounterId,
    h_shard_fold: HistogramId,
    c_dispatch_chunks: CounterId,
    c_dispatch_steals: CounterId,
    h_worker_busy: HistogramId,
    g_dispatch_imbalance: GaugeId,
    /// Last monotone store totals seen by `on_store_stats`, so the counters
    /// can be incremented by the delta.
    last_store: [u64; 4],
    /// Open tick span (at most one at a time; ticks never nest).
    tick_span: Option<SpanId>,
    /// Open phase spans, innermost last.
    phase_spans: Vec<(SpanId, &'static str)>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates a recorder with the default trace-ring capacity.
    pub fn new() -> Self {
        Recorder::with_trace_capacity(crate::trace::DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a recorder whose trace ring keeps `capacity` records.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        let mut metrics = MetricsRegistry::new();
        let seconds_grid = exponential_buckets(1e-5, 2.0, 30); // 10 µs … ~3 h
        let c_rounds = metrics.counter(names::ROUNDS_TOTAL);
        let c_client_updates = metrics.counter(names::CLIENT_UPDATES_TOTAL);
        let c_aggregations = metrics.counter(names::AGGREGATIONS_TOTAL);
        let c_dropped = metrics.counter(names::DROPPED_ARRIVALS_TOTAL);
        let c_upload = metrics.counter(names::UPLOAD_FLOATS_TOTAL);
        let c_wire_bytes = metrics.counter(names::WIRE_BYTES_TOTAL);
        let c_broadcast = metrics.counter(names::BROADCAST_FLOATS_TOTAL);
        let c_epochs = metrics.counter(names::LOCAL_EPOCHS_TOTAL);
        let c_samples = metrics.counter(names::SAMPLES_TOTAL);
        let h_round_wall = metrics.histogram(names::ROUND_WALL_SECONDS, seconds_grid.clone());
        let h_client_compute =
            metrics.histogram(names::CLIENT_COMPUTE_SECONDS, seconds_grid.clone());
        let h_aggregate = metrics.histogram(names::AGGREGATE_SECONDS, seconds_grid.clone());
        let h_eval = metrics.histogram(names::EVAL_SECONDS, seconds_grid.clone());
        let h_staleness = metrics.histogram(names::STALENESS_ROUNDS, linear_buckets(0.0, 1.0, 64));
        let g_accuracy = metrics.gauge(names::TEST_ACCURACY);
        let g_loss = metrics.gauge(names::TEST_LOSS);
        let g_peak_rss = metrics.gauge(names::PEAK_RSS_BYTES);
        let c_store_materializations = metrics.counter(names::STORE_MATERIALIZATIONS_TOTAL);
        let c_store_spill_writes = metrics.counter(names::STORE_SPILL_WRITES_TOTAL);
        let c_store_spill_loads = metrics.counter(names::STORE_SPILL_LOADS_TOTAL);
        let c_store_evictions = metrics.counter(names::STORE_EVICTIONS_TOTAL);
        let c_shard_folds = metrics.counter(names::SHARD_FOLDS_TOTAL);
        let h_shard_fold = metrics.histogram(names::SHARD_FOLD_SECONDS, seconds_grid.clone());
        let c_dispatch_chunks = metrics.counter(names::DISPATCH_CHUNKS_TOTAL);
        let c_dispatch_steals = metrics.counter(names::DISPATCH_STEALS_TOTAL);
        let h_worker_busy = metrics.histogram(names::WORKER_BUSY_SECONDS, seconds_grid);
        let g_dispatch_imbalance = metrics.gauge(names::DISPATCH_IMBALANCE);
        Recorder {
            tracer: Tracer::new(capacity),
            metrics,
            c_rounds,
            c_client_updates,
            c_aggregations,
            c_dropped,
            c_upload,
            c_wire_bytes,
            c_broadcast,
            c_epochs,
            c_samples,
            h_round_wall,
            h_client_compute,
            h_aggregate,
            h_eval,
            h_staleness,
            g_accuracy,
            g_loss,
            g_peak_rss,
            c_store_materializations,
            c_store_spill_writes,
            c_store_spill_loads,
            c_store_evictions,
            c_shard_folds,
            h_shard_fold,
            c_dispatch_chunks,
            c_dispatch_steals,
            h_worker_busy,
            g_dispatch_imbalance,
            last_store: [0; 4],
            tick_span: None,
            phase_spans: Vec::new(),
        }
    }

    /// Read access to the metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry (for custom instruments).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Read access to the tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the tracer (for user-level [`span!`](crate::span)s).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Exports the trace ring as JSON lines.
    pub fn trace_json_lines(&self) -> String {
        self.tracer.to_json_lines()
    }

    /// Refreshes the peak-RSS gauge and exports the metrics registry as one
    /// JSON object.
    pub fn metrics_json(&mut self) -> Value {
        if let Some(peak) = peak_rss_bytes() {
            self.metrics.set(self.g_peak_rss, peak as f64);
        }
        self.metrics.to_json()
    }
}

impl Telemetry for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn on_tick_start(&mut self, scheduler: &'static str, round: usize) {
        self.tick_span = Some(self.tracer.start_with(scheduler, Some(round as u64), None));
    }

    fn on_tick_end(&mut self, _scheduler: &'static str, _round: usize) {
        if let Some(id) = self.tick_span.take() {
            self.tracer.end(id);
        }
    }

    fn on_phase_start(&mut self, phase: &'static str, round: usize) {
        let id = self.tracer.start_with(phase, Some(round as u64), None);
        self.phase_spans.push((id, phase));
    }

    fn on_phase_end(&mut self, phase: &'static str, _round: usize) {
        if let Some(pos) = self.phase_spans.iter().rposition(|(_, p)| *p == phase) {
            let (id, _) = self.phase_spans.remove(pos);
            self.tracer.end(id);
        }
    }

    fn on_download(&mut self, _round: usize, _client: usize, floats: usize) {
        self.metrics.inc(self.c_broadcast, floats as u64);
    }

    fn on_client_update(
        &mut self,
        round: usize,
        client: usize,
        seconds: f64,
        epochs: usize,
        samples: usize,
    ) {
        self.metrics.inc(self.c_client_updates, 1);
        self.metrics.inc(self.c_epochs, epochs as u64);
        self.metrics.inc(self.c_samples, samples as u64);
        self.metrics.observe(self.h_client_compute, seconds);
        self.tracer.complete(
            "local_update",
            seconds,
            Some(round as u64),
            Some(client as u64),
        );
    }

    fn on_upload(&mut self, floats: usize) {
        self.metrics.inc(self.c_upload, floats as u64);
    }

    fn on_wire_upload(&mut self, bytes: usize) {
        self.metrics.inc(self.c_wire_bytes, bytes as u64);
    }

    fn on_aggregate(&mut self, round: usize, num_messages: usize, seconds: f64) {
        let _ = num_messages;
        self.metrics.inc(self.c_aggregations, 1);
        self.metrics.observe(self.h_aggregate, seconds);
        self.tracer
            .complete("server_fold", seconds, Some(round as u64), None);
    }

    fn on_eval(&mut self, round: usize, seconds: f64) {
        self.metrics.observe(self.h_eval, seconds);
        self.tracer
            .complete("evaluate", seconds, Some(round as u64), None);
    }

    fn on_arrival(&mut self, client: usize, staleness: usize, weight: f32) {
        self.metrics.observe(self.h_staleness, staleness as f64);
        if weight <= 0.0 {
            self.metrics.inc(self.c_dropped, 1);
        }
        self.tracer.event("arrival", None, Some(client as u64));
    }

    fn on_round_end(&mut self, summary: &RoundSummary) {
        self.metrics.inc(self.c_rounds, 1);
        self.metrics
            .observe(self.h_round_wall, summary.wall_seconds);
        self.metrics.set(self.g_accuracy, summary.test_accuracy);
        self.metrics.set(self.g_loss, summary.test_loss);
        self.tracer
            .event("round_end", Some(summary.round as u64), None);
    }

    fn on_gauge(&mut self, name: &'static str, value: f64) {
        let id = self.metrics.gauge(name);
        self.metrics.set(id, value);
    }

    fn on_store_stats(
        &mut self,
        materializations: u64,
        spill_writes: u64,
        spill_loads: u64,
        evictions: u64,
    ) {
        // The store reports monotone totals; turn them into counter deltas.
        let totals = [materializations, spill_writes, spill_loads, evictions];
        let ids = [
            self.c_store_materializations,
            self.c_store_spill_writes,
            self.c_store_spill_loads,
            self.c_store_evictions,
        ];
        for ((total, last), id) in totals.iter().zip(self.last_store.iter_mut()).zip(ids) {
            self.metrics.inc(id, total.saturating_sub(*last));
            *last = *total;
        }
    }

    fn on_shard_fold(&mut self, round: usize, shard: usize, messages: usize, seconds: f64) {
        let _ = messages;
        self.metrics.inc(self.c_shard_folds, 1);
        self.metrics.observe(self.h_shard_fold, seconds);
        self.tracer.complete(
            "shard_fold",
            seconds,
            Some(round as u64),
            Some(shard as u64),
        );
    }

    fn on_dispatch(&mut self, round: usize, summary: &DispatchSummary<'_>) {
        self.metrics.inc(self.c_dispatch_chunks, summary.chunks);
        self.metrics.inc(self.c_dispatch_steals, summary.steals);
        let busy = summary.busy_seconds;
        if !busy.is_empty() {
            let mut max = 0.0f64;
            let mut sum = 0.0f64;
            for &b in busy {
                self.metrics.observe(self.h_worker_busy, b);
                sum += b;
                if b > max {
                    max = b;
                }
            }
            let mean = sum / busy.len() as f64;
            if mean > 0.0 {
                self.metrics.set(self.g_dispatch_imbalance, max / mean);
            }
        }
        self.tracer
            .event("dispatch_batch", Some(round as u64), None);
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(round: usize) -> RoundSummary {
        RoundSummary {
            round,
            wall_seconds: 0.25,
            num_selected: 3,
            upload_floats: 300,
            test_accuracy: 0.8,
            test_loss: 0.5,
            staleness_mean: 0.5,
            staleness_max: 2,
        }
    }

    #[test]
    fn noop_is_disabled_and_inert() {
        let mut t = NoTelemetry;
        assert!(!t.enabled());
        t.on_tick_start("sync-rounds", 0);
        t.on_client_update(0, 1, 0.0, 2, 30);
        t.on_round_end(&summary(0));
        t.on_tick_end("sync-rounds", 0);
        assert!(t.as_any().is_none());
    }

    #[test]
    fn recorder_accumulates_metrics_and_spans() {
        let mut r = Recorder::with_trace_capacity(64);
        assert!(r.enabled());
        r.on_tick_start("sync-rounds", 0);
        r.on_phase_start("dispatch", 0);
        r.on_download(0, 4, 100);
        r.on_client_update(0, 4, 0.01, 2, 30);
        r.on_phase_end("dispatch", 0);
        r.on_upload(100);
        r.on_wire_upload(108);
        r.on_aggregate(0, 1, 0.002);
        r.on_eval(0, 0.003);
        r.on_arrival(4, 2, 0.5);
        r.on_arrival(5, 9, 0.0);
        r.on_round_end(&summary(0));
        r.on_tick_end("sync-rounds", 0);
        r.on_gauge("optimality_gap", 12.5);

        let m = r.metrics();
        assert_eq!(m.counter_by_name(names::ROUNDS_TOTAL), Some(1));
        assert_eq!(m.counter_by_name(names::CLIENT_UPDATES_TOTAL), Some(1));
        assert_eq!(m.counter_by_name(names::UPLOAD_FLOATS_TOTAL), Some(100));
        assert_eq!(m.counter_by_name(names::WIRE_BYTES_TOTAL), Some(108));
        assert_eq!(m.counter_by_name(names::BROADCAST_FLOATS_TOTAL), Some(100));
        assert_eq!(m.counter_by_name(names::DROPPED_ARRIVALS_TOTAL), Some(1));
        assert_eq!(m.gauge_by_name(names::TEST_ACCURACY), Some(0.8));
        assert_eq!(m.gauge_by_name("optimality_gap"), Some(12.5));
        let staleness = m.histogram_by_name(names::STALENESS_ROUNDS).unwrap();
        assert_eq!(staleness.count(), 2);
        assert_eq!(staleness.max(), 9.0);

        // The tick span is the root; dispatch and local_update nest under it.
        let records = r.tracer().records();
        let tick = records.iter().find(|s| s.name == "sync-rounds").unwrap();
        let dispatch = records.iter().find(|s| s.name == "dispatch").unwrap();
        let local = records.iter().find(|s| s.name == "local_update").unwrap();
        assert_eq!(tick.parent, 0);
        assert_eq!(dispatch.parent, tick.id);
        assert_eq!(local.parent, dispatch.id);
        assert_eq!(local.client, Some(4));
    }

    #[test]
    fn recorder_diffs_store_totals_and_records_shard_folds() {
        let mut r = Recorder::with_trace_capacity(16);
        // The store reports monotone totals; the counters advance by deltas.
        r.on_store_stats(10, 2, 1, 3);
        r.on_store_stats(15, 2, 4, 5);
        let m = r.metrics();
        assert_eq!(
            m.counter_by_name(names::STORE_MATERIALIZATIONS_TOTAL),
            Some(15)
        );
        assert_eq!(m.counter_by_name(names::STORE_SPILL_WRITES_TOTAL), Some(2));
        assert_eq!(m.counter_by_name(names::STORE_SPILL_LOADS_TOTAL), Some(4));
        assert_eq!(m.counter_by_name(names::STORE_EVICTIONS_TOTAL), Some(5));

        r.on_shard_fold(3, 7, 12, 0.001);
        r.on_shard_fold(3, 8, 4, 0.002);
        let m = r.metrics();
        assert_eq!(m.counter_by_name(names::SHARD_FOLDS_TOTAL), Some(2));
        let h = m.histogram_by_name(names::SHARD_FOLD_SECONDS).unwrap();
        assert_eq!(h.count(), 2);
        let records = r.tracer().records();
        let fold = records.iter().find(|s| s.name == "shard_fold").unwrap();
        assert_eq!(fold.round, Some(3));
    }

    #[test]
    fn recorder_tracks_dispatch_batches_and_imbalance() {
        let mut r = Recorder::with_trace_capacity(16);
        r.on_dispatch(
            2,
            &DispatchSummary {
                jobs: 12,
                workers: 4,
                chunk_size: 2,
                chunks: 6,
                steals: 2,
                busy_seconds: &[0.4, 0.1, 0.1, 0.2],
            },
        );
        let m = r.metrics();
        assert_eq!(m.counter_by_name(names::DISPATCH_CHUNKS_TOTAL), Some(6));
        assert_eq!(m.counter_by_name(names::DISPATCH_STEALS_TOTAL), Some(2));
        let busy = m.histogram_by_name(names::WORKER_BUSY_SECONDS).unwrap();
        assert_eq!(busy.count(), 4);
        // max/mean = 0.4 / 0.2 = 2.0
        let imbalance = m.gauge_by_name(names::DISPATCH_IMBALANCE).unwrap();
        assert!((imbalance - 2.0).abs() < 1e-9);
        // No busy data (timing off) leaves the gauge untouched.
        r.on_dispatch(
            3,
            &DispatchSummary {
                jobs: 3,
                workers: 1,
                chunk_size: 3,
                chunks: 1,
                steals: 0,
                busy_seconds: &[],
            },
        );
        assert_eq!(
            r.metrics().counter_by_name(names::DISPATCH_CHUNKS_TOTAL),
            Some(7)
        );
    }

    #[test]
    fn recorder_exports_json() {
        let mut r = Recorder::new();
        r.on_round_end(&summary(0));
        let v = r.metrics_json();
        assert_eq!(v["counters"]["rounds_total"].as_u64(), Some(1));
        #[cfg(target_os = "linux")]
        assert!(v["gauges"]["peak_rss_bytes"].as_f64().unwrap() > 0.0);
        // Trace JSONL parses line by line through the shared serializer.
        r.on_tick_start("semi-async", 1);
        r.on_tick_end("semi-async", 1);
        for line in r.trace_json_lines().lines() {
            let _: crate::trace::SpanRecord = serde_json::from_str(line).unwrap();
        }
    }

    #[test]
    fn recorder_downcasts_through_dyn_telemetry() {
        let mut boxed: Box<dyn Telemetry> = Box::new(Recorder::new());
        boxed.on_round_end(&summary(0));
        let recorder = boxed
            .as_any()
            .and_then(|a| a.downcast_ref::<Recorder>())
            .expect("recorder downcasts");
        assert_eq!(
            recorder.metrics().counter_by_name(names::ROUNDS_TOTAL),
            Some(1)
        );
    }
}
