//! Hand-rolled observability for the FedADMM simulation engine.
//!
//! Everything here is zero-dependency by design (no crates.io): the tracer,
//! the metrics registry and the process probes are small enough to own, and
//! owning them keeps the workspace offline-buildable. Three layers:
//!
//! * [`trace`] — a structured span/event tracer with a bounded ring buffer,
//!   hierarchical parents and a [`span!`] RAII macro; exports JSONL.
//! * [`metrics`] — a registry of counters, gauges and fixed-bucket
//!   histograms updated through pre-registered integer handles.
//! * [`process`] — peak/current RSS probes from `/proc/self/status`.
//!
//! The [`Telemetry`] trait is the seam the engine drives: every hook has a
//! no-op default and the engine gates its own timing on
//! [`Telemetry::enabled`], so a [`NoTelemetry`] run is byte-identical to an
//! uninstrumented build. [`Recorder`] implements the trait on top of the
//! tracer + registry and exports both through the vendored `serde_json`.
//!
//! ```
//! use fedadmm_telemetry::{Recorder, Telemetry};
//!
//! let mut rec = Recorder::new();
//! rec.on_tick_start("sync-rounds", 0);
//! rec.on_client_update(0, 3, 0.012, 2, 600);
//! rec.on_tick_end("sync-rounds", 0);
//! assert_eq!(
//!     rec.metrics().counter_by_name("client_updates_total"),
//!     Some(1)
//! );
//! ```

#![warn(missing_docs)]

pub mod hook;
pub mod metrics;
pub mod process;
pub mod trace;

pub use hook::{names, DispatchSummary, NoTelemetry, Recorder, RoundSummary, Telemetry};
pub use metrics::{
    exponential_buckets, linear_buckets, CounterId, GaugeId, Histogram, HistogramId,
    MetricsRegistry,
};
pub use process::{current_rss_bytes, peak_rss_bytes};
pub use trace::{SpanGuard, SpanId, SpanRecord, Tracer, DEFAULT_TRACE_CAPACITY};
