//! Structured span/event tracing with a bounded ring buffer.
//!
//! A [`Tracer`] records two kinds of things:
//!
//! * **spans** — named intervals with monotonic start/end timestamps and a
//!   hierarchical parent (the innermost span open at the time the child
//!   started), e.g. one `local_update` span per client per round nested
//!   under the round's `tick` span;
//! * **events** — instantaneous points with the same attribute shape.
//!
//! Records carry two fixed attributes, `round` and `client`, instead of an
//! open-ended key/value bag: those are the only dimensions the federated
//! engine needs, and fixed fields keep a record `Copy`-cheap and the hot
//! path free of per-span allocations. Completed records land in a ring
//! buffer of configurable capacity — a long run keeps the most recent
//! window and counts what it dropped, so tracing can stay on for a
//! million-round run without unbounded memory.
//!
//! The buffer exports as JSON lines through the vendored `serde_json`, one
//! record per line, ready for `jq`/pandas-style post-processing.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Identifier of an open span (opaque; 0 is reserved for "no span").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The "no parent" sentinel.
    pub const NONE: SpanId = SpanId(0);

    /// The raw identifier value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One completed span or event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique id of this span (assigned in open order, starting at 1).
    pub id: u64,
    /// Id of the span that was innermost-open when this one started
    /// (0 = root).
    pub parent: u64,
    /// Span name (e.g. `"local_update"`).
    pub name: String,
    /// Monotonic start offset in nanoseconds since the tracer was created.
    pub start_ns: u64,
    /// Monotonic end offset in nanoseconds (equals `start_ns` for events).
    pub end_ns: u64,
    /// Round attribute, if set.
    pub round: Option<u64>,
    /// Client attribute, if set.
    pub client: Option<u64>,
}

impl SpanRecord {
    /// Span duration in nanoseconds (0 for events).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A span that has been opened but not yet closed.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    round: Option<u64>,
    client: Option<u64>,
}

/// Ring-buffered structured tracer (see the [module docs](self)).
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    next_id: u64,
    /// Stack of currently open spans; the top is the parent of new spans.
    open: Vec<OpenSpan>,
    /// Completed records, a ring of at most `capacity` entries.
    ring: Vec<SpanRecord>,
    /// Index in `ring` that the next record overwrites once full.
    head: usize,
    capacity: usize,
    dropped: u64,
}

/// Default ring capacity: enough for ~100 rounds of a 100-client run.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer whose ring keeps the latest `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            next_id: 1,
            open: Vec::new(),
            ring: Vec::new(),
            head: 0,
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push_record(&mut self, record: SpanRecord) {
        if self.ring.len() < self.capacity {
            self.ring.push(record);
        } else {
            self.ring[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Opens a span with no attributes.
    pub fn start(&mut self, name: &'static str) -> SpanId {
        self.start_with(name, None, None)
    }

    /// Opens a span with optional `round`/`client` attributes. The parent is
    /// the innermost span still open on this tracer.
    pub fn start_with(
        &mut self,
        name: &'static str,
        round: Option<u64>,
        client: Option<u64>,
    ) -> SpanId {
        let id = self.next_id;
        self.next_id += 1;
        let parent = self.open.last().map(|s| s.id).unwrap_or(0);
        self.open.push(OpenSpan {
            id,
            parent,
            name,
            start_ns: self.now_ns(),
            round,
            client,
        });
        SpanId(id)
    }

    /// Closes a span, committing its record to the ring.
    ///
    /// Spans are expected to close in LIFO order (the [`span!`](crate::span)
    /// guard enforces this); closing out of order also closes any younger
    /// spans still open above it, attributing them the same end time.
    pub fn end(&mut self, id: SpanId) {
        let Some(pos) = self.open.iter().rposition(|s| s.id == id.0) else {
            return; // unknown or already closed — ignore
        };
        let end_ns = self.now_ns();
        while self.open.len() > pos {
            let span = self.open.pop().expect("open stack is non-empty");
            self.push_record(SpanRecord {
                id: span.id,
                parent: span.parent,
                name: span.name.to_string(),
                start_ns: span.start_ns,
                end_ns,
                round: span.round,
                client: span.client,
            });
        }
    }

    /// Records an instantaneous event (a zero-duration record).
    pub fn event(&mut self, name: &'static str, round: Option<u64>, client: Option<u64>) {
        let id = self.next_id;
        self.next_id += 1;
        let parent = self.open.last().map(|s| s.id).unwrap_or(0);
        let now = self.now_ns();
        self.push_record(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_ns: now,
            end_ns: now,
            round,
            client,
        });
    }

    /// Records a completed span whose duration was measured externally
    /// (e.g. on a worker thread); `seconds` is projected backwards from now.
    pub fn complete(
        &mut self,
        name: &'static str,
        seconds: f64,
        round: Option<u64>,
        client: Option<u64>,
    ) {
        let id = self.next_id;
        self.next_id += 1;
        let parent = self.open.last().map(|s| s.id).unwrap_or(0);
        let end_ns = self.now_ns();
        let start_ns = end_ns.saturating_sub((seconds.max(0.0) * 1e9) as u64);
        self.push_record(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_ns,
            end_ns,
            round,
            client,
        });
    }

    /// Completed records in chronological (commit) order.
    pub fn records(&self) -> Vec<&SpanRecord> {
        let (wrapped, recent) = self.ring.split_at(self.head);
        recent.iter().chain(wrapped.iter()).collect()
    }

    /// Number of completed records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no records have been committed yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of records evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes the held records as JSON lines (one record per line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for record in self.records() {
            out.push_str(&serde_json::to_string(record).expect("span records serialize"));
            out.push('\n');
        }
        out
    }
}

/// RAII guard that closes its span on drop — the return value of
/// [`span!`](crate::span).
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a mut Tracer,
    id: SpanId,
}

impl<'a> SpanGuard<'a> {
    /// Opens a span on `tracer` and returns the guard that closes it.
    pub fn enter(
        tracer: &'a mut Tracer,
        name: &'static str,
        round: Option<u64>,
        client: Option<u64>,
    ) -> Self {
        let id = tracer.start_with(name, round, client);
        SpanGuard { tracer, id }
    }

    /// The id of the guarded span.
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.end(self.id);
    }
}

/// Opens a span on a [`Tracer`] and returns a guard that closes it when
/// dropped.
///
/// ```
/// use fedadmm_telemetry::{span, trace::Tracer};
///
/// let mut tracer = Tracer::default();
/// {
///     let _round = span!(tracer, "round", round = 3);
/// } // span closes here
/// assert_eq!(tracer.records()[0].name, "round");
/// ```
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr) => {
        $crate::trace::SpanGuard::enter(&mut $tracer, $name, None, None)
    };
    ($tracer:expr, $name:expr, round = $round:expr) => {
        $crate::trace::SpanGuard::enter(&mut $tracer, $name, Some($round as u64), None)
    };
    ($tracer:expr, $name:expr, client = $client:expr) => {
        $crate::trace::SpanGuard::enter(&mut $tracer, $name, None, Some($client as u64))
    };
    ($tracer:expr, $name:expr, round = $round:expr, client = $client:expr) => {
        $crate::trace::SpanGuard::enter(
            &mut $tracer,
            $name,
            Some($round as u64),
            Some($client as u64),
        )
    };
    ($tracer:expr, $name:expr, client = $client:expr, round = $round:expr) => {
        $crate::trace::SpanGuard::enter(
            &mut $tracer,
            $name,
            Some($round as u64),
            Some($client as u64),
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_parents() {
        let mut t = Tracer::new(16);
        let outer = t.start_with("round", Some(0), None);
        let inner = t.start_with("local_update", Some(0), Some(3));
        t.end(inner);
        t.end(outer);
        let records = t.records();
        assert_eq!(records.len(), 2);
        // Inner closes first, so it commits first.
        assert_eq!(records[0].name, "local_update");
        assert_eq!(records[0].parent, outer.raw());
        assert_eq!(records[0].client, Some(3));
        assert_eq!(records[1].name, "round");
        assert_eq!(records[1].parent, 0);
        assert!(records[1].end_ns >= records[1].start_ns);
    }

    #[test]
    fn ring_keeps_the_latest_window() {
        let mut t = Tracer::new(4);
        for i in 0..10u64 {
            t.event("e", Some(i), None);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let rounds: Vec<u64> = t.records().iter().map(|r| r.round.unwrap()).collect();
        assert_eq!(rounds, vec![6, 7, 8, 9]);
    }

    #[test]
    fn guard_macro_closes_on_drop() {
        let mut t = Tracer::new(8);
        {
            let _guard = span!(t, "outer", round = 1);
        }
        {
            let _guard = span!(t, "with_client", client = 5, round = 2);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].client, Some(5));
        assert_eq!(t.records()[1].round, Some(2));
    }

    #[test]
    fn out_of_order_end_closes_descendants() {
        let mut t = Tracer::new(8);
        let a = t.start("a");
        let _b = t.start("b");
        t.end(a); // closes b too
        assert_eq!(t.len(), 2);
        assert!(t.records().iter().any(|r| r.name == "b"));
    }

    #[test]
    fn json_lines_parse_back() {
        let mut t = Tracer::new(8);
        let s = t.start_with("round", Some(2), None);
        t.event("arrival", Some(2), Some(7));
        t.end(s);
        let lines = t.to_json_lines();
        assert_eq!(lines.lines().count(), 2);
        for line in lines.lines() {
            let back: SpanRecord = serde_json::from_str(line).unwrap();
            assert!(back.id > 0);
        }
    }

    #[test]
    fn complete_backdates_start() {
        let mut t = Tracer::new(8);
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.complete("local_update", 0.003, Some(1), Some(2));
        let records = t.records();
        assert_eq!(records.len(), 1);
        // The 3 ms worker-measured duration is preserved (backdated start),
        // up to timer granularity.
        assert!(records[0].duration_ns() >= 2_900_000);
        assert!(records[0].duration_ns() <= 4_000_000);
        // Backdating never reaches before the tracer epoch.
        t.complete("early", 1e9, None, None);
        assert_eq!(t.records()[1].start_ns, 0);
    }
}
