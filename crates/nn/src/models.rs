//! Model architectures used by the paper's experiments.
//!
//! Table II of the paper specifies two CNNs:
//!
//! | Model | Parameters | Dataset          |
//! |-------|-----------:|------------------|
//! | CNN 1 | 1,663,370  | MNIST / FMNIST   |
//! | CNN 2 | 1,105,098  | CIFAR-10         |
//!
//! Both have "a convolutional module (two 5×5 convolutional layers, each
//! followed by 2×2 max pooling layers), and a fully connected layer module",
//! take *flattened* images (784 / 3,072 values) and emit 10 logits.
//! [`ModelSpec::Cnn1`] and [`ModelSpec::Cnn2`] reproduce those parameter
//! counts exactly (see the unit tests). The extra [`ModelSpec::Mlp`] and
//! [`ModelSpec::Logistic`] variants are lighter models used by fast tests
//! and scaled-down benchmark configurations.

use crate::layers::{Conv2d, Flatten, Layer, Linear, MaxPool2d, Relu, Reshape};
// Dense hidden layers use `Linear::new_fused_relu`, which computes
// matmul+bias+ReLU in one kernel pass; it draws the same RNG values and
// produces bit-identical outputs to the unfused `Linear` + `Relu` pair it
// replaces, so swapping it in changes neither initialisation nor training
// trajectories.
use crate::network::Network;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A declarative model architecture that can be instantiated into a
/// [`Network`] with fresh random weights.
///
/// Federated clients re-create networks from the spec and then overwrite the
/// weights from flat parameter vectors, so the spec (not the network) is
/// what experiment configurations carry around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// The paper's MNIST/FMNIST CNN: 1,663,370 parameters.
    ///
    /// `reshape(1×28×28) → conv5×5(1→32) → relu → pool2×2 → conv5×5(32→64)
    /// → relu → pool2×2 → flatten(3136) → fc(3136→512) → relu → fc(512→10)`.
    Cnn1,
    /// The paper's CIFAR-10 CNN: 1,105,098 parameters.
    ///
    /// `reshape(3×32×32) → conv5×5(3→32) → relu → pool2×2 → conv5×5(32→64)
    /// → relu → pool2×2 → flatten(4096) → fc(4096→256) → relu → fc(256→10)`.
    Cnn2,
    /// A single-hidden-layer MLP on flattened inputs. Used for fast
    /// configurations where the full CNNs would dominate simulation time.
    Mlp {
        /// Flattened input dimension.
        input_dim: usize,
        /// Hidden layer width.
        hidden_dim: usize,
        /// Number of output classes.
        num_classes: usize,
    },
    /// Multinomial logistic regression (a single linear layer).
    Logistic {
        /// Flattened input dimension.
        input_dim: usize,
        /// Number of output classes.
        num_classes: usize,
    },
}

impl ModelSpec {
    /// Instantiates the architecture with freshly initialised weights.
    pub fn build(&self, rng: &mut impl Rng) -> Network {
        match *self {
            ModelSpec::Cnn1 => Network::new(vec![
                Box::new(Reshape::new(&[1, 28, 28])) as Box<dyn Layer>,
                Box::new(Conv2d::new(1, 32, 5, 1, 2, rng)),
                Box::new(Relu::new()),
                Box::new(MaxPool2d::new(2, 2)),
                Box::new(Conv2d::new(32, 64, 5, 1, 2, rng)),
                Box::new(Relu::new()),
                Box::new(MaxPool2d::new(2, 2)),
                Box::new(Flatten::new()),
                Box::new(Linear::new_fused_relu(64 * 7 * 7, 512, rng)),
                Box::new(Linear::new(512, 10, rng)),
            ]),
            ModelSpec::Cnn2 => Network::new(vec![
                Box::new(Reshape::new(&[3, 32, 32])) as Box<dyn Layer>,
                Box::new(Conv2d::new(3, 32, 5, 1, 2, rng)),
                Box::new(Relu::new()),
                Box::new(MaxPool2d::new(2, 2)),
                Box::new(Conv2d::new(32, 64, 5, 1, 2, rng)),
                Box::new(Relu::new()),
                Box::new(MaxPool2d::new(2, 2)),
                Box::new(Flatten::new()),
                Box::new(Linear::new_fused_relu(64 * 8 * 8, 256, rng)),
                Box::new(Linear::new(256, 10, rng)),
            ]),
            ModelSpec::Mlp {
                input_dim,
                hidden_dim,
                num_classes,
            } => Network::new(vec![
                Box::new(Linear::new_fused_relu(input_dim, hidden_dim, rng)) as Box<dyn Layer>,
                Box::new(Linear::new(hidden_dim, num_classes, rng)),
            ]),
            ModelSpec::Logistic {
                input_dim,
                num_classes,
            } => Network::new(vec![
                Box::new(Linear::new(input_dim, num_classes, rng)) as Box<dyn Layer>
            ]),
        }
    }

    /// Flattened input dimension expected by the model.
    pub fn input_dim(&self) -> usize {
        match *self {
            ModelSpec::Cnn1 => 784,
            ModelSpec::Cnn2 => 3072,
            ModelSpec::Mlp { input_dim, .. } | ModelSpec::Logistic { input_dim, .. } => input_dim,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        match *self {
            ModelSpec::Cnn1 | ModelSpec::Cnn2 => 10,
            ModelSpec::Mlp { num_classes, .. } | ModelSpec::Logistic { num_classes, .. } => {
                num_classes
            }
        }
    }

    /// Total number of trainable parameters `d` of the architecture.
    pub fn num_params(&self) -> usize {
        match *self {
            // Conv(1→32,5×5)+b + Conv(32→64,5×5)+b + FC(3136→512)+b + FC(512→10)+b
            ModelSpec::Cnn1 => 832 + 51_264 + (3136 * 512 + 512) + (512 * 10 + 10),
            // Conv(3→32,5×5)+b + Conv(32→64,5×5)+b + FC(4096→256)+b + FC(256→10)+b
            ModelSpec::Cnn2 => 2432 + 51_264 + (4096 * 256 + 256) + (256 * 10 + 10),
            ModelSpec::Mlp {
                input_dim,
                hidden_dim,
                num_classes,
            } => input_dim * hidden_dim + hidden_dim + hidden_dim * num_classes + num_classes,
            ModelSpec::Logistic {
                input_dim,
                num_classes,
            } => input_dim * num_classes + num_classes,
        }
    }

    /// Short human-readable name (used in experiment reports).
    pub fn name(&self) -> String {
        match *self {
            ModelSpec::Cnn1 => "CNN1".to_string(),
            ModelSpec::Cnn2 => "CNN2".to_string(),
            ModelSpec::Mlp { hidden_dim, .. } => format!("MLP({hidden_dim})"),
            ModelSpec::Logistic { .. } => "Logistic".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedadmm_tensor::Tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Table II of the paper: CNN 1 has exactly 1,663,370 parameters.
    #[test]
    fn cnn1_param_count_matches_paper() {
        let mut rng = SmallRng::seed_from_u64(0);
        let net = ModelSpec::Cnn1.build(&mut rng);
        assert_eq!(net.num_params(), 1_663_370);
        assert_eq!(ModelSpec::Cnn1.num_params(), 1_663_370);
    }

    /// Table II of the paper: CNN 2 has exactly 1,105,098 parameters.
    #[test]
    fn cnn2_param_count_matches_paper() {
        let mut rng = SmallRng::seed_from_u64(0);
        let net = ModelSpec::Cnn2.build(&mut rng);
        assert_eq!(net.num_params(), 1_105_098);
        assert_eq!(ModelSpec::Cnn2.num_params(), 1_105_098);
    }

    #[test]
    fn cnn1_forward_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut net = ModelSpec::Cnn1.build(&mut rng);
        let x = Tensor::zeros(&[2, 784]);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn cnn2_forward_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut net = ModelSpec::Cnn2.build(&mut rng);
        let x = Tensor::zeros(&[2, 3072]);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn mlp_and_logistic_param_counts() {
        let spec = ModelSpec::Mlp {
            input_dim: 20,
            hidden_dim: 16,
            num_classes: 4,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(spec.build(&mut rng).num_params(), spec.num_params());
        let spec = ModelSpec::Logistic {
            input_dim: 20,
            num_classes: 4,
        };
        assert_eq!(spec.build(&mut rng).num_params(), spec.num_params());
        assert_eq!(spec.num_params(), 84);
    }

    #[test]
    fn metadata_accessors() {
        assert_eq!(ModelSpec::Cnn1.input_dim(), 784);
        assert_eq!(ModelSpec::Cnn2.input_dim(), 3072);
        assert_eq!(ModelSpec::Cnn1.num_classes(), 10);
        assert_eq!(ModelSpec::Cnn1.name(), "CNN1");
        let mlp = ModelSpec::Mlp {
            input_dim: 8,
            hidden_dim: 4,
            num_classes: 3,
        };
        assert_eq!(mlp.input_dim(), 8);
        assert_eq!(mlp.num_classes(), 3);
        assert!(mlp.name().contains("MLP"));
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = ModelSpec::Mlp {
            input_dim: 8,
            hidden_dim: 4,
            num_classes: 3,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn mlp_trains_on_toy_problem() {
        use crate::loss::softmax_cross_entropy;
        use crate::optimizer::Sgd;
        // Two linearly separable clusters; a few SGD steps must reduce the loss.
        let mut rng = SmallRng::seed_from_u64(3);
        let spec = ModelSpec::Mlp {
            input_dim: 2,
            hidden_dim: 8,
            num_classes: 2,
        };
        let mut net = spec.build(&mut rng);
        let x =
            Tensor::from_vec(vec![2.0, 2.0, 2.5, 1.5, -2.0, -2.0, -1.5, -2.5], &[4, 2]).unwrap();
        let labels = [0usize, 0, 1, 1];
        let sgd = Sgd::new(0.5);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..30 {
            let logits = net.forward(&x).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
            net.zero_grads();
            net.backward(&grad).unwrap();
            let mut p = net.params_flat();
            sgd.step(&mut p, &net.grads_flat());
            net.set_params_flat(&p).unwrap();
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.5,
            "loss did not drop: {last_loss}"
        );
    }
}
