//! ReLU activation layer.

use super::Layer;
use fedadmm_tensor::{Tensor, TensorError, TensorResult};

/// Elementwise rectified linear unit: `y = max(x, 0)`.
#[derive(Clone, Default)]
pub struct Relu {
    /// Mask of the positive inputs from the last forward pass.
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> TensorResult<()> {
        out.resize_in_place(input.dims());
        let mask = self.mask.get_or_insert_with(Vec::new);
        mask.clear();
        for (o, &x) in out.data_mut().iter_mut().zip(input.data().iter()) {
            mask.push(x > 0.0);
            *o = if x > 0.0 { x } else { 0.0 };
        }
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.backward_into(grad_output, &mut out)?;
        Ok(out)
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> TensorResult<()> {
        let mask = self.mask.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Relu::backward called before forward".into())
        })?;
        if mask.len() != grad_output.len() {
            return Err(TensorError::InvalidArgument(format!(
                "ReLU mask has {} elements but grad_output has {}",
                mask.len(),
                grad_output.len()
            )));
        }
        grad_input.resize_in_place(grad_output.dims());
        let data = grad_input.data_mut();
        data.copy_from_slice(grad_output.data());
        for (g, &m) in data.iter_mut().zip(mask.iter()) {
            if !m {
                *g = 0.0;
            }
        }
        Ok(())
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // The mask is per-step activation state the clone will overwrite on
        // its first forward pass; don't copy it.
        Box::new(Relu::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -3.0], &[4]).unwrap();
        let y = r.forward(&x).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0, -3.0], &[4]).unwrap();
        r.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[4]).unwrap();
        let gx = r.backward(&g).unwrap();
        assert_eq!(gx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut r = Relu::new();
        assert!(r.backward(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn backward_rejects_mismatched_shape() {
        let mut r = Relu::new();
        r.forward(&Tensor::zeros(&[4])).unwrap();
        assert!(r.backward(&Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn no_parameters() {
        let r = Relu::new();
        assert_eq!(r.num_params(), 0);
        let mut buf = Vec::new();
        r.write_params(&mut buf);
        assert!(buf.is_empty());
    }
}
