//! Inverted dropout.
//!
//! Dropout is not part of the paper's two CNNs, but it is a standard
//! regulariser a downstream user of this layer library will reach for when
//! local datasets are tiny (exactly the federated regime: a non-IID client
//! in the paper's 1,000-client setting holds only ~60 samples). The
//! implementation uses *inverted* dropout — surviving activations are scaled
//! by `1/(1−p)` at training time — so that evaluation is a plain identity
//! and the federated evaluation path needs no mode switching.

use super::Layer;
use fedadmm_tensor::{Tensor, TensorError, TensorResult};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout with drop probability `p`.
#[derive(Clone)]
pub struct Dropout {
    /// Probability of zeroing an activation during training.
    p: f32,
    /// Whether the layer is in training mode (`true` by default). In
    /// evaluation mode the layer is the identity.
    training: bool,
    rng: SmallRng,
    /// Scale mask of the last forward pass (0 for dropped units, `1/(1−p)`
    /// for surviving ones).
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and its own
    /// deterministic RNG stream derived from `seed`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Dropout {
            p,
            training: true,
            rng: SmallRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Switches between training (dropout active) and evaluation (identity).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether dropout is currently applied.
    pub fn is_training(&self) -> bool {
        self.training
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> TensorResult<()> {
        out.resize_in_place(input.dims());
        let mask = self.mask.get_or_insert_with(Vec::new);
        mask.clear();
        if !self.training || self.p == 0.0 {
            mask.resize(input.len(), 1.0);
            out.data_mut().copy_from_slice(input.data());
            return Ok(());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        for (o, &x) in out.data_mut().iter_mut().zip(input.data().iter()) {
            let m = if self.rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            };
            mask.push(m);
            *o = x * m;
        }
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.backward_into(grad_output, &mut out)?;
        Ok(out)
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> TensorResult<()> {
        let mask = self.mask.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Dropout::backward called before forward".into())
        })?;
        if mask.len() != grad_output.len() {
            return Err(TensorError::InvalidArgument(format!(
                "Dropout mask has {} elements but grad_output has {}",
                mask.len(),
                grad_output.len()
            )));
        }
        grad_input.resize_in_place(grad_output.dims());
        let data = grad_input.data_mut();
        data.copy_from_slice(grad_output.data());
        for (g, &m) in data.iter_mut().zip(mask.iter()) {
            *g *= m;
        }
        Ok(())
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // The RNG stream and mode are behavioural state and travel with the
        // clone; the mask is per-step activation state and starts empty.
        Box::new(Dropout {
            p: self.p,
            training: self.training,
            rng: self.rng.clone(),
            mask: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn invalid_probability_is_rejected() {
        Dropout::new(1.0, 0);
    }

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        d.set_training(false);
        assert!(!d.is_training());
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let y = d.forward(&x).unwrap();
        assert_eq!(y.data(), x.data());
        let g = Tensor::from_vec(vec![0.5, 0.5, 0.5], &[3]).unwrap();
        assert_eq!(d.backward(&g).unwrap().data(), g.data());
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert_eq!(d.forward(&x).unwrap().data(), x.data());
    }

    #[test]
    fn training_mode_drops_and_rescales() {
        let mut d = Dropout::new(0.5, 42);
        let n = 10_000usize;
        let x = Tensor::ones(&[n]);
        let y = d.forward(&x).unwrap();
        let dropped = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept: Vec<f32> = y.data().iter().copied().filter(|&v| v != 0.0).collect();
        // Roughly half the units are dropped...
        assert!((dropped as f64 / n as f64 - 0.5).abs() < 0.05);
        // ...and the survivors carry the inverted scale 1/(1-p) = 2.
        assert!(kept.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        // The expected sum is preserved (inverted dropout is unbiased).
        let mean = y.data().iter().sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.1);
    }

    #[test]
    fn backward_reuses_forward_mask() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x).unwrap();
        let g = Tensor::ones(&[64]);
        let gx = d.backward(&g).unwrap();
        // The gradient must be zero exactly where the activation was dropped
        // and scaled identically where it survived.
        for (yo, go) in y.data().iter().zip(gx.data().iter()) {
            assert_eq!(yo, go);
        }
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut d = Dropout::new(0.3, 0);
        assert!(d.backward(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn backward_rejects_mismatched_shape() {
        let mut d = Dropout::new(0.3, 0);
        d.forward(&Tensor::zeros(&[4])).unwrap();
        assert!(d.backward(&Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn no_parameters_and_clonable() {
        let d = Dropout::new(0.25, 3);
        assert_eq!(d.num_params(), 0);
        assert_eq!(d.probability(), 0.25);
        let boxed = d.clone_layer();
        assert_eq!(boxed.name(), "Dropout");
    }
}
