//! 2-D convolution layer (wraps the im2col kernels from `fedadmm-tensor`).

use super::Layer;
use fedadmm_tensor::{init, ops, Tensor, TensorError, TensorResult};
use rand::Rng;

/// A 2-D convolution layer with bias.
///
/// The paper's CNN 1 / CNN 2 use 5×5 kernels, stride 1 and 'same' padding
/// (padding 2), but the layer is general.
#[derive(Clone)]
pub struct Conv2d {
    in_channels: usize,
    kernel_size: usize,
    stride: usize,
    padding: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    /// Reusable im2col / gradient-fold buffers for the `_into` kernels.
    scratch: ops::Conv2dScratch,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-uniform weights and zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel_size: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel_size * kernel_size;
        Conv2d {
            in_channels,
            kernel_size,
            stride,
            padding,
            weight: init::kaiming_uniform(
                &[out_channels, in_channels, kernel_size, kernel_size],
                fan_in,
                rng,
            ),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, in_channels, kernel_size, kernel_size]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_input: None,
            scratch: ops::Conv2dScratch::default(),
        }
    }

    /// Output spatial size for a given input spatial size.
    pub fn output_size(&self, input: usize) -> usize {
        ops::conv2d_output_size(input, self.kernel_size, self.stride, self.padding)
    }

    /// Copies `input` into the reusable cached-input buffer.
    fn cache_input(&mut self, input: &Tensor) {
        match &mut self.cached_input {
            Some(buf) => {
                buf.resize_in_place(input.dims());
                buf.data_mut().copy_from_slice(input.data());
            }
            None => self.cached_input = Some(input.clone()),
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                left: input.dims().to_vec(),
                right: vec![0, self.in_channels, 0, 0],
            });
        }
        let out = ops::conv2d_forward(input, &self.weight, &self.bias, self.stride, self.padding)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> TensorResult<()> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                left: input.dims().to_vec(),
                right: vec![0, self.in_channels, 0, 0],
            });
        }
        ops::conv2d_forward_into(
            input,
            &self.weight,
            &self.bias,
            self.stride,
            self.padding,
            &mut self.scratch,
            out,
        )?;
        self.cache_input(input);
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let input = self.cached_input.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Conv2d::backward called before forward".into())
        })?;
        let grads =
            ops::conv2d_backward(input, &self.weight, grad_output, self.stride, self.padding)?;
        self.grad_weight.add_assign(&grads.grad_weight)?;
        self.grad_bias.add_assign(&grads.grad_bias)?;
        Ok(grads.grad_input)
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> TensorResult<()> {
        let input = self.cached_input.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Conv2d::backward called before forward".into())
        })?;
        ops::conv2d_backward_into(
            input,
            &self.weight,
            grad_output,
            self.stride,
            self.padding,
            &mut self.scratch,
            &mut self.grad_weight,
            &mut self.grad_bias,
            grad_input,
        )
    }

    fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.data());
        out.extend_from_slice(self.bias.data());
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let nw = self.weight.len();
        let nb = self.bias.len();
        self.weight.data_mut().copy_from_slice(&src[..nw]);
        self.bias.data_mut().copy_from_slice(&src[nw..nw + nb]);
        nw + nb
    }

    fn write_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.grad_weight.data());
        out.extend_from_slice(self.grad_bias.data());
    }

    fn zero_grads(&mut self) {
        self.grad_weight.map_in_place(|_| 0.0);
        self.grad_bias.map_in_place(|_| 0.0);
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // Parameters and gradient accumulators are copied; the cached input
        // and im2col scratch are transient per-step state the clone would
        // immediately overwrite, so they start empty.
        Box::new(Conv2d {
            in_channels: self.in_channels,
            kernel_size: self.kernel_size,
            stride: self.stride,
            padding: self.padding,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            grad_weight: self.grad_weight.clone(),
            grad_bias: self.grad_bias.clone(),
            cached_input: None,
            scratch: ops::Conv2dScratch::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn param_count_matches_formula() {
        let mut rng = SmallRng::seed_from_u64(0);
        // Paper CNN 1 first conv: 1 -> 32 channels, 5x5 -> 832 parameters.
        let c = Conv2d::new(1, 32, 5, 1, 2, &mut rng);
        assert_eq!(c.num_params(), 832);
        // Paper CNN 1 second conv: 32 -> 64 channels, 5x5 -> 51,264 parameters.
        let c2 = Conv2d::new(32, 64, 5, 1, 2, &mut rng);
        assert_eq!(c2.num_params(), 51_264);
    }

    #[test]
    fn same_padding_preserves_size() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 2, 5, 1, 2, &mut rng);
        let out = c.forward(&Tensor::zeros(&[1, 1, 28, 28])).unwrap();
        assert_eq!(out.dims(), &[1, 2, 28, 28]);
        assert_eq!(c.output_size(28), 28);
    }

    #[test]
    fn forward_rejects_wrong_channels() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = Conv2d::new(3, 2, 3, 1, 1, &mut rng);
        assert!(c.forward(&Tensor::zeros(&[1, 1, 8, 8])).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        assert!(c.backward(&Tensor::zeros(&[1, 1, 4, 4])).is_err());
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(5);
        let c = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let mut buf = Vec::new();
        c.write_params(&mut buf);
        let mut c2 = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        assert_eq!(c2.read_params(&buf), buf.len());
        let mut buf2 = Vec::new();
        c2.write_params(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut c = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = fedadmm_tensor::init::randn(&[2, 2, 5, 5], 0.0, 1.0, &mut rng);
        gradcheck::check_param_gradients(&mut c, &x, &[0, 10, 33, 55], 1e-1);
        gradcheck::check_input_gradients(&mut c, &x, &[0, 20, 49, 77], 1e-1);
    }
}
