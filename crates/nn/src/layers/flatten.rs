//! Flatten layer: collapses all non-batch dimensions.

use super::Layer;
use fedadmm_tensor::{Tensor, TensorError, TensorResult};

/// Flattens `[batch, d1, d2, ...]` into `[batch, d1*d2*...]`.
#[derive(Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        if input.rank() < 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: input.rank(),
            });
        }
        let batch = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        self.cached_dims = Some(input.dims().to_vec());
        input.reshape(&[batch, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let dims = self.cached_dims.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Flatten::backward called before forward".into())
        })?;
        grad_output.reshape(dims)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_flattens_and_backward_restores() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
        let gx = f.backward(&Tensor::ones(&[2, 48])).unwrap();
        assert_eq!(gx.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn rejects_rank1_input() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[2, 2])).is_err());
    }
}
