//! Flatten layer: collapses all non-batch dimensions.

use super::Layer;
use fedadmm_tensor::{Tensor, TensorError, TensorResult};

/// Flattens `[batch, d1, d2, ...]` into `[batch, d1*d2*...]`.
#[derive(Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> TensorResult<()> {
        if input.rank() < 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: input.rank(),
            });
        }
        let batch = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        let dims = self.cached_dims.get_or_insert_with(Vec::new);
        dims.clear();
        dims.extend_from_slice(input.dims());
        out.resize_in_place(&[batch, rest]);
        out.data_mut().copy_from_slice(input.data());
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.backward_into(grad_output, &mut out)?;
        Ok(out)
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> TensorResult<()> {
        let dims = self.cached_dims.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Flatten::backward called before forward".into())
        })?;
        let expected: usize = dims.iter().product();
        if expected != grad_output.len() {
            return Err(TensorError::InvalidReshape {
                from: grad_output.len(),
                to: expected,
            });
        }
        grad_input.resize_in_place(dims);
        grad_input.data_mut().copy_from_slice(grad_output.data());
        Ok(())
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // Cached input dims are per-step activation state; start them empty.
        Box::new(Flatten::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_flattens_and_backward_restores() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
        let gx = f.backward(&Tensor::ones(&[2, 48])).unwrap();
        assert_eq!(gx.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn rejects_rank1_input() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[2, 2])).is_err());
    }
}
