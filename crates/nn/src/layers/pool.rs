//! Max pooling layer (wraps the pooling kernels from `fedadmm-tensor`).

use super::Layer;
use fedadmm_tensor::{ops, Tensor, TensorError, TensorResult};

/// 2-D max pooling. The paper's CNNs use 2×2 windows with stride 2.
#[derive(Clone)]
pub struct MaxPool2d {
    size: usize,
    stride: usize,
    cached_argmax: Option<Vec<usize>>,
    cached_input_dims: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with the given window size and stride.
    pub fn new(size: usize, stride: usize) -> Self {
        MaxPool2d {
            size,
            stride,
            cached_argmax: None,
            cached_input_dims: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> TensorResult<()> {
        let argmax = self.cached_argmax.get_or_insert_with(Vec::new);
        ops::max_pool2d_forward_into(input, self.size, self.stride, out, argmax)?;
        let dims = self.cached_input_dims.get_or_insert_with(Vec::new);
        dims.clear();
        dims.extend_from_slice(input.dims());
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.backward_into(grad_output, &mut out)?;
        Ok(out)
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> TensorResult<()> {
        let argmax = self.cached_argmax.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("MaxPool2d::backward called before forward".into())
        })?;
        let dims = self
            .cached_input_dims
            .as_ref()
            .expect("dims cached with argmax");
        ops::max_pool2d_backward_into(grad_output, argmax, dims, grad_input)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // Argmax bookkeeping is per-step activation state; start it empty.
        Box::new(MaxPool2d::new(self.size, self.stride))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_roundtrip() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        let g = Tensor::ones(&[1, 1, 2, 2]);
        let gx = p.backward(&g).unwrap();
        assert_eq!(gx.dims(), &[1, 1, 4, 4]);
        assert_eq!(gx.sum(), 4.0);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut p = MaxPool2d::new(2, 2);
        assert!(p.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn no_parameters() {
        assert_eq!(MaxPool2d::new(2, 2).num_params(), 0);
    }
}
