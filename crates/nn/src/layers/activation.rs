//! Saturating elementwise activations (tanh and logistic sigmoid).
//!
//! The paper's CNNs use ReLU, but a reusable layer library should also offer
//! the classic saturating activations: they are what make the logistic /
//! MLP baselines of the broader FL literature expressible, and their bounded
//! outputs are occasionally useful to keep client-drift experiments
//! numerically tame under very large local learning rates.

use super::Layer;
use fedadmm_tensor::{Tensor, TensorError, TensorResult};

/// Elementwise hyperbolic tangent: `y = tanh(x)`.
#[derive(Clone, Default)]
pub struct Tanh {
    /// Outputs of the last forward pass (`dy/dx = 1 − y²`).
    output: Option<Vec<f32>>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { output: None }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> TensorResult<()> {
        out.resize_in_place(input.dims());
        let cache = self.output.get_or_insert_with(Vec::new);
        cache.clear();
        for (o, &x) in out.data_mut().iter_mut().zip(input.data().iter()) {
            let y = x.tanh();
            *o = y;
            cache.push(y);
        }
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.backward_into(grad_output, &mut out)?;
        Ok(out)
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> TensorResult<()> {
        let output = self.output.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Tanh::backward called before forward".into())
        })?;
        if output.len() != grad_output.len() {
            return Err(TensorError::InvalidArgument(format!(
                "Tanh cached {} outputs but grad_output has {}",
                output.len(),
                grad_output.len()
            )));
        }
        grad_input.resize_in_place(grad_output.dims());
        let data = grad_input.data_mut();
        data.copy_from_slice(grad_output.data());
        for (g, &y) in data.iter_mut().zip(output.iter()) {
            *g *= 1.0 - y * y;
        }
        Ok(())
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // Cached outputs are per-step activation state; start the clone empty.
        Box::new(Tanh::new())
    }
}

/// Elementwise logistic sigmoid: `y = 1 / (1 + e^{-x})`.
#[derive(Clone, Default)]
pub struct Sigmoid {
    /// Outputs of the last forward pass (`dy/dx = y(1 − y)`).
    output: Option<Vec<f32>>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid { output: None }
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "Sigmoid"
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> TensorResult<()> {
        out.resize_in_place(input.dims());
        let cache = self.output.get_or_insert_with(Vec::new);
        cache.clear();
        for (o, &x) in out.data_mut().iter_mut().zip(input.data().iter()) {
            let y = 1.0 / (1.0 + (-x).exp());
            *o = y;
            cache.push(y);
        }
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.backward_into(grad_output, &mut out)?;
        Ok(out)
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> TensorResult<()> {
        let output = self.output.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Sigmoid::backward called before forward".into())
        })?;
        if output.len() != grad_output.len() {
            return Err(TensorError::InvalidArgument(format!(
                "Sigmoid cached {} outputs but grad_output has {}",
                output.len(),
                grad_output.len()
            )));
        }
        grad_input.resize_in_place(grad_output.dims());
        let data = grad_input.data_mut();
        data.copy_from_slice(grad_output.data());
        for (g, &y) in data.iter_mut().zip(output.iter()) {
            *g *= y * (1.0 - y);
        }
        Ok(())
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // Cached outputs are per-step activation state; start the clone empty.
        Box::new(Sigmoid::new())
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;

    #[test]
    fn tanh_forward_values() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]).unwrap();
        let y = t.forward(&x).unwrap();
        assert!((y.data()[0] + 0.76159).abs() < 1e-4);
        assert_eq!(y.data()[1], 0.0);
        assert!((y.data()[2] - 0.76159).abs() < 1e-4);
    }

    #[test]
    fn sigmoid_forward_values() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![0.0, 100.0, -100.0], &[3]).unwrap();
        let y = s.forward(&x).unwrap();
        assert_eq!(y.data()[0], 0.5);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
        assert!(y.data()[2] < 1e-6);
    }

    #[test]
    fn tanh_gradient_matches_finite_differences() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-0.8, -0.2, 0.1, 0.7, 1.5, -1.2], &[2, 3]).unwrap();
        gradcheck::check_input_gradients(&mut t, &x, &[0, 1, 2, 3, 4, 5], 1e-2);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_differences() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-0.8, -0.2, 0.1, 0.7, 1.5, -1.2], &[2, 3]).unwrap();
        gradcheck::check_input_gradients(&mut s, &x, &[0, 1, 2, 3, 4, 5], 1e-2);
    }

    #[test]
    fn backward_before_forward_errors() {
        assert!(Tanh::new().backward(&Tensor::zeros(&[2])).is_err());
        assert!(Sigmoid::new().backward(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn backward_rejects_mismatched_shape() {
        let mut t = Tanh::new();
        t.forward(&Tensor::zeros(&[3])).unwrap();
        assert!(t.backward(&Tensor::zeros(&[4])).is_err());
        let mut s = Sigmoid::new();
        s.forward(&Tensor::zeros(&[3])).unwrap();
        assert!(s.backward(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn activations_have_no_parameters() {
        let t = Tanh::new();
        assert_eq!(t.num_params(), 0);
        let s = Sigmoid::new();
        assert_eq!(s.num_params(), 0);
        let cloned = t.clone_layer();
        assert_eq!(cloned.name(), "Tanh");
    }
}
