//! Reshape layer: reinterprets flattened inputs as images.
//!
//! The paper feeds *flattened* images (dimension 784 for MNIST/FMNIST,
//! 3,072 for CIFAR-10) into models whose first layer is a convolution, so
//! the CNN model builders prepend a `Reshape` from `[batch, c*h*w]` to
//! `[batch, c, h, w]`.

use super::Layer;
use fedadmm_tensor::{Tensor, TensorError, TensorResult};

/// Reshapes `[batch, prod(target)]` into `[batch, target...]`.
#[derive(Clone)]
pub struct Reshape {
    target: Vec<usize>,
    cached_dims: Option<Vec<usize>>,
    /// Reusable `[batch, target...]` dimension buffer.
    full_dims: Vec<usize>,
}

impl Reshape {
    /// Creates a reshape layer. `target` excludes the batch dimension.
    pub fn new(target: &[usize]) -> Self {
        Reshape {
            target: target.to_vec(),
            cached_dims: None,
            full_dims: Vec::new(),
        }
    }
}

impl Layer for Reshape {
    fn name(&self) -> &'static str {
        "Reshape"
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> TensorResult<()> {
        if input.rank() < 1 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: input.rank(),
            });
        }
        let batch = input.dims()[0];
        let expected: usize = self.target.iter().product();
        let actual: usize = input.dims()[1..].iter().product();
        if expected != actual {
            return Err(TensorError::InvalidReshape {
                from: actual,
                to: expected,
            });
        }
        let cached = self.cached_dims.get_or_insert_with(Vec::new);
        cached.clear();
        cached.extend_from_slice(input.dims());
        self.full_dims.clear();
        self.full_dims.push(batch);
        self.full_dims.extend_from_slice(&self.target);
        out.resize_in_place(&self.full_dims);
        out.data_mut().copy_from_slice(input.data());
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.backward_into(grad_output, &mut out)?;
        Ok(out)
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> TensorResult<()> {
        let dims = self.cached_dims.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Reshape::backward called before forward".into())
        })?;
        let expected: usize = dims.iter().product();
        if expected != grad_output.len() {
            return Err(TensorError::InvalidReshape {
                from: grad_output.len(),
                to: expected,
            });
        }
        grad_input.resize_in_place(dims);
        grad_input.data_mut().copy_from_slice(grad_output.data());
        Ok(())
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // Cached input dims are per-step activation state; start them empty.
        Box::new(Reshape::new(&self.target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_flat_mnist_to_image() {
        let mut r = Reshape::new(&[1, 28, 28]);
        let x = Tensor::zeros(&[4, 784]);
        let y = r.forward(&x).unwrap();
        assert_eq!(y.dims(), &[4, 1, 28, 28]);
        let gx = r.backward(&Tensor::ones(&[4, 1, 28, 28])).unwrap();
        assert_eq!(gx.dims(), &[4, 784]);
    }

    #[test]
    fn rejects_wrong_element_count() {
        let mut r = Reshape::new(&[3, 32, 32]);
        assert!(r.forward(&Tensor::zeros(&[2, 784])).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut r = Reshape::new(&[1, 2, 2]);
        assert!(r.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }
}
