//! Fully connected (dense) layer.

use super::Layer;
use fedadmm_tensor::{init, ops, Tensor, TensorError, TensorResult};
use rand::Rng;

/// A fully connected layer: `y = x·Wᵀ + b`.
///
/// * input:  `[batch, in_features]`
/// * weight: `[out_features, in_features]`
/// * bias:   `[out_features]`
/// * output: `[batch, out_features]`
#[derive(Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        Linear {
            in_features,
            out_features,
            weight: init::kaiming_uniform(&[out_features, in_features], in_features, rng),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight matrix (used by tests).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "Linear"
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(TensorError::ShapeMismatch {
                left: input.dims().to_vec(),
                right: vec![0, self.in_features],
            });
        }
        // y[batch, out] = x[batch, in] · Wᵀ[in, out]
        let mut out = ops::matmul_a_bt(input, &self.weight)?;
        let batch = input.dims()[0];
        let bias = self.bias.data();
        for b in 0..batch {
            let row = &mut out.data_mut()[b * self.out_features..(b + 1) * self.out_features];
            for (v, &bv) in row.iter_mut().zip(bias.iter()) {
                *v += bv;
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let input = self.cached_input.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Linear::backward called before forward".into())
        })?;
        // dW[out, in] += gᵀ[out, batch] · x[batch, in]
        let dw = ops::matmul_at_b(grad_output, input)?;
        self.grad_weight.add_assign(&dw)?;
        // db[out] += column sums of g
        let batch = grad_output.dims()[0];
        for b in 0..batch {
            let row = &grad_output.data()[b * self.out_features..(b + 1) * self.out_features];
            for (gb, &g) in self.grad_bias.data_mut().iter_mut().zip(row.iter()) {
                *gb += g;
            }
        }
        // dx[batch, in] = g[batch, out] · W[out, in]
        ops::matmul(grad_output, &self.weight)
    }

    fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.data());
        out.extend_from_slice(self.bias.data());
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let nw = self.weight.len();
        let nb = self.bias.len();
        self.weight.data_mut().copy_from_slice(&src[..nw]);
        self.bias.data_mut().copy_from_slice(&src[nw..nw + nb]);
        nw + nb
    }

    fn write_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.grad_weight.data());
        out.extend_from_slice(self.grad_bias.data());
    }

    fn zero_grads(&mut self) {
        self.grad_weight.map_in_place(|_| 0.0);
        self.grad_bias.map_in_place(|_| 0.0);
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn param_count() {
        let mut rng = SmallRng::seed_from_u64(0);
        let l = Linear::new(10, 4, &mut rng);
        assert_eq!(l.num_params(), 44);
    }

    #[test]
    fn forward_known_values() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        // W = [[1, 2], [3, 4]], b = [0.5, -0.5]
        l.read_params(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0, 2.0, 0.0], &[2, 2]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.data(), &[3.5, 6.5, 2.5, 5.5]);
    }

    #[test]
    fn forward_rejects_bad_shape() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        assert!(l.forward(&Tensor::zeros(&[2, 4])).is_err());
        assert!(l.forward(&Tensor::zeros(&[6])).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        assert!(l.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(1);
        let l = Linear::new(5, 3, &mut rng);
        let mut buf = Vec::new();
        l.write_params(&mut buf);
        assert_eq!(buf.len(), l.num_params());
        let mut l2 = Linear::new(5, 3, &mut rng);
        let consumed = l2.read_params(&buf);
        assert_eq!(consumed, buf.len());
        let mut buf2 = Vec::new();
        l2.write_params(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut l = Linear::new(6, 4, &mut rng);
        let x = fedadmm_tensor::init::randn(&[3, 6], 0.0, 1.0, &mut rng);
        gradcheck::check_param_gradients(&mut l, &x, &[0, 5, 13, 27], 5e-2);
        gradcheck::check_input_gradients(&mut l, &x, &[0, 4, 11, 17], 5e-2);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let go = Tensor::ones(&[1, 2]);
        l.forward(&x).unwrap();
        l.backward(&go).unwrap();
        let mut g1 = Vec::new();
        l.write_grads(&mut g1);
        l.forward(&x).unwrap();
        l.backward(&go).unwrap();
        let mut g2 = Vec::new();
        l.write_grads(&mut g2);
        for (a, b) in g1.iter().zip(g2.iter()) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
        l.zero_grads();
        let mut g3 = Vec::new();
        l.write_grads(&mut g3);
        assert!(g3.iter().all(|&v| v == 0.0));
    }
}
