//! Fully connected (dense) layer.

use super::Layer;
use fedadmm_tensor::{init, ops, Tensor, TensorError, TensorResult};
use rand::Rng;

/// A fully connected layer: `y = x·Wᵀ + b`, optionally fused with a
/// trailing ReLU (`y = max(x·Wᵀ + b, 0)`).
///
/// * input:  `[batch, in_features]`
/// * weight: `[out_features, in_features]`
/// * bias:   `[out_features]`
/// * output: `[batch, out_features]`
///
/// The fused variant ([`Linear::new_fused_relu`]) computes matmul, bias and
/// activation in a single kernel pass and is bit-identical to a `Linear`
/// followed by a separate `Relu` layer.
#[derive(Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    fused_relu: bool,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    /// Positive-preactivation mask of the last forward pass (fused ReLU only).
    relu_mask: Vec<bool>,
    /// Reusable buffer for `gᵀ·x` before it is accumulated into `grad_weight`.
    dw_scratch: Tensor,
    /// Reusable buffer for the ReLU-masked upstream gradient.
    masked_grad: Tensor,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        Linear {
            in_features,
            out_features,
            fused_relu: false,
            weight: init::kaiming_uniform(&[out_features, in_features], in_features, rng),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
            relu_mask: Vec::new(),
            dw_scratch: Tensor::zeros(&[0]),
            masked_grad: Tensor::zeros(&[0]),
        }
    }

    /// Creates a linear layer whose forward pass applies a fused ReLU.
    ///
    /// Draws exactly the same RNG values as [`Linear::new`] (a `Relu` layer
    /// consumes none), so swapping a `Linear + Relu` pair for this fused
    /// layer leaves model initialisation bit-identical.
    pub fn new_fused_relu(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let mut layer = Linear::new(in_features, out_features, rng);
        layer.fused_relu = true;
        layer
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Whether a ReLU is fused into the forward pass.
    pub fn has_fused_relu(&self) -> bool {
        self.fused_relu
    }

    /// Immutable access to the weight matrix (used by tests).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Copies `input` into the reusable cached-input buffer.
    fn cache_input(&mut self, input: &Tensor) {
        match &mut self.cached_input {
            Some(buf) => {
                buf.resize_in_place(input.dims());
                buf.data_mut().copy_from_slice(input.data());
            }
            None => self.cached_input = Some(input.clone()),
        }
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        if self.fused_relu {
            "Linear+ReLU"
        } else {
            "Linear"
        }
    }

    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> TensorResult<()> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(TensorError::ShapeMismatch {
                left: input.dims().to_vec(),
                right: vec![0, self.in_features],
            });
        }
        // y[batch, out] = x[batch, in] · Wᵀ[in, out] + b (fused bias, and
        // fused ReLU when enabled).
        ops::linear_forward_into(input, &self.weight, &self.bias, out, self.fused_relu)?;
        if self.fused_relu {
            // ReLU fixes every non-positive preactivation to exactly 0.0 and
            // keeps positives unchanged, so the positive-preactivation mask
            // can be read back off the activation itself.
            self.relu_mask.clear();
            self.relu_mask.extend(out.data().iter().map(|&v| v > 0.0));
        }
        self.cache_input(input);
        Ok(())
    }

    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let mut grad_input = Tensor::zeros(&[0]);
        self.backward_into(grad_output, &mut grad_input)?;
        Ok(grad_input)
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> TensorResult<()> {
        let input = self.cached_input.as_ref().ok_or_else(|| {
            TensorError::InvalidArgument("Linear::backward called before forward".into())
        })?;
        let g: &Tensor = if self.fused_relu {
            if self.relu_mask.len() != grad_output.len() {
                return Err(TensorError::InvalidArgument(format!(
                    "fused ReLU mask has {} elements but grad_output has {}",
                    self.relu_mask.len(),
                    grad_output.len()
                )));
            }
            self.masked_grad.resize_in_place(grad_output.dims());
            let data = self.masked_grad.data_mut();
            data.copy_from_slice(grad_output.data());
            for (gv, &m) in data.iter_mut().zip(self.relu_mask.iter()) {
                if !m {
                    *gv = 0.0;
                }
            }
            &self.masked_grad
        } else {
            grad_output
        };
        // dW[out, in] += gᵀ[out, batch] · x[batch, in]
        ops::gemm_at_b_into(g, input, &mut self.dw_scratch)?;
        self.grad_weight.add_assign(&self.dw_scratch)?;
        // db[out] += column sums of g
        let batch = g.dims()[0];
        for b in 0..batch {
            let row = &g.data()[b * self.out_features..(b + 1) * self.out_features];
            for (gb, &gv) in self.grad_bias.data_mut().iter_mut().zip(row.iter()) {
                *gb += gv;
            }
        }
        // dx[batch, in] = g[batch, out] · W[out, in]
        ops::gemm_into(g, &self.weight, grad_input)
    }

    fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.data());
        out.extend_from_slice(self.bias.data());
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let nw = self.weight.len();
        let nb = self.bias.len();
        self.weight.data_mut().copy_from_slice(&src[..nw]);
        self.bias.data_mut().copy_from_slice(&src[nw..nw + nb]);
        nw + nb
    }

    fn write_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.grad_weight.data());
        out.extend_from_slice(self.grad_bias.data());
    }

    fn zero_grads(&mut self) {
        self.grad_weight.map_in_place(|_| 0.0);
        self.grad_bias.map_in_place(|_| 0.0);
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // Parameters and gradient accumulators are copied; activation caches
        // and scratch buffers are transient per-step state the clone would
        // immediately overwrite, so they start empty.
        Box::new(Linear {
            in_features: self.in_features,
            out_features: self.out_features,
            fused_relu: self.fused_relu,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            grad_weight: self.grad_weight.clone(),
            grad_bias: self.grad_bias.clone(),
            cached_input: None,
            relu_mask: Vec::new(),
            dw_scratch: Tensor::zeros(&[0]),
            masked_grad: Tensor::zeros(&[0]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn param_count() {
        let mut rng = SmallRng::seed_from_u64(0);
        let l = Linear::new(10, 4, &mut rng);
        assert_eq!(l.num_params(), 44);
    }

    #[test]
    fn forward_known_values() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        // W = [[1, 2], [3, 4]], b = [0.5, -0.5]
        l.read_params(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0, 2.0, 0.0], &[2, 2]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.data(), &[3.5, 6.5, 2.5, 5.5]);
    }

    #[test]
    fn forward_rejects_bad_shape() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        assert!(l.forward(&Tensor::zeros(&[2, 4])).is_err());
        assert!(l.forward(&Tensor::zeros(&[6])).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        assert!(l.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(1);
        let l = Linear::new(5, 3, &mut rng);
        let mut buf = Vec::new();
        l.write_params(&mut buf);
        assert_eq!(buf.len(), l.num_params());
        let mut l2 = Linear::new(5, 3, &mut rng);
        let consumed = l2.read_params(&buf);
        assert_eq!(consumed, buf.len());
        let mut buf2 = Vec::new();
        l2.write_params(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut l = Linear::new(6, 4, &mut rng);
        let x = fedadmm_tensor::init::randn(&[3, 6], 0.0, 1.0, &mut rng);
        gradcheck::check_param_gradients(&mut l, &x, &[0, 5, 13, 27], 5e-2);
        gradcheck::check_input_gradients(&mut l, &x, &[0, 4, 11, 17], 5e-2);
    }

    /// The fused Linear+ReLU layer must be bit-identical to a `Linear`
    /// followed by a separate `Relu`, forward and backward.
    #[test]
    fn fused_relu_matches_separate_layers_exactly() {
        use super::super::Relu;
        let mut rng = SmallRng::seed_from_u64(21);
        let mut fused = Linear::new_fused_relu(6, 5, &mut rng);
        let mut rng2 = SmallRng::seed_from_u64(21);
        let mut plain = Linear::new(6, 5, &mut rng2);
        let mut relu = Relu::new();
        assert_eq!(fused.weight().data(), plain.weight().data());
        assert!(fused.has_fused_relu());

        let x = fedadmm_tensor::init::randn(&[4, 6], 0.0, 1.0, &mut rng);
        let y_fused = fused.forward(&x).unwrap();
        let y_plain = relu.forward(&plain.forward(&x).unwrap()).unwrap();
        for (a, b) in y_fused.data().iter().zip(y_plain.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let go = fedadmm_tensor::init::randn(&[4, 5], 0.0, 1.0, &mut rng);
        let gx_fused = fused.backward(&go).unwrap();
        let gx_plain = plain.backward(&relu.backward(&go).unwrap()).unwrap();
        for (a, b) in gx_fused.data().iter().zip(gx_plain.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let (mut gf, mut gp) = (Vec::new(), Vec::new());
        fused.write_grads(&mut gf);
        plain.write_grads(&mut gp);
        assert_eq!(gf.len(), gp.len());
        for (a, b) in gf.iter().zip(gp.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// `forward_into`/`backward_into` reuse caller buffers and match the
    /// allocating path.
    #[test]
    fn into_path_matches_allocating_path() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = fedadmm_tensor::init::randn(&[2, 4], 0.0, 1.0, &mut rng);
        let go = fedadmm_tensor::init::randn(&[2, 3], 0.0, 1.0, &mut rng);
        let mut out = Tensor::zeros(&[0]);
        let mut gi = Tensor::zeros(&[0]);
        l.forward_into(&x, &mut out).unwrap();
        l.zero_grads();
        l.backward_into(&go, &mut gi).unwrap();
        let grads_into = {
            let mut g = Vec::new();
            l.write_grads(&mut g);
            g
        };
        let y = l.forward(&x).unwrap();
        l.zero_grads();
        let gx = l.backward(&go).unwrap();
        let mut grads_alloc = Vec::new();
        l.write_grads(&mut grads_alloc);
        assert_eq!(out.data(), y.data());
        assert_eq!(gi.data(), gx.data());
        assert_eq!(grads_into, grads_alloc);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let go = Tensor::ones(&[1, 2]);
        l.forward(&x).unwrap();
        l.backward(&go).unwrap();
        let mut g1 = Vec::new();
        l.write_grads(&mut g1);
        l.forward(&x).unwrap();
        l.backward(&go).unwrap();
        let mut g2 = Vec::new();
        l.write_grads(&mut g2);
        for (a, b) in g1.iter().zip(g2.iter()) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
        l.zero_grads();
        let mut g3 = Vec::new();
        l.write_grads(&mut g3);
        assert!(g3.iter().all(|&v| v == 0.0));
    }
}
