//! Layers with explicit forward/backward passes.
//!
//! Every layer owns its parameters and their gradient accumulators and
//! caches whatever activations its backward pass needs. Layers expose their
//! parameters through a *flat* serialisation protocol
//! ([`Layer::write_params`] / [`Layer::read_params`]) because the federated
//! algorithms in `fedadmm-core` treat model parameters as a single vector
//! θ ∈ ℝ^d (Algorithm 1 of the paper works entirely on such vectors).

mod activation;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod pool;
mod relu;
mod reshape;

pub use activation::{Sigmoid, Tanh};
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::MaxPool2d;
pub use relu::Relu;
pub use reshape::Reshape;

use fedadmm_tensor::{Tensor, TensorResult};

/// A differentiable layer.
///
/// The contract mirrors classic layer-based backprop:
/// 1. `forward` consumes a batch and caches what the backward pass needs;
/// 2. `backward` consumes the gradient of the loss with respect to the
///    layer's output, *accumulates* gradients for the layer's own
///    parameters, and returns the gradient with respect to the input.
///
/// `backward` must be called after `forward` on the same batch.
pub trait Layer: Send {
    /// Human-readable layer name (used in `Network` summaries).
    fn name(&self) -> &'static str;

    /// Forward pass over a batch.
    fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor>;

    /// Backward pass: accumulates parameter gradients, returns `dL/d(input)`.
    fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor>;

    /// Forward pass writing into a caller-owned output tensor.
    ///
    /// `out` is resized (reusing its capacity) and fully overwritten, so a
    /// training loop that re-presents the same batch shape performs no
    /// allocation. Values are bit-identical to [`Layer::forward`]. The
    /// default implementation falls back to the allocating forward pass.
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> TensorResult<()> {
        let result = self.forward(input)?;
        out.resize_in_place(result.dims());
        out.data_mut().copy_from_slice(result.data());
        Ok(())
    }

    /// Backward pass writing `dL/d(input)` into a caller-owned tensor.
    ///
    /// Same contract as [`Layer::backward`] (parameter gradients are
    /// *accumulated*), but the input gradient lands in `grad_input`, resized
    /// in place. The default implementation falls back to the allocating
    /// backward pass.
    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> TensorResult<()> {
        let result = self.backward(grad_output)?;
        grad_input.resize_in_place(result.dims());
        grad_input.data_mut().copy_from_slice(result.data());
        Ok(())
    }

    /// Number of trainable parameters in this layer.
    fn num_params(&self) -> usize {
        0
    }

    /// Appends this layer's parameters to `out` in a fixed order.
    fn write_params(&self, _out: &mut Vec<f32>) {}

    /// Reads this layer's parameters from the front of `src`, returning the
    /// number of values consumed. The order matches [`Layer::write_params`].
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    /// Appends this layer's accumulated gradients to `out`, in the same
    /// order as [`Layer::write_params`].
    fn write_grads(&self, _out: &mut Vec<f32>) {}

    /// Clears the accumulated parameter gradients.
    fn zero_grads(&mut self) {}

    /// Clones the layer behind a box (parameters are copied, caches are not
    /// required to be preserved).
    fn clone_layer(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_layer()
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Shared finite-difference gradient-check helper used by layer tests.

    use super::Layer;
    use fedadmm_tensor::Tensor;

    /// Checks `dL/dparams` of `layer` against central finite differences,
    /// where the scalar loss is `sum(layer.forward(input))`.
    pub fn check_param_gradients(
        layer: &mut dyn Layer,
        input: &Tensor,
        indices: &[usize],
        tol: f32,
    ) {
        let out = layer.forward(input).unwrap();
        let grad_out = Tensor::ones(out.dims());
        layer.zero_grads();
        layer.backward(&grad_out).unwrap();
        let mut grads = Vec::new();
        layer.write_grads(&mut grads);
        let mut params = Vec::new();
        layer.write_params(&mut params);

        let eps = 1e-2f32;
        for &idx in indices {
            let orig = params[idx];
            params[idx] = orig + eps;
            layer.read_params(&params);
            let lp = layer.forward(input).unwrap().sum();
            params[idx] = orig - eps;
            layer.read_params(&params);
            let lm = layer.forward(input).unwrap().sum();
            params[idx] = orig;
            layer.read_params(&params);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads[idx];
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + analytic.abs()),
                "param {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// Checks `dL/dinput` of `layer` against central finite differences.
    pub fn check_input_gradients(
        layer: &mut dyn Layer,
        input: &Tensor,
        indices: &[usize],
        tol: f32,
    ) {
        let out = layer.forward(input).unwrap();
        let grad_out = Tensor::ones(out.dims());
        layer.zero_grads();
        let grad_in = layer.backward(&grad_out).unwrap();

        let eps = 1e-2f32;
        let mut x = input.clone();
        for &idx in indices {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let lp = layer.forward(&x).unwrap().sum();
            x.data_mut()[idx] = orig - eps;
            let lm = layer.forward(&x).unwrap().sum();
            x.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data()[idx];
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + analytic.abs()),
                "input {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}
