//! Plain stochastic gradient descent on flat parameter vectors.
//!
//! The paper uses SGD as the local solver for every algorithm ("SGD was
//! chosen as the local solver in all cases"). The federated algorithms add
//! their own proximal / dual correction terms *before* the SGD step, so the
//! optimizer itself stays deliberately simple.

use fedadmm_tensor::vecops;
use serde::{Deserialize, Serialize};

/// Plain SGD with an optional weight-decay (L2) term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate η_i (the paper selects it from {0.01, 0.1, 0.2, 0.5}).
    pub learning_rate: f32,
    /// Optional decoupled weight decay coefficient (0 disables it).
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate and no weight
    /// decay.
    pub fn new(learning_rate: f32) -> Self {
        Sgd {
            learning_rate,
            weight_decay: 0.0,
        }
    }

    /// Creates an SGD optimizer with weight decay.
    pub fn with_weight_decay(learning_rate: f32, weight_decay: f32) -> Self {
        Sgd {
            learning_rate,
            weight_decay,
        }
    }

    /// Performs one update: `params -= lr * (grads + weight_decay * params)`.
    ///
    /// # Panics
    /// Panics if `params.len() != grads.len()`.
    pub fn step(&self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "Sgd::step length mismatch");
        if self.weight_decay != 0.0 {
            let lr_wd = self.learning_rate * self.weight_decay;
            for (p, &g) in params.iter_mut().zip(grads.iter()) {
                *p -= self.learning_rate * g + lr_wd * *p;
            }
        } else {
            vecops::axpy(-self.learning_rate, grads, params);
        }
    }
}

/// SGD with heavy-ball momentum (and optional weight decay).
///
/// Not used by the paper's protocol (whose local solver is plain SGD) but
/// provided for users who want a stronger local solver; the inexactness
/// criterion (6) of the paper is agnostic to how the local subproblem is
/// approximately minimised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MomentumSgd {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient β ∈ [0, 1).
    pub momentum: f32,
    /// Optional decoupled weight decay coefficient (0 disables it).
    pub weight_decay: f32,
    /// Velocity buffer (lazily sized on the first step).
    velocity: Vec<f32>,
}

impl MomentumSgd {
    /// Creates a momentum-SGD optimizer.
    ///
    /// # Panics
    /// Panics unless `0 ≤ momentum < 1`.
    pub fn new(learning_rate: f32, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        MomentumSgd {
            learning_rate,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Performs one update:
    /// `v ← β·v + g`, `params ← params − lr·v − lr·wd·params`.
    ///
    /// # Panics
    /// Panics if `params.len() != grads.len()`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "MomentumSgd::step length mismatch"
        );
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        let lr = self.learning_rate;
        let lr_wd = lr * self.weight_decay;
        for ((v, p), &g) in self
            .velocity
            .iter_mut()
            .zip(params.iter_mut())
            .zip(grads.iter())
        {
            *v = self.momentum * *v + g;
            *p -= lr * *v;
            if lr_wd != 0.0 {
                *p -= lr_wd * *p;
            }
        }
    }

    /// Clears the velocity buffer (e.g. between federated rounds, where the
    /// local subproblem changes because θ and the duals change).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_moves_against_gradient() {
        let sgd = Sgd::new(0.1);
        let mut p = vec![1.0, 2.0];
        sgd.step(&mut p, &[1.0, -1.0]);
        assert_eq!(p, vec![0.9, 2.1]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let sgd = Sgd::with_weight_decay(0.1, 0.5);
        let mut p = vec![1.0];
        sgd.step(&mut p, &[0.0]);
        assert!((p[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn zero_lr_is_noop() {
        let sgd = Sgd::new(0.0);
        let mut p = vec![3.0, -4.0];
        sgd.step(&mut p, &[100.0, 100.0]);
        assert_eq!(p, vec![3.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Sgd::new(0.1).step(&mut [1.0], &[1.0, 2.0]);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimise f(x) = 0.5 * ||x - t||^2 with gradient (x - t).
        let target = [1.0f32, -2.0, 3.0];
        let mut x = vec![0.0f32; 3];
        let sgd = Sgd::new(0.5);
        for _ in 0..50 {
            let grads: Vec<f32> = x.iter().zip(target.iter()).map(|(a, t)| a - t).collect();
            sgd.step(&mut x, &grads);
        }
        for (a, t) in x.iter().zip(target.iter()) {
            assert!((a - t).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn momentum_out_of_range_is_rejected() {
        MomentumSgd::new(0.1, 1.0);
    }

    #[test]
    fn zero_momentum_matches_plain_sgd() {
        let mut m = MomentumSgd::new(0.1, 0.0);
        let sgd = Sgd::new(0.1);
        let mut a = vec![1.0f32, -2.0];
        let mut b = a.clone();
        for _ in 0..5 {
            let g = vec![0.5, -0.25];
            m.step(&mut a, &g);
            sgd.step(&mut b, &g);
        }
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accelerates_along_a_constant_gradient() {
        // With a constant gradient, the velocity grows towards g/(1-β), so
        // momentum covers more distance than plain SGD in the same steps.
        let mut m = MomentumSgd::new(0.1, 0.9);
        let sgd = Sgd::new(0.1);
        let mut a = vec![0.0f32];
        let mut b = vec![0.0f32];
        for _ in 0..20 {
            m.step(&mut a, &[1.0]);
            sgd.step(&mut b, &[1.0]);
        }
        assert!(
            a[0] < b[0],
            "momentum {} should descend further than sgd {}",
            a[0],
            b[0]
        );
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let target = [1.0f32, -2.0, 3.0];
        let mut x = vec![0.0f32; 3];
        let mut opt = MomentumSgd::new(0.2, 0.8);
        for _ in 0..200 {
            let grads: Vec<f32> = x.iter().zip(target.iter()).map(|(a, t)| a - t).collect();
            opt.step(&mut x, &grads);
        }
        for (a, t) in x.iter().zip(target.iter()) {
            assert!((a - t).abs() < 1e-2);
        }
    }

    #[test]
    fn reset_clears_velocity_and_decay_shrinks_params() {
        let mut opt = MomentumSgd::new(0.1, 0.9).with_weight_decay(0.5);
        let mut p = vec![1.0f32];
        opt.step(&mut p, &[0.0]);
        assert!(p[0] < 1.0);
        opt.reset();
        assert!(opt.velocity.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn momentum_mismatched_lengths_panic() {
        MomentumSgd::new(0.1, 0.5).step(&mut [1.0], &[1.0, 2.0]);
    }
}
