//! Classification loss and metrics.
//!
//! The paper trains ten-class image classifiers with the standard softmax
//! cross-entropy loss; [`softmax_cross_entropy`] returns both the mean loss
//! over the batch and the gradient with respect to the logits, which is fed
//! straight into [`crate::Network::backward`].

use fedadmm_tensor::{Tensor, TensorError, TensorResult};

/// Numerically stable softmax over the last dimension of a `[batch, classes]`
/// tensor.
pub fn softmax(logits: &Tensor) -> TensorResult<Tensor> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
        });
    }
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    for b in 0..batch {
        let row = &mut out.data_mut()[b * classes..(b + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    Ok(out)
}

/// Mean softmax cross-entropy loss and its gradient with respect to the
/// logits.
///
/// * `logits`: `[batch, classes]`
/// * `labels`: `batch` class indices in `0..classes`
///
/// Returns `(mean_loss, grad_logits)` where `grad_logits` has the same shape
/// as `logits` and is already divided by the batch size (so the network's
/// accumulated gradients are the gradient of the *mean* loss).
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> TensorResult<(f32, Tensor)> {
    let mut grad = Tensor::zeros(&[0]);
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad)?;
    Ok((loss, grad))
}

/// [`softmax_cross_entropy`] writing the gradient into a caller-owned
/// tensor — the scratch-friendly twin for per-step hot loops.
///
/// `grad` is resized to the logits shape (reusing capacity) and fully
/// overwritten; the returned loss and the gradient are bit-identical to the
/// allocating variant.
pub fn softmax_cross_entropy_into(
    logits: &Tensor,
    labels: &[usize],
    grad: &mut Tensor,
) -> TensorResult<f32> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
        });
    }
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != batch {
        return Err(TensorError::InvalidArgument(format!(
            "got {} labels for a batch of {}",
            labels.len(),
            batch
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(TensorError::InvalidArgument(format!(
            "label {bad} out of range for {classes} classes"
        )));
    }
    grad.resize_in_place(logits.dims());
    grad.data_mut().copy_from_slice(logits.data());
    // Numerically stable softmax in place, row by row (same arithmetic as
    // [`softmax`], so the result is bit-identical).
    for b in 0..batch {
        let row = &mut grad.data_mut()[b * classes..(b + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    let mut loss = 0.0f32;
    let inv_batch = 1.0 / batch as f32;
    for (b, &label) in labels.iter().enumerate() {
        let p = grad.data()[b * classes + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[b * classes + label] -= 1.0;
    }
    grad.scale_in_place(inv_batch);
    Ok(loss * inv_batch)
}

/// Fraction of samples whose argmax prediction matches the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> TensorResult<f32> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
        });
    }
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != batch {
        return Err(TensorError::InvalidArgument(format!(
            "got {} labels for a batch of {}",
            labels.len(),
            batch
        )));
    }
    if batch == 0 {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for (b, &label) in labels.iter().enumerate() {
        let row = &logits.data()[b * classes..(b + 1) * classes];
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    Ok(correct as f32 / batch as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax(&logits).unwrap();
        for b in 0..2 {
            let s: f32 = p.data()[b * 3..(b + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 0.0], &[1, 2]).unwrap();
        let p = softmax(&logits).unwrap();
        assert!((p.data()[0] - 1.0).abs() < 1e-5);
        assert!(p.data()[1] < 1e-5);
        assert!(p.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let labels = [0usize, 3, 7, 9];
        let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-4);
        assert_eq!(grad.dims(), &[4, 10]);
    }

    #[test]
    fn perfect_prediction_near_zero_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.set(&[0, 1], 50.0).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[1]).unwrap();
        assert!(loss < 1e-4);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 1.5, 0.0, 0.1, -1.0], &[2, 3]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]).unwrap();
        for b in 0..2 {
            let s: f32 = grad.data()[b * 3..(b + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-5, "row {b} sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, -1.2, 0.4], &[2, 3]).unwrap();
        let labels = [1usize, 2];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let orig = logits.data()[idx];
            logits.data_mut()[idx] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&logits, &labels).unwrap();
            logits.data_mut()[idx] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&logits, &labels).unwrap();
            logits.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-2,
                "idx {idx}: numeric {numeric} vs analytic {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 5]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[6]), &[0]).is_err());
        assert!(accuracy(&logits, &[0]).is_err());
    }

    #[test]
    fn accuracy_counts_correct_argmax() {
        let logits =
            Tensor::from_vec(vec![5.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 5.0], &[3, 3]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 2]).unwrap(), 1.0);
        assert!((accuracy(&logits, &[0, 1, 0]).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[1, 2, 0]).unwrap(), 0.0);
    }

    proptest! {
        /// Softmax probabilities are in [0,1] and rows sum to 1.
        #[test]
        fn prop_softmax_is_distribution(v in proptest::collection::vec(-10.0f32..10.0, 6)) {
            let logits = Tensor::from_vec(v, &[2, 3]).unwrap();
            let p = softmax(&logits).unwrap();
            for b in 0..2 {
                let row = &p.data()[b * 3..(b + 1) * 3];
                let s: f32 = row.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4);
                prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }

        /// Cross-entropy loss is non-negative and finite.
        #[test]
        fn prop_loss_nonnegative(v in proptest::collection::vec(-20.0f32..20.0, 8), label in 0usize..4) {
            let logits = Tensor::from_vec(v, &[2, 4]).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, &[label, (label + 1) % 4]).unwrap();
            prop_assert!(loss >= 0.0);
            prop_assert!(loss.is_finite());
            prop_assert!(grad.data().iter().all(|g| g.is_finite()));
        }
    }
}
