//! A sequential network with flat parameter access.

use crate::arena::ActivationArena;
use crate::layers::Layer;
use fedadmm_tensor::{Tensor, TensorError, TensorResult};

/// A feed-forward network: an ordered sequence of [`Layer`]s.
///
/// The important design point for the federated algorithms is *flat
/// parameter access*: the entire model is read and written as a single
/// `Vec<f32>` of length `d = num_params()`, in a stable layer order. All of
/// the FedADMM / FedAvg / FedProx / SCAFFOLD vector arithmetic happens on
/// those flat vectors.
#[derive(Clone)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates a network from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Network { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable parameters `d`.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Human-readable summary: one `name(params)` entry per layer.
    pub fn summary(&self) -> String {
        self.layers
            .iter()
            .map(|l| format!("{}({})", l.name(), l.num_params()))
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, input: &Tensor) -> TensorResult<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Backward pass through all layers (in reverse), accumulating parameter
    /// gradients. Returns the gradient with respect to the network input.
    pub fn backward(&mut self, grad_output: &Tensor) -> TensorResult<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Forward pass routing every layer's output through `arena` slots.
    ///
    /// Bit-identical to [`Network::forward`]; the output lands in
    /// [`ActivationArena::output`]. After the first call at a given batch
    /// shape, repeated calls allocate nothing.
    pub fn forward_arena(
        &mut self,
        input: &Tensor,
        arena: &mut ActivationArena,
    ) -> TensorResult<()> {
        if self.layers.is_empty() {
            return Err(TensorError::InvalidArgument(
                "forward_arena on an empty network".into(),
            ));
        }
        arena.ensure_layers(self.layers.len());
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let (prev, rest) = arena.acts.split_at_mut(i);
            let src: &Tensor = if i == 0 { input } else { &prev[i - 1] };
            layer.forward_into(src, &mut rest[0])?;
        }
        Ok(())
    }

    /// Backward pass seeded from [`ActivationArena`]'s loss-gradient slot
    /// (fill it via `loss::softmax_cross_entropy_into` after the forward
    /// pass), accumulating parameter gradients.
    ///
    /// Bit-identical to [`Network::backward`]; the input gradient lands in
    /// [`ActivationArena::input_grad`].
    pub fn backward_arena(&mut self, arena: &mut ActivationArena) -> TensorResult<()> {
        let n = self.layers.len();
        if arena.acts.len() < n || n == 0 {
            return Err(TensorError::InvalidArgument(
                "backward_arena called before forward_arena".into(),
            ));
        }
        arena.ensure_layers(n);
        for i in (0..n).rev() {
            let (head, tail) = arena.grads.split_at_mut(i + 1);
            let g_src: &Tensor = if i == n - 1 {
                &arena.loss_grad
            } else {
                &tail[0]
            };
            self.layers[i].backward_into(g_src, &mut head[i])?;
        }
        Ok(())
    }

    /// Returns all parameters as a single flat vector of length
    /// [`Network::num_params`].
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            layer.write_params(&mut out);
        }
        out
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// Returns an error if `src.len() != num_params()`.
    pub fn set_params_flat(&mut self, src: &[f32]) -> TensorResult<()> {
        if src.len() != self.num_params() {
            return Err(TensorError::InvalidArgument(format!(
                "set_params_flat: expected {} values, got {}",
                self.num_params(),
                src.len()
            )));
        }
        let mut offset = 0usize;
        for layer in &mut self.layers {
            let consumed = layer.read_params(&src[offset..]);
            offset += consumed;
        }
        debug_assert_eq!(offset, src.len());
        Ok(())
    }

    /// Returns the accumulated parameter gradients as a flat vector, in the
    /// same order as [`Network::params_flat`].
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.grads_flat_into(&mut out);
        out
    }

    /// Writes the accumulated parameter gradients into `out`, reusing its
    /// allocation — the scratch-friendly twin of [`Network::grads_flat`]
    /// for per-step hot loops.
    pub fn grads_flat_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.num_params());
        for layer in &self.layers {
            layer.write_grads(out);
        }
    }

    /// Clears all accumulated parameter gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Network[{}]", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_net(seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        Network::new(vec![
            Box::new(Linear::new(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 3, &mut rng)),
        ])
    }

    #[test]
    fn num_params_sums_layers() {
        let net = small_net(0);
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(net.num_layers(), 3);
    }

    #[test]
    fn summary_mentions_layers() {
        let s = small_net(0).summary();
        assert!(s.contains("Linear"));
        assert!(s.contains("ReLU"));
    }

    #[test]
    fn params_roundtrip() {
        let net = small_net(1);
        let p = net.params_flat();
        assert_eq!(p.len(), net.num_params());
        let mut net2 = small_net(2);
        assert_ne!(net2.params_flat(), p);
        net2.set_params_flat(&p).unwrap();
        assert_eq!(net2.params_flat(), p);
    }

    #[test]
    fn set_params_rejects_wrong_length() {
        let mut net = small_net(0);
        assert!(net.set_params_flat(&[0.0; 3]).is_err());
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = small_net(3);
        let x = Tensor::ones(&[5, 4]);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.dims(), &[5, 3]);
        let gx = net.backward(&Tensor::ones(&[5, 3])).unwrap();
        assert_eq!(gx.dims(), &[5, 4]);
        assert_eq!(net.grads_flat().len(), net.num_params());
    }

    #[test]
    fn grads_flat_into_matches_grads_flat() {
        let mut net = small_net(6);
        let x = Tensor::ones(&[2, 4]);
        let y = net.forward(&x).unwrap();
        net.backward(&Tensor::ones(y.dims())).unwrap();
        let mut buf = vec![9.9f32; 3]; // stale contents must be discarded
        net.grads_flat_into(&mut buf);
        assert_eq!(buf, net.grads_flat());
        let cap = buf.capacity();
        net.grads_flat_into(&mut buf);
        assert_eq!(buf.capacity(), cap, "grads_flat_into must reuse the buffer");
    }

    #[test]
    fn zero_grads_clears_accumulators() {
        let mut net = small_net(4);
        let x = Tensor::ones(&[2, 4]);
        let y = net.forward(&x).unwrap();
        net.backward(&Tensor::ones(y.dims())).unwrap();
        assert!(net.grads_flat().iter().any(|&g| g != 0.0));
        net.zero_grads();
        assert!(net.grads_flat().iter().all(|&g| g == 0.0));
    }

    /// The arena-routed forward/backward must be bit-identical to the
    /// allocating path, and repeat passes must reuse the arena slots.
    #[test]
    fn arena_path_matches_allocating_path() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut net = small_net(17);
        let mut reference = net.clone();
        let x = fedadmm_tensor::init::randn(&[3, 4], 0.0, 1.0, &mut rng);

        let y_ref = reference.forward(&x).unwrap();
        let loss_grad = fedadmm_tensor::init::randn(y_ref.dims(), 0.0, 1.0, &mut rng);
        reference.zero_grads();
        let gx_ref = reference.backward(&loss_grad).unwrap();

        let mut arena = ActivationArena::new();
        net.forward_arena(&x, &mut arena).unwrap();
        for (a, b) in arena.output().data().iter().zip(y_ref.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        {
            let (_, lg) = arena.output_and_loss_grad();
            lg.resize_in_place(loss_grad.dims());
            lg.data_mut().copy_from_slice(loss_grad.data());
        }
        net.zero_grads();
        net.backward_arena(&mut arena).unwrap();
        for (a, b) in arena.input_grad().data().iter().zip(gx_ref.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(net.grads_flat(), reference.grads_flat());

        // A second pass through the same arena must agree as well.
        net.forward_arena(&x, &mut arena).unwrap();
        for (a, b) in arena.output().data().iter().zip(y_ref.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn backward_arena_before_forward_errors() {
        let mut net = small_net(0);
        let mut arena = ActivationArena::new();
        assert!(net.backward_arena(&mut arena).is_err());
    }

    #[test]
    fn clone_is_independent() {
        let mut net = small_net(5);
        let clone = net.clone();
        let p = net.params_flat();
        let zeros = vec![0.0; net.num_params()];
        net.set_params_flat(&zeros).unwrap();
        assert_eq!(clone.params_flat(), p);
        assert_ne!(net.params_flat(), p);
    }

    /// Whole-network finite-difference gradient check against the scalar
    /// objective sum(forward(x)).
    #[test]
    fn network_gradients_match_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut net = small_net(11);
        let x = fedadmm_tensor::init::randn(&[3, 4], 0.0, 1.0, &mut rng);
        let y = net.forward(&x).unwrap();
        net.zero_grads();
        net.backward(&Tensor::ones(y.dims())).unwrap();
        let grads = net.grads_flat();
        let mut params = net.params_flat();

        let eps = 1e-2f32;
        for &idx in &[0usize, 10, 20, 40, 50] {
            let orig = params[idx];
            params[idx] = orig + eps;
            net.set_params_flat(&params).unwrap();
            let lp = net.forward(&x).unwrap().sum();
            params[idx] = orig - eps;
            net.set_params_flat(&params).unwrap();
            let lm = net.forward(&x).unwrap().sum();
            params[idx] = orig;
            net.set_params_flat(&params).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads[idx];
            assert!(
                (numeric - analytic).abs() < 5e-2 * (1.0 + analytic.abs()),
                "param {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}
