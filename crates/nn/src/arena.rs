//! Reusable activation/gradient storage for allocation-free training steps.
//!
//! A [`ActivationArena`] owns one output tensor and one input-gradient
//! tensor per layer, plus the loss-gradient seed for the backward pass.
//! [`crate::Network::forward_arena`] / [`crate::Network::backward_arena`]
//! thread every layer's `forward_into` / `backward_into` through these
//! slots, so after the first step at a given batch shape the whole
//! forward/backward sweep touches only pre-grown buffers — the SGD hot loop
//! performs zero allocations in steady state.
//!
//! ```text
//!        input ──▶ [layer 0] ──▶ acts[0] ──▶ [layer 1] ──▶ acts[1] ... acts[n-1]
//!                                                                        │ loss
//!   grads[0] ◀── [layer 0] ◀── grads[1] ◀── [layer 1] ◀── ...  ◀── loss_grad
//! ```

use fedadmm_tensor::Tensor;

/// A slab of per-layer activation and gradient buffers, keyed implicitly by
/// whatever batch shape last flowed through it (each slot is resized in
/// place on every pass, which is free once capacity has grown).
#[derive(Debug, Clone)]
pub struct ActivationArena {
    /// `acts[i]` holds the output of layer `i` from the last forward pass.
    pub(crate) acts: Vec<Tensor>,
    /// `grads[i]` holds `dL/d(input of layer i)` from the last backward pass.
    pub(crate) grads: Vec<Tensor>,
    /// Gradient of the loss with respect to the network output; the caller
    /// fills this (e.g. via `softmax_cross_entropy_into`) between the
    /// forward and backward sweeps.
    pub(crate) loss_grad: Tensor,
}

impl Default for ActivationArena {
    fn default() -> Self {
        ActivationArena {
            acts: Vec::new(),
            grads: Vec::new(),
            loss_grad: Tensor::zeros(&[0]),
        }
    }
}

impl ActivationArena {
    /// Creates an empty arena. Buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the arena has one activation and one gradient slot per layer.
    pub(crate) fn ensure_layers(&mut self, num_layers: usize) {
        while self.acts.len() < num_layers {
            self.acts.push(Tensor::zeros(&[0]));
        }
        while self.grads.len() < num_layers {
            self.grads.push(Tensor::zeros(&[0]));
        }
    }

    /// The network output of the last `forward_arena` pass.
    ///
    /// # Panics
    /// Panics if no forward pass has populated the arena yet.
    pub fn output(&self) -> &Tensor {
        self.acts
            .last()
            .expect("ActivationArena::output before forward_arena")
    }

    /// The last forward output together with mutable access to the
    /// loss-gradient slot, for computing a loss and seeding the backward
    /// sweep without an intermediate copy.
    ///
    /// # Panics
    /// Panics if no forward pass has populated the arena yet.
    pub fn output_and_loss_grad(&mut self) -> (&Tensor, &mut Tensor) {
        (
            self.acts
                .last()
                .expect("ActivationArena::output_and_loss_grad before forward_arena"),
            &mut self.loss_grad,
        )
    }

    /// The gradient with respect to the network input from the last
    /// `backward_arena` pass.
    ///
    /// # Panics
    /// Panics if no backward pass has populated the arena yet.
    pub fn input_grad(&self) -> &Tensor {
        self.grads
            .first()
            .expect("ActivationArena::input_grad before backward_arena")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_grow_to_layer_count_and_persist() {
        let mut arena = ActivationArena::new();
        arena.ensure_layers(3);
        assert_eq!(arena.acts.len(), 3);
        assert_eq!(arena.grads.len(), 3);
        arena.ensure_layers(2);
        assert_eq!(arena.acts.len(), 3, "slots never shrink");
    }

    #[test]
    #[should_panic(expected = "before forward_arena")]
    fn output_before_forward_panics() {
        ActivationArena::new().output();
    }
}
