//! # fedadmm-nn
//!
//! Neural-network training stack for the FedADMM reproduction: layers with
//! explicit forward/backward passes, a [`Network`] container with *flat*
//! parameter access (the federated algorithms operate on parameter vectors
//! in ℝ^d), the softmax cross-entropy loss, plain SGD, and the paper's two
//! CNN architectures ([`models::ModelSpec::Cnn1`], [`models::ModelSpec::Cnn2`])
//! plus lighter models (MLP, multinomial logistic regression) used by the
//! fast test/benchmark configurations.
//!
//! ## Example: one SGD step on a small model
//!
//! ```
//! use fedadmm_nn::models::ModelSpec;
//! use fedadmm_nn::loss::softmax_cross_entropy;
//! use fedadmm_nn::optimizer::Sgd;
//! use fedadmm_tensor::Tensor;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! // The small MLP keeps the doctest fast; ModelSpec::Cnn1 builds the paper's
//! // 1,663,370-parameter model with the same API.
//! let spec = ModelSpec::Mlp { input_dim: 16, hidden_dim: 8, num_classes: 4 };
//! let mut net = spec.build(&mut rng);
//! let x = Tensor::zeros(&[2, 16]);
//! let labels = [0usize, 3];
//!
//! let logits = net.forward(&x).unwrap();
//! let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
//! net.backward(&grad).unwrap();
//! let mut params = net.params_flat();
//! Sgd::new(0.1).step(&mut params, &net.grads_flat());
//! net.set_params_flat(&params).unwrap();
//! assert!(loss > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod layers;
pub mod loss;
pub mod models;
pub mod network;
pub mod optimizer;

pub use arena::ActivationArena;
pub use layers::Layer;
pub use models::ModelSpec;
pub use network::Network;
