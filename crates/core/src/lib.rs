//! # fedadmm-core
//!
//! The federated-learning framework reproducing *FedADMM: A Robust
//! Federated Deep Learning Framework with Adaptivity to System
//! Heterogeneity* (Gong, Li, Freris — ICDE 2022).
//!
//! The crate provides:
//!
//! * [`algorithms`] — the paper's contribution, [`algorithms::FedAdmm`]
//!   (Algorithm 1), and every baseline it is evaluated against:
//!   [`algorithms::FedSgd`], [`algorithms::FedAvg`], [`algorithms::FedProx`],
//!   [`algorithms::Scaffold`], plus the related full-participation
//!   [`algorithms::FedPd`];
//! * [`client`] — per-client state (local model `w_i`, dual variable `y_i`,
//!   SCAFFOLD control variate `c_i`, local data view);
//! * [`selection`] — client-selection schemes (uniform-random fraction `C`,
//!   fixed per-client probabilities, full participation);
//! * [`heterogeneity`] — system-heterogeneity models (the paper draws each
//!   client's local epoch count uniformly from `{1..E}`);
//! * [`trainer`] — the shared local SGD solver with pluggable gradient
//!   corrections (proximal term, dual variable, control variates);
//! * [`engine`] — the unified simulation engine: one [`engine::RoundEngine`]
//!   drives rounds through a pluggable [`engine::Scheduler`]
//!   ([`engine::SyncRounds`], [`engine::BufferedAsync`],
//!   [`engine::SemiAsync`]);
//! * [`simulation`] / [`async_sim`] — deprecated thin wrappers over the
//!   engine, kept for the legacy API;
//! * [`metrics`] — per-round records, communication accounting and
//!   rounds-to-target-accuracy summaries;
//! * [`diagnostics`] — the V_t optimality-gap function of equation (7),
//!   used to monitor convergence the same way the paper's analysis does.
//!
//! ## Quickstart
//!
//! ```
//! use fedadmm_core::engine::{RoundEngine, SyncRounds};
//! use fedadmm_core::prelude::*;
//! use fedadmm_data::synthetic::SyntheticDataset;
//! use fedadmm_nn::models::ModelSpec;
//!
//! // A deliberately tiny configuration so the doctest runs in milliseconds;
//! // the examples/ and benches/ use paper-scale settings.
//! let config = FedConfig {
//!     num_clients: 10,
//!     participation: Participation::Fraction(0.3),
//!     local_epochs: 2,
//!     batch_size: BatchSize::Size(16),
//!     local_learning_rate: 0.1,
//!     model: ModelSpec::Logistic { input_dim: 784, num_classes: 10 },
//!     seed: 7,
//!     ..FedConfig::default()
//! };
//! let (train, test) = SyntheticDataset::Mnist.generate(200, 50, 7);
//! let partition = DataDistribution::Iid.partition(&train, config.num_clients, 7);
//! let algorithm = FedAdmm::new(0.01, ServerStepSize::Constant(1.0));
//! let mut engine =
//!     RoundEngine::new(config, train, test, partition, algorithm, SyncRounds).unwrap();
//! let history = engine.run_rounds(3).unwrap();
//! assert_eq!(history.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod async_sim;
pub mod client;
pub mod compression;
pub mod config;
pub mod diagnostics;
pub mod drift;
pub mod engine;
pub mod heterogeneity;
pub mod metrics;
pub mod param;
pub mod quadratic;
pub mod schedule;
pub mod selection;
pub mod simulation;
pub mod solver;
pub mod theory;
pub mod trainer;

/// Convenient re-exports of the types most experiments need.
pub mod prelude {
    pub use crate::algorithms::{
        Algorithm, FedAdmm, FedAdmmInexact, FedAvg, FedDyn, FedOpt, FedPd, FedProx, FedSgd,
        FoldPlan, LocalInit, Scaffold, ServerOptimizer, ServerStepSize,
    };
    #[allow(deprecated)]
    pub use crate::async_sim::AsyncSimulation;
    pub use crate::client::ClientState;
    pub use crate::compression::{QuantizedAlgorithm, Quantizer};
    pub use crate::config::{DataDistribution, FedConfig, Participation};
    pub use crate::drift::DriftReport;
    pub use crate::engine::{
        AggregationMode, AsyncConfig, AsyncRecord, BufferedAsync, DispatchConfig, DispatchMode,
        RoundEngine, Scheduler, SemiAsync, SemiAsyncConfig, StalenessWeight, SyncEngine,
        SyncRounds, WireGuard, WirePath, WirePathConfig,
    };
    pub use crate::heterogeneity::LocalWorkSchedule;
    pub use crate::metrics::{RoundRecord, RunHistory};
    pub use crate::param::ParamVector;
    pub use crate::schedule::Schedule;
    pub use crate::selection::ClientSelector;
    #[allow(deprecated)]
    pub use crate::simulation::Simulation;
    pub use crate::solver::LocalSolver;
    pub use fedadmm_clientstore::{
        ClientStateStore, InMemoryStore, ShardMap, ShardedStore, SpillStore, StoreConfig,
        StoreStats,
    };
    pub use fedadmm_data::batching::BatchSize;
    pub use fedadmm_telemetry::{NoTelemetry, Recorder, RoundSummary, Telemetry};
}
