//! Hyperparameter schedules for mid-run adjustment of η and ρ.
//!
//! Two of the paper's experiments change a hyperparameter while training is
//! in progress:
//!
//! * Figure 6 decreases the server gathering step size η at round 60 ("a
//!   decrease of the step size serves to incorporate past information in a
//!   finer fashion, thus improving the test accuracy");
//! * Figure 9 increases ρ at a later stage ("a smaller value (0.01) at
//!   initial stages of training allows efficient incorporation of local
//!   data when the global model is not informed, while an increase of ρ at
//!   later stages reduces discrepancies between client models and the
//!   global model").
//!
//! [`Schedule`] expresses such piecewise/decaying schedules declaratively so
//! experiments, examples and benches can share one implementation instead of
//! hand-rolling `if round >= 60 { … }` logic.

use serde::{Deserialize, Serialize};

/// A scalar hyperparameter schedule over communication rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// The same value every round.
    Constant(f32),
    /// Piecewise-constant: starts at `initial`, and at each `(round, value)`
    /// boundary (sorted by round) switches to `value` from that round on.
    /// This is the shape used by Figures 6 and 9.
    Step {
        /// Value before the first boundary.
        initial: f32,
        /// `(round, value)` change points.
        boundaries: Vec<(usize, f32)>,
    },
    /// Multiplicative decay: `initial · factor^(round / every)`.
    Decay {
        /// Value at round 0.
        initial: f32,
        /// Multiplier applied every `every` rounds.
        factor: f32,
        /// Decay interval in rounds.
        every: usize,
    },
}

impl Schedule {
    /// A Figure 6-style schedule: `initial` until `switch_round`, then
    /// `later`.
    pub fn step_at(initial: f32, switch_round: usize, later: f32) -> Self {
        Schedule::Step {
            initial,
            boundaries: vec![(switch_round, later)],
        }
    }

    /// The value of the hyperparameter at `round`.
    pub fn value_at(&self, round: usize) -> f32 {
        match self {
            Schedule::Constant(v) => *v,
            Schedule::Step {
                initial,
                boundaries,
            } => {
                let mut value = *initial;
                for &(boundary, v) in boundaries {
                    if round >= boundary {
                        value = v;
                    } else {
                        break;
                    }
                }
                value
            }
            Schedule::Decay {
                initial,
                factor,
                every,
            } => {
                let k = (round / (*every).max(1)) as i32;
                initial * factor.powi(k)
            }
        }
    }

    /// Whether the value changes between `round − 1` and `round` (used to
    /// decide whether to push the new value into the algorithm).
    pub fn changes_at(&self, round: usize) -> bool {
        if round == 0 {
            return true;
        }
        self.value_at(round) != self.value_at(round - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_never_changes_after_round_zero() {
        let s = Schedule::Constant(1.0);
        assert_eq!(s.value_at(0), 1.0);
        assert_eq!(s.value_at(1000), 1.0);
        assert!(s.changes_at(0));
        assert!(!s.changes_at(5));
    }

    #[test]
    fn step_schedule_matches_figure_6_protocol() {
        // η = 1.0 for the first 60 rounds, then 0.5.
        let s = Schedule::step_at(1.0, 60, 0.5);
        assert_eq!(s.value_at(0), 1.0);
        assert_eq!(s.value_at(59), 1.0);
        assert_eq!(s.value_at(60), 0.5);
        assert_eq!(s.value_at(200), 0.5);
        assert!(s.changes_at(60));
        assert!(!s.changes_at(61));
        assert!(!s.changes_at(59));
    }

    #[test]
    fn multi_boundary_step_applies_in_order() {
        let s = Schedule::Step {
            initial: 0.01,
            boundaries: vec![(10, 0.1), (20, 1.0)],
        };
        assert_eq!(s.value_at(5), 0.01);
        assert_eq!(s.value_at(15), 0.1);
        assert_eq!(s.value_at(25), 1.0);
    }

    #[test]
    fn decay_schedule_halves_every_interval() {
        let s = Schedule::Decay {
            initial: 0.8,
            factor: 0.5,
            every: 10,
        };
        assert_eq!(s.value_at(0), 0.8);
        assert_eq!(s.value_at(9), 0.8);
        assert!((s.value_at(10) - 0.4).abs() < 1e-7);
        assert!((s.value_at(35) - 0.1).abs() < 1e-7);
        assert!(s.changes_at(10));
        assert!(!s.changes_at(11));
    }

    #[test]
    fn decay_with_zero_interval_does_not_panic() {
        let s = Schedule::Decay {
            initial: 1.0,
            factor: 0.9,
            every: 0,
        };
        assert!(s.value_at(3) > 0.0);
    }

    #[test]
    fn schedules_serialize_round_trip() {
        let s = Schedule::step_at(1.0, 60, 0.5);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
