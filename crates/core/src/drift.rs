//! Client-drift and dual-variable diagnostics.
//!
//! The paper motivates FedADMM through *client drift*: "local training
//! performed at clients has to be carefully designed according to
//! statistical variations so as to prevent the model from overfitting to a
//! specific selected client's data" (Section I), and interprets the dual
//! variable `y_i` as "a signed price vector … which not only quantifies the
//! cost of `w_i^{t+1}` being different from `θ^t`, but also provides a
//! direction of the adjustments needed for agreement" (Section III-A).
//!
//! [`DriftReport`] turns that narrative into measurable quantities over a
//! simulation's client states:
//!
//! * how far local models have drifted from the global model (mean / max
//!   `‖w_i − θ‖`),
//! * how large the accumulated prices are (mean / max `‖y_i‖`),
//! * the KKT residual `‖Σ_i y_i‖` — zero at a stationary point of the
//!   consensus problem (2), so its decrease tracks agreement,
//! * participation coverage (how unevenly clients have been selected).
//!
//! The `dual_variables` example and the ablation benches use these to show
//! the adaptation mechanism at work under IID vs non-IID partitions.

use crate::client::ClientState;
use crate::param::ParamVector;
use serde::{Deserialize, Serialize};

/// Aggregate drift statistics over all clients at a point in training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Mean over clients of `‖w_i − θ‖`.
    pub mean_model_drift: f32,
    /// Maximum over clients of `‖w_i − θ‖`.
    pub max_model_drift: f32,
    /// Mean over clients of `‖y_i‖`.
    pub mean_dual_norm: f32,
    /// Maximum over clients of `‖y_i‖`.
    pub max_dual_norm: f32,
    /// `‖Σ_i y_i‖` — the KKT residual of problem (2): the stationarity
    /// condition requires `Σ_i y_i* = 0`.
    pub dual_sum_norm: f32,
    /// Number of clients that have been selected at least once.
    pub clients_ever_selected: usize,
    /// Smallest number of selections across clients.
    pub min_times_selected: usize,
    /// Largest number of selections across clients.
    pub max_times_selected: usize,
    /// Number of clients included in the report.
    pub num_clients: usize,
}

impl DriftReport {
    /// Computes the report for the given client states and global model.
    pub fn compute(clients: &[ClientState], global: &ParamVector) -> Self {
        assert!(
            !clients.is_empty(),
            "a drift report needs at least one client"
        );
        let mut mean_drift = 0.0f64;
        let mut max_drift = 0.0f32;
        let mut mean_dual = 0.0f64;
        let mut max_dual = 0.0f32;
        let mut dual_sum = ParamVector::zeros(global.len());
        let mut ever = 0usize;
        let mut min_sel = usize::MAX;
        let mut max_sel = 0usize;
        for c in clients {
            let drift = c.local_model.dist(global);
            mean_drift += drift as f64;
            max_drift = max_drift.max(drift);
            let dual_norm = c.dual.norm();
            mean_dual += dual_norm as f64;
            max_dual = max_dual.max(dual_norm);
            dual_sum.axpy(1.0, &c.dual);
            if c.times_selected > 0 {
                ever += 1;
            }
            min_sel = min_sel.min(c.times_selected);
            max_sel = max_sel.max(c.times_selected);
        }
        let m = clients.len();
        DriftReport {
            mean_model_drift: (mean_drift / m as f64) as f32,
            max_model_drift: max_drift,
            mean_dual_norm: (mean_dual / m as f64) as f32,
            max_dual_norm: max_dual,
            dual_sum_norm: dual_sum.norm(),
            clients_ever_selected: ever,
            min_times_selected: min_sel,
            max_times_selected: max_sel,
            num_clients: m,
        }
    }

    /// Fraction of clients selected at least once (participation coverage).
    pub fn coverage(&self) -> f64 {
        self.clients_ever_selected as f64 / self.num_clients.max(1) as f64
    }

    /// A one-line human-readable summary for logs and example output.
    pub fn summary(&self) -> String {
        format!(
            "drift mean/max = {:.4}/{:.4}, dual-norm mean/max = {:.4}/{:.4}, ‖Σy‖ = {:.4}, \
             coverage = {:.0}% ({} of {} clients)",
            self.mean_model_drift,
            self.max_model_drift,
            self.mean_dual_norm,
            self.max_dual_norm,
            self.dual_sum_norm,
            100.0 * self.coverage(),
            self.clients_ever_selected,
            self.num_clients
        )
    }
}

/// Per-client drift detail, for experiments that want the full distribution
/// rather than the aggregate of [`DriftReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientDrift {
    /// Client identifier.
    pub client_id: usize,
    /// `‖w_i − θ‖`.
    pub model_drift: f32,
    /// `‖y_i‖`.
    pub dual_norm: f32,
    /// Local sample count `n_i`.
    pub num_samples: usize,
    /// Times this client has been selected.
    pub times_selected: usize,
}

/// Computes the per-client drift breakdown.
pub fn per_client_drift(clients: &[ClientState], global: &ParamVector) -> Vec<ClientDrift> {
    clients
        .iter()
        .map(|c| ClientDrift {
            client_id: c.id,
            model_drift: c.local_model.dist(global),
            dual_norm: c.dual.norm(),
            num_samples: c.num_samples(),
            times_selected: c.times_selected,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(id: usize, model: Vec<f32>, dual: Vec<f32>, selected: usize) -> ClientState {
        let theta = ParamVector::zeros(model.len());
        let mut c = ClientState::new(id, vec![0; 3], &theta);
        c.local_model = ParamVector::from_vec(model);
        c.dual = ParamVector::from_vec(dual);
        c.times_selected = selected;
        c
    }

    #[test]
    fn report_on_fresh_clients_is_all_zero_drift() {
        let theta = ParamVector::from_vec(vec![1.0, 2.0, 3.0]);
        let clients: Vec<ClientState> = (0..4)
            .map(|i| ClientState::new(i, vec![0], &theta))
            .collect();
        let report = DriftReport::compute(&clients, &theta);
        assert_eq!(report.mean_model_drift, 0.0);
        assert_eq!(report.max_model_drift, 0.0);
        assert_eq!(report.mean_dual_norm, 0.0);
        assert_eq!(report.dual_sum_norm, 0.0);
        assert_eq!(report.clients_ever_selected, 0);
        assert_eq!(report.coverage(), 0.0);
        assert_eq!(report.num_clients, 4);
    }

    #[test]
    fn report_aggregates_drift_and_dual_norms() {
        let global = ParamVector::zeros(2);
        let clients = vec![
            client(0, vec![3.0, 4.0], vec![1.0, 0.0], 2), // drift 5, dual 1
            client(1, vec![0.0, 0.0], vec![-1.0, 0.0], 0), // drift 0, dual 1
        ];
        let report = DriftReport::compute(&clients, &global);
        assert!((report.mean_model_drift - 2.5).abs() < 1e-6);
        assert_eq!(report.max_model_drift, 5.0);
        assert!((report.mean_dual_norm - 1.0).abs() < 1e-6);
        assert_eq!(report.max_dual_norm, 1.0);
        // Duals cancel: [1,0] + [-1,0] = 0 — the KKT condition Σy = 0.
        assert_eq!(report.dual_sum_norm, 0.0);
        assert_eq!(report.clients_ever_selected, 1);
        assert_eq!(report.min_times_selected, 0);
        assert_eq!(report.max_times_selected, 2);
        assert!((report.coverage() - 0.5).abs() < 1e-12);
        assert!(report.summary().contains("coverage = 50%"));
    }

    #[test]
    fn per_client_breakdown_matches_aggregate() {
        let global = ParamVector::zeros(2);
        let clients = vec![
            client(0, vec![1.0, 0.0], vec![0.5, 0.0], 1),
            client(1, vec![0.0, 2.0], vec![0.0, 0.5], 3),
        ];
        let detail = per_client_drift(&clients, &global);
        assert_eq!(detail.len(), 2);
        assert_eq!(detail[0].client_id, 0);
        assert_eq!(detail[0].model_drift, 1.0);
        assert_eq!(detail[1].model_drift, 2.0);
        assert_eq!(detail[1].times_selected, 3);
        let report = DriftReport::compute(&clients, &global);
        let mean: f32 = detail.iter().map(|d| d.model_drift).sum::<f32>() / detail.len() as f32;
        assert!((report.mean_model_drift - mean).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_client_list_is_rejected() {
        DriftReport::compute(&[], &ParamVector::zeros(1));
    }
}
