//! System-heterogeneity models.
//!
//! The paper captures variable computational capability across clients by
//! "letting each client select the local epoch number uniformly between 1
//! and E in FedADMM as well as in FedProx. The number of local epochs for
//! FedAvg and SCAFFOLD are fixed to be E" (Section V-A). This module
//! expresses exactly that choice and also provides a deterministic
//! per-client schedule used by ablations.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How many local epochs a selected client runs in a given round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalWorkSchedule {
    /// Every client always runs exactly `E` epochs (FedAvg / SCAFFOLD in the
    /// paper's protocol).
    Fixed(usize),
    /// Each selected client independently draws its epoch count uniformly
    /// from `{1, ..., E}` each round (system heterogeneity; FedADMM and
    /// FedProx in the paper's protocol).
    UniformRandom(usize),
    /// A fixed per-client epoch count (client `i` always runs
    /// `epochs[i % epochs.len()]` epochs) — used by ablation benches to
    /// model persistent speed differences between devices.
    PerClient(Vec<usize>),
}

impl LocalWorkSchedule {
    /// Builds the schedule the paper uses for a given algorithm:
    /// heterogeneous work when `system_heterogeneity` is on, otherwise the
    /// fixed maximum.
    pub fn from_config(max_epochs: usize, system_heterogeneity: bool) -> Self {
        if system_heterogeneity {
            LocalWorkSchedule::UniformRandom(max_epochs.max(1))
        } else {
            LocalWorkSchedule::Fixed(max_epochs.max(1))
        }
    }

    /// The epoch count for `client` in this round.
    pub fn epochs_for(&self, client: usize, rng: &mut impl Rng) -> usize {
        match self {
            LocalWorkSchedule::Fixed(e) => (*e).max(1),
            LocalWorkSchedule::UniformRandom(e) => rng.gen_range(1..=(*e).max(1)),
            LocalWorkSchedule::PerClient(epochs) => {
                if epochs.is_empty() {
                    1
                } else {
                    epochs[client % epochs.len()].max(1)
                }
            }
        }
    }

    /// The maximum number of epochs this schedule can produce.
    pub fn max_epochs(&self) -> usize {
        match self {
            LocalWorkSchedule::Fixed(e) | LocalWorkSchedule::UniformRandom(e) => (*e).max(1),
            LocalWorkSchedule::PerClient(epochs) => {
                epochs.iter().copied().max().unwrap_or(1).max(1)
            }
        }
    }

    /// Expected number of epochs per selected client (used for the
    /// computation-cost accounting: the paper notes FedADMM/FedProx perform
    /// ~50% of the local computation of FedAvg/SCAFFOLD under this model).
    pub fn expected_epochs(&self) -> f64 {
        match self {
            LocalWorkSchedule::Fixed(e) => (*e).max(1) as f64,
            LocalWorkSchedule::UniformRandom(e) => ((*e).max(1) as f64 + 1.0) / 2.0,
            LocalWorkSchedule::PerClient(epochs) => {
                if epochs.is_empty() {
                    1.0
                } else {
                    epochs.iter().map(|&e| e.max(1) as f64).sum::<f64>() / epochs.len() as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_always_returns_e() {
        let s = LocalWorkSchedule::Fixed(5);
        let mut rng = SmallRng::seed_from_u64(0);
        for c in 0..20 {
            assert_eq!(s.epochs_for(c, &mut rng), 5);
        }
        assert_eq!(s.max_epochs(), 5);
        assert_eq!(s.expected_epochs(), 5.0);
    }

    #[test]
    fn uniform_random_stays_in_range_and_varies() {
        let s = LocalWorkSchedule::UniformRandom(20);
        let mut rng = SmallRng::seed_from_u64(1);
        let draws: Vec<usize> = (0..200).map(|c| s.epochs_for(c, &mut rng)).collect();
        assert!(draws.iter().all(|&e| (1..=20).contains(&e)));
        assert!(draws.iter().collect::<std::collections::HashSet<_>>().len() > 10);
        let mean = draws.iter().sum::<usize>() as f64 / draws.len() as f64;
        assert!((mean - 10.5).abs() < 1.5, "mean {mean}");
        assert!((s.expected_epochs() - 10.5).abs() < 1e-9);
    }

    #[test]
    fn per_client_schedule_is_deterministic() {
        let s = LocalWorkSchedule::PerClient(vec![1, 2, 3]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(s.epochs_for(0, &mut rng), 1);
        assert_eq!(s.epochs_for(1, &mut rng), 2);
        assert_eq!(s.epochs_for(2, &mut rng), 3);
        assert_eq!(s.epochs_for(3, &mut rng), 1);
        assert_eq!(s.max_epochs(), 3);
        assert_eq!(s.expected_epochs(), 2.0);
    }

    #[test]
    fn degenerate_inputs_clamp_to_one_epoch() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(LocalWorkSchedule::Fixed(0).epochs_for(0, &mut rng), 1);
        assert_eq!(
            LocalWorkSchedule::UniformRandom(0).epochs_for(0, &mut rng),
            1
        );
        assert_eq!(
            LocalWorkSchedule::PerClient(vec![]).epochs_for(0, &mut rng),
            1
        );
        assert_eq!(LocalWorkSchedule::PerClient(vec![]).max_epochs(), 1);
    }

    #[test]
    fn from_config_matches_paper_protocol() {
        assert_eq!(
            LocalWorkSchedule::from_config(20, true),
            LocalWorkSchedule::UniformRandom(20)
        );
        assert_eq!(
            LocalWorkSchedule::from_config(20, false),
            LocalWorkSchedule::Fixed(20)
        );
    }

    #[test]
    fn heterogeneous_work_is_half_of_fixed_on_average() {
        // The paper: "FedADMM has 50% less training computation than FedAvg
        // and SCAFFOLD" because of the uniform {1..E} draw.
        let hetero = LocalWorkSchedule::from_config(20, true);
        let fixed = LocalWorkSchedule::from_config(20, false);
        let ratio = hetero.expected_epochs() / fixed.expected_epochs();
        assert!((ratio - 0.525).abs() < 0.01);
    }
}
