//! A quadratic consensus substrate for verifying the paper's analysis.
//!
//! The convergence proof (Section VII) is stated for general smooth losses,
//! but its quantities — the aggregated augmented Lagrangian `L`, the
//! optimality gap `V_t` of equation (7), the lower bound of Lemma 3, and the
//! Theorem 1 constants — are hard to check numerically against a neural
//! network because `f*` and the smoothness constant `L` are unknown. This
//! module instantiates problem (2) with *quadratic* local losses
//!
//! ```text
//! f_i(w) = ½ wᵀ A_i w − b_iᵀ w,     A_i ≻ 0,
//! ```
//!
//! for which everything is available in closed form:
//!
//! * the smoothness constant is `L = max_i λ_max(A_i)`;
//! * the global optimum solves `(Σ A_i) w* = Σ b_i`;
//! * the augmented-Lagrangian subproblem (3) has the exact minimiser
//!   `(A_i + ρI) w = b_i − y_i + ρθ`, so the "exact local solve" regime of
//!   randomized ADMM (and the `ε_i → 0` limit of FedADMM) can be simulated
//!   without any optimisation error.
//!
//! [`QuadraticFedAdmm`] runs Algorithm 1 on such a problem with arbitrary
//! participation, records `V_t`, the Lagrangian, the consensus violation and
//! the KKT residual `‖Σ_i y_i‖`, and is used by the integration tests to
//! verify Lemma 3, Theorem 1 and the stationarity conditions of Section
//! III-A.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Small dense f64 linear algebra (row-major), local to this module.
// ---------------------------------------------------------------------------

fn matvec(a: &[f64], x: &[f64], d: usize) -> Vec<f64> {
    let mut y = vec![0.0; d];
    for (i, yi) in y.iter_mut().enumerate() {
        let row = &a[i * d..(i + 1) * d];
        *yi = row.iter().zip(x.iter()).map(|(aij, xj)| aij * xj).sum();
    }
    y
}

/// Solves `A x = rhs` by Gaussian elimination with partial pivoting.
/// Panics if the system is numerically singular (never the case for the SPD
/// matrices generated here).
fn solve(a: &[f64], rhs: &[f64], d: usize) -> Vec<f64> {
    let mut m = a.to_vec();
    let mut x = rhs.to_vec();
    for col in 0..d {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..d {
            if m[row * d + col].abs() > m[pivot * d + col].abs() {
                pivot = row;
            }
        }
        assert!(
            m[pivot * d + col].abs() > 1e-12,
            "singular matrix in quadratic substrate"
        );
        if pivot != col {
            for k in 0..d {
                m.swap(col * d + k, pivot * d + k);
            }
            x.swap(col, pivot);
        }
        // Eliminate.
        let diag = m[col * d + col];
        for row in (col + 1)..d {
            let factor = m[row * d + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..d {
                m[row * d + k] -= factor * m[col * d + k];
            }
            x[row] -= factor * x[col];
        }
    }
    // Back substitution.
    for col in (0..d).rev() {
        let mut sum = x[col];
        for k in (col + 1)..d {
            sum -= m[col * d + k] * x[k];
        }
        x[col] = sum / m[col * d + col];
    }
    x
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn norm_sq(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

fn dot(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// Builds a random `d × d` orthogonal matrix by modified Gram–Schmidt on a
/// random Gaussian matrix.
fn random_orthogonal(d: usize, rng: &mut SmallRng) -> Vec<f64> {
    let mut q: Vec<Vec<f64>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut v: Vec<f64> = (0..d).map(|_| standard_normal(rng)).collect();
        for prev in &q {
            let proj = dot(&v, prev);
            for (vi, pi) in v.iter_mut().zip(prev.iter()) {
                *vi -= proj * pi;
            }
        }
        let n = norm(&v);
        // A random Gaussian vector is almost surely not in the span of the
        // previous ones; renormalise (fall back to a canonical basis vector
        // in the measure-zero degenerate case).
        if n < 1e-9 {
            v = vec![0.0; d];
            v[q.len()] = 1.0;
        } else {
            for vi in v.iter_mut() {
                *vi /= n;
            }
        }
        q.push(v);
    }
    let mut flat = vec![0.0; d * d];
    for (i, row) in q.iter().enumerate() {
        flat[i * d..(i + 1) * d].copy_from_slice(row);
    }
    flat
}

fn standard_normal(rng: &mut SmallRng) -> f64 {
    // Box–Muller; good enough for generating test problems.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

// ---------------------------------------------------------------------------
// Problem definition.
// ---------------------------------------------------------------------------

/// One client's quadratic loss `f_i(w) = ½ wᵀ A_i w − b_iᵀ w`.
#[derive(Debug, Clone)]
pub struct QuadraticClientLoss {
    a: Vec<f64>,
    b: Vec<f64>,
    dim: usize,
    eig_max: f64,
}

impl QuadraticClientLoss {
    /// Builds the loss from an explicit SPD matrix (row-major, `dim × dim`)
    /// and linear term.
    pub fn new(a: Vec<f64>, b: Vec<f64>, eig_max: f64) -> Self {
        let dim = b.len();
        assert_eq!(a.len(), dim * dim, "A must be dim × dim");
        assert!(eig_max > 0.0);
        QuadraticClientLoss { a, b, dim, eig_max }
    }

    /// `f_i(w)`.
    pub fn value(&self, w: &[f64]) -> f64 {
        let aw = matvec(&self.a, w, self.dim);
        0.5 * dot(w, &aw) - dot(&self.b, w)
    }

    /// `∇f_i(w) = A_i w − b_i`.
    pub fn grad(&self, w: &[f64]) -> Vec<f64> {
        let mut g = matvec(&self.a, w, self.dim);
        for (gi, bi) in g.iter_mut().zip(self.b.iter()) {
            *gi -= bi;
        }
        g
    }

    /// The exact minimiser of the augmented Lagrangian subproblem (3):
    /// `argmin_w f_i(w) + yᵀ(w − θ) + (ρ/2)‖w − θ‖²`, i.e. the solution of
    /// `(A_i + ρ I) w = b_i − y + ρ θ`.
    pub fn admm_minimizer(&self, dual: &[f64], theta: &[f64], rho: f64) -> Vec<f64> {
        let d = self.dim;
        let mut m = self.a.clone();
        for i in 0..d {
            m[i * d + i] += rho;
        }
        let rhs: Vec<f64> = (0..d)
            .map(|j| self.b[j] - dual[j] + rho * theta[j])
            .collect();
        solve(&m, &rhs, d)
    }

    /// Smoothness constant of this client: `λ_max(A_i)`.
    pub fn lipschitz(&self) -> f64 {
        self.eig_max
    }

    /// Unconstrained local minimiser `A_i^{-1} b_i` (each client's own
    /// optimum — the point local training drifts towards without the
    /// proximal/dual safeguards).
    pub fn local_optimum(&self) -> Vec<f64> {
        solve(&self.a, &self.b, self.dim)
    }
}

/// A federated quadratic consensus problem: `m` clients, each with its own
/// SPD quadratic.
#[derive(Debug, Clone)]
pub struct QuadraticProblem {
    clients: Vec<QuadraticClientLoss>,
    dim: usize,
}

/// Configuration for [`QuadraticProblem::random`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadraticConfig {
    /// Number of clients `m`.
    pub num_clients: usize,
    /// Problem dimension `d`.
    pub dim: usize,
    /// Smallest eigenvalue of every `A_i`.
    pub eig_min: f64,
    /// Largest eigenvalue of every `A_i` (the smoothness constant `L`).
    pub eig_max: f64,
    /// Scale of the spread of the clients' linear terms `b_i`; larger values
    /// put the local optima further apart (statistical heterogeneity).
    pub heterogeneity: f64,
}

impl Default for QuadraticConfig {
    fn default() -> Self {
        QuadraticConfig {
            num_clients: 20,
            dim: 10,
            eig_min: 0.5,
            eig_max: 2.0,
            heterogeneity: 1.0,
        }
    }
}

impl QuadraticProblem {
    /// Builds a problem from explicit client losses.
    pub fn new(clients: Vec<QuadraticClientLoss>) -> Self {
        assert!(
            !clients.is_empty(),
            "a federated problem needs at least one client"
        );
        let dim = clients[0].dim;
        assert!(
            clients.iter().all(|c| c.dim == dim),
            "all clients must share the dimension"
        );
        QuadraticProblem { clients, dim }
    }

    /// Generates a random problem: each `A_i = Qᵢ diag(λ) Qᵢᵀ` with
    /// eigenvalues spread uniformly in `[eig_min, eig_max]`, and each
    /// `b_i` Gaussian with standard deviation `heterogeneity`.
    pub fn random(config: QuadraticConfig, seed: u64) -> Self {
        assert!(config.eig_min > 0.0 && config.eig_max >= config.eig_min);
        assert!(config.num_clients >= 1 && config.dim >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = config.dim;
        let clients = (0..config.num_clients)
            .map(|_| {
                let q = random_orthogonal(d, &mut rng);
                // Eigenvalues spread across the full [eig_min, eig_max]
                // range, with the endpoints always present so that L is
                // exactly eig_max.
                let eigs: Vec<f64> = (0..d)
                    .map(|j| {
                        if d == 1 {
                            config.eig_max
                        } else {
                            config.eig_min
                                + (config.eig_max - config.eig_min) * j as f64 / (d - 1) as f64
                        }
                    })
                    .collect();
                // A = Qᵀ diag(eigs) Q  (rows of `q` are the eigenvectors).
                let mut a = vec![0.0; d * d];
                for (k, &lambda) in eigs.iter().enumerate() {
                    let row = &q[k * d..(k + 1) * d];
                    for i in 0..d {
                        for j in 0..d {
                            a[i * d + j] += lambda * row[i] * row[j];
                        }
                    }
                }
                let b: Vec<f64> = (0..d)
                    .map(|_| config.heterogeneity * standard_normal(&mut rng))
                    .collect();
                QuadraticClientLoss::new(a, b, config.eig_max)
            })
            .collect();
        QuadraticProblem { clients, dim: d }
    }

    /// Number of clients `m`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Problem dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Access to the per-client losses.
    pub fn clients(&self) -> &[QuadraticClientLoss] {
        &self.clients
    }

    /// The smoothness constant `L = max_i λ_max(A_i)` of assumption 1.
    pub fn lipschitz(&self) -> f64 {
        self.clients
            .iter()
            .map(|c| c.lipschitz())
            .fold(0.0, f64::max)
    }

    /// The global objective `Σ_i f_i(w)`.
    pub fn objective(&self, w: &[f64]) -> f64 {
        self.clients.iter().map(|c| c.value(w)).sum()
    }

    /// `‖Σ_i ∇f_i(w)‖` — the stationarity residual of problem (1).
    pub fn stationarity_residual(&self, w: &[f64]) -> f64 {
        let mut g = vec![0.0; self.dim];
        for c in &self.clients {
            for (gi, ci) in g.iter_mut().zip(c.grad(w).iter()) {
                *gi += ci;
            }
        }
        norm(&g)
    }

    /// The unique global optimum `w* = (Σ A_i)^{-1} Σ b_i`.
    pub fn global_optimum(&self) -> Vec<f64> {
        let d = self.dim;
        let mut a_sum = vec![0.0; d * d];
        let mut b_sum = vec![0.0; d];
        for c in &self.clients {
            for (s, v) in a_sum.iter_mut().zip(c.a.iter()) {
                *s += v;
            }
            for (s, v) in b_sum.iter_mut().zip(c.b.iter()) {
                *s += v;
            }
        }
        solve(&a_sum, &b_sum, d)
    }

    /// The lower bound `f* = Σ_i f_i(w*)` of assumption 2 (tight for
    /// quadratics).
    pub fn f_star(&self) -> f64 {
        self.objective(&self.global_optimum())
    }
}

// ---------------------------------------------------------------------------
// FedADMM on the quadratic problem.
// ---------------------------------------------------------------------------

/// Per-round diagnostics of a quadratic FedADMM run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadraticRoundRecord {
    /// Round index `t`.
    pub round: usize,
    /// The optimality gap `V_t` of equation (7).
    pub optimality_gap: f64,
    /// The aggregated augmented Lagrangian `L(w^t, y^t, θ^t)`.
    pub lagrangian: f64,
    /// Σ_i ‖w_i − θ‖² — the consensus violation.
    pub consensus_sq: f64,
    /// ‖Σ_i y_i‖ — the KKT residual (zero at a stationary point of (2)).
    pub dual_sum_norm: f64,
    /// ‖θ − w*‖ — distance of the global model to the true optimum.
    pub dist_to_optimum: f64,
    /// ‖Σ_i ∇f_i(θ)‖ — the stationarity residual of the original problem (1).
    pub stationarity: f64,
    /// Number of clients selected this round.
    pub num_selected: usize,
}

/// FedADMM (Algorithm 1) specialised to the quadratic substrate, with exact
/// or inexact local solves.
#[derive(Debug, Clone)]
pub struct QuadraticFedAdmm {
    problem: QuadraticProblem,
    /// Proximal coefficient ρ.
    pub rho: f64,
    /// Server step size η; `None` means the analysed choice η = |S_t|/m.
    pub eta: Option<f64>,
    /// Per-client inexactness `ε_i`: when positive, the exact minimiser is
    /// perturbed so that `‖∇L_i‖² ≈ ε_i` (used to probe the ε_max floor of
    /// Theorem 1). Zero gives exact solves.
    pub epsilon: f64,
    locals: Vec<Vec<f64>>,
    duals: Vec<Vec<f64>>,
    theta: Vec<f64>,
    round: usize,
}

impl QuadraticFedAdmm {
    /// Initialises Algorithm 1 on `problem` with `w_i^0 = θ^0 = 0` and
    /// `y_i^0 = 0` (the paper's initialisation).
    pub fn new(problem: QuadraticProblem, rho: f64) -> Self {
        assert!(
            rho > 0.0,
            "FedADMM requires a positive proximal coefficient ρ"
        );
        let d = problem.dim();
        let m = problem.num_clients();
        QuadraticFedAdmm {
            problem,
            rho,
            eta: None,
            epsilon: 0.0,
            locals: vec![vec![0.0; d]; m],
            duals: vec![vec![0.0; d]; m],
            theta: vec![0.0; d],
            round: 0,
        }
    }

    /// Uses a constant server step size instead of η = |S_t|/m.
    pub fn with_eta(mut self, eta: f64) -> Self {
        assert!(eta > 0.0);
        self.eta = Some(eta);
        self
    }

    /// Sets the local inexactness level `ε_i ≡ ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0);
        self.epsilon = epsilon;
        self
    }

    /// The underlying problem.
    pub fn problem(&self) -> &QuadraticProblem {
        &self.problem
    }

    /// The current global model θ.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// The current dual variables.
    pub fn duals(&self) -> &[Vec<f64>] {
        &self.duals
    }

    /// The current local models.
    pub fn locals(&self) -> &[Vec<f64>] {
        &self.locals
    }

    /// The aggregated augmented Lagrangian `L(w, y, θ) = Σ_i L_i`.
    pub fn lagrangian(&self) -> f64 {
        let mut total = 0.0;
        for i in 0..self.problem.num_clients() {
            let w = &self.locals[i];
            let diff: Vec<f64> = w
                .iter()
                .zip(self.theta.iter())
                .map(|(a, b)| a - b)
                .collect();
            total += self.problem.clients()[i].value(w)
                + dot(&self.duals[i], &diff)
                + 0.5 * self.rho * norm_sq(&diff);
        }
        total
    }

    /// The optimality gap `V_t` of equation (7).
    pub fn optimality_gap(&self) -> f64 {
        let d = self.problem.dim();
        // ∇_θ L = Σ_i (−y_i − ρ(w_i − θ)).
        let mut grad_theta = vec![0.0; d];
        let mut sum_grad_w = 0.0;
        let mut consensus = 0.0;
        for i in 0..self.problem.num_clients() {
            let w = &self.locals[i];
            let y = &self.duals[i];
            let mut grad_w = self.problem.clients()[i].grad(w);
            for j in 0..d {
                let diff = w[j] - self.theta[j];
                grad_w[j] += y[j] + self.rho * diff;
                grad_theta[j] += -y[j] - self.rho * diff;
                consensus += diff * diff;
            }
            sum_grad_w += norm_sq(&grad_w);
        }
        norm_sq(&grad_theta) + sum_grad_w + consensus
    }

    /// Runs one round with the given set of selected clients and returns the
    /// diagnostics *after* the server update.
    pub fn run_round_with(&mut self, selected: &[usize]) -> QuadraticRoundRecord {
        assert!(
            !selected.is_empty(),
            "a round needs at least one selected client"
        );
        let d = self.problem.dim();
        let m = self.problem.num_clients();
        let mut delta_sum = vec![0.0; d];
        for &i in selected {
            assert!(i < m, "selected client {i} out of range");
            let old_aug: Vec<f64> = (0..d)
                .map(|j| self.locals[i][j] + self.duals[i][j] / self.rho)
                .collect();
            // Exact subproblem solve, optionally perturbed to inexactness ε.
            let mut w_new =
                self.problem.clients()[i].admm_minimizer(&self.duals[i], &self.theta, self.rho);
            if self.epsilon > 0.0 {
                // ∇L_i is (A_i + ρI)(w − w_exact); perturbing along e_0 by
                // δ gives ‖∇L_i‖ ≤ (L + ρ)δ, so δ = √ε / (L + ρ) keeps
                // ‖∇L_i‖² ≤ ε.
                let delta =
                    self.epsilon.sqrt() / (self.problem.clients()[i].lipschitz() + self.rho);
                w_new[0] += delta;
            }
            // Dual update (line 20).
            for ((dual, &w), &t) in self.duals[i]
                .iter_mut()
                .zip(w_new.iter())
                .zip(self.theta.iter())
            {
                *dual += self.rho * (w - t);
            }
            self.locals[i] = w_new;
            // Update message (equation 4).
            for (((acc, &w), &y), &old) in delta_sum
                .iter_mut()
                .zip(self.locals[i].iter())
                .zip(self.duals[i].iter())
                .zip(old_aug.iter())
            {
                *acc += (w + y / self.rho) - old;
            }
        }
        // Server tracking update (equation 5).
        let eta = self.eta.unwrap_or(selected.len() as f64 / m as f64);
        let scale = eta / selected.len() as f64;
        for (t, &acc) in self.theta.iter_mut().zip(delta_sum.iter()) {
            *t += scale * acc;
        }

        let record = self.record(selected.len());
        self.round += 1;
        record
    }

    /// Runs one round with `num_selected` clients chosen uniformly at random.
    pub fn run_round(&mut self, num_selected: usize, rng: &mut SmallRng) -> QuadraticRoundRecord {
        let m = self.problem.num_clients();
        let k = num_selected.clamp(1, m);
        let mut ids: Vec<usize> = (0..m).collect();
        ids.shuffle(rng);
        ids.truncate(k);
        self.run_round_with(&ids)
    }

    /// Runs `rounds` rounds with uniform-random participation of
    /// `num_selected` clients per round.
    pub fn run(
        &mut self,
        rounds: usize,
        num_selected: usize,
        seed: u64,
    ) -> Vec<QuadraticRoundRecord> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..rounds)
            .map(|_| self.run_round(num_selected, &mut rng))
            .collect()
    }

    fn record(&self, num_selected: usize) -> QuadraticRoundRecord {
        let w_star = self.problem.global_optimum();
        let dist: f64 = self
            .theta
            .iter()
            .zip(w_star.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let mut dual_sum = vec![0.0; self.problem.dim()];
        let mut consensus = 0.0;
        for i in 0..self.problem.num_clients() {
            for ((acc, (&y, &w)), &t) in dual_sum
                .iter_mut()
                .zip(self.duals[i].iter().zip(self.locals[i].iter()))
                .zip(self.theta.iter())
            {
                *acc += y;
                let diff = w - t;
                consensus += diff * diff;
            }
        }
        QuadraticRoundRecord {
            round: self.round,
            optimality_gap: self.optimality_gap(),
            lagrangian: self.lagrangian(),
            consensus_sq: consensus,
            dual_sum_norm: norm(&dual_sum),
            dist_to_optimum: dist,
            stationarity: self.problem.stationarity_residual(&self.theta),
            num_selected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem(seed: u64) -> QuadraticProblem {
        QuadraticProblem::random(
            QuadraticConfig {
                num_clients: 8,
                dim: 6,
                eig_min: 0.5,
                eig_max: 2.0,
                heterogeneity: 1.0,
            },
            seed,
        )
    }

    #[test]
    fn generated_matrices_are_spd_with_prescribed_spectrum() {
        let p = small_problem(0);
        for c in p.clients() {
            // Rayleigh quotients of random vectors must lie in [eig_min, eig_max].
            let mut rng = SmallRng::seed_from_u64(1);
            for _ in 0..20 {
                let v: Vec<f64> = (0..p.dim()).map(|_| standard_normal(&mut rng)).collect();
                let av = matvec(&c.a, &v, p.dim());
                let rayleigh = dot(&v, &av) / norm_sq(&v);
                assert!(
                    (0.5 - 1e-6..=2.0 + 1e-6).contains(&rayleigh),
                    "rayleigh {rayleigh}"
                );
            }
        }
        assert!((p.lipschitz() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn global_optimum_is_stationary_for_the_sum() {
        let p = small_problem(1);
        let w_star = p.global_optimum();
        assert!(p.stationarity_residual(&w_star) < 1e-8);
        // And it minimises the sum: any perturbation increases the objective.
        let f_star = p.objective(&w_star);
        let mut perturbed = w_star.clone();
        perturbed[0] += 0.1;
        assert!(p.objective(&perturbed) > f_star);
    }

    #[test]
    fn admm_minimizer_is_stationary_for_the_augmented_lagrangian() {
        let p = small_problem(2);
        let c = &p.clients()[0];
        let theta = vec![0.3; p.dim()];
        let dual = vec![-0.2; p.dim()];
        let rho = 1.5;
        let w = c.admm_minimizer(&dual, &theta, rho);
        // ∇L_i(w) = A w − b + y + ρ(w − θ) must vanish.
        let mut g = c.grad(&w);
        for j in 0..p.dim() {
            g[j] += dual[j] + rho * (w[j] - theta[j]);
        }
        assert!(norm(&g) < 1e-8, "gradient norm {}", norm(&g));
    }

    #[test]
    fn local_optimum_differs_from_global_under_heterogeneity() {
        let p = small_problem(3);
        let w_star = p.global_optimum();
        let local = p.clients()[0].local_optimum();
        let dist: f64 = w_star
            .iter()
            .zip(local.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(
            dist > 1e-3,
            "heterogeneous clients must have distinct optima"
        );
    }

    #[test]
    fn full_participation_exact_solves_converge_to_the_optimum() {
        let p = small_problem(4);
        let m = p.num_clients();
        let rho = crate::theory::min_rho(p.lipschitz()) * 1.5;
        let mut admm = QuadraticFedAdmm::new(p, rho);
        let records = admm.run(200, m, 7);
        let last = records.last().unwrap();
        assert!(
            last.dist_to_optimum < 1e-4,
            "distance {}",
            last.dist_to_optimum
        );
        assert!(last.optimality_gap < 1e-6, "V_t = {}", last.optimality_gap);
        assert!(
            last.dual_sum_norm < 1e-4,
            "KKT residual {}",
            last.dual_sum_norm
        );
    }

    #[test]
    fn partial_participation_also_converges() {
        let p = small_problem(5);
        let rho = crate::theory::min_rho(p.lipschitz()) * 1.5;
        let mut admm = QuadraticFedAdmm::new(p, rho);
        // 25% participation — the regime the paper targets.
        let records = admm.run(600, 2, 11);
        let last = records.last().unwrap();
        assert!(
            last.dist_to_optimum < 1e-2,
            "distance after partial-participation run: {}",
            last.dist_to_optimum
        );
        assert!(last.optimality_gap < records[0].optimality_gap);
    }

    #[test]
    fn lagrangian_decreases_monotonically_under_full_participation() {
        // Inequality (31) of the proof: with exact solves and full
        // participation the expected (here: deterministic) decrement is
        // non-negative once ρ > (1 + √5)L.
        let p = small_problem(6);
        let m = p.num_clients();
        let rho = crate::theory::min_rho(p.lipschitz()) * 1.2;
        let mut admm = QuadraticFedAdmm::new(p, rho);
        let records = admm.run(50, m, 13);
        for pair in records.windows(2) {
            assert!(
                pair[1].lagrangian <= pair[0].lagrangian + 1e-9,
                "Lagrangian increased: {} -> {}",
                pair[0].lagrangian,
                pair[1].lagrangian
            );
        }
    }

    #[test]
    fn lagrangian_is_lower_bounded_by_lemma_3() {
        let p = small_problem(7);
        let f_star = p.f_star();
        let m = p.num_clients();
        let rho = 2.0 * p.lipschitz() + 0.5; // ρ ≥ 2L as required by Lemma 3.
        let mut admm = QuadraticFedAdmm::new(p, rho);
        let records = admm.run(100, m / 2, 17);
        for r in &records {
            assert!(
                r.lagrangian >= f_star - 1e-9,
                "Lemma 3 violated: L = {} < f* = {}",
                r.lagrangian,
                f_star
            );
        }
    }

    #[test]
    fn theorem1_bound_holds_for_exact_full_participation_runs() {
        let p = small_problem(8);
        let m = p.num_clients();
        let l = p.lipschitz();
        let rho = crate::theory::min_rho(l) * 1.5;
        let f_star = p.f_star();
        let constants = crate::theory::theorem1_constants(rho, l, 1.0).unwrap();

        let mut admm = QuadraticFedAdmm::new(p, rho).with_eta(1.0);
        // L⁰ with w = θ = 0 and y = 0 is Σ f_i(0) = 0.
        let l0 = admm.lagrangian();
        let t = 100;
        let records = admm.run(t, m, 19);
        // The bound is on the average of V_t over t = 0..T−1, i.e. the gap
        // *before* each round; V_0 uses the initial state.
        let mut vts = vec![QuadraticFedAdmm::new(small_problem(8), rho).optimality_gap()];
        vts.extend(records.iter().take(t - 1).map(|r| r.optimality_gap));
        let average: f64 = vts.iter().sum::<f64>() / (m as f64 * t as f64);
        let bound = crate::theory::theorem1_bound(&constants, l0 - f_star, 0.0, l, m, t);
        assert!(
            average <= bound,
            "Theorem 1 violated: measured {average}, bound {bound}"
        );
    }

    #[test]
    fn inexact_solves_leave_a_floor_proportional_to_epsilon() {
        let p = small_problem(9);
        let m = p.num_clients();
        let rho = crate::theory::min_rho(p.lipschitz()) * 1.5;
        let exact = QuadraticFedAdmm::new(p.clone(), rho).run(150, m, 23);
        let inexact = QuadraticFedAdmm::new(p, rho)
            .with_epsilon(1e-2)
            .run(150, m, 23);
        let exact_v = exact.last().unwrap().optimality_gap;
        let inexact_v = inexact.last().unwrap().optimality_gap;
        assert!(exact_v < 1e-6);
        assert!(
            inexact_v > exact_v,
            "inexact solves must not reach the exact fixed point"
        );
        // …but the run still converges to a neighbourhood (Theorem 1 floor).
        assert!(inexact.last().unwrap().dist_to_optimum < 0.5);
    }

    #[test]
    fn solver_rejects_degenerate_inputs() {
        let p = small_problem(10);
        let mut admm = QuadraticFedAdmm::new(p, 1.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            admm.run_round_with(&[]);
        }));
        assert!(result.is_err(), "empty selection must be rejected");
    }

    #[test]
    fn gaussian_elimination_solves_known_system() {
        // [[2, 1], [1, 3]] x = [3, 5]  →  x = [0.8, 1.4]
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let x = solve(&a, &[3.0, 5.0], 2);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_matrix_has_orthonormal_rows() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = 7;
        let q = random_orthogonal(d, &mut rng);
        for i in 0..d {
            for j in 0..d {
                let rij = dot(&q[i * d..(i + 1) * d], &q[j * d..(j + 1) * d]);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((rij - expected).abs() < 1e-9, "row {i}·row {j} = {rij}");
            }
        }
    }
}
