//! The legacy synchronous simulation API — now a thin wrapper.
//!
//! [`Simulation`] predates the unified [`engine`](crate::engine) subsystem;
//! it survives as a deprecated facade over
//! [`RoundEngine`](crate::engine::RoundEngine) +
//! [`SyncRounds`](crate::engine::SyncRounds) so existing call sites keep
//! compiling. New code should construct the engine directly:
//!
//! ```
//! use fedadmm_core::engine::{RoundEngine, SyncRounds};
//! # use fedadmm_core::prelude::*;
//! # use fedadmm_data::synthetic::SyntheticDataset;
//! # use fedadmm_nn::models::ModelSpec;
//! # let config = FedConfig {
//! #     num_clients: 4,
//! #     participation: Participation::Fraction(0.5),
//! #     local_epochs: 1,
//! #     batch_size: BatchSize::Size(16),
//! #     local_learning_rate: 0.1,
//! #     model: ModelSpec::Logistic { input_dim: 784, num_classes: 10 },
//! #     seed: 7,
//! #     ..FedConfig::default()
//! # };
//! # let (train, test) = SyntheticDataset::Mnist.generate(80, 20, 7);
//! # let partition = DataDistribution::Iid.partition(&train, 4, 7);
//! let mut engine = RoundEngine::new(
//!     config, train, test, partition, FedAvg::new(), SyncRounds,
//! ).unwrap();
//! engine.run_round().unwrap();
//! ```
//!
//! The wrapper's behavior is pinned by the engine-parity integration tests:
//! a seeded run through `Simulation` and one through `RoundEngine` +
//! `SyncRounds` produce identical [`RunHistory`] values.

use crate::algorithms::Algorithm;
use crate::client::ClientState;
use crate::config::FedConfig;
use crate::engine::{RoundEngine, SyncRounds};
use crate::heterogeneity::LocalWorkSchedule;
use crate::metrics::{RoundRecord, RunHistory};
use crate::param::ParamVector;
use crate::selection::ClientSelector;
use fedadmm_clientstore::StoreConfig;
use fedadmm_data::partition::Partition;
use fedadmm_data::Dataset;
use fedadmm_tensor::TensorResult;

/// A federated training run in progress (legacy synchronous API).
#[deprecated(
    since = "0.2.0",
    note = "use `engine::RoundEngine` with the `engine::SyncRounds` scheduler"
)]
pub struct Simulation<A: Algorithm> {
    engine: RoundEngine<A, SyncRounds>,
}

#[allow(deprecated)]
impl<A: Algorithm> Simulation<A> {
    /// Creates a simulation (see [`RoundEngine::new`]).
    pub fn new(
        config: FedConfig,
        train: Dataset,
        test: Dataset,
        partition: Partition,
        algorithm: A,
    ) -> TensorResult<Self> {
        // The legacy API always stored client state densely; pin that choice
        // explicitly so the wrapper stays byte-identical as backends evolve.
        Ok(Simulation {
            engine: RoundEngine::new_with_store(
                config,
                train,
                test,
                partition,
                algorithm,
                SyncRounds,
                &StoreConfig::InMemory,
            )?,
        })
    }

    /// Replaces the client-selection scheme.
    pub fn with_selector(self, selector: Box<dyn ClientSelector>) -> Self {
        Simulation {
            engine: self.engine.with_selector(selector),
        }
    }

    /// Replaces the local-work schedule.
    pub fn with_work_schedule(self, schedule: LocalWorkSchedule) -> Self {
        Simulation {
            engine: self.engine.with_work_schedule(schedule),
        }
    }

    /// The configuration this simulation runs under.
    pub fn config(&self) -> &FedConfig {
        self.engine.config()
    }

    /// Immutable access to the algorithm.
    pub fn algorithm(&self) -> &A {
        self.engine.algorithm()
    }

    /// Mutable access to the algorithm — used by the experiments that adjust
    /// η or ρ mid-run (Figures 6 and 9).
    pub fn algorithm_mut(&mut self) -> &mut A {
        self.engine.algorithm_mut()
    }

    /// The current global model θ.
    pub fn global_model(&self) -> &ParamVector {
        self.engine.global_model()
    }

    /// Immutable access to the client states (for tests and diagnostics).
    pub fn clients(&self) -> &[ClientState] {
        self.engine.clients()
    }

    /// The history recorded so far.
    pub fn history(&self) -> &RunHistory {
        self.engine.history()
    }

    /// Number of rounds run so far.
    pub fn rounds_completed(&self) -> usize {
        self.engine.rounds_completed()
    }

    /// Evaluates the current global model on the test set, returning
    /// `(loss, accuracy)`.
    pub fn evaluate_global(&self) -> TensorResult<(f32, f32)> {
        self.engine.evaluate_global()
    }

    /// Runs a single communication round and returns its record.
    pub fn run_round(&mut self) -> TensorResult<RoundRecord> {
        self.engine.run_round()
    }

    /// Runs `rounds` additional rounds and returns the records produced.
    pub fn run_rounds(&mut self, rounds: usize) -> TensorResult<Vec<RoundRecord>> {
        self.engine.run_rounds(rounds)
    }

    /// Runs until the test accuracy reaches `target` or `max_rounds` rounds
    /// have been executed. Returns the 1-based round count at which the
    /// target was reached, or `None` (after running `max_rounds` rounds).
    pub fn run_until_accuracy(
        &mut self,
        target: f32,
        max_rounds: usize,
    ) -> TensorResult<Option<usize>> {
        self.engine.run_until_accuracy(target, max_rounds)
    }

    /// Consumes the simulation and returns its history.
    pub fn into_history(self) -> RunHistory {
        self.engine.into_history()
    }

    /// The unified engine backing this wrapper.
    pub fn into_engine(self) -> RoundEngine<A, SyncRounds> {
        self.engine
    }
}

#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FedAdmm, FedAvg, FedProx, FedSgd, Scaffold, ServerStepSize};
    use crate::config::{DataDistribution, Participation};
    use fedadmm_data::batching::BatchSize;
    use fedadmm_data::synthetic::SyntheticDataset;
    use fedadmm_nn::models::ModelSpec;

    fn small_config(num_clients: usize, seed: u64) -> FedConfig {
        FedConfig {
            num_clients,
            participation: Participation::Fraction(0.3),
            local_epochs: 2,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(16),
            local_learning_rate: 0.1,
            model: ModelSpec::Logistic {
                input_dim: 784,
                num_classes: 10,
            },
            seed,
            eval_subset: usize::MAX,
        }
    }

    fn make_sim<A: Algorithm>(
        algorithm: A,
        num_clients: usize,
        samples: usize,
        seed: u64,
    ) -> Simulation<A> {
        let config = small_config(num_clients, seed);
        let (train, test) = SyntheticDataset::Mnist.generate(samples, 60, seed);
        let partition = DataDistribution::Iid.partition(&train, num_clients, seed);
        Simulation::new(config, train, test, partition, algorithm).unwrap()
    }

    #[test]
    fn new_validates_partition_and_model() {
        let config = small_config(10, 0);
        let (train, test) = SyntheticDataset::Mnist.generate(100, 20, 0);
        let bad_partition = DataDistribution::Iid.partition(&train, 5, 0);
        assert!(Simulation::new(
            config,
            train.clone(),
            test.clone(),
            bad_partition,
            FedAvg::new()
        )
        .is_err());

        let mut bad_model = small_config(10, 0);
        bad_model.model = ModelSpec::Logistic {
            input_dim: 100,
            num_classes: 10,
        };
        let partition = DataDistribution::Iid.partition(&train, 10, 0);
        assert!(Simulation::new(bad_model, train, test, partition, FedAvg::new()).is_err());
    }

    #[test]
    fn initial_state_matches_paper_initialisation() {
        let sim = make_sim(FedAdmm::paper_default(), 6, 120, 3);
        // Every client starts at the global model with zero dual variables.
        for client in sim.clients() {
            assert_eq!(client.local_model, *sim.global_model());
            assert_eq!(client.dual.norm(), 0.0);
            assert_eq!(client.control.norm(), 0.0);
        }
        assert_eq!(sim.rounds_completed(), 0);
        assert!(sim.history().is_empty());
    }

    #[test]
    fn run_round_records_metrics() {
        let mut sim = make_sim(FedAvg::new(), 6, 120, 4);
        let record = sim.run_round().unwrap();
        assert_eq!(record.round, 0);
        assert_eq!(record.num_selected, 2); // 30% of 6, rounded
        assert!(record.test_accuracy >= 0.0 && record.test_accuracy <= 1.0);
        assert!(record.upload_floats > 0);
        assert_eq!(record.cumulative_upload_floats, record.upload_floats);
        assert_eq!(sim.rounds_completed(), 1);
        let record2 = sim.run_round().unwrap();
        assert_eq!(
            record2.cumulative_upload_floats,
            record.upload_floats + record2.upload_floats
        );
    }

    #[test]
    fn simulation_is_deterministic_in_seed() {
        let mut a = make_sim(FedAdmm::paper_default(), 6, 120, 5);
        let mut b = make_sim(FedAdmm::paper_default(), 6, 120, 5);
        let ra = a.run_rounds(3).unwrap();
        let rb = b.run_rounds(3).unwrap();
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert_eq!(x.test_accuracy, y.test_accuracy);
            assert_eq!(x.num_selected, y.num_selected);
        }
        assert_eq!(a.global_model(), b.global_model());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = make_sim(FedAvg::new(), 6, 120, 6);
        let mut b = make_sim(FedAvg::new(), 6, 120, 7);
        a.run_rounds(2).unwrap();
        b.run_rounds(2).unwrap();
        assert_ne!(a.global_model(), b.global_model());
    }

    #[test]
    fn fedadmm_improves_accuracy_over_rounds() {
        // ρ = 0.3 is the substrate-calibrated constant (see the experiments
        // crate); the paper's 0.01 is calibrated to its CNN/real-image
        // gradient scale.
        let mut sim = make_sim(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 8, 400, 8);
        let (_, acc0) = sim.evaluate_global().unwrap();
        sim.run_rounds(10).unwrap();
        let best = sim.history().best_accuracy();
        assert!(
            best > acc0 + 0.15,
            "accuracy only improved from {acc0} to {best}"
        );
    }

    #[test]
    fn all_algorithms_run_one_round() {
        // Smoke test: every algorithm completes a round and uploads the
        // expected number of floats.
        let d = ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        }
        .num_params();
        let mut sim = make_sim(FedAvg::new(), 5, 100, 9);
        assert_eq!(sim.run_round().unwrap().upload_floats, d * 2);
        let mut sim = make_sim(FedProx::new(0.1), 5, 100, 9);
        assert_eq!(sim.run_round().unwrap().upload_floats, d * 2);
        let mut sim = make_sim(FedSgd::new(0.1), 5, 100, 9);
        assert_eq!(sim.run_round().unwrap().upload_floats, d * 2);
        let mut sim = make_sim(Scaffold::new(), 5, 100, 9);
        assert_eq!(sim.run_round().unwrap().upload_floats, 2 * d * 2);
        let mut sim = make_sim(
            FedAdmm::new(0.01, ServerStepSize::ParticipationRatio),
            5,
            100,
            9,
        );
        assert_eq!(sim.run_round().unwrap().upload_floats, d * 2);
    }

    #[test]
    fn run_until_accuracy_stops_early() {
        let mut sim = make_sim(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 8, 400, 10);
        let rounds = sim.run_until_accuracy(0.35, 30).unwrap();
        assert!(rounds.is_some(), "never reached 35% accuracy");
        assert_eq!(rounds.unwrap(), sim.rounds_completed());
        // An unreachable target exhausts the budget and returns None.
        let mut sim2 = make_sim(FedSgd::new(0.01), 5, 100, 10);
        assert_eq!(sim2.run_until_accuracy(0.999, 2).unwrap(), None);
        assert_eq!(sim2.rounds_completed(), 2);
    }

    #[test]
    fn algorithm_mut_allows_mid_run_adjustment() {
        let mut sim = make_sim(FedAdmm::paper_default(), 6, 120, 11);
        sim.run_rounds(2).unwrap();
        sim.algorithm_mut()
            .set_server_step(ServerStepSize::Constant(0.5));
        sim.algorithm_mut().set_rho(0.1);
        sim.run_rounds(2).unwrap();
        assert_eq!(sim.history().len(), 4);
        assert_eq!(sim.algorithm().rho, 0.1);
    }

    #[test]
    fn boxed_algorithm_simulation_works() {
        let alg: Box<dyn Algorithm> = Box::new(FedAdmm::paper_default());
        let config = small_config(5, 12);
        let (train, test) = SyntheticDataset::Mnist.generate(100, 30, 12);
        let partition = DataDistribution::Iid.partition(&train, 5, 12);
        let mut sim = Simulation::new(config, train, test, partition, alg).unwrap();
        let record = sim.run_round().unwrap();
        assert_eq!(record.num_selected, 2);
        assert_eq!(sim.history().algorithm, "FedADMM");
    }

    #[test]
    fn into_history_preserves_records() {
        let mut sim = make_sim(FedAvg::new(), 5, 100, 13);
        sim.run_rounds(2).unwrap();
        let history = sim.into_history();
        assert_eq!(history.len(), 2);
        assert_eq!(history.algorithm, "FedAvg");
    }
}
