//! The round-based federated simulation engine.
//!
//! [`Simulation`] owns everything a federated run needs — the training and
//! test datasets, per-client state, the global model, the algorithm, the
//! client-selection scheme and the system-heterogeneity model — and drives
//! the canonical FL round of Figure 1/2 of the paper:
//!
//! 1. the server selects `S_t`,
//! 2. selected clients download θ^t and run their local update
//!    (in parallel across clients via rayon; each client's randomness is
//!    derived from `(seed, round, client_id)` so results are independent of
//!    the thread schedule),
//! 3. clients upload their messages,
//! 4. the server aggregates and the new global model is evaluated on the
//!    held-out test set.

use crate::algorithms::{Algorithm, ClientMessage};
use crate::client::ClientState;
use crate::config::FedConfig;
use crate::heterogeneity::LocalWorkSchedule;
use crate::metrics::{RoundRecord, RunHistory};
use crate::param::ParamVector;
use crate::selection::{ClientSelector, FullParticipation, UniformFraction};
use crate::trainer::{evaluate, LocalEnv};
use fedadmm_data::partition::Partition;
use fedadmm_data::Dataset;
use fedadmm_tensor::{TensorError, TensorResult};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::HashSet;
use std::time::Instant;

/// A federated training run in progress.
pub struct Simulation<A: Algorithm> {
    config: FedConfig,
    train: Dataset,
    test: Dataset,
    clients: Vec<ClientState>,
    global: ParamVector,
    algorithm: A,
    selector: Box<dyn ClientSelector>,
    work_schedule: LocalWorkSchedule,
    history: RunHistory,
    round: usize,
}

impl<A: Algorithm> Simulation<A> {
    /// Creates a simulation.
    ///
    /// The global model is randomly initialised from `config.seed` (the
    /// paper: "We adopt random initialization for the global model in all
    /// algorithms, zero initialization for dual variables…"); every client
    /// starts with a copy of it and zero dual/control variates.
    pub fn new(
        config: FedConfig,
        train: Dataset,
        test: Dataset,
        partition: Partition,
        mut algorithm: A,
    ) -> TensorResult<Self> {
        if partition.num_clients() != config.num_clients {
            return Err(TensorError::InvalidArgument(format!(
                "partition has {} clients but the configuration expects {}",
                partition.num_clients(),
                config.num_clients
            )));
        }
        if train.feature_dim() != config.model.input_dim() {
            return Err(TensorError::InvalidArgument(format!(
                "dataset features have dimension {} but the model expects {}",
                train.feature_dim(),
                config.model.input_dim()
            )));
        }
        let mut init_rng = SmallRng::seed_from_u64(config.seed);
        let net = config.model.build(&mut init_rng);
        let global = ParamVector::from_vec(net.params_flat());
        let clients: Vec<ClientState> = partition
            .iter()
            .enumerate()
            .map(|(i, indices)| ClientState::new(i, indices.clone(), &global))
            .collect();

        algorithm.init(global.len(), config.num_clients);
        let selector: Box<dyn ClientSelector> = if algorithm.requires_full_participation() {
            Box::new(FullParticipation)
        } else {
            Box::new(UniformFraction::new(config.clients_per_round()))
        };
        let work_schedule = if algorithm.supports_variable_work() {
            LocalWorkSchedule::from_config(config.local_epochs, config.system_heterogeneity)
        } else {
            LocalWorkSchedule::Fixed(config.local_epochs)
        };
        let history = RunHistory::new(algorithm.name(), format!("{} clients", config.num_clients));
        Ok(Simulation {
            config,
            train,
            test,
            clients,
            global,
            algorithm,
            selector,
            work_schedule,
            history,
            round: 0,
        })
    }

    /// Replaces the client-selection scheme (the default is uniform-random
    /// `C·m` clients, or full participation for algorithms that require it).
    pub fn with_selector(mut self, selector: Box<dyn ClientSelector>) -> Self {
        self.selector = selector;
        self
    }

    /// Replaces the local-work schedule (e.g. a deterministic per-client
    /// schedule for ablations).
    pub fn with_work_schedule(mut self, schedule: LocalWorkSchedule) -> Self {
        self.work_schedule = schedule;
        self
    }

    /// The configuration this simulation runs under.
    pub fn config(&self) -> &FedConfig {
        &self.config
    }

    /// Immutable access to the algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// Mutable access to the algorithm — used by the experiments that adjust
    /// η or ρ mid-run (Figures 6 and 9).
    pub fn algorithm_mut(&mut self) -> &mut A {
        &mut self.algorithm
    }

    /// The current global model θ.
    pub fn global_model(&self) -> &ParamVector {
        &self.global
    }

    /// Immutable access to the client states (for tests and diagnostics).
    pub fn clients(&self) -> &[ClientState] {
        &self.clients
    }

    /// The history recorded so far.
    pub fn history(&self) -> &RunHistory {
        &self.history
    }

    /// Number of rounds run so far.
    pub fn rounds_completed(&self) -> usize {
        self.round
    }

    /// Evaluates the current global model on the test set, returning
    /// `(loss, accuracy)`.
    pub fn evaluate_global(&self) -> TensorResult<(f32, f32)> {
        evaluate(self.config.model, self.global.as_slice(), &self.test, self.config.eval_subset)
    }

    /// Runs a single communication round and returns its record.
    pub fn run_round(&mut self) -> TensorResult<RoundRecord> {
        let start = Instant::now();
        let round = self.round;
        let mut round_rng = SmallRng::seed_from_u64(
            self.config.seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );

        // 1. Client selection.
        let selected: Vec<usize> = if self.algorithm.requires_full_participation() {
            (0..self.config.num_clients).collect()
        } else {
            self.selector.select(self.config.num_clients, &mut round_rng)
        };
        let selected_set: HashSet<usize> = selected.iter().copied().collect();

        // 2. Per-client epoch counts for this round (system heterogeneity).
        let epochs: Vec<usize> = selected
            .iter()
            .map(|&c| self.work_schedule.epochs_for(c, &mut round_rng))
            .collect();
        let epochs_by_client: std::collections::HashMap<usize, usize> =
            selected.iter().copied().zip(epochs.iter().copied()).collect();

        // 3. Local updates, in parallel over the selected clients.
        let algorithm = &self.algorithm;
        let global = &self.global;
        let train = &self.train;
        let config = &self.config;
        let base_seed = config.seed;
        let mut results: Vec<(usize, TensorResult<ClientMessage>)> = self
            .clients
            .par_iter_mut()
            .enumerate()
            .filter(|(i, _)| selected_set.contains(i))
            .map(|(i, client)| {
                let epochs = epochs_by_client[&i];
                let client_seed = base_seed
                    ^ (round as u64).wrapping_mul(0x517C_C1B7_2722_0A95)
                    ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
                // The env borrows a snapshot of the index list so that the
                // client state can be handed to `client_update` mutably.
                let indices = client.indices.clone();
                let env = LocalEnv {
                    dataset: train,
                    indices: &indices,
                    model: config.model,
                    epochs,
                    batch_size: config.batch_size,
                    learning_rate: config.local_learning_rate,
                    seed: client_seed,
                };
                (i, algorithm.client_update(client, global, &env))
            })
            .collect();
        // Deterministic aggregation order regardless of the thread schedule.
        results.sort_by_key(|(i, _)| *i);
        let mut messages = Vec::with_capacity(results.len());
        for (_, result) in results {
            messages.push(result?);
        }

        // 4. Server aggregation.
        let outcome = self.algorithm.server_update(
            &mut self.global,
            &messages,
            self.config.num_clients,
            &mut round_rng,
        );

        // 5. Evaluation and bookkeeping.
        let (test_loss, test_accuracy) = self.evaluate_global()?;
        let total_local_epochs: usize = messages.iter().map(|m| m.epochs_run).sum();
        let samples_processed: usize = messages.iter().map(|m| m.samples_processed).sum();
        let cumulative = self
            .history
            .records
            .last()
            .map(|r| r.cumulative_upload_floats)
            .unwrap_or(0)
            + outcome.upload_floats;
        let record = RoundRecord {
            round,
            test_accuracy,
            test_loss,
            num_selected: selected.len(),
            upload_floats: outcome.upload_floats,
            cumulative_upload_floats: cumulative,
            total_local_epochs,
            samples_processed,
            elapsed_ms: start.elapsed().as_millis() as u64,
        };
        self.history.push(record.clone());
        self.round += 1;
        Ok(record)
    }

    /// Runs `rounds` additional rounds and returns the records produced.
    pub fn run_rounds(&mut self, rounds: usize) -> TensorResult<Vec<RoundRecord>> {
        let mut records = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            records.push(self.run_round()?);
        }
        Ok(records)
    }

    /// Runs until the test accuracy reaches `target` or `max_rounds` rounds
    /// have been executed. Returns the 1-based round count at which the
    /// target was reached, or `None` (after running `max_rounds` rounds).
    pub fn run_until_accuracy(
        &mut self,
        target: f32,
        max_rounds: usize,
    ) -> TensorResult<Option<usize>> {
        if let Some(r) = self.history.rounds_to_accuracy(target) {
            return Ok(Some(r));
        }
        while self.round < max_rounds {
            let record = self.run_round()?;
            if record.test_accuracy >= target {
                return Ok(Some(self.round));
            }
        }
        Ok(None)
    }

    /// Consumes the simulation and returns its history.
    pub fn into_history(self) -> RunHistory {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FedAdmm, FedAvg, FedProx, FedSgd, Scaffold, ServerStepSize};
    use crate::config::{DataDistribution, Participation};
    use fedadmm_data::batching::BatchSize;
    use fedadmm_data::synthetic::SyntheticDataset;
    use fedadmm_nn::models::ModelSpec;

    fn small_config(num_clients: usize, seed: u64) -> FedConfig {
        FedConfig {
            num_clients,
            participation: Participation::Fraction(0.3),
            local_epochs: 2,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(16),
            local_learning_rate: 0.1,
            model: ModelSpec::Logistic { input_dim: 784, num_classes: 10 },
            seed,
            eval_subset: usize::MAX,
        }
    }

    fn make_sim<A: Algorithm>(
        algorithm: A,
        num_clients: usize,
        samples: usize,
        seed: u64,
    ) -> Simulation<A> {
        let config = small_config(num_clients, seed);
        let (train, test) = SyntheticDataset::Mnist.generate(samples, 60, seed);
        let partition = DataDistribution::Iid.partition(&train, num_clients, seed);
        Simulation::new(config, train, test, partition, algorithm).unwrap()
    }

    #[test]
    fn new_validates_partition_and_model() {
        let config = small_config(10, 0);
        let (train, test) = SyntheticDataset::Mnist.generate(100, 20, 0);
        let bad_partition = DataDistribution::Iid.partition(&train, 5, 0);
        assert!(Simulation::new(config, train.clone(), test.clone(), bad_partition, FedAvg::new())
            .is_err());

        let mut bad_model = small_config(10, 0);
        bad_model.model = ModelSpec::Logistic { input_dim: 100, num_classes: 10 };
        let partition = DataDistribution::Iid.partition(&train, 10, 0);
        assert!(Simulation::new(bad_model, train, test, partition, FedAvg::new()).is_err());
    }

    #[test]
    fn initial_state_matches_paper_initialisation() {
        let sim = make_sim(FedAdmm::paper_default(), 6, 120, 3);
        // Every client starts at the global model with zero dual variables.
        for client in sim.clients() {
            assert_eq!(client.local_model, *sim.global_model());
            assert_eq!(client.dual.norm(), 0.0);
            assert_eq!(client.control.norm(), 0.0);
        }
        assert_eq!(sim.rounds_completed(), 0);
        assert!(sim.history().is_empty());
    }

    #[test]
    fn run_round_records_metrics() {
        let mut sim = make_sim(FedAvg::new(), 6, 120, 4);
        let record = sim.run_round().unwrap();
        assert_eq!(record.round, 0);
        assert_eq!(record.num_selected, 2); // 30% of 6, rounded
        assert!(record.test_accuracy >= 0.0 && record.test_accuracy <= 1.0);
        assert!(record.upload_floats > 0);
        assert_eq!(record.cumulative_upload_floats, record.upload_floats);
        assert_eq!(sim.rounds_completed(), 1);
        let record2 = sim.run_round().unwrap();
        assert_eq!(
            record2.cumulative_upload_floats,
            record.upload_floats + record2.upload_floats
        );
    }

    #[test]
    fn simulation_is_deterministic_in_seed() {
        let mut a = make_sim(FedAdmm::paper_default(), 6, 120, 5);
        let mut b = make_sim(FedAdmm::paper_default(), 6, 120, 5);
        let ra = a.run_rounds(3).unwrap();
        let rb = b.run_rounds(3).unwrap();
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert_eq!(x.test_accuracy, y.test_accuracy);
            assert_eq!(x.num_selected, y.num_selected);
        }
        assert_eq!(a.global_model(), b.global_model());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = make_sim(FedAvg::new(), 6, 120, 6);
        let mut b = make_sim(FedAvg::new(), 6, 120, 7);
        a.run_rounds(2).unwrap();
        b.run_rounds(2).unwrap();
        assert_ne!(a.global_model(), b.global_model());
    }

    #[test]
    fn fedadmm_improves_accuracy_over_rounds() {
        // ρ = 0.3 is the substrate-calibrated constant (see the experiments
        // crate); the paper's 0.01 is calibrated to its CNN/real-image
        // gradient scale.
        let mut sim = make_sim(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 8, 400, 8);
        let (_, acc0) = sim.evaluate_global().unwrap();
        sim.run_rounds(10).unwrap();
        let best = sim.history().best_accuracy();
        assert!(best > acc0 + 0.15, "accuracy only improved from {acc0} to {best}");
    }

    #[test]
    fn all_algorithms_run_one_round() {
        // Smoke test: every algorithm completes a round and uploads the
        // expected number of floats.
        let d = ModelSpec::Logistic { input_dim: 784, num_classes: 10 }.num_params();
        let mut sim = make_sim(FedAvg::new(), 5, 100, 9);
        assert_eq!(sim.run_round().unwrap().upload_floats, d * 2);
        let mut sim = make_sim(FedProx::new(0.1), 5, 100, 9);
        assert_eq!(sim.run_round().unwrap().upload_floats, d * 2);
        let mut sim = make_sim(FedSgd::new(0.1), 5, 100, 9);
        assert_eq!(sim.run_round().unwrap().upload_floats, d * 2);
        let mut sim = make_sim(Scaffold::new(), 5, 100, 9);
        assert_eq!(sim.run_round().unwrap().upload_floats, 2 * d * 2);
        let mut sim =
            make_sim(FedAdmm::new(0.01, ServerStepSize::ParticipationRatio), 5, 100, 9);
        assert_eq!(sim.run_round().unwrap().upload_floats, d * 2);
    }

    #[test]
    fn run_until_accuracy_stops_early() {
        let mut sim = make_sim(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 8, 400, 10);
        let rounds = sim.run_until_accuracy(0.35, 30).unwrap();
        assert!(rounds.is_some(), "never reached 35% accuracy");
        assert_eq!(rounds.unwrap(), sim.rounds_completed());
        // An unreachable target exhausts the budget and returns None.
        let mut sim2 = make_sim(FedSgd::new(0.01), 5, 100, 10);
        assert_eq!(sim2.run_until_accuracy(0.999, 2).unwrap(), None);
        assert_eq!(sim2.rounds_completed(), 2);
    }

    #[test]
    fn algorithm_mut_allows_mid_run_adjustment() {
        let mut sim = make_sim(FedAdmm::paper_default(), 6, 120, 11);
        sim.run_rounds(2).unwrap();
        sim.algorithm_mut().set_server_step(ServerStepSize::Constant(0.5));
        sim.algorithm_mut().set_rho(0.1);
        sim.run_rounds(2).unwrap();
        assert_eq!(sim.history().len(), 4);
        assert_eq!(sim.algorithm().rho, 0.1);
    }

    #[test]
    fn boxed_algorithm_simulation_works() {
        let alg: Box<dyn Algorithm> = Box::new(FedAdmm::paper_default());
        let config = small_config(5, 12);
        let (train, test) = SyntheticDataset::Mnist.generate(100, 30, 12);
        let partition = DataDistribution::Iid.partition(&train, 5, 12);
        let mut sim = Simulation::new(config, train, test, partition, alg).unwrap();
        let record = sim.run_round().unwrap();
        assert_eq!(record.num_selected, 2);
        assert_eq!(sim.history().algorithm, "FedADMM");
    }

    #[test]
    fn into_history_preserves_records() {
        let mut sim = make_sim(FedAvg::new(), 5, 100, 13);
        sim.run_rounds(2).unwrap();
        let history = sim.into_history();
        assert_eq!(history.len(), 2);
        assert_eq!(history.algorithm, "FedAvg");
    }
}
