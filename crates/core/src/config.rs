//! Experiment configuration shared by every algorithm.

use fedadmm_data::batching::BatchSize;
use fedadmm_data::partition::{self, Partition};
use fedadmm_data::Dataset;
use fedadmm_nn::models::ModelSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How many clients participate in a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Participation {
    /// A fraction `C` of the population is selected uniformly at random
    /// each round (the paper uses `C = 0.1` everywhere).
    Fraction(f64),
    /// A fixed number of clients selected uniformly at random each round.
    Count(usize),
    /// Every client participates every round (needed by FedPD).
    Full,
}

impl Participation {
    /// Resolves to a concrete number of clients for a population of `m`.
    pub fn num_selected(&self, m: usize) -> usize {
        match *self {
            Participation::Fraction(c) => ((m as f64 * c).round() as usize).clamp(1, m),
            Participation::Count(k) => k.clamp(1, m),
            Participation::Full => m,
        }
    }
}

/// How the training data is distributed across clients (Section V-A of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataDistribution {
    /// Evenly distributed, shuffled (the paper's IID setting).
    Iid,
    /// Label-sorted, split into `2m` shards, two shards per client (the
    /// paper's non-IID setting).
    NonIidShards,
    /// The Table VI imbalanced-volume setting: label-sorted shards, clients
    /// grouped, shard count equal to the group index.
    ImbalancedGroups {
        /// Number of client groups (paper: 100 groups of 200 clients).
        num_groups: usize,
        /// Total number of shards (paper: 10,000).
        num_shards: usize,
    },
}

impl DataDistribution {
    /// Builds the partition of `dataset` across `num_clients` clients.
    pub fn partition(&self, dataset: &Dataset, num_clients: usize, seed: u64) -> Partition {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5151_5151);
        match *self {
            DataDistribution::Iid => partition::iid(dataset, num_clients, &mut rng),
            DataDistribution::NonIidShards => {
                partition::shards_non_iid(dataset, num_clients, 2, &mut rng)
            }
            DataDistribution::ImbalancedGroups {
                num_groups,
                num_shards,
            } => {
                partition::imbalanced_groups(dataset, num_clients, num_groups, num_shards, &mut rng)
            }
        }
    }

    /// Short label used in reports ("IID" / "non-IID" / "imbalanced").
    pub fn label(&self) -> &'static str {
        match self {
            DataDistribution::Iid => "IID",
            DataDistribution::NonIidShards => "non-IID",
            DataDistribution::ImbalancedGroups { .. } => "imbalanced",
        }
    }
}

/// Configuration of a federated training run.
///
/// Field names follow the paper's notation: `E` (local epochs), `B` (local
/// batch size), `C` (participation fraction), `η_i` (client learning rate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedConfig {
    /// Total number of clients `m`.
    pub num_clients: usize,
    /// How many clients are selected per round.
    pub participation: Participation,
    /// Maximum number of local epochs `E`.
    pub local_epochs: usize,
    /// Whether clients draw their epoch count uniformly from `{1..E}`
    /// (system heterogeneity, applied to FedADMM and FedProx in the paper)
    /// or always run exactly `E` epochs.
    pub system_heterogeneity: bool,
    /// Local mini-batch size `B`.
    pub batch_size: BatchSize,
    /// Client SGD learning rate `η_i`.
    pub local_learning_rate: f32,
    /// Model architecture trained by every client.
    pub model: ModelSpec,
    /// Base RNG seed; every round/client derives its own stream from it.
    pub seed: u64,
    /// Number of test samples used for the per-round evaluation
    /// (`usize::MAX` = use the full test set).
    pub eval_subset: usize,
}

impl Default for FedConfig {
    fn default() -> Self {
        FedConfig {
            num_clients: 100,
            participation: Participation::Fraction(0.1),
            local_epochs: 5,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(200),
            local_learning_rate: 0.1,
            model: ModelSpec::Mlp {
                input_dim: 784,
                hidden_dim: 64,
                num_classes: 10,
            },
            seed: 0,
            eval_subset: usize::MAX,
        }
    }
}

impl FedConfig {
    /// Number of clients selected each round under this configuration.
    pub fn clients_per_round(&self) -> usize {
        self.participation.num_selected(self.num_clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedadmm_data::synthetic::SyntheticDataset;

    #[test]
    fn participation_resolution() {
        assert_eq!(Participation::Fraction(0.1).num_selected(100), 10);
        assert_eq!(Participation::Fraction(0.1).num_selected(5), 1);
        assert_eq!(Participation::Fraction(2.0).num_selected(10), 10);
        assert_eq!(Participation::Count(7).num_selected(100), 7);
        assert_eq!(Participation::Count(700).num_selected(100), 100);
        assert_eq!(Participation::Full.num_selected(42), 42);
    }

    #[test]
    fn default_matches_paper_mnist_100_setting() {
        let c = FedConfig::default();
        assert_eq!(c.num_clients, 100);
        assert_eq!(c.clients_per_round(), 10);
        assert_eq!(c.local_epochs, 5);
        assert_eq!(c.batch_size, BatchSize::Size(200));
    }

    #[test]
    fn distribution_partitioning() {
        let (train, _) = SyntheticDataset::Mnist.generate(200, 10, 0);
        let iid = DataDistribution::Iid.partition(&train, 10, 1);
        assert_eq!(iid.num_clients(), 10);
        assert_eq!(iid.validate(train.len()).unwrap(), 200);
        let noniid = DataDistribution::NonIidShards.partition(&train, 10, 1);
        assert!(noniid.mean_distinct_labels(&train) < iid.mean_distinct_labels(&train));
        assert_eq!(DataDistribution::Iid.label(), "IID");
        assert_eq!(DataDistribution::NonIidShards.label(), "non-IID");
    }

    #[test]
    fn partition_is_deterministic_in_seed() {
        let (train, _) = SyntheticDataset::Mnist.generate(100, 10, 0);
        let a = DataDistribution::NonIidShards.partition(&train, 5, 3);
        let b = DataDistribution::NonIidShards.partition(&train, 5, 3);
        assert_eq!(a, b);
        let c = DataDistribution::NonIidShards.partition(&train, 5, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = FedConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: FedConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
