//! Client-selection schemes.
//!
//! The paper emphasises that FedADMM converges under *any* activation
//! scheme that selects every client with non-zero probability (Theorem 1 /
//! Remark 2). The experiments select a uniform-random 10% of clients each
//! round ([`UniformFraction`]); [`FixedProbabilities`] models the more
//! general per-client-probability scheme used in the analysis, and
//! [`FullParticipation`] is what FedPD requires.
//!
//! Every selector returns its cohort sorted ascending, which is what the
//! engine's client-state store needs to materialize shards in O(selected):
//! [`group_cohort_by_shard`] converts a cohort into shard-local index runs
//! without touching the `m − |S_t|` inactive clients.

pub use fedadmm_clientstore::ShardMap;

use fedadmm_tensor::TensorResult;
use rand::seq::SliceRandom;
use rand::Rng;
use std::ops::Range;

/// Groups a strictly-ascending cohort into `(shard, range)` runs under the
/// given shard geometry: `cohort[range]` is the slice of the cohort that
/// lands in `shard`. Because selectors emit sorted cohorts and shards are
/// contiguous, this is a single O(|S_t|) sweep — the store materializes
/// exactly the shards named here and never scans the inactive tail.
pub fn group_cohort_by_shard(
    map: &ShardMap,
    cohort: &[usize],
) -> TensorResult<Vec<(usize, Range<usize>)>> {
    map.group(cohort)
}

/// A client-selection scheme: given the population size and a round RNG,
/// produces the set `S_t ⊆ [m]` of active clients.
pub trait ClientSelector: Send + Sync {
    /// Selects the active clients for one round. The returned indices are
    /// distinct and in `0..num_clients`.
    fn select(&self, num_clients: usize, rng: &mut dyn rand::RngCore) -> Vec<usize>;

    /// Short human-readable description used in logs.
    fn describe(&self) -> String;
}

/// Selects a fixed number of clients uniformly at random without
/// replacement (the paper's `C·m` clients per round).
#[derive(Debug, Clone, Copy)]
pub struct UniformFraction {
    /// Number of clients to select each round.
    pub count: usize,
}

impl UniformFraction {
    /// Creates a selector that picks `count` clients per round.
    pub fn new(count: usize) -> Self {
        UniformFraction { count }
    }
}

impl ClientSelector for UniformFraction {
    fn select(&self, num_clients: usize, rng: &mut dyn rand::RngCore) -> Vec<usize> {
        let count = self.count.clamp(1, num_clients.max(1));
        let mut ids: Vec<usize> = (0..num_clients).collect();
        ids.shuffle(rng);
        ids.truncate(count);
        ids.sort_unstable();
        ids
    }

    fn describe(&self) -> String {
        format!("uniform-random {} clients/round", self.count)
    }
}

/// Every client participates in every round (required by FedPD; also used
/// to stress-test the aggregation rules).
#[derive(Debug, Clone, Copy, Default)]
pub struct FullParticipation;

impl ClientSelector for FullParticipation {
    fn select(&self, num_clients: usize, _rng: &mut dyn rand::RngCore) -> Vec<usize> {
        (0..num_clients).collect()
    }

    fn describe(&self) -> String {
        "full participation".to_string()
    }
}

/// Each client participates independently with its own probability `p_i`
/// (the general activation scheme of Theorem 1). If no client is sampled,
/// the highest-probability client is activated so that a round is never
/// empty.
#[derive(Debug, Clone)]
pub struct FixedProbabilities {
    probabilities: Vec<f64>,
}

impl FixedProbabilities {
    /// Creates a selector with one participation probability per client.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]` or all are zero.
    pub fn new(probabilities: Vec<f64>) -> Self {
        assert!(
            probabilities.iter().all(|&p| (0.0..=1.0).contains(&p)),
            "probabilities must lie in [0, 1]"
        );
        assert!(
            probabilities.iter().any(|&p| p > 0.0),
            "at least one client must have non-zero participation probability \
             (infinitely-often participation is required for convergence)"
        );
        FixedProbabilities { probabilities }
    }
}

impl ClientSelector for FixedProbabilities {
    fn select(&self, num_clients: usize, rng: &mut dyn rand::RngCore) -> Vec<usize> {
        let n = num_clients.min(self.probabilities.len());
        let mut selected: Vec<usize> = (0..n)
            .filter(|&i| rng.gen_bool(self.probabilities[i]))
            .collect();
        if selected.is_empty() {
            // Guarantee progress: activate the most available client.
            let best = (0..n)
                .max_by(|&a, &b| {
                    self.probabilities[a]
                        .partial_cmp(&self.probabilities[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            selected.push(best);
        }
        selected
    }

    fn describe(&self) -> String {
        format!(
            "per-client probabilities ({} clients)",
            self.probabilities.len()
        )
    }
}

/// Deterministic round-robin selection: round `t` activates clients
/// `{(t·k) mod m, …, (t·k + k − 1) mod m}`.
///
/// This is the simplest scheme that satisfies the *infinitely often*
/// participation requirement of Remark 2 without any randomness — every
/// client is selected exactly once every `⌈m/k⌉` rounds. It is used by the
/// failure-injection tests to show FedADMM makes progress under fully
/// deterministic, adversarially ordered activation.
#[derive(Debug, Default)]
pub struct RoundRobin {
    /// Number of clients activated per round.
    pub per_round: usize,
    cursor: std::sync::atomic::AtomicUsize,
}

impl RoundRobin {
    /// Creates a round-robin selector that activates `per_round` clients per
    /// round.
    pub fn new(per_round: usize) -> Self {
        RoundRobin {
            per_round,
            cursor: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl ClientSelector for RoundRobin {
    fn select(&self, num_clients: usize, _rng: &mut dyn rand::RngCore) -> Vec<usize> {
        let k = self.per_round.clamp(1, num_clients.max(1));
        let start = self
            .cursor
            .fetch_add(k, std::sync::atomic::Ordering::Relaxed);
        let mut ids: Vec<usize> = (0..k).map(|j| (start + j) % num_clients.max(1)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn describe(&self) -> String {
        format!("round-robin {} clients/round", self.per_round)
    }
}

/// Selects clients with probability proportional to their data volume
/// (without replacement), modelling deployments where well-provisioned
/// clients with more data are preferentially scheduled. Every client with at
/// least one sample retains a non-zero selection probability, so the
/// infinitely-often requirement of Remark 2 still holds.
#[derive(Debug, Clone)]
pub struct WeightedBySamples {
    weights: Vec<f64>,
    count: usize,
}

impl WeightedBySamples {
    /// Creates a selector picking `count` clients per round with probability
    /// proportional to `sample_counts`. Clients with zero samples are given
    /// a tiny positive weight so they are not starved forever.
    ///
    /// # Panics
    /// Panics if `sample_counts` is empty.
    pub fn new(sample_counts: &[usize], count: usize) -> Self {
        assert!(!sample_counts.is_empty(), "need at least one client");
        let weights: Vec<f64> = sample_counts
            .iter()
            .map(|&n| (n as f64).max(1e-3))
            .collect();
        WeightedBySamples { weights, count }
    }
}

impl ClientSelector for WeightedBySamples {
    fn select(&self, num_clients: usize, rng: &mut dyn rand::RngCore) -> Vec<usize> {
        let n = num_clients.min(self.weights.len());
        let k = self.count.clamp(1, n.max(1));
        // Sequential weighted sampling without replacement (Efraimidis–
        // Spirakis keys): draw u_i^{1/w_i} and keep the k largest.
        let mut keyed: Vec<(f64, usize)> = (0..n)
            .map(|i| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (u.powf(1.0 / self.weights[i]), i)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut ids: Vec<usize> = keyed.into_iter().take(k).map(|(_, i)| i).collect();
        ids.sort_unstable();
        ids
    }

    fn describe(&self) -> String {
        format!("sample-volume-weighted {} clients/round", self.count)
    }
}

/// Time-varying participation probabilities `p_i^t = p_i / (1 + t/τ)`.
///
/// Remark 2 of the paper: convergence only needs `Σ_t p_i^t = ∞` (clients
/// participate infinitely often). A harmonic decay satisfies that condition
/// while modelling networks whose availability degrades over time — the
/// integration tests use it to exercise the weakest participation regime the
/// analysis covers.
#[derive(Debug)]
pub struct DecayingProbabilities {
    base: Vec<f64>,
    tau: f64,
    round: std::sync::atomic::AtomicUsize,
}

impl DecayingProbabilities {
    /// Creates the selector with per-client base probabilities and decay
    /// time-constant `tau` (in rounds).
    ///
    /// # Panics
    /// Panics if any base probability is outside `(0, 1]` or `tau <= 0`.
    pub fn new(base: Vec<f64>, tau: f64) -> Self {
        assert!(
            base.iter().all(|&p| p > 0.0 && p <= 1.0),
            "base probabilities must lie in (0, 1] so that participation is infinitely often"
        );
        assert!(tau > 0.0, "the decay time constant must be positive");
        DecayingProbabilities {
            base,
            tau,
            round: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The probability client `i` participates at round `t`.
    pub fn probability_at(&self, client: usize, round: usize) -> f64 {
        self.base[client % self.base.len()] / (1.0 + round as f64 / self.tau)
    }
}

impl ClientSelector for DecayingProbabilities {
    fn select(&self, num_clients: usize, rng: &mut dyn rand::RngCore) -> Vec<usize> {
        let t = self
            .round
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let n = num_clients.min(self.base.len());
        let mut selected: Vec<usize> = (0..n)
            .filter(|&i| rng.gen_bool(self.probability_at(i, t)))
            .collect();
        if selected.is_empty() {
            // Never return an empty round: fall back to the client with the
            // highest current probability (same guarantee as
            // `FixedProbabilities`).
            let best = (0..n)
                .max_by(|&a, &b| {
                    self.probability_at(a, t)
                        .partial_cmp(&self.probability_at(b, t))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            selected.push(best);
        }
        selected
    }

    fn describe(&self) -> String {
        format!(
            "decaying probabilities (τ = {} rounds, {} clients)",
            self.tau,
            self.base.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn uniform_fraction_selects_exact_count() {
        let sel = UniformFraction::new(10);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..20 {
            let s = sel.select(100, &mut rng);
            assert_eq!(s.len(), 10);
            let unique: HashSet<_> = s.iter().collect();
            assert_eq!(unique.len(), 10);
            assert!(s.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn uniform_fraction_clamps_to_population() {
        let sel = UniformFraction::new(50);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sel.select(5, &mut rng).len(), 5);
        let sel0 = UniformFraction::new(0);
        assert_eq!(sel0.select(5, &mut rng).len(), 1);
    }

    #[test]
    fn uniform_fraction_covers_all_clients_eventually() {
        // Every client must have non-zero selection probability — the
        // infinitely-often participation requirement of Theorem 1.
        let sel = UniformFraction::new(3);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        for _ in 0..300 {
            seen.extend(sel.select(10, &mut rng));
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn full_participation_selects_everyone() {
        let sel = FullParticipation;
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sel.select(7, &mut rng), vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(sel.describe().contains("full"));
    }

    #[test]
    fn fixed_probabilities_respects_zero_probability() {
        let sel = FixedProbabilities::new(vec![0.0, 1.0, 0.5]);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..50 {
            let s = sel.select(3, &mut rng);
            assert!(!s.contains(&0));
            assert!(s.contains(&1));
        }
    }

    #[test]
    fn fixed_probabilities_never_returns_empty() {
        let sel = FixedProbabilities::new(vec![0.001, 0.002]);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(!sel.select(2, &mut rng).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "non-zero participation")]
    fn fixed_probabilities_rejects_all_zero() {
        FixedProbabilities::new(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn fixed_probabilities_rejects_out_of_range() {
        FixedProbabilities::new(vec![1.5]);
    }

    #[test]
    fn round_robin_covers_every_client_in_order() {
        let sel = RoundRobin::new(3);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sel.select(10, &mut rng), vec![0, 1, 2]);
        assert_eq!(sel.select(10, &mut rng), vec![3, 4, 5]);
        assert_eq!(sel.select(10, &mut rng), vec![6, 7, 8]);
        // Wraps around and keeps covering everyone (infinitely often).
        let fourth = sel.select(10, &mut rng);
        assert!(fourth.contains(&9));
        let mut seen: HashSet<usize> = HashSet::new();
        for _ in 0..10 {
            seen.extend(sel.select(10, &mut rng));
        }
        assert_eq!(seen.len(), 10);
        assert!(sel.describe().contains("round-robin"));
    }

    #[test]
    fn round_robin_clamps_per_round_to_population() {
        let sel = RoundRobin::new(100);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sel.select(4, &mut rng), vec![0, 1, 2, 3]);
    }

    #[test]
    fn weighted_by_samples_prefers_large_clients_but_starves_none() {
        // Client 2 holds 10× the data of the others: it must be selected far
        // more often, but every client must still appear eventually.
        let sel = WeightedBySamples::new(&[10, 10, 100, 10], 1);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = vec![0usize; 4];
        for _ in 0..2000 {
            for id in sel.select(4, &mut rng) {
                counts[id] += 1;
            }
        }
        assert!(counts[2] > counts[0] * 3, "counts {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
        assert!(sel.describe().contains("weighted"));
    }

    #[test]
    fn weighted_by_samples_returns_distinct_clients() {
        let sel = WeightedBySamples::new(&[5, 5, 5, 5, 5], 3);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..50 {
            let s = sel.select(5, &mut rng);
            assert_eq!(s.len(), 3);
            let unique: HashSet<_> = s.iter().collect();
            assert_eq!(unique.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn weighted_by_samples_rejects_empty_population() {
        WeightedBySamples::new(&[], 1);
    }

    #[test]
    fn decaying_probabilities_decay_but_never_reach_zero() {
        let sel = DecayingProbabilities::new(vec![0.8; 4], 10.0);
        assert!((sel.probability_at(0, 0) - 0.8).abs() < 1e-12);
        assert!((sel.probability_at(0, 10) - 0.4).abs() < 1e-12);
        assert!(sel.probability_at(0, 10_000) > 0.0);
        // Selection still always returns at least one client even deep into
        // the decay.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            assert!(!sel.select(4, &mut rng).is_empty());
        }
        assert!(sel.describe().contains("decaying"));
    }

    #[test]
    fn decaying_probabilities_participation_thins_over_time() {
        let sel = DecayingProbabilities::new(vec![1.0; 10], 5.0);
        let mut rng = SmallRng::seed_from_u64(6);
        let early: usize = (0..5).map(|_| sel.select(10, &mut rng).len()).sum();
        // Skip ahead.
        for _ in 0..100 {
            sel.select(10, &mut rng);
        }
        let late: usize = (0..5).map(|_| sel.select(10, &mut rng).len()).sum();
        assert!(late < early, "late {late} !< early {early}");
    }

    #[test]
    #[should_panic(expected = "infinitely often")]
    fn decaying_probabilities_reject_zero_base() {
        DecayingProbabilities::new(vec![0.0, 0.5], 10.0);
    }

    #[test]
    fn cohorts_group_into_shard_local_runs() {
        // 100 clients over 10 shards of 10: the grouped runs partition the
        // cohort, stay within shard bounds, and name only touched shards.
        let map = ShardMap::new(100, 10);
        let sel = UniformFraction::new(12);
        let mut rng = SmallRng::seed_from_u64(7);
        let cohort = sel.select(100, &mut rng);
        let runs = group_cohort_by_shard(&map, &cohort).unwrap();
        let mut covered = 0;
        for (shard, range) in &runs {
            assert!(!range.is_empty());
            for &id in &cohort[range.clone()] {
                assert_eq!(map.shard_of(id), *shard);
            }
            covered += range.len();
        }
        assert_eq!(covered, cohort.len());
        assert!(runs.len() <= cohort.len());
    }

    #[test]
    fn all_selectors_emit_ascending_cohorts() {
        // The store's with_states contract requires strictly-ascending ids;
        // every selector must uphold it.
        let mut rng = SmallRng::seed_from_u64(8);
        let selectors: Vec<Box<dyn ClientSelector>> = vec![
            Box::new(UniformFraction::new(5)),
            Box::new(FullParticipation),
            Box::new(FixedProbabilities::new(vec![0.5; 20])),
            Box::new(RoundRobin::new(4)),
            Box::new(WeightedBySamples::new(&[3; 20], 5)),
            Box::new(DecayingProbabilities::new(vec![0.6; 20], 50.0)),
        ];
        for sel in &selectors {
            for _ in 0..20 {
                let cohort = sel.select(20, &mut rng);
                assert!(
                    cohort.windows(2).all(|w| w[0] < w[1]),
                    "{} emitted a non-ascending cohort {cohort:?}",
                    sel.describe()
                );
            }
        }
    }

    #[test]
    fn uniform_selection_is_reasonably_uniform() {
        let sel = UniformFraction::new(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = vec![0usize; 5];
        for _ in 0..5000 {
            counts[sel.select(5, &mut rng)[0]] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }
}
