//! The paper's theoretical results as executable formulas.
//!
//! Two pieces of the paper are purely analytic and therefore reproduced as
//! code rather than as experiments:
//!
//! * **Table I** — the number of communication rounds each method needs to
//!   reach an ε-stationary solution, as a function of the accuracy ε, the
//!   population size `m`, the number of active clients `S`, and the
//!   data-dissimilarity / bounded-gradient constants `B` and `G` that the
//!   *baselines* (but not FedADMM) require. [`ComplexityParams`] and
//!   [`round_complexity`] evaluate those expressions so that the
//!   documentation table can be regenerated and the crossovers inspected
//!   (e.g. FedADMM's advantage grows as ε shrinks or as heterogeneity makes
//!   `B` large).
//! * **Theorem 1** — the convergence bound
//!   `(1/mT) Σ_t E[V_t] ≤ (1/mT)·(c2/c1)·(L⁰ − f* + (m/2L)ε_max) + c3·ε_max`
//!   with constants `c1, c2, c3` determined by `ρ`, the smoothness constant
//!   `L`, and the minimum participation probability `p_min`.
//!   [`TheoremConstants`] computes them, [`min_rho`] gives the admissible
//!   range `ρ > (1 + √5)L`, and [`theorem1_bound`] evaluates the right-hand
//!   side of equation (8). The quadratic-consensus substrate
//!   ([`crate::quadratic`]) verifies the bound empirically.

use serde::{Deserialize, Serialize};

/// Parameters entering the Table I round-complexity expressions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplexityParams {
    /// Target stationarity accuracy ε.
    pub epsilon: f64,
    /// Total number of clients `m`.
    pub num_clients: usize,
    /// Number of active clients per round `S`.
    pub active_clients: usize,
    /// Bounded-gradient constant `G` of assumption (10) (needed by FedAvg).
    pub gradient_bound: f64,
    /// Data-dissimilarity constant `B` of assumption (9) (needed by
    /// FedAvg/FedProx; FedADMM and SCAFFOLD allow `B = ∞`).
    pub dissimilarity: f64,
}

impl ComplexityParams {
    /// A convenient default mirroring the paper's largest experiments:
    /// `m = 1000`, `S = 100` (10% participation).
    pub fn paper_scale(epsilon: f64) -> Self {
        ComplexityParams {
            epsilon,
            num_clients: 1000,
            active_clients: 100,
            gradient_bound: 10.0,
            dissimilarity: 5.0,
        }
    }

    fn m(&self) -> f64 {
        self.num_clients as f64
    }

    fn s(&self) -> f64 {
        self.active_clients.max(1) as f64
    }
}

/// The methods compared in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// FedAvg \[4\], \[9\].
    FedAvg,
    /// FedProx \[8\] (requires `S > B²`).
    FedProx,
    /// SCAFFOLD \[9\] (doubles the upload cost).
    Scaffold,
    /// FedPD \[22\] (requires all clients to communicate simultaneously).
    FedPd,
    /// FedADMM (this paper).
    FedAdmm,
}

impl Method {
    /// Every row of Table I, in the paper's order.
    pub fn all() -> [Method; 5] {
        [
            Method::FedAvg,
            Method::FedProx,
            Method::Scaffold,
            Method::FedPd,
            Method::FedAdmm,
        ]
    }

    /// The method's name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Method::FedAvg => "FedAvg",
            Method::FedProx => "FedProx",
            Method::Scaffold => "SCAFFOLD",
            Method::FedPd => "FedPD",
            Method::FedAdmm => "FedADMM",
        }
    }
}

/// Evaluates the Table I round-complexity expression for `method`
/// (up to the absolute constants hidden by the O(·) notation, which are set
/// to 1). Returns `None` when the method's side conditions are violated:
/// FedProx requires `S > B²` and FedPD requires full participation.
pub fn round_complexity(method: Method, p: &ComplexityParams) -> Option<f64> {
    assert!(p.epsilon > 0.0, "the target accuracy ε must be positive");
    let eps = p.epsilon;
    let m = p.m();
    let s = p.s();
    match method {
        Method::FedAvg => {
            let b = p.dissimilarity;
            let g = p.gradient_bound;
            Some((m - s) / (m * s) / (eps * eps) + g / eps.powf(1.5) + b * b / eps)
        }
        Method::FedProx => {
            let b = p.dissimilarity;
            if s <= b * b {
                None
            } else {
                Some(b * b / eps)
            }
        }
        Method::Scaffold => Some(1.0 / (eps * eps) + (m / s).powf(2.0 / 3.0) / eps),
        Method::FedPd => {
            if p.active_clients < p.num_clients {
                None
            } else {
                Some(1.0 / eps)
            }
        }
        Method::FedAdmm => Some((m / s) / eps),
    }
}

/// Regenerates Table I: one `(method, rounds)` row per method, `None` where
/// the method's assumptions fail under `p`.
pub fn table1(p: &ComplexityParams) -> Vec<(Method, Option<f64>)> {
    Method::all()
        .iter()
        .map(|&m| (m, round_complexity(m, p)))
        .collect()
}

/// The constants of Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoremConstants {
    /// `c1 = p_min (½(ρ − 2L) − 2L²/ρ)` — the per-round decrement factor.
    pub c1: f64,
    /// `c2 = 3(L² + ρ²) + 2(1 + 2L²/ρ²)` — relates `V_t` to the iterate
    /// movement.
    pub c2: f64,
    /// `c3 = 3 + 16/ρ² + (c2/c1)·(ρ + 16L)/(2Lρ)` — the inexactness floor.
    pub c3: f64,
}

/// The smallest admissible proximal coefficient: Theorem 1 requires
/// `ρ > (1 + √5)·L` so that `c1 > 0`.
pub fn min_rho(lipschitz: f64) -> f64 {
    assert!(
        lipschitz > 0.0,
        "the smoothness constant L must be positive"
    );
    (1.0 + 5.0f64.sqrt()) * lipschitz
}

/// Computes the Theorem 1 constants for a given `(ρ, L, p_min)`.
///
/// Returns `None` when the admissibility condition `ρ > (1 + √5)L` fails or
/// `p_min` is not a valid probability, because `c1 ≤ 0` makes the bound
/// vacuous.
pub fn theorem1_constants(rho: f64, lipschitz: f64, p_min: f64) -> Option<TheoremConstants> {
    assert!(
        lipschitz > 0.0,
        "the smoothness constant L must be positive"
    );
    if !(0.0..=1.0).contains(&p_min) || p_min == 0.0 {
        return None;
    }
    if rho <= min_rho(lipschitz) {
        return None;
    }
    let l = lipschitz;
    let c1 = p_min * ((rho - 2.0 * l) / 2.0 - 2.0 * l * l / rho);
    if c1 <= 0.0 {
        return None;
    }
    let c2 = 3.0 * (l * l + rho * rho) + 2.0 * (1.0 + 2.0 * l * l / (rho * rho));
    let c3 = 3.0 + 16.0 / (rho * rho) + (c2 / c1) * (rho + 16.0 * l) / (2.0 * l * rho);
    Some(TheoremConstants { c1, c2, c3 })
}

/// Evaluates the right-hand side of equation (8): the bound on the running
/// average `(1/mT) Σ_{t<T} E[V_t]`.
///
/// * `initial_gap` is `L⁰ − f*` (the initial aggregated-Lagrangian value
///   minus the lower bound of assumption 2),
/// * `eps_max` is `max_i ε_i`,
/// * `num_clients` is `m` and `rounds` is `T`.
pub fn theorem1_bound(
    constants: &TheoremConstants,
    initial_gap: f64,
    eps_max: f64,
    lipschitz: f64,
    num_clients: usize,
    rounds: usize,
) -> f64 {
    assert!(rounds > 0, "the bound is over T ≥ 1 rounds");
    let m = num_clients as f64;
    let t = rounds as f64;
    (constants.c2 / constants.c1) * (initial_gap + m / (2.0 * lipschitz) * eps_max) / (m * t)
        + constants.c3 * eps_max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_rho_is_golden_ratio_like_multiple_of_l() {
        assert!((min_rho(1.0) - 3.2360679).abs() < 1e-6);
        assert!((min_rho(2.5) - 2.5 * 3.2360679).abs() < 1e-5);
    }

    #[test]
    fn constants_exist_exactly_above_the_threshold() {
        let l = 1.0;
        assert!(theorem1_constants(min_rho(l) * 0.999, l, 0.1).is_none());
        let c = theorem1_constants(min_rho(l) * 1.001, l, 0.1).unwrap();
        assert!(c.c1 > 0.0 && c.c2 > 0.0 && c.c3 > 0.0);
    }

    #[test]
    fn constants_reject_invalid_participation_probability() {
        assert!(theorem1_constants(10.0, 1.0, 0.0).is_none());
        assert!(theorem1_constants(10.0, 1.0, 1.5).is_none());
        assert!(theorem1_constants(10.0, 1.0, 1.0).is_some());
    }

    #[test]
    fn larger_participation_probability_improves_c1_only() {
        let a = theorem1_constants(10.0, 1.0, 0.1).unwrap();
        let b = theorem1_constants(10.0, 1.0, 0.5).unwrap();
        assert!(b.c1 > a.c1);
        assert_eq!(a.c2, b.c2);
        assert!(b.c3 < a.c3, "a larger c1 shrinks the c2/c1 term inside c3");
    }

    #[test]
    fn bound_decays_like_one_over_t_plus_floor() {
        let c = theorem1_constants(10.0, 1.0, 0.1).unwrap();
        let eps = 1e-3;
        let b10 = theorem1_bound(&c, 50.0, eps, 1.0, 100, 10);
        let b100 = theorem1_bound(&c, 50.0, eps, 1.0, 100, 100);
        let b_inf_floor = c.c3 * eps;
        assert!(b100 < b10);
        assert!(b100 > b_inf_floor, "the ε_max floor is never crossed");
        // With exact local solves (ε = 0) the bound vanishes as T → ∞.
        let exact = theorem1_bound(&c, 50.0, 0.0, 1.0, 100, 1_000_000);
        assert!(exact < 1e-3);
    }

    #[test]
    fn table1_fedadmm_beats_fedavg_and_scaffold_at_high_accuracy() {
        // As ε → 0 the 1/ε² terms of FedAvg and SCAFFOLD dominate FedADMM's
        // (m/S)/ε, which is the paper's headline theoretical comparison.
        let p = ComplexityParams::paper_scale(1e-4);
        let admm = round_complexity(Method::FedAdmm, &p).unwrap();
        let avg = round_complexity(Method::FedAvg, &p).unwrap();
        let scaffold = round_complexity(Method::Scaffold, &p).unwrap();
        assert!(admm < avg);
        assert!(admm < scaffold);
    }

    #[test]
    fn fedprox_requires_enough_active_clients() {
        let mut p = ComplexityParams::paper_scale(1e-2);
        p.dissimilarity = 50.0; // B² = 2500 > S = 100.
        assert_eq!(round_complexity(Method::FedProx, &p), None);
        p.dissimilarity = 5.0; // B² = 25 < 100.
        assert!(round_complexity(Method::FedProx, &p).is_some());
    }

    #[test]
    fn fedpd_requires_full_participation() {
        let p = ComplexityParams::paper_scale(1e-2);
        assert_eq!(round_complexity(Method::FedPd, &p), None);
        let full = ComplexityParams {
            active_clients: 1000,
            ..p
        };
        assert_eq!(round_complexity(Method::FedPd, &full), Some(100.0));
    }

    #[test]
    fn fedadmm_complexity_is_independent_of_dissimilarity() {
        let mut p = ComplexityParams::paper_scale(1e-2);
        let base = round_complexity(Method::FedAdmm, &p).unwrap();
        p.dissimilarity = f64::INFINITY;
        p.gradient_bound = f64::INFINITY;
        assert_eq!(round_complexity(Method::FedAdmm, &p), Some(base));
        // FedAvg's bound blows up instead.
        assert!(round_complexity(Method::FedAvg, &p).unwrap().is_infinite());
    }

    #[test]
    fn table1_has_one_row_per_method() {
        let rows = table1(&ComplexityParams::paper_scale(1e-2));
        assert_eq!(rows.len(), 5);
        let names: Vec<&str> = rows.iter().map(|(m, _)| m.name()).collect();
        assert_eq!(names, ["FedAvg", "FedProx", "SCAFFOLD", "FedPD", "FedADMM"]);
    }

    #[test]
    fn fedadmm_advantage_grows_with_accuracy() {
        // The ratio rounds(FedAvg)/rounds(FedADMM) must grow as ε shrinks.
        let loose = ComplexityParams::paper_scale(1e-1);
        let tight = ComplexityParams::paper_scale(1e-3);
        let ratio = |p: &ComplexityParams| {
            round_complexity(Method::FedAvg, p).unwrap()
                / round_complexity(Method::FedAdmm, p).unwrap()
        };
        assert!(ratio(&tight) > ratio(&loose));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_epsilon_is_rejected() {
        round_complexity(Method::FedAdmm, &ComplexityParams::paper_scale(0.0));
    }
}
