//! The legacy asynchronous simulation API — now a thin wrapper.
//!
//! [`AsyncSimulation`] predates the unified [`engine`](crate::engine)
//! subsystem; it survives as a deprecated facade over
//! [`RoundEngine`](crate::engine::RoundEngine) +
//! [`BufferedAsync`](crate::engine::BufferedAsync) (buffer size 1: every
//! arriving update is applied immediately, staleness-weighted) so existing
//! call sites keep compiling. New code should construct the engine
//! directly; the deadline-driven middle ground between synchronous rounds
//! and this fully asynchronous schedule is
//! [`SemiAsync`](crate::engine::SemiAsync).
//!
//! Section II of the paper contrasts FedADMM with *asynchronous ADMM*
//! methods, whose bounded-delay assumption ("each user needs to be active
//! at least once every some number of rounds") it argues "may never be
//! satisfied in FL settings". This schedule is the substrate to study that
//! trade-off empirically; see the module docs of
//! [`engine::buffered`](crate::engine::buffered).

use crate::algorithms::Algorithm;
use crate::client::ClientState;
use crate::config::FedConfig;
use crate::engine::{BufferedAsync, RoundEngine};
use crate::metrics::RunHistory;
use crate::param::ParamVector;
use fedadmm_clientstore::StoreConfig;
use fedadmm_data::partition::Partition;
use fedadmm_data::Dataset;
use fedadmm_tensor::{TensorError, TensorResult};

pub use crate::engine::{AsyncConfig, AsyncRecord, StalenessWeight};

/// An asynchronous federated training run in progress (legacy API).
#[deprecated(
    since = "0.2.0",
    note = "use `engine::RoundEngine` with the `engine::BufferedAsync` scheduler"
)]
pub struct AsyncSimulation<A: Algorithm> {
    engine: RoundEngine<A, BufferedAsync>,
}

#[allow(deprecated)]
impl<A: Algorithm> AsyncSimulation<A> {
    /// Creates an asynchronous simulation.
    ///
    /// `config` supplies the model, learning rate, batch size and maximum
    /// local epoch count exactly as for the synchronous engine;
    /// `async_config` supplies the device pool and the staleness policy.
    pub fn new(
        config: FedConfig,
        async_config: AsyncConfig,
        train: Dataset,
        test: Dataset,
        partition: Partition,
        algorithm: A,
    ) -> TensorResult<Self> {
        let scheduler = BufferedAsync::new(async_config.with_aggregate_after(1));
        // The legacy API always stored client state densely; pin that choice
        // explicitly so the wrapper stays byte-identical as backends evolve.
        Ok(AsyncSimulation {
            engine: RoundEngine::new_with_store(
                config,
                train,
                test,
                partition,
                algorithm,
                scheduler,
                &StoreConfig::InMemory,
            )?,
        })
    }

    /// The current virtual time.
    pub fn now(&self) -> f64 {
        self.engine.now()
    }

    /// Number of updates applied so far.
    pub fn updates_applied(&self) -> usize {
        self.engine.scheduler().updates_applied()
    }

    /// The current global model.
    pub fn global_model(&self) -> &ParamVector {
        self.engine.global_model()
    }

    /// The per-update records collected so far.
    pub fn records(&self) -> &[AsyncRecord] {
        self.engine.events()
    }

    /// Immutable access to the client states.
    pub fn clients(&self) -> &[ClientState] {
        self.engine.clients()
    }

    /// Evaluates the global model on the test set: `(loss, accuracy)`.
    pub fn evaluate_global(&self) -> TensorResult<(f32, f32)> {
        self.engine.evaluate_global()
    }

    /// Observed staleness distribution of applied updates: `(mean, max)`.
    pub fn staleness_stats(&self) -> (f64, usize) {
        self.engine.staleness_stats()
    }

    /// Advances the simulation by one arriving update and returns its
    /// record.
    ///
    /// Returns an error if no client is in flight (which can only happen
    /// for an empty population).
    pub fn step(&mut self) -> TensorResult<AsyncRecord> {
        let report = self.engine.step()?;
        report.events.into_iter().next_back().ok_or_else(|| {
            TensorError::InvalidArgument("scheduler tick produced no event".to_string())
        })
    }

    /// Runs until `updates` updates have been *applied* (dropped updates do
    /// not count) and returns all records produced.
    pub fn run_updates(&mut self, updates: usize) -> TensorResult<Vec<AsyncRecord>> {
        let target = self.updates_applied() + updates;
        let mut produced = Vec::new();
        // Guard against policies that drop everything: cap total events.
        let max_events = updates.saturating_mul(20).max(64);
        let mut events = 0usize;
        while self.updates_applied() < target && events < max_events {
            produced.push(self.step()?);
            events += 1;
        }
        Ok(produced)
    }

    /// Runs until virtual time reaches `deadline` and returns the records.
    pub fn run_until_time(&mut self, deadline: f64) -> TensorResult<Vec<AsyncRecord>> {
        let mut produced = Vec::new();
        while self
            .engine
            .scheduler()
            .next_arrival()
            .map(|t| t <= deadline)
            .unwrap_or(false)
        {
            produced.push(self.step()?);
        }
        Ok(produced)
    }

    /// The evaluation-point history of the run (one record per evaluation
    /// point), so asynchronous runs can be compared against synchronous
    /// histories with the existing reporting utilities.
    pub fn to_history(&self) -> RunHistory {
        self.engine.history().clone()
    }

    /// The unified engine backing this wrapper.
    pub fn into_engine(self) -> RoundEngine<A, BufferedAsync> {
        self.engine
    }
}

#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FedAdmm, FedAvg, ServerStepSize};
    use crate::config::{DataDistribution, Participation};
    use fedadmm_data::batching::BatchSize;
    use fedadmm_data::synthetic::SyntheticDataset;
    use fedadmm_nn::models::ModelSpec;

    fn small_config(num_clients: usize, seed: u64) -> FedConfig {
        FedConfig {
            num_clients,
            participation: Participation::Fraction(0.5),
            local_epochs: 2,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(16),
            local_learning_rate: 0.1,
            model: ModelSpec::Logistic {
                input_dim: 784,
                num_classes: 10,
            },
            seed,
            eval_subset: usize::MAX,
        }
    }

    fn make_async<A: Algorithm>(
        algorithm: A,
        num_clients: usize,
        async_config: AsyncConfig,
        seed: u64,
    ) -> AsyncSimulation<A> {
        let config = small_config(num_clients, seed);
        let (train, test) = SyntheticDataset::Mnist.generate(num_clients * 20, 50, seed);
        let partition = DataDistribution::Iid.partition(&train, num_clients, seed);
        AsyncSimulation::new(config, async_config, train, test, partition, algorithm).unwrap()
    }

    #[test]
    fn staleness_weights() {
        assert_eq!(StalenessWeight::Constant.weight(100), 1.0);
        let poly = StalenessWeight::Polynomial { exponent: 1.0 };
        assert_eq!(poly.weight(0), 1.0);
        assert!((poly.weight(1) - 0.5).abs() < 1e-6);
        assert!(poly.weight(9) < poly.weight(1));
        let bounded = StalenessWeight::BoundedDelay { max_staleness: 2 };
        assert_eq!(bounded.weight(2), 1.0);
        assert_eq!(bounded.weight(3), 0.0);
    }

    #[test]
    fn construction_validates_inputs() {
        let config = small_config(4, 0);
        let (train, test) = SyntheticDataset::Mnist.generate(80, 20, 0);
        let partition = DataDistribution::Iid.partition(&train, 4, 0);
        // Wrong seconds_per_epoch length.
        let bad = AsyncConfig::homogeneous(3, 2, 1.0);
        assert!(AsyncSimulation::new(
            config,
            bad,
            train.clone(),
            test.clone(),
            partition.clone(),
            FedAvg::new()
        )
        .is_err());
        // Zero concurrency.
        let mut zero = AsyncConfig::homogeneous(4, 2, 1.0);
        zero.max_concurrency = 0;
        assert!(AsyncSimulation::new(
            small_config(4, 0),
            zero,
            train,
            test,
            partition,
            FedAvg::new()
        )
        .is_err());
    }

    #[test]
    fn events_arrive_in_nondecreasing_time() {
        let cfg = AsyncConfig::two_tier(6, 3, 1.0, 0.5, 4.0, 7);
        let mut sim = make_async(FedAvg::new(), 6, cfg, 7);
        let records = sim.run_updates(12).unwrap();
        assert!(!records.is_empty());
        for pair in records.windows(2) {
            assert!(pair[1].sim_time >= pair[0].sim_time);
        }
    }

    #[test]
    fn homogeneous_pool_has_low_staleness() {
        // With identical devices and unit concurrency, updates are applied in
        // dispatch order and staleness stays small.
        let cfg = AsyncConfig::homogeneous(4, 1, 1.0);
        let mut sim = make_async(FedAvg::new(), 4, cfg, 1);
        sim.run_updates(8).unwrap();
        let (mean, max) = sim.staleness_stats();
        assert_eq!(max, 0);
        assert_eq!(mean, 0.0);
    }

    #[test]
    fn concurrent_pool_produces_stale_updates() {
        // With many concurrent clients every snapshot but the first is taken
        // before the preceding updates are applied, so staleness > 0 appears.
        let cfg = AsyncConfig::homogeneous(8, 4, 1.0).with_staleness(StalenessWeight::Constant);
        let mut sim = make_async(FedAvg::new(), 8, cfg, 2);
        sim.run_updates(12).unwrap();
        let (_, max) = sim.staleness_stats();
        assert!(max > 0, "expected some staleness with 4 concurrent clients");
    }

    #[test]
    fn bounded_delay_drops_stale_updates() {
        let cfg = AsyncConfig::two_tier(8, 4, 1.0, 0.5, 10.0, 3)
            .with_staleness(StalenessWeight::BoundedDelay { max_staleness: 0 });
        let mut sim = make_async(FedAvg::new(), 8, cfg, 3);
        // Run by events rather than applied updates to observe drops.
        for _ in 0..20 {
            sim.step().unwrap();
        }
        let dropped = sim.records().iter().filter(|r| r.weight == 0.0).count();
        assert!(
            dropped > 0,
            "the straggler tier should produce dropped (stale) updates"
        );
        // Applied updates still counted correctly.
        let applied = sim.records().iter().filter(|r| r.weight > 0.0).count();
        assert_eq!(applied, sim.updates_applied());
    }

    #[test]
    fn async_fedadmm_improves_accuracy() {
        let cfg = AsyncConfig {
            max_concurrency: 3,
            seconds_per_epoch: vec![1.0, 1.0, 2.0, 2.0, 4.0, 4.0],
            staleness: StalenessWeight::Polynomial { exponent: 0.5 },
            eval_every: 5,
            aggregate_after: 1,
        };
        let mut sim = make_async(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 6, cfg, 4);
        let (_, acc0) = sim.evaluate_global().unwrap();
        sim.run_updates(40).unwrap();
        let (_, acc1) = sim.evaluate_global().unwrap();
        assert!(
            acc1 > acc0 + 0.1,
            "async FedADMM only moved accuracy {acc0} → {acc1}"
        );
        // The history conversion exposes the evaluation points.
        let history = sim.to_history();
        assert!(!history.is_empty());
        assert_eq!(history.algorithm, "FedADMM");
    }

    #[test]
    fn run_until_time_respects_the_deadline() {
        let cfg = AsyncConfig::homogeneous(4, 2, 1.5);
        let mut sim = make_async(FedAvg::new(), 4, cfg, 5);
        let records = sim.run_until_time(10.0).unwrap();
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.sim_time <= 10.0));
        assert!(sim.now() <= 10.0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let cfg = AsyncConfig::two_tier(6, 3, 1.0, 0.3, 3.0, 11);
        let mut a = make_async(FedAvg::new(), 6, cfg.clone(), 11);
        let mut b = make_async(FedAvg::new(), 6, cfg, 11);
        a.run_updates(10).unwrap();
        b.run_updates(10).unwrap();
        assert_eq!(a.global_model(), b.global_model());
        assert_eq!(a.updates_applied(), b.updates_applied());
    }
}
