//! Event-driven asynchronous federated simulation.
//!
//! Section II of the paper contrasts FedADMM with *asynchronous ADMM*
//! methods, whose bounded-delay assumption ("each user needs to be active at
//! least once every some number of rounds") it argues "may never be
//! satisfied in FL settings". This module provides the substrate to study
//! that trade-off empirically: instead of the synchronous rounds of
//! [`crate::simulation::Simulation`] — where the server waits for every
//! selected client before aggregating — the [`AsyncSimulation`] applies each
//! client's update the moment it arrives, weighted down by its *staleness*
//! (how many server updates happened since the client downloaded its model
//! snapshot).
//!
//! The simulation is event-driven over virtual time:
//!
//! 1. `max_concurrency` clients are dispatched with the current model and a
//!    completion time `now + epochs · seconds_per_epoch[i]`;
//! 2. the earliest completion is popped, its message is scaled by the
//!    staleness weight and applied through the wrapped [`Algorithm`]'s
//!    `server_update` (with a single-message batch);
//! 3. a new client is dispatched immediately, keeping the device pool busy.
//!
//! Because any [`Algorithm`] can be wrapped, the harness can compare
//! synchronous FedADMM against an asynchronous, staleness-damped FedADMM —
//! the "future work" direction the related-work discussion points at —
//! as well as asynchronous FedAvg.

use crate::algorithms::Algorithm;
use crate::client::ClientState;
use crate::config::FedConfig;
use crate::metrics::RunHistory;
use crate::param::ParamVector;
use crate::trainer::{evaluate, LocalEnv};
use fedadmm_data::partition::Partition;
use fedadmm_data::Dataset;
use fedadmm_tensor::{TensorError, TensorResult};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How an update's weight decays with its staleness τ (the number of server
/// updates applied since the client downloaded its model snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StalenessWeight {
    /// No damping: every update is applied at full weight (vanilla
    /// asynchronous aggregation).
    Constant,
    /// Polynomial damping `s(τ) = (1 + τ)^{-a}` (the common choice in
    /// asynchronous FL; `a = 0.5` is a typical value).
    Polynomial {
        /// Damping exponent `a ≥ 0`.
        exponent: f32,
    },
    /// Hard cutoff: updates staler than the bound are dropped entirely —
    /// the *bounded delay* assumption of asynchronous ADMM made literal.
    BoundedDelay {
        /// Maximum tolerated staleness.
        max_staleness: usize,
    },
}

impl StalenessWeight {
    /// The multiplicative weight applied to an update of staleness `tau`.
    pub fn weight(&self, tau: usize) -> f32 {
        match *self {
            StalenessWeight::Constant => 1.0,
            StalenessWeight::Polynomial { exponent } => {
                (1.0 + tau as f32).powf(-exponent.max(0.0))
            }
            StalenessWeight::BoundedDelay { max_staleness } => {
                if tau > max_staleness {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }
}

/// Configuration of an asynchronous run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsyncConfig {
    /// How many clients compute concurrently (the size of the device pool
    /// the server keeps busy). Plays the role of `|S_t|` in the synchronous
    /// protocol.
    pub max_concurrency: usize,
    /// Per-client virtual seconds needed to run *one* local epoch. Length
    /// must equal the client population; heterogeneous values make fast
    /// devices contribute many low-staleness updates while stragglers
    /// contribute few, stale ones.
    pub seconds_per_epoch: Vec<f64>,
    /// Staleness weighting applied to arriving updates.
    pub staleness: StalenessWeight,
    /// Evaluate the global model every this many applied updates (evaluation
    /// is the expensive part of the simulation).
    pub eval_every: usize,
}

impl AsyncConfig {
    /// A homogeneous pool: every client needs `seconds_per_epoch` virtual
    /// seconds per epoch.
    pub fn homogeneous(num_clients: usize, concurrency: usize, seconds_per_epoch: f64) -> Self {
        AsyncConfig {
            max_concurrency: concurrency,
            seconds_per_epoch: vec![seconds_per_epoch; num_clients],
            staleness: StalenessWeight::Polynomial { exponent: 0.5 },
            eval_every: 10,
        }
    }

    /// A two-tier pool: a `slow_fraction` of clients is `slowdown`× slower
    /// than the rest (a simple straggler model).
    pub fn two_tier(
        num_clients: usize,
        concurrency: usize,
        base_seconds: f64,
        slow_fraction: f64,
        slowdown: f64,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let seconds = (0..num_clients)
            .map(|_| {
                if rng.gen_bool(slow_fraction.clamp(0.0, 1.0)) {
                    base_seconds * slowdown
                } else {
                    base_seconds
                }
            })
            .collect();
        AsyncConfig {
            max_concurrency: concurrency,
            seconds_per_epoch: seconds,
            staleness: StalenessWeight::Polynomial { exponent: 0.5 },
            eval_every: 10,
        }
    }

    /// Sets the staleness weighting.
    pub fn with_staleness(mut self, staleness: StalenessWeight) -> Self {
        self.staleness = staleness;
        self
    }
}

/// One applied (or dropped) asynchronous update.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsyncRecord {
    /// Sequence number of the event (0-based, in application order).
    pub event: usize,
    /// Virtual time at which the update arrived at the server.
    pub sim_time: f64,
    /// The client that produced the update.
    pub client_id: usize,
    /// Staleness τ of the update (server updates since its snapshot).
    pub staleness: usize,
    /// The weight the update was applied with (0 means it was dropped).
    pub weight: f32,
    /// Test accuracy after applying the update (`None` between evaluation
    /// points, to keep the simulation affordable).
    pub test_accuracy: Option<f32>,
    /// Cumulative floats uploaded to the server so far.
    pub cumulative_upload_floats: usize,
}

/// A client currently computing, keyed by its completion time.
struct InFlight {
    finish_time: f64,
    client_id: usize,
    /// Server version (number of applied updates) when the snapshot was taken.
    snapshot_version: usize,
    /// The model snapshot the client downloaded.
    snapshot: ParamVector,
    /// Local epochs this dispatch will run.
    epochs: usize,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.finish_time == other.finish_time && self.client_id == other.client_id
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest finish pops first.
        other
            .finish_time
            .partial_cmp(&self.finish_time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.client_id.cmp(&self.client_id))
    }
}

/// An asynchronous federated training run in progress.
pub struct AsyncSimulation<A: Algorithm> {
    config: FedConfig,
    async_config: AsyncConfig,
    train: Dataset,
    test: Dataset,
    clients: Vec<ClientState>,
    global: ParamVector,
    algorithm: A,
    in_flight: BinaryHeap<InFlight>,
    busy: Vec<bool>,
    rng: SmallRng,
    /// Number of updates applied by the server so far (the "version").
    version: usize,
    now: f64,
    records: Vec<AsyncRecord>,
    cumulative_upload: usize,
    dispatched: usize,
}

impl<A: Algorithm> AsyncSimulation<A> {
    /// Creates an asynchronous simulation.
    ///
    /// `config` supplies the model, learning rate, batch size and maximum
    /// local epoch count exactly as for the synchronous engine; `async_config`
    /// supplies the device pool and the staleness policy.
    pub fn new(
        config: FedConfig,
        async_config: AsyncConfig,
        train: Dataset,
        test: Dataset,
        partition: Partition,
        mut algorithm: A,
    ) -> TensorResult<Self> {
        if partition.num_clients() != config.num_clients {
            return Err(TensorError::InvalidArgument(format!(
                "partition has {} clients but the configuration expects {}",
                partition.num_clients(),
                config.num_clients
            )));
        }
        if async_config.seconds_per_epoch.len() != config.num_clients {
            return Err(TensorError::InvalidArgument(format!(
                "seconds_per_epoch has {} entries but there are {} clients",
                async_config.seconds_per_epoch.len(),
                config.num_clients
            )));
        }
        if async_config.max_concurrency == 0 {
            return Err(TensorError::InvalidArgument(
                "max_concurrency must be at least 1".to_string(),
            ));
        }
        let mut init_rng = SmallRng::seed_from_u64(config.seed);
        let net = config.model.build(&mut init_rng);
        let global = ParamVector::from_vec(net.params_flat());
        let clients: Vec<ClientState> = partition
            .iter()
            .enumerate()
            .map(|(i, indices)| ClientState::new(i, indices.clone(), &global))
            .collect();
        algorithm.init(global.len(), config.num_clients);
        let rng = SmallRng::seed_from_u64(config.seed ^ 0xA517_C0DE);
        let busy = vec![false; config.num_clients];
        let mut sim = AsyncSimulation {
            config,
            async_config,
            train,
            test,
            clients,
            global,
            algorithm,
            in_flight: BinaryHeap::new(),
            busy,
            rng,
            version: 0,
            now: 0.0,
            records: Vec::new(),
            cumulative_upload: 0,
            dispatched: 0,
        };
        sim.fill_pool();
        Ok(sim)
    }

    /// The current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of updates applied so far.
    pub fn updates_applied(&self) -> usize {
        self.version
    }

    /// The current global model.
    pub fn global_model(&self) -> &ParamVector {
        &self.global
    }

    /// The per-update records collected so far.
    pub fn records(&self) -> &[AsyncRecord] {
        &self.records
    }

    /// Immutable access to the client states.
    pub fn clients(&self) -> &[ClientState] {
        &self.clients
    }

    /// Evaluates the global model on the test set: `(loss, accuracy)`.
    pub fn evaluate_global(&self) -> TensorResult<(f32, f32)> {
        evaluate(self.config.model, self.global.as_slice(), &self.test, self.config.eval_subset)
    }

    /// Observed staleness distribution of applied updates: `(mean, max)`.
    pub fn staleness_stats(&self) -> (f64, usize) {
        if self.records.is_empty() {
            return (0.0, 0);
        }
        let sum: usize = self.records.iter().map(|r| r.staleness).sum();
        let max = self.records.iter().map(|r| r.staleness).max().unwrap_or(0);
        (sum as f64 / self.records.len() as f64, max)
    }

    fn idle_clients(&self) -> Vec<usize> {
        self.busy
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| if b { None } else { Some(i) })
            .collect()
    }

    /// Dispatches idle clients until the pool holds `max_concurrency` jobs.
    fn fill_pool(&mut self) {
        while self.in_flight.len() < self.async_config.max_concurrency {
            let idle = self.idle_clients();
            if idle.is_empty() {
                break;
            }
            let &client_id = idle.choose(&mut self.rng).expect("idle list is non-empty");
            let epochs = if self.config.system_heterogeneity && self.config.local_epochs > 1 {
                self.rng.gen_range(1..=self.config.local_epochs)
            } else {
                self.config.local_epochs
            };
            let duration =
                self.async_config.seconds_per_epoch[client_id] * epochs.max(1) as f64;
            self.busy[client_id] = true;
            self.in_flight.push(InFlight {
                finish_time: self.now + duration,
                client_id,
                snapshot_version: self.version,
                snapshot: self.global.clone(),
                epochs,
            });
            self.dispatched += 1;
        }
    }

    /// Advances the simulation by one arriving update and returns its record.
    ///
    /// Returns an error if no client is in flight (which can only happen for
    /// an empty population).
    pub fn step(&mut self) -> TensorResult<AsyncRecord> {
        let job = self.in_flight.pop().ok_or_else(|| {
            TensorError::InvalidArgument("no client is in flight".to_string())
        })?;
        self.now = job.finish_time;
        self.busy[job.client_id] = false;

        // Run the client's local update against its (possibly stale) snapshot.
        let seed = self.config.seed
            ^ (self.dispatched as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (job.client_id as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let indices = self.clients[job.client_id].indices.clone();
        let env = LocalEnv {
            dataset: &self.train,
            indices: &indices,
            model: self.config.model,
            epochs: job.epochs,
            batch_size: self.config.batch_size,
            learning_rate: self.config.local_learning_rate,
            seed,
        };
        let message = self
            .algorithm
            .client_update(&mut self.clients[job.client_id], &job.snapshot, &env)?;

        let staleness = self.version - job.snapshot_version;
        let weight = self.async_config.staleness.weight(staleness);
        let upload = message.upload_floats();
        self.cumulative_upload += upload;

        if weight > 0.0 {
            // Scale the payload by the staleness weight and apply it as a
            // single-message "round" of the wrapped algorithm.
            let mut scaled = message;
            for p in scaled.payload.iter_mut() {
                p.scale(weight);
            }
            self.algorithm.server_update(
                &mut self.global,
                std::slice::from_ref(&scaled),
                self.config.num_clients,
                &mut self.rng,
            );
            self.version += 1;
        }

        let event = self.records.len();
        let test_accuracy = if weight > 0.0 && self.version % self.async_config.eval_every == 0 {
            Some(self.evaluate_global()?.1)
        } else {
            None
        };
        let record = AsyncRecord {
            event,
            sim_time: self.now,
            client_id: job.client_id,
            staleness,
            weight,
            test_accuracy,
            cumulative_upload_floats: self.cumulative_upload,
        };
        self.records.push(record.clone());
        self.fill_pool();
        Ok(record)
    }

    /// Runs until `updates` updates have been *applied* (dropped updates do
    /// not count) and returns all records produced.
    pub fn run_updates(&mut self, updates: usize) -> TensorResult<Vec<AsyncRecord>> {
        let target = self.version + updates;
        let mut produced = Vec::new();
        // Guard against policies that drop everything: cap total events.
        let max_events = updates.saturating_mul(20).max(64);
        let mut events = 0usize;
        while self.version < target && events < max_events {
            produced.push(self.step()?);
            events += 1;
        }
        Ok(produced)
    }

    /// Runs until virtual time reaches `deadline` and returns the records.
    pub fn run_until_time(&mut self, deadline: f64) -> TensorResult<Vec<AsyncRecord>> {
        let mut produced = Vec::new();
        while self
            .in_flight
            .peek()
            .map(|j| j.finish_time <= deadline)
            .unwrap_or(false)
        {
            produced.push(self.step()?);
        }
        Ok(produced)
    }

    /// Converts the applied-update records into a [`RunHistory`] (one record
    /// per evaluation point), so asynchronous runs can be compared against
    /// synchronous histories with the existing reporting utilities.
    pub fn to_history(&self) -> RunHistory {
        let mut history = RunHistory::new(
            self.algorithm.name(),
            format!("async, {} concurrent", self.async_config.max_concurrency),
        );
        let mut round = 0usize;
        for r in &self.records {
            if let Some(acc) = r.test_accuracy {
                history.push(crate::metrics::RoundRecord {
                    round,
                    test_accuracy: acc,
                    // Loss is not tracked at async evaluation points; record 0
                    // so the history stays JSON-serialisable.
                    test_loss: 0.0,
                    num_selected: 1,
                    upload_floats: 0,
                    cumulative_upload_floats: r.cumulative_upload_floats,
                    total_local_epochs: 0,
                    samples_processed: 0,
                    elapsed_ms: (r.sim_time * 1000.0) as u64,
                });
                round += 1;
            }
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FedAdmm, FedAvg, ServerStepSize};
    use crate::config::{DataDistribution, Participation};
    use fedadmm_data::batching::BatchSize;
    use fedadmm_data::synthetic::SyntheticDataset;
    use fedadmm_nn::models::ModelSpec;

    fn small_config(num_clients: usize, seed: u64) -> FedConfig {
        FedConfig {
            num_clients,
            participation: Participation::Fraction(0.5),
            local_epochs: 2,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(16),
            local_learning_rate: 0.1,
            model: ModelSpec::Logistic { input_dim: 784, num_classes: 10 },
            seed,
            eval_subset: usize::MAX,
        }
    }

    fn make_async<A: Algorithm>(
        algorithm: A,
        num_clients: usize,
        async_config: AsyncConfig,
        seed: u64,
    ) -> AsyncSimulation<A> {
        let config = small_config(num_clients, seed);
        let (train, test) = SyntheticDataset::Mnist.generate(num_clients * 20, 50, seed);
        let partition = DataDistribution::Iid.partition(&train, num_clients, seed);
        AsyncSimulation::new(config, async_config, train, test, partition, algorithm).unwrap()
    }

    #[test]
    fn staleness_weights() {
        assert_eq!(StalenessWeight::Constant.weight(100), 1.0);
        let poly = StalenessWeight::Polynomial { exponent: 1.0 };
        assert_eq!(poly.weight(0), 1.0);
        assert!((poly.weight(1) - 0.5).abs() < 1e-6);
        assert!(poly.weight(9) < poly.weight(1));
        let bounded = StalenessWeight::BoundedDelay { max_staleness: 2 };
        assert_eq!(bounded.weight(2), 1.0);
        assert_eq!(bounded.weight(3), 0.0);
    }

    #[test]
    fn construction_validates_inputs() {
        let config = small_config(4, 0);
        let (train, test) = SyntheticDataset::Mnist.generate(80, 20, 0);
        let partition = DataDistribution::Iid.partition(&train, 4, 0);
        // Wrong seconds_per_epoch length.
        let bad = AsyncConfig::homogeneous(3, 2, 1.0);
        assert!(AsyncSimulation::new(
            config,
            bad,
            train.clone(),
            test.clone(),
            partition.clone(),
            FedAvg::new()
        )
        .is_err());
        // Zero concurrency.
        let mut zero = AsyncConfig::homogeneous(4, 2, 1.0);
        zero.max_concurrency = 0;
        assert!(
            AsyncSimulation::new(small_config(4, 0), zero, train, test, partition, FedAvg::new())
                .is_err()
        );
    }

    #[test]
    fn events_arrive_in_nondecreasing_time() {
        let cfg = AsyncConfig::two_tier(6, 3, 1.0, 0.5, 4.0, 7);
        let mut sim = make_async(FedAvg::new(), 6, cfg, 7);
        let records = sim.run_updates(12).unwrap();
        assert!(!records.is_empty());
        for pair in records.windows(2) {
            assert!(pair[1].sim_time >= pair[0].sim_time);
        }
    }

    #[test]
    fn homogeneous_pool_has_low_staleness() {
        // With identical devices and unit concurrency, updates are applied in
        // dispatch order and staleness stays small.
        let cfg = AsyncConfig::homogeneous(4, 1, 1.0);
        let mut sim = make_async(FedAvg::new(), 4, cfg, 1);
        sim.run_updates(8).unwrap();
        let (mean, max) = sim.staleness_stats();
        assert_eq!(max, 0);
        assert_eq!(mean, 0.0);
    }

    #[test]
    fn concurrent_pool_produces_stale_updates() {
        // With many concurrent clients every snapshot but the first is taken
        // before the preceding updates are applied, so staleness > 0 appears.
        let cfg = AsyncConfig::homogeneous(8, 4, 1.0)
            .with_staleness(StalenessWeight::Constant);
        let mut sim = make_async(FedAvg::new(), 8, cfg, 2);
        sim.run_updates(12).unwrap();
        let (_, max) = sim.staleness_stats();
        assert!(max > 0, "expected some staleness with 4 concurrent clients");
    }

    #[test]
    fn bounded_delay_drops_stale_updates() {
        let cfg = AsyncConfig::two_tier(8, 4, 1.0, 0.5, 10.0, 3)
            .with_staleness(StalenessWeight::BoundedDelay { max_staleness: 0 });
        let mut sim = make_async(FedAvg::new(), 8, cfg, 3);
        // Run by events rather than applied updates to observe drops.
        for _ in 0..20 {
            sim.step().unwrap();
        }
        let dropped = sim.records().iter().filter(|r| r.weight == 0.0).count();
        assert!(dropped > 0, "the straggler tier should produce dropped (stale) updates");
        // Applied updates still counted correctly.
        let applied = sim.records().iter().filter(|r| r.weight > 0.0).count();
        assert_eq!(applied, sim.updates_applied());
    }

    #[test]
    fn async_fedadmm_improves_accuracy() {
        let cfg = AsyncConfig {
            max_concurrency: 3,
            seconds_per_epoch: vec![1.0, 1.0, 2.0, 2.0, 4.0, 4.0],
            staleness: StalenessWeight::Polynomial { exponent: 0.5 },
            eval_every: 5,
        };
        let mut sim = make_async(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 6, cfg, 4);
        let (_, acc0) = sim.evaluate_global().unwrap();
        sim.run_updates(40).unwrap();
        let (_, acc1) = sim.evaluate_global().unwrap();
        assert!(acc1 > acc0 + 0.1, "async FedADMM only moved accuracy {acc0} → {acc1}");
        // The history conversion exposes the evaluation points.
        let history = sim.to_history();
        assert!(!history.is_empty());
        assert_eq!(history.algorithm, "FedADMM");
    }

    #[test]
    fn run_until_time_respects_the_deadline() {
        let cfg = AsyncConfig::homogeneous(4, 2, 1.5);
        let mut sim = make_async(FedAvg::new(), 4, cfg, 5);
        let records = sim.run_until_time(10.0).unwrap();
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.sim_time <= 10.0));
        assert!(sim.now() <= 10.0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let cfg = AsyncConfig::two_tier(6, 3, 1.0, 0.3, 3.0, 11);
        let mut a = make_async(FedAvg::new(), 6, cfg.clone(), 11);
        let mut b = make_async(FedAvg::new(), 6, cfg, 11);
        a.run_updates(10).unwrap();
        b.run_updates(10).unwrap();
        assert_eq!(a.global_model(), b.global_model());
        assert_eq!(a.updates_applied(), b.updates_applied());
    }
}
