//! Per-client state.
//!
//! [`ClientState`] now lives in `fedadmm-clientstore` next to the storage
//! backends that hold it; this module re-exports it at its historical path,
//! so `fedadmm_core::client::ClientState` keeps working unchanged.

pub use fedadmm_clientstore::state::ClientState;
