//! Convergence diagnostics: the optimality-gap function V_t of the paper.
//!
//! Equation (7) of the paper defines
//!
//! ```text
//! V_t = ‖∇_θ L‖² + Σ_i ( ‖∇_{w_i} L_i‖² + ‖w_i − θ‖² )
//! ```
//!
//! where `L = Σ_i L_i` is the aggregated augmented Lagrangian. `V_t = 0`
//! exactly at stationary points of the consensus problem (2), and Theorem 1
//! bounds its running average. This module computes `V_t` for a simulation
//! state so that experiments can monitor convergence the same way the
//! analysis does — useful both as a debugging aid and for ablation benches
//! that compare how quickly different configurations drive `V_t` down.

use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::{full_gradient, LocalEnv};
use fedadmm_data::batching::BatchSize;
use fedadmm_data::Dataset;
use fedadmm_nn::models::ModelSpec;
use fedadmm_tensor::{vecops, TensorResult};
use serde::{Deserialize, Serialize};

/// The decomposition of the optimality gap V_t (equation 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalityGap {
    /// ‖∇_θ L‖² — how far the global model is from being stationary for the
    /// aggregated augmented Lagrangian. Zero whenever θ equals the mean of
    /// the clients' augmented models (equation 20 of the proof).
    pub grad_theta_sq: f32,
    /// Σ_i ‖∇_{w_i} L_i‖² — how inexactly the local subproblems are solved
    /// (the ε_i of equation 6, summed).
    pub sum_grad_w_sq: f32,
    /// Σ_i ‖w_i − θ‖² — the consensus violation.
    pub sum_consensus_sq: f32,
    /// Number of clients included in the sums.
    pub num_clients: usize,
}

impl OptimalityGap {
    /// The total gap `V_t`.
    pub fn total(&self) -> f32 {
        self.grad_theta_sq + self.sum_grad_w_sq + self.sum_consensus_sq
    }
}

/// Computes the optimality gap V_t for the current primal–dual state.
///
/// `model` and `dataset` are needed because `∇_{w_i} L_i` contains the exact
/// local data gradient `∇f_i(w_i)`; each client's gradient is evaluated over
/// its own index set. This is an O(total samples) computation — intended for
/// diagnostics and ablations, not for the per-round hot path.
pub fn optimality_gap(
    clients: &[ClientState],
    global: &ParamVector,
    rho: f32,
    model: ModelSpec,
    dataset: &Dataset,
) -> TensorResult<OptimalityGap> {
    let d = global.len();
    let theta = global.as_slice();
    let mut grad_theta = vec![0.0f32; d];
    let mut sum_grad_w_sq = 0.0f32;
    let mut sum_consensus_sq = 0.0f32;

    for client in clients {
        let w = client.local_model.as_slice();
        let y = client.dual.as_slice();
        // ∇f_i(w_i): exact local gradient at the client's current model.
        let env = LocalEnv {
            dataset,
            indices: &client.indices,
            model,
            epochs: 1,
            batch_size: BatchSize::Full,
            learning_rate: 0.0,
            seed: 0,
        };
        let (grad_f, _) = full_gradient(&env, w)?;

        let mut grad_w_sq = 0.0f32;
        let mut consensus_sq = 0.0f32;
        for i in 0..d {
            let diff = w[i] - theta[i];
            // ∇_{w_i} L_i = ∇f_i(w_i) + y_i + ρ(w_i − θ)
            let gw = grad_f[i] + y[i] + rho * diff;
            grad_w_sq += gw * gw;
            consensus_sq += diff * diff;
            // ∂L_i/∂θ = −y_i − ρ(w_i − θ)
            grad_theta[i] += -y[i] - rho * diff;
        }
        sum_grad_w_sq += grad_w_sq;
        sum_consensus_sq += consensus_sq;
    }

    Ok(OptimalityGap {
        grad_theta_sq: vecops::norm_sq(&grad_theta),
        sum_grad_w_sq,
        sum_consensus_sq,
        num_clients: clients.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Algorithm, FedAdmm, ServerStepSize};
    use fedadmm_data::synthetic::SyntheticDataset;
    use rand::rngs::mock::StepRng;

    fn fixture(clients: usize, per_client: usize) -> (Dataset, ModelSpec, Vec<Vec<usize>>) {
        let (train, _) = SyntheticDataset::Mnist.generate(clients * per_client, 10, 3);
        let model = ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        };
        let indices = (0..clients)
            .map(|c| (c * per_client..(c + 1) * per_client).collect())
            .collect();
        (train, model, indices)
    }

    #[test]
    fn initial_state_has_zero_theta_gradient_and_consensus_terms() {
        // At initialisation every client holds w_i = θ and y_i = 0, so both
        // the consensus violation and ∇_θ L vanish; only the local data
        // gradients contribute.
        let (train, model, indices) = fixture(3, 30);
        let theta = ParamVector::zeros(model.num_params());
        let clients: Vec<ClientState> = indices
            .iter()
            .enumerate()
            .map(|(i, idx)| ClientState::new(i, idx.clone(), &theta))
            .collect();
        let gap = optimality_gap(&clients, &theta, 0.3, model, &train).unwrap();
        assert_eq!(gap.num_clients, 3);
        assert!(gap.grad_theta_sq < 1e-10);
        assert!(gap.sum_consensus_sq < 1e-10);
        assert!(gap.sum_grad_w_sq > 0.0);
        assert!((gap.total() - gap.sum_grad_w_sq).abs() < 1e-6);
    }

    #[test]
    fn gap_components_are_nonnegative_after_updates() {
        let (train, model, indices) = fixture(3, 30);
        let theta = ParamVector::zeros(model.num_params());
        let mut clients: Vec<ClientState> = indices
            .iter()
            .enumerate()
            .map(|(i, idx)| ClientState::new(i, idx.clone(), &theta))
            .collect();
        let rho = 0.3;
        let algorithm = FedAdmm::new(rho, ServerStepSize::Constant(1.0));
        for (i, client) in clients.iter_mut().enumerate() {
            let env = LocalEnv {
                dataset: &train,
                indices: &indices[i],
                model,
                epochs: 1,
                batch_size: BatchSize::Size(16),
                learning_rate: 0.1,
                seed: i as u64,
            };
            algorithm.client_update(client, &theta, &env).unwrap();
        }
        let gap = optimality_gap(&clients, &theta, rho, model, &train).unwrap();
        assert!(gap.grad_theta_sq >= 0.0);
        assert!(gap.sum_grad_w_sq >= 0.0);
        assert!(gap.sum_consensus_sq > 0.0, "clients moved away from θ");
        assert!(gap.total().is_finite());
    }

    #[test]
    fn full_participation_fedadmm_reduces_the_gap() {
        // Theorem 1 bounds the running average of V_t; a coarse but
        // mechanically checkable consequence is that after several
        // full-participation rounds on an IID task the gap is far below its
        // value at the (untrained, far-from-stationary) initial point.
        let (train, model, indices) = fixture(4, 40);
        let d = model.num_params();
        let theta0 = ParamVector::zeros(d);
        let mut clients: Vec<ClientState> = indices
            .iter()
            .enumerate()
            .map(|(i, idx)| ClientState::new(i, idx.clone(), &theta0))
            .collect();
        let rho = 0.3;
        let mut algorithm = FedAdmm::new(rho, ServerStepSize::Constant(1.0));
        let initial = optimality_gap(&clients, &theta0, rho, model, &train).unwrap();

        let mut theta = theta0.clone();
        let mut rng = StepRng::new(0, 1);
        for round in 0..8 {
            let mut messages = Vec::new();
            for (i, client) in clients.iter_mut().enumerate() {
                let env = LocalEnv {
                    dataset: &train,
                    indices: &indices[i],
                    model,
                    epochs: 2,
                    batch_size: BatchSize::Size(16),
                    learning_rate: 0.1,
                    seed: (round * 10 + i) as u64,
                };
                messages.push(algorithm.client_update(client, &theta, &env).unwrap());
            }
            algorithm.server_update(&mut theta, &messages, clients.len(), &mut rng);
        }
        let final_gap = optimality_gap(&clients, &theta, rho, model, &train).unwrap();
        assert!(
            final_gap.total() < initial.total(),
            "V_t did not decrease: {} -> {}",
            initial.total(),
            final_gap.total()
        );
    }
}
