//! Alternative local solvers for the augmented-Lagrangian subproblem.
//!
//! Algorithm 1 of the paper runs `E_i` epochs of mini-batch SGD "for the
//! sake of simplicity and comparison with baseline methods", but the method
//! itself only requires the *inexactness criterion* of equation (6),
//!
//! ```text
//! ‖∇_w L_i(w_i^{t+1}, y_i^t, θ^t)‖² ≤ ε_i,
//! ```
//!
//! and Section III-A notes that "other updating schemes are also feasible
//! such as gradient descent and quasi-Newton updates like L-BFGS". This
//! module provides those alternatives:
//!
//! * [`AugmentedObjective`] — the local augmented Lagrangian
//!   `L_i(w) = f_i(w) + yᵀ(w − θ) + (ρ/2)‖w − θ‖²` of equation (3) as a
//!   value-and-gradient oracle (set `rho = 0` and `dual = None` to recover
//!   the plain local loss `f_i`);
//! * [`gradient_descent`] — full-batch gradient descent for a fixed number
//!   of steps;
//! * [`solve_to_tolerance`] — gradient descent run *until* criterion (6)
//!   holds (or a step budget is exhausted), returning the achieved
//!   `‖∇L_i‖²`;
//! * [`lbfgs`] — limited-memory BFGS with Armijo backtracking line search.
//!
//! [`LocalSolver`] packages the choices so that algorithms (see
//! [`crate::algorithms::FedAdmmInexact`]) and experiments can switch solver
//! per client — the mechanism by which FedADMM "accommodates system
//! heterogeneity by letting clients decide to perform different amount of
//! work according to their local environments".

use crate::trainer::{full_gradient, LocalEnv};
use fedadmm_tensor::{vecops, TensorResult};
use serde::{Deserialize, Serialize};

/// The local augmented Lagrangian `L_i(w, y_i, θ)` of equation (3) as a
/// value-and-gradient oracle over the flattened parameter vector.
pub struct AugmentedObjective<'a> {
    env: &'a LocalEnv<'a>,
    theta: &'a [f32],
    dual: Option<&'a [f32]>,
    rho: f32,
}

impl<'a> AugmentedObjective<'a> {
    /// Builds the oracle. `dual = None` together with `rho > 0` gives the
    /// FedProx local objective; `dual = None, rho = 0` gives the plain local
    /// loss `f_i` (FedAvg's local objective).
    pub fn new(env: &'a LocalEnv<'a>, theta: &'a [f32], dual: Option<&'a [f32]>, rho: f32) -> Self {
        assert!(rho >= 0.0, "the proximal coefficient ρ cannot be negative");
        if let Some(y) = dual {
            assert_eq!(
                y.len(),
                theta.len(),
                "dual variable and θ must have the same dimension"
            );
        }
        AugmentedObjective {
            env,
            theta,
            dual,
            rho,
        }
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.theta.len()
    }

    /// Evaluates `L_i(w)` and `∇L_i(w)` at `w`.
    ///
    /// The value is `f_i(w) + yᵀ(w − θ) + (ρ/2)‖w − θ‖²` and the gradient is
    /// `∇f_i(w) + y + ρ(w − θ)` — exactly the terms of Algorithm 1, line 17.
    pub fn value_and_grad(&self, w: &[f32]) -> TensorResult<(f32, Vec<f32>)> {
        let (mut grad, loss) = full_gradient(self.env, w)?;
        let mut value = loss;
        if self.rho > 0.0 || self.dual.is_some() {
            let mut quad = 0.0f32;
            let mut lin = 0.0f32;
            for (j, (gj, (&wj, &tj))) in grad
                .iter_mut()
                .zip(w.iter().zip(self.theta.iter()))
                .enumerate()
            {
                let diff = wj - tj;
                if let Some(y) = self.dual {
                    *gj += y[j];
                    lin += y[j] * diff;
                }
                *gj += self.rho * diff;
                quad += diff * diff;
            }
            value += lin + 0.5 * self.rho * quad;
        }
        Ok((value, grad))
    }

    /// Evaluates the squared gradient norm `‖∇L_i(w)‖²` — the left-hand side
    /// of criterion (6).
    pub fn grad_norm_sq(&self, w: &[f32]) -> TensorResult<f32> {
        let (_, g) = self.value_and_grad(w)?;
        Ok(vecops::norm_sq(&g))
    }
}

/// Result of an alternative local solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Final iterate `w_i^{t+1}`.
    pub params: Vec<f32>,
    /// Full-gradient evaluations performed (each touches the whole local
    /// dataset once — the computation-accounting analogue of an epoch).
    pub gradient_evals: usize,
    /// `‖∇L_i‖²` at the final iterate — the achieved inexactness of (6).
    pub final_grad_norm_sq: f32,
    /// `L_i` at the final iterate.
    pub final_value: f32,
}

/// Runs `steps` iterations of full-batch gradient descent
/// `w ← w − lr · ∇L_i(w)` starting from `init`.
pub fn gradient_descent(
    objective: &AugmentedObjective<'_>,
    init: &[f32],
    learning_rate: f32,
    steps: usize,
) -> TensorResult<SolveResult> {
    let mut w = init.to_vec();
    let mut evals = 0usize;
    let mut last_value = 0.0f32;
    let mut last_gns = 0.0f32;
    for _ in 0..steps.max(1) {
        let (value, grad) = objective.value_and_grad(&w)?;
        evals += 1;
        last_value = value;
        last_gns = vecops::norm_sq(&grad);
        vecops::axpy(-learning_rate, &grad, &mut w);
    }
    // Report the gradient norm at the *returned* iterate, one extra oracle
    // call, so the caller sees the actual achieved inexactness.
    let (value, grad) = objective.value_and_grad(&w)?;
    evals += 1;
    let _ = (last_value, last_gns);
    Ok(SolveResult {
        params: w,
        gradient_evals: evals,
        final_grad_norm_sq: vecops::norm_sq(&grad),
        final_value: value,
    })
}

/// Gradient descent with Armijo backtracking, run until the paper's
/// inexactness criterion (6) holds: `‖∇L_i(w)‖² ≤ epsilon`, or until
/// `max_steps` full-gradient evaluations have been spent.
///
/// Because the augmented Lagrangian is strongly convex in `w` whenever
/// `ρ > L` (Section III-A), backtracking gradient descent reaches any
/// `ε_i > 0`; `learning_rate` is only the *initial* trial step of each
/// iteration, so a generous value is safe — the line search shrinks it until
/// the Armijo sufficient-decrease condition holds. The step budget guards
/// against pathological objectives.
pub fn solve_to_tolerance(
    objective: &AugmentedObjective<'_>,
    init: &[f32],
    learning_rate: f32,
    epsilon: f32,
    max_steps: usize,
) -> TensorResult<SolveResult> {
    assert!(
        epsilon >= 0.0,
        "the inexactness level ε_i cannot be negative"
    );
    assert!(learning_rate > 0.0, "the trial step size must be positive");
    let armijo = 1e-4f32;
    let mut w = init.to_vec();
    let (mut value, mut grad) = objective.value_and_grad(&w)?;
    let mut evals = 1usize;
    let mut trial_step = learning_rate;
    loop {
        let gns = vecops::norm_sq(&grad);
        if gns <= epsilon || evals >= max_steps {
            return Ok(SolveResult {
                params: w,
                gradient_evals: evals,
                final_grad_norm_sq: gns,
                final_value: value,
            });
        }
        // Backtracking line search along the steepest-descent direction,
        // starting from the most recent accepted step (doubled) so the
        // search does not re-shrink from scratch every iteration.
        let mut step = learning_rate.min(trial_step);
        let mut advanced = false;
        for _ in 0..30 {
            let mut candidate = w.clone();
            vecops::axpy(-step, &grad, &mut candidate);
            let (cand_value, cand_grad) = objective.value_and_grad(&candidate)?;
            evals += 1;
            if cand_value <= value - armijo * step * gns {
                w = candidate;
                value = cand_value;
                grad = cand_grad;
                trial_step = step * 2.0;
                advanced = true;
                break;
            }
            step *= 0.5;
            if evals >= max_steps {
                break;
            }
        }
        if !advanced {
            // Numerically flat (or budget exhausted mid-search): stop and
            // report what was achieved.
            return Ok(SolveResult {
                params: w,
                gradient_evals: evals,
                final_grad_norm_sq: vecops::norm_sq(&grad),
                final_value: value,
            });
        }
    }
}

/// Limited-memory BFGS with Armijo backtracking.
///
/// Stops when `‖∇L_i(w)‖² ≤ epsilon` or after `max_iters` iterations.
/// `memory` is the number of curvature pairs kept for the two-loop
/// recursion (10 is a standard choice).
pub fn lbfgs(
    objective: &AugmentedObjective<'_>,
    init: &[f32],
    memory: usize,
    max_iters: usize,
    epsilon: f32,
) -> TensorResult<SolveResult> {
    let m = memory.max(1);
    let mut w = init.to_vec();
    let (mut value, mut grad) = objective.value_and_grad(&w)?;
    let mut evals = 1usize;
    // Curvature pairs (s_k, y_k) and their ρ_k = 1 / (y_kᵀ s_k).
    let mut s_hist: Vec<Vec<f32>> = Vec::with_capacity(m);
    let mut y_hist: Vec<Vec<f32>> = Vec::with_capacity(m);
    let mut rho_hist: Vec<f32> = Vec::with_capacity(m);

    for _ in 0..max_iters {
        let gns = vecops::norm_sq(&grad);
        if gns <= epsilon {
            break;
        }

        // Two-loop recursion: direction = -H_k ∇L.
        let mut q = grad.clone();
        let mut alphas = Vec::with_capacity(s_hist.len());
        for i in (0..s_hist.len()).rev() {
            let alpha = rho_hist[i] * vecops::dot(&s_hist[i], &q);
            vecops::axpy(-alpha, &y_hist[i], &mut q);
            alphas.push(alpha);
        }
        alphas.reverse();
        // Initial Hessian scaling γ = sᵀy / yᵀy from the most recent pair.
        if let (Some(s_last), Some(y_last)) = (s_hist.last(), y_hist.last()) {
            let ys = vecops::dot(s_last, y_last);
            let yy = vecops::norm_sq(y_last);
            if yy > 0.0 && ys > 0.0 {
                vecops::scale(ys / yy, &mut q);
            }
        }
        for i in 0..s_hist.len() {
            let beta = rho_hist[i] * vecops::dot(&y_hist[i], &q);
            vecops::axpy(alphas[i] - beta, &s_hist[i], &mut q);
        }
        // q now approximates H∇L; the step direction is -q.
        let mut direction = q;
        vecops::scale(-1.0, &mut direction);

        // Armijo backtracking along the direction; fall back to steepest
        // descent if the L-BFGS direction is not a descent direction.
        let mut dir_dot_grad = vecops::dot(&direction, &grad);
        if dir_dot_grad >= 0.0 {
            direction = grad.clone();
            vecops::scale(-1.0, &mut direction);
            dir_dot_grad = -vecops::norm_sq(&grad);
        }
        let mut step = 1.0f32;
        let c1 = 1e-4f32;
        let mut accepted = None;
        for _ in 0..30 {
            let mut candidate = w.clone();
            vecops::axpy(step, &direction, &mut candidate);
            let (cand_value, cand_grad) = objective.value_and_grad(&candidate)?;
            evals += 1;
            if cand_value <= value + c1 * step * dir_dot_grad {
                accepted = Some((candidate, cand_value, cand_grad));
                break;
            }
            step *= 0.5;
        }
        let Some((new_w, new_value, new_grad)) = accepted else {
            // Line search failed (e.g. at a numerically flat point): stop.
            break;
        };

        // Update curvature history.
        let mut s = vec![0.0f32; w.len()];
        vecops::sub_into(&new_w, &w, &mut s);
        let mut y = vec![0.0f32; w.len()];
        vecops::sub_into(&new_grad, &grad, &mut y);
        let ys = vecops::dot(&y, &s);
        if ys > 1e-10 {
            if s_hist.len() == m {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            rho_hist.push(1.0 / ys);
            s_hist.push(s);
            y_hist.push(y);
        }
        w = new_w;
        value = new_value;
        grad = new_grad;
    }

    Ok(SolveResult {
        params: w,
        gradient_evals: evals,
        final_grad_norm_sq: vecops::norm_sq(&grad),
        final_value: value,
    })
}

/// A pluggable local solver for the augmented-Lagrangian subproblem (3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LocalSolver {
    /// Full-batch gradient descent for a fixed number of steps.
    GradientDescent {
        /// Number of gradient steps.
        steps: usize,
        /// Step size.
        learning_rate: f32,
    },
    /// Gradient descent until the inexactness criterion (6) holds:
    /// `‖∇L_i‖² ≤ epsilon`.
    ToTolerance {
        /// Target inexactness `ε_i`.
        epsilon: f32,
        /// Step size.
        learning_rate: f32,
        /// Safety cap on the number of gradient evaluations.
        max_steps: usize,
    },
    /// Limited-memory BFGS (quasi-Newton) with Armijo backtracking.
    Lbfgs {
        /// Number of curvature pairs to keep.
        memory: usize,
        /// Maximum number of iterations.
        max_iters: usize,
        /// Stop once `‖∇L_i‖² ≤ epsilon`.
        epsilon: f32,
    },
}

impl LocalSolver {
    /// Runs this solver on `objective` starting from `init`.
    pub fn solve(
        &self,
        objective: &AugmentedObjective<'_>,
        init: &[f32],
    ) -> TensorResult<SolveResult> {
        match *self {
            LocalSolver::GradientDescent {
                steps,
                learning_rate,
            } => gradient_descent(objective, init, learning_rate, steps),
            LocalSolver::ToTolerance {
                epsilon,
                learning_rate,
                max_steps,
            } => solve_to_tolerance(objective, init, learning_rate, epsilon, max_steps),
            LocalSolver::Lbfgs {
                memory,
                max_iters,
                epsilon,
            } => lbfgs(objective, init, memory, max_iters, epsilon),
        }
    }

    /// Short label used in logs and experiment records.
    pub fn label(&self) -> &'static str {
        match self {
            LocalSolver::GradientDescent { .. } => "GD",
            LocalSolver::ToTolerance { .. } => "GD-to-ε",
            LocalSolver::Lbfgs { .. } => "L-BFGS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedadmm_data::batching::BatchSize;
    use fedadmm_data::synthetic::SyntheticDataset;
    use fedadmm_data::Dataset;
    use fedadmm_nn::models::ModelSpec;

    fn fixture() -> (Dataset, Vec<usize>) {
        let (train, _) = SyntheticDataset::Mnist.generate(80, 10, 11);
        let indices: Vec<usize> = (0..80).collect();
        (train, indices)
    }

    fn env<'a>(train: &'a Dataset, indices: &'a [usize]) -> LocalEnv<'a> {
        LocalEnv {
            dataset: train,
            indices,
            model: ModelSpec::Logistic {
                input_dim: 784,
                num_classes: 10,
            },
            epochs: 1,
            batch_size: BatchSize::Full,
            learning_rate: 0.1,
            seed: 3,
        }
    }

    #[test]
    fn objective_reduces_to_plain_loss_without_prox_terms() {
        let (train, indices) = fixture();
        let e = env(&train, &indices);
        let d = e.model.num_params();
        let theta = vec![0.0f32; d];
        let obj = AugmentedObjective::new(&e, &theta, None, 0.0);
        let w = vec![0.01f32; d];
        let (value, grad) = obj.value_and_grad(&w).unwrap();
        let (plain_grad, plain_loss) = full_gradient(&e, &w).unwrap();
        assert!((value - plain_loss).abs() < 1e-6);
        assert_eq!(grad, plain_grad);
    }

    #[test]
    fn objective_adds_dual_and_proximal_terms() {
        let (train, indices) = fixture();
        let e = env(&train, &indices);
        let d = e.model.num_params();
        let theta = vec![0.1f32; d];
        let dual = vec![0.05f32; d];
        let rho = 2.0f32;
        let obj = AugmentedObjective::new(&e, &theta, Some(&dual), rho);
        let w = vec![0.3f32; d];
        let (value, grad) = obj.value_and_grad(&w).unwrap();
        let (plain_grad, plain_loss) = full_gradient(&e, &w).unwrap();
        // value = f + yᵀ(w−θ) + ρ/2‖w−θ‖²  with w−θ = 0.2 everywhere.
        let diff = 0.2f32;
        let expected = plain_loss + (0.05 * diff) * d as f32 + 0.5 * rho * diff * diff * d as f32;
        assert!((value - expected).abs() / expected.abs().max(1.0) < 1e-4);
        for (g, pg) in grad.iter().zip(plain_grad.iter()) {
            assert!((g - (pg + 0.05 + rho * diff)).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_descent_decreases_objective() {
        let (train, indices) = fixture();
        let e = env(&train, &indices);
        let d = e.model.num_params();
        let theta = vec![0.0f32; d];
        let obj = AugmentedObjective::new(&e, &theta, None, 0.5);
        let init = vec![0.0f32; d];
        let (v0, _) = obj.value_and_grad(&init).unwrap();
        let result = gradient_descent(&obj, &init, 0.5, 10).unwrap();
        assert!(result.final_value < v0);
        assert_eq!(result.gradient_evals, 11);
    }

    #[test]
    fn solve_to_tolerance_meets_criterion_6() {
        let (train, indices) = fixture();
        let e = env(&train, &indices);
        let d = e.model.num_params();
        let theta = vec![0.0f32; d];
        // ρ large → strongly convex local problem → GD converges fast.
        let obj = AugmentedObjective::new(&e, &theta, None, 10.0);
        let init = vec![0.0f32; d];
        let epsilon = 1e-2f32;
        let result = solve_to_tolerance(&obj, &init, 0.5, epsilon, 2000).unwrap();
        assert!(
            result.final_grad_norm_sq <= epsilon,
            "criterion (6) not met: {} > {}",
            result.final_grad_norm_sq,
            epsilon
        );
        assert!(result.gradient_evals <= 2000);
    }

    #[test]
    fn tighter_epsilon_needs_more_work() {
        let (train, indices) = fixture();
        let e = env(&train, &indices);
        let d = e.model.num_params();
        let theta = vec![0.0f32; d];
        let obj = AugmentedObjective::new(&e, &theta, None, 10.0);
        let init = vec![0.0f32; d];
        let loose = solve_to_tolerance(&obj, &init, 0.5, 1e-1, 2000).unwrap();
        let tight = solve_to_tolerance(&obj, &init, 0.5, 1e-3, 2000).unwrap();
        assert!(tight.gradient_evals >= loose.gradient_evals);
        assert!(tight.final_grad_norm_sq <= loose.final_grad_norm_sq);
    }

    #[test]
    fn lbfgs_is_a_competitive_alternative_to_gd() {
        let (train, indices) = fixture();
        let e = env(&train, &indices);
        let d = e.model.num_params();
        let theta = vec![0.0f32; d];
        let obj = AugmentedObjective::new(&e, &theta, None, 1.0);
        let init = vec![0.0f32; d];
        // A tight tolerance, where curvature information starts to matter.
        let epsilon = 1e-5f32;
        let quasi = lbfgs(&obj, &init, 10, 500, epsilon).unwrap();
        assert!(
            quasi.final_grad_norm_sq <= epsilon,
            "{}",
            quasi.final_grad_norm_sq
        );
        let gd = solve_to_tolerance(&obj, &init, 0.3, epsilon, 5000).unwrap();
        assert!(
            gd.final_grad_norm_sq <= epsilon,
            "{}",
            gd.final_grad_norm_sq
        );
        // Both are valid local solvers for criterion (6); L-BFGS must at
        // least stay within a small constant factor of GD's oracle cost
        // (on well-conditioned problems the two are comparable, on
        // ill-conditioned ones L-BFGS wins by a large margin).
        assert!(
            quasi.gradient_evals <= 2 * gd.gradient_evals + 10,
            "L-BFGS used {} evals, GD used {}",
            quasi.gradient_evals,
            gd.gradient_evals
        );
    }

    #[test]
    fn local_solver_dispatch_matches_direct_calls() {
        let (train, indices) = fixture();
        let e = env(&train, &indices);
        let d = e.model.num_params();
        let theta = vec![0.0f32; d];
        let obj = AugmentedObjective::new(&e, &theta, None, 1.0);
        let init = vec![0.0f32; d];
        let via_enum = LocalSolver::GradientDescent {
            steps: 5,
            learning_rate: 0.2,
        }
        .solve(&obj, &init)
        .unwrap();
        let direct = gradient_descent(&obj, &init, 0.2, 5).unwrap();
        assert_eq!(via_enum.params, direct.params);
        assert_eq!(
            LocalSolver::GradientDescent {
                steps: 5,
                learning_rate: 0.2
            }
            .label(),
            "GD"
        );
        assert_eq!(
            LocalSolver::ToTolerance {
                epsilon: 1e-3,
                learning_rate: 0.1,
                max_steps: 10
            }
            .label(),
            "GD-to-ε"
        );
        assert_eq!(
            LocalSolver::Lbfgs {
                memory: 5,
                max_iters: 10,
                epsilon: 1e-3
            }
            .label(),
            "L-BFGS"
        );
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_rho_is_rejected() {
        let (train, indices) = fixture();
        let e = env(&train, &indices);
        let theta = vec![0.0f32; e.model.num_params()];
        AugmentedObjective::new(&e, &theta, None, -1.0);
    }
}
