//! The synchronous round scheduler — the paper's Figure 1/2 protocol.

use super::scheduler::{
    derive_client_seed, derive_round_seed, DispatchOrder, EngineCore, RoundStats, Scheduler,
    TickReport,
};
use crate::config::FedConfig;
use fedadmm_tensor::TensorResult;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Synchronous federated rounds, reproducing the legacy
/// [`Simulation`](crate::simulation::Simulation) semantics exactly:
///
/// 1. the server selects `S_t` (full participation if the algorithm
///    requires it),
/// 2. every selected client downloads the θ snapshot and runs its local
///    update in parallel over the engine's work-stealing
///    [`DispatchPool`](super::DispatchPool) (the server *waits for all of
///    them* — this is the straggler-bound protocol the paper's
///    system-heterogeneity experiments stress; within a round the pool
///    keeps fast workers busy around a slow client instead of letting a
///    static partition idle),
/// 3. the server aggregates all `|S_t|` messages in one pass and the new
///    model is evaluated.
///
/// RNG streams (selection, per-client epoch draws, per-client local
/// training) are derived exactly as the legacy engine derived them, so a
/// seeded run produces a byte-identical [`RunHistory`](crate::metrics::RunHistory).
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncRounds;

impl Scheduler for SyncRounds {
    fn name(&self) -> &'static str {
        "sync-rounds"
    }

    fn tick(&mut self, core: &mut EngineCore<'_>) -> TensorResult<TickReport> {
        let start = Instant::now();
        let round = core.round();
        let mut round_rng =
            SmallRng::seed_from_u64(derive_round_seed(core.config.seed, round as u64));

        // 1. Client selection.
        let selected: Vec<usize> = if core.algorithm.requires_full_participation() {
            (0..core.config.num_clients).collect()
        } else {
            core.selector
                .select(core.config.num_clients, &mut round_rng)
        };

        // 2. Per-client epoch counts for this round (system heterogeneity),
        //    drawn in selection order from the round RNG.
        let base_seed = core.config.seed;
        let snapshot = core.broadcast();
        let orders: Vec<DispatchOrder> = selected
            .iter()
            .map(|&client_id| DispatchOrder {
                client_id,
                epochs: core.work_schedule.epochs_for(client_id, &mut round_rng),
                snapshot: snapshot.clone(),
                seed: derive_client_seed(base_seed, round as u64, client_id),
            })
            .collect();

        // 3. Local updates through the shared parallel dispatch path.
        core.telemetry().on_phase_start("dispatch", round);
        let messages = core.dispatch(&orders)?;
        core.telemetry().on_phase_end("dispatch", round);
        drop(orders);
        drop(snapshot);

        // 4. Server aggregation (single fused pass inside the algorithm).
        core.telemetry().on_phase_start("aggregate", round);
        let outcome = core.aggregate(&messages, &mut round_rng);
        core.add_upload(outcome.upload_floats);
        // True wire bytes: the quantized size when the wire path encoded
        // the uploads, dense 4·floats otherwise.
        let wire_bytes: usize = messages.iter().map(|m| m.wire_bytes()).sum();
        core.add_wire_bytes(wire_bytes);
        core.telemetry().on_phase_end("aggregate", round);

        // 5. Evaluation and bookkeeping.
        let record = core.record_round(RoundStats {
            num_selected: selected.len(),
            upload_floats: outcome.upload_floats,
            total_local_epochs: messages.iter().map(|m| m.epochs_run).sum(),
            samples_processed: messages.iter().map(|m| m.samples_processed).sum(),
            wire_bytes,
            elapsed_ms: start.elapsed().as_millis() as u64,
        })?;
        Ok(TickReport {
            record: Some(record),
            events: Vec::new(),
        })
    }

    fn setting_label(&self, config: &FedConfig) -> String {
        format!("{} clients", config.num_clients)
    }
}
