//! The engine's wire path: compression + privacy fused into the upload →
//! aggregate hot path.
//!
//! Historically, compressed or privatized runs went through *algorithm
//! adapters* ([`QuantizedAlgorithm`](crate::compression::QuantizedAlgorithm)
//! and `fedadmm-privacy`'s `PrivateAlgorithm`): every client materialized a
//! full dense `Vec<f32>` decompression of its own upload, and the server
//! folded those dense vectors as usual — two to three extra O(d) sweeps per
//! message on top of the fused aggregation pass PR 1 bought. The wire path
//! moves both transforms into the engine itself, in the FedPAQ style
//! (quantize at the client edge, accumulate in the coded domain):
//!
//! ```text
//!   dispatch worker (per-worker scratch, no per-job allocation)
//!   ┌───────────────────────────────────────────────────────────┐
//!   │ local SGD → Δ_i ── guard.privatize (clip+noise, in place) │
//!   │           └─ quantize_into(worker codes buffer)           │
//!   └───────────────┬───────────────────────────────────────────┘
//!                   │ WirePayload { scale, [codes] }   (~bits/32 of 4d bytes)
//!                   ▼
//!   server fold  θ += Σ_i c_i·s_i·(min_i + k·step_i)   — ONE 8-lane sweep
//!                   (vecops::dequant_axpy_fused, "fuse_pass" span)
//! ```
//!
//! * **Client side** — each [`DispatchPool`](super::DispatchPool) worker
//!   applies the optional [`WireGuard`] (DP clipping + Gaussian noise, or
//!   any other in-place payload transform) and then quantizes the payload
//!   *inside its existing dispatch scratch*: the per-worker
//!   [`Vec<u16>`] code buffer is reused across jobs, so steady-state
//!   encoding allocates only the exact-size code vector that rides in the
//!   message itself (half the dense payload at 16 bits, an eighth at 4).
//! * **Server side** — [`EngineCore::aggregate`](super::EngineCore::aggregate)
//!   detects wire payloads and folds them through the `fold_compressed`
//!   path: one [`vecops::dequant_axpy_fused`](fedadmm_tensor::vecops)
//!   sweep dequantize-accumulates the whole cohort directly into θ (or one
//!   [`dequant_sum_into`](fedadmm_tensor::vecops::dequant_sum_into) per
//!   shard under [`AggregationMode::Hierarchical`](super::AggregationMode)),
//!   so compression-on + privacy-on costs a single pass over ℝ^d instead of
//!   a decode pass, a privatize pass and a fold pass.
//! * **Schedulers** — staleness damping multiplies
//!   [`WirePayload::scale`](crate::compression::WirePayload::scale) (codes
//!   cannot be scaled without decoding); the server folds the scale into
//!   the per-message coefficient, reproducing the dense semantics.
//!
//! The path is **off by default** and byte-identical when disabled (pinned
//! by the golden-digest parity tests). Resolution order mirrors the
//! dispatch pool: [`RoundEngine::with_wire_path`](super::RoundEngine::with_wire_path)
//! builder first, then the `FEDADMM_WIRE_PATH` environment variable
//! (`on`/`1`/`true`; bit width via `FEDADMM_WIRE_BITS`, default 8), then
//! off. With it enabled, correctness is *bounded-error* against the naive
//! compress → decompress → aggregate reference ([`decode_message`]) —
//! `tests/wire_path.rs` pins the bound.

use crate::algorithms::ClientMessage;
use crate::compression::{QuantizedVector, Quantizer, WirePayload};
use crate::param::ParamVector;
use fedadmm_tensor::vecops;
use std::sync::Arc;

/// An in-place privatization transform applied to every uploaded payload
/// vector on the dispatch worker, *before* quantization.
///
/// `fedadmm-privacy` implements this for its `GaussianMechanism` (ℓ₂ clip +
/// Gaussian noise — the client-level DP recipe); pairwise-mask secure
/// aggregation composes in the same slot as long as masks are applied in
/// the dense domain (mask-domain fusion over the quantized codes is future
/// work, noted on the ROADMAP).
pub trait WireGuard: Send + Sync {
    /// Name used in labels and logs ("gaussian-dp", …).
    fn name(&self) -> &'static str;

    /// Transforms one payload vector in place. `seed` is derived from the
    /// dispatch order's `(run seed, tick, client)` stream plus a wire-path
    /// salt, so noise is deterministic per `(seed, round, client)` and
    /// independent of the thread schedule.
    fn privatize(&self, update: &mut [f32], seed: u64);
}

impl<G: WireGuard + ?Sized> WireGuard for Arc<G> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn privatize(&self, update: &mut [f32], seed: u64) {
        (**self).privatize(update, seed)
    }
}

/// Salt separating the wire path's stochastic-rounding RNG stream from the
/// legacy [`QuantizedAlgorithm`](crate::compression::QuantizedAlgorithm)
/// stream (which uses the raw `env.seed ^ (k << 48)`).
const QUANT_SALT: u64 = 0x00C0_DEC5_17E5_EED5;
/// Salt separating the guard's noise stream from every other consumer of
/// the dispatch seed.
const GUARD_SALT: u64 = 0x6A2D_5EED_0FF5_E75B;

/// The stochastic-rounding seed for payload vector `k` of a dispatch order.
pub fn quant_seed(order_seed: u64, k: usize) -> u64 {
    order_seed ^ QUANT_SALT ^ ((k as u64) << 48)
}

/// The guard (noise) seed for payload vector `k` of a dispatch order.
pub fn guard_seed(order_seed: u64, k: usize) -> u64 {
    order_seed ^ GUARD_SALT.rotate_left((k as u32) & 63)
}

/// Wire-path configuration. Unset fields fall back to the
/// `FEDADMM_WIRE_*` environment variables, then to defaults (disabled;
/// 8-bit stochastic quantization when enabled).
#[derive(Clone, Default)]
pub struct WirePathConfig {
    /// Whether uploads are encoded (default: `FEDADMM_WIRE_PATH`, else off).
    pub enabled: Option<bool>,
    /// The quantizer (default: `FEDADMM_WIRE_BITS`-bit stochastic, else
    /// 8-bit stochastic).
    pub quantizer: Option<Quantizer>,
    /// Optional privatization applied before quantization (default: none).
    pub guard: Option<Arc<dyn WireGuard>>,
}

impl std::fmt::Debug for WirePathConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WirePathConfig")
            .field("enabled", &self.enabled)
            .field("quantizer", &self.quantizer)
            .field("guard", &self.guard.as_ref().map(|g| g.name()))
            .finish()
    }
}

fn env_flag(name: &str) -> Option<bool> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "on" | "true" | "yes" => Some(true),
        "0" | "off" | "false" | "no" | "" => Some(false),
        _ => None,
    }
}

impl WirePathConfig {
    /// A configuration that pins the path on with the given quantizer.
    pub fn enabled(quantizer: Quantizer) -> Self {
        WirePathConfig {
            enabled: Some(true),
            quantizer: Some(quantizer),
            guard: None,
        }
    }

    /// A configuration that pins the path off regardless of the
    /// environment — what the byte-identity tests use.
    pub fn disabled() -> Self {
        WirePathConfig {
            enabled: Some(false),
            ..WirePathConfig::default()
        }
    }

    /// Adds a privatization guard (applied before quantization).
    pub fn with_guard(mut self, guard: Arc<dyn WireGuard>) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Resolves the configuration against the environment: `Some(path)`
    /// when the wire path is on, `None` when uploads stay dense.
    pub fn resolve(&self) -> Option<WirePath> {
        let enabled = self
            .enabled
            .or_else(|| env_flag("FEDADMM_WIRE_PATH"))
            .unwrap_or(false);
        if !enabled {
            return None;
        }
        let quantizer = self.quantizer.unwrap_or_else(|| {
            let bits = std::env::var("FEDADMM_WIRE_BITS")
                .ok()
                .and_then(|v| v.trim().parse::<u8>().ok())
                .filter(|b| (1..=16).contains(b))
                .unwrap_or(8);
            Quantizer::new(bits, true)
        });
        Some(WirePath {
            quantizer,
            guard: self.guard.clone(),
        })
    }
}

/// The resolved, active wire path threaded through the engine core.
#[derive(Clone)]
pub struct WirePath {
    /// Per-vector uniform quantizer.
    pub quantizer: Quantizer,
    /// Optional pre-quantization privatization.
    pub guard: Option<Arc<dyn WireGuard>>,
}

impl std::fmt::Debug for WirePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WirePath")
            .field("quantizer", &self.quantizer)
            .field("guard", &self.guard.as_ref().map(|g| g.name()))
            .finish()
    }
}

impl WirePath {
    /// Encodes a freshly computed message in place on the dispatch worker:
    /// privatize each payload vector (optional), quantize it through the
    /// worker's reusable `codes` buffer, and replace the dense payload with
    /// the [`WirePayload`]. Messages with an empty payload (e.g. FedPD's
    /// non-communication rounds) are left untouched.
    pub fn encode(&self, message: &mut ClientMessage, order_seed: u64, codes: &mut Vec<u16>) {
        if message.payload.is_empty() {
            return;
        }
        let mut vectors = Vec::with_capacity(message.payload.len());
        for (k, payload) in message.payload.iter_mut().enumerate() {
            let values = payload.as_mut_slice();
            if let Some(guard) = &self.guard {
                guard.privatize(values, guard_seed(order_seed, k));
            }
            let (min, step) =
                self.quantizer
                    .quantize_into(values, quant_seed(order_seed, k), codes);
            vectors.push(QuantizedVector {
                min,
                step,
                // The only per-job allocation: the exact-size code vector
                // that travels in the message itself (bits/32 of the dense
                // payload bytes).
                codes: codes.clone(),
                bits: self.quantizer.bits,
            });
        }
        message.payload.clear();
        message.wire = Some(WirePayload {
            scale: 1.0,
            vectors,
        });
    }
}

/// The naive compress → decompress reference: decodes a wire message back
/// to a dense [`ClientMessage`] (applying the staleness scale), leaving
/// dense messages untouched. The server's `fold_compressed` fast path must
/// agree with aggregating these within the quantizer's error bound; it is
/// also the fallback the engine uses for algorithms without a
/// [`FoldPlan`](crate::algorithms::FoldPlan) or with multi-vector uploads
/// (SCAFFOLD).
pub fn decode_message(message: &ClientMessage) -> ClientMessage {
    let Some(wire) = &message.wire else {
        return message.clone();
    };
    let payload = wire
        .vectors
        .iter()
        .map(|v| {
            let mut dense = v.dequantize();
            if wire.scale != 1.0 {
                vecops::scale(wire.scale, &mut dense);
            }
            ParamVector::from_vec(dense)
        })
        .collect();
    ClientMessage {
        client_id: message.client_id,
        num_samples: message.num_samples,
        payload,
        epochs_run: message.epochs_run,
        samples_processed: message.samples_processed,
        wire: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Negate;
    impl WireGuard for Negate {
        fn name(&self) -> &'static str {
            "negate"
        }
        fn privatize(&self, update: &mut [f32], _seed: u64) {
            for v in update.iter_mut() {
                *v = -*v;
            }
        }
    }

    fn message(values: Vec<f32>) -> ClientMessage {
        ClientMessage {
            client_id: 3,
            num_samples: 10,
            payload: vec![ParamVector::from_vec(values)],
            epochs_run: 2,
            samples_processed: 20,
            wire: None,
        }
    }

    #[test]
    fn encode_moves_the_payload_onto_the_wire() {
        let path = WirePathConfig::enabled(Quantizer::new(8, false))
            .resolve()
            .unwrap();
        let values: Vec<f32> = (0..100).map(|i| (i as f32 * 0.31).sin()).collect();
        let mut msg = message(values.clone());
        let dense_bytes = msg.wire_bytes();
        let mut codes = Vec::new();
        path.encode(&mut msg, 7, &mut codes);
        assert!(
            msg.payload.is_empty(),
            "dense payload must move to the wire"
        );
        let wire = msg.wire.as_ref().unwrap();
        assert_eq!(wire.scale, 1.0);
        assert_eq!(wire.coords(), 100);
        assert!(
            msg.wire_bytes() < dense_bytes / 3,
            "8-bit codes ≈ 4× smaller"
        );
        // upload_floats still counts coordinates, not bytes.
        assert_eq!(msg.upload_floats(), 100);
        // The decoded reference stays within the quantizer's error bound.
        let decoded = decode_message(&msg);
        let bound = path.quantizer.max_error(2.0) * 1.001;
        for (a, b) in values.iter().zip(decoded.payload[0].as_slice()) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn encode_is_deterministic_in_the_order_seed() {
        let path = WirePathConfig::enabled(Quantizer::new(4, true))
            .resolve()
            .unwrap();
        let values: Vec<f32> = (0..64).map(|i| (i as f32 * 0.7).cos()).collect();
        let (mut a, mut b, mut c) = (
            message(values.clone()),
            message(values.clone()),
            message(values),
        );
        let mut codes = Vec::new();
        path.encode(&mut a, 11, &mut codes);
        path.encode(&mut b, 11, &mut codes);
        path.encode(&mut c, 12, &mut codes);
        assert_eq!(a.wire, b.wire);
        assert_ne!(a.wire, c.wire, "different seeds round differently");
    }

    #[test]
    fn guard_runs_before_quantization() {
        let path = WirePathConfig::enabled(Quantizer::new(16, false))
            .with_guard(Arc::new(Negate))
            .resolve()
            .unwrap();
        let mut msg = message(vec![1.0, 2.0, 3.0, 4.0]);
        let mut codes = Vec::new();
        path.encode(&mut msg, 0, &mut codes);
        let decoded = decode_message(&msg);
        for (v, want) in decoded.payload[0]
            .as_slice()
            .iter()
            .zip([-1.0f32, -2.0, -3.0, -4.0])
        {
            assert!((v - want).abs() < 1e-3, "{v} vs {want}");
        }
    }

    #[test]
    fn empty_payload_messages_stay_dense() {
        let path = WirePathConfig::enabled(Quantizer::new(8, false))
            .resolve()
            .unwrap();
        let mut msg = ClientMessage {
            client_id: 0,
            num_samples: 5,
            payload: Vec::new(),
            epochs_run: 1,
            samples_processed: 5,
            wire: None,
        };
        path.encode(&mut msg, 0, &mut Vec::new());
        assert!(msg.wire.is_none());
    }

    #[test]
    fn disabled_config_resolves_to_none() {
        assert!(WirePathConfig::disabled().resolve().is_none());
        // Builder beats the environment: even with the env var unset this
        // stays on.
        assert!(WirePathConfig::enabled(Quantizer::new(8, true))
            .resolve()
            .is_some());
    }

    #[test]
    fn seed_streams_are_distinct() {
        let s = 0xDEAD_BEEF_u64;
        assert_ne!(quant_seed(s, 0), s);
        assert_ne!(quant_seed(s, 0), guard_seed(s, 0));
        assert_ne!(quant_seed(s, 0), quant_seed(s, 1));
        assert_ne!(guard_seed(s, 0), guard_seed(s, 1));
    }
}
