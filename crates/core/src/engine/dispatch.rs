//! The work-stealing dispatch pool behind [`EngineCore::dispatch`].
//!
//! PR 1 carried an open ROADMAP item: the engine's parallel dispatch used
//! *static round-robin* partitioning over freshly spawned scoped threads —
//! under FedADMM's heterogeneous-epochs workloads (the paper's system-
//! heterogeneity protocol) a single 16×-epoch straggler serializes its
//! whole partition while other cores idle. [`DispatchPool`] replaces that
//! with self-scheduling workers:
//!
//! * a **persistent** set of parked worker threads (spawned once per
//!   engine, not once per round);
//! * jobs are claimed from a shared atomic **chunk cursor** — a worker that
//!   finishes early simply claims the next chunk instead of idling behind a
//!   straggler. The chunk size adapts to the cohort
//!   (`clamp(jobs / (4·workers), 1, 8)`) unless pinned by configuration;
//! * each worker owns a reusable [`DispatchScratch`] arena (the per-job
//!   `indices` copy plus the algorithm's
//!   [`UpdateScratch`](crate::algorithms::UpdateScratch) buffers), so the
//!   steady-state dispatch path performs no per-job allocations.
//!
//! Determinism: job results depend only on `(seed, round, client)`-derived
//! RNG streams and jobs are collected in ascending client-id order, so the
//! outcome is byte-identical for every worker count and chunk size — pinned
//! by the golden-digest parity tests.
//!
//! Configuration resolves from [`DispatchConfig`] builders first, then the
//! environment (`FEDADMM_DISPATCH_WORKERS`, `FEDADMM_DISPATCH_CHUNK`,
//! `FEDADMM_DISPATCH_MODE=static|steal`), then hardware defaults.
//! [`DispatchMode::Static`] keeps the legacy scoped-thread round-robin
//! path alive for A/B benchmarking (the `bench-snapshot` before/after
//! pairs) and for the parity tests that prove both schedules agree.

use crate::algorithms::UpdateScratch;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// How [`EngineCore::dispatch`](super::EngineCore::dispatch) schedules a
/// batch over its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Self-scheduling over the pool's shared chunk cursor (the default).
    #[default]
    WorkStealing,
    /// The legacy static round-robin partitioning over scoped threads,
    /// kept for A/B benchmarks and schedule-independence tests.
    Static,
}

/// Dispatch-pool configuration. Unset fields fall back to the
/// `FEDADMM_DISPATCH_*` environment variables, then to hardware defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchConfig {
    /// Worker-thread count (default: `FEDADMM_DISPATCH_WORKERS`, else
    /// [`std::thread::available_parallelism`]). `1` selects the serial
    /// inline path — no threads are spawned at all.
    pub workers: Option<usize>,
    /// Jobs claimed per cursor fetch (default: `FEDADMM_DISPATCH_CHUNK`,
    /// else adaptive in the batch size).
    pub chunk_size: Option<usize>,
    /// Scheduling mode (default: `FEDADMM_DISPATCH_MODE`, else
    /// [`DispatchMode::WorkStealing`]).
    pub mode: Option<DispatchMode>,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

impl DispatchConfig {
    /// A configuration pinning the worker count (tests, A/B runs).
    pub fn with_workers(workers: usize) -> Self {
        DispatchConfig {
            workers: Some(workers),
            ..DispatchConfig::default()
        }
    }

    /// The effective worker count: builder, then environment, then
    /// available parallelism.
    pub fn resolved_workers(&self) -> usize {
        self.workers
            .or_else(|| env_usize("FEDADMM_DISPATCH_WORKERS"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1)
    }

    /// The effective scheduling mode: builder, then environment, then
    /// work-stealing.
    pub fn resolved_mode(&self) -> DispatchMode {
        self.mode.unwrap_or_else(|| {
            match std::env::var("FEDADMM_DISPATCH_MODE")
                .unwrap_or_default()
                .trim()
                .to_ascii_lowercase()
                .as_str()
            {
                "static" => DispatchMode::Static,
                _ => DispatchMode::WorkStealing,
            }
        })
    }

    /// The chunk size for a batch of `num_jobs` over `workers` workers:
    /// builder, then environment, then `clamp(jobs / (4·workers), 1, 8)` —
    /// about four claims per worker on balanced loads, small enough to
    /// rebalance behind a straggler.
    pub fn resolved_chunk(&self, num_jobs: usize, workers: usize) -> usize {
        self.chunk_size
            .or_else(|| env_usize("FEDADMM_DISPATCH_CHUNK"))
            .unwrap_or_else(|| (num_jobs / (workers.max(1) * 4)).clamp(1, 8))
    }
}

/// Per-worker reusable buffers, one arena per pool worker (plus one for the
/// serial path). Sized once on first use and recycled for every later job.
#[derive(Debug, Default)]
pub struct DispatchScratch {
    /// Reusable copy of the client's sample indices (the per-job
    /// `indices.clone()` of the legacy path, without the allocation).
    pub indices: Vec<usize>,
    /// The algorithm's reusable O(d) buffers.
    pub update: UpdateScratch,
    /// Staging buffer for wire-path quantization codes
    /// ([`Quantizer::quantize_into`](crate::compression::Quantizer::quantize_into)):
    /// sized on the worker's first encoded job and reused for every later
    /// one.
    pub wire_codes: Vec<u16>,
}

/// What one pool batch did, for telemetry.
#[derive(Debug, Clone, Default)]
pub struct DispatchBatchStats {
    /// Workers the batch ran on (1 = serial inline path).
    pub workers: usize,
    /// Chunk size jobs were claimed in.
    pub chunk_size: usize,
    /// Jobs executed.
    pub jobs: u64,
    /// Cursor claims across all workers.
    pub chunks: u64,
    /// Claims beyond each worker's first — work a static partition would
    /// have left queued behind that worker's stragglers.
    pub steals: u64,
    /// Per-worker busy seconds (empty when timing was off).
    pub busy_seconds: Vec<f64>,
}

/// A batch job: `(worker index, job index, worker scratch)`.
type DispatchTask<'a> = &'a (dyn Fn(usize, usize, &mut DispatchScratch) + Sync);

/// One batch, as published to the workers. The task reference is
/// lifetime-erased; [`DispatchPool::run`] blocks until every worker is done
/// with the batch, so the borrow outlives all uses.
#[derive(Clone, Copy)]
struct BatchDesc {
    task: &'static (dyn Fn(usize, usize, &mut DispatchScratch) + Sync),
    num_jobs: usize,
    chunk: usize,
    timed: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct WorkerStats {
    jobs: u64,
    chunks: u64,
    busy: f64,
}

struct PoolState {
    /// Batch sequence number; workers run each sequence exactly once.
    seq: u64,
    batch: Option<BatchDesc>,
    /// Workers still running the current batch.
    remaining: usize,
    shutdown: bool,
    worker_stats: Vec<WorkerStats>,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between batches.
    work_cv: Condvar,
    /// The caller parks here until `remaining` drops to zero.
    done_cv: Condvar,
    /// The batch's shared job cursor.
    cursor: AtomicUsize,
    panicked: AtomicBool,
}

/// A persistent self-scheduling worker pool (see [module docs](self)).
pub struct DispatchPool {
    config: DispatchConfig,
    mode: DispatchMode,
    workers: usize,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Scratch arena for the serial inline path and `dispatch_one`.
    serial_scratch: Mutex<DispatchScratch>,
}

impl DispatchPool {
    /// Builds the pool, spawning `workers − 1 > 0 ? workers : 0` persistent
    /// threads (a single-worker pool spawns none and runs inline).
    pub fn new(config: DispatchConfig) -> Self {
        let workers = config.resolved_workers();
        let mode = config.resolved_mode();
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                seq: 0,
                batch: None,
                remaining: 0,
                shutdown: false,
                worker_stats: vec![WorkerStats::default(); workers],
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        // Static mode never calls `run`, so its pool spawns no threads.
        let handles = if workers > 1 && mode == DispatchMode::WorkStealing {
            (0..workers)
                .map(|w| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("fedadmm-dispatch-{w}"))
                        .spawn(move || worker_loop(shared, w))
                        .expect("spawn dispatch worker")
                })
                .collect()
        } else {
            Vec::new()
        };
        DispatchPool {
            config,
            mode,
            workers,
            shared,
            handles,
            serial_scratch: Mutex::new(DispatchScratch::default()),
        }
    }

    /// The configuration the pool was built from.
    pub fn config(&self) -> DispatchConfig {
        self.config
    }

    /// The resolved scheduling mode.
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `task` on the serial scratch arena (single-order dispatches).
    pub fn with_scratch<R>(&self, f: impl FnOnce(&mut DispatchScratch) -> R) -> R {
        let mut scratch = self.serial_scratch.lock().expect("serial scratch lock");
        f(&mut scratch)
    }

    /// Runs a batch of `num_jobs` jobs to completion and returns the batch
    /// stats. `task(worker, job, scratch)` must tolerate any assignment of
    /// jobs to workers; each job index in `0..num_jobs` runs exactly once.
    ///
    /// # Panics
    /// Panics with `"dispatch worker panicked"` if any job panicked (all
    /// workers still drain the batch first, so the pool stays usable).
    pub fn run(&self, num_jobs: usize, timed: bool, task: DispatchTask<'_>) -> DispatchBatchStats {
        if num_jobs == 0 {
            return DispatchBatchStats::default();
        }
        if self.handles.is_empty() {
            return self.run_serial(num_jobs, timed, task);
        }
        let chunk = self.config.resolved_chunk(num_jobs, self.workers);
        // SAFETY: the borrow is erased to 'static so it can sit in the
        // shared state, but `run` does not return until every worker has
        // finished the batch (`remaining == 0`), and workers never touch a
        // batch after decrementing `remaining` — the reference outlives
        // every dereference.
        let task: &'static (dyn Fn(usize, usize, &mut DispatchScratch) + Sync) =
            unsafe { std::mem::transmute(task) };
        let mut st = self.shared.state.lock().expect("dispatch pool lock");
        self.shared.cursor.store(0, Ordering::SeqCst);
        self.shared.panicked.store(false, Ordering::SeqCst);
        st.seq = st.seq.wrapping_add(1);
        st.batch = Some(BatchDesc {
            task,
            num_jobs,
            chunk,
            timed,
        });
        st.remaining = self.handles.len();
        for s in st.worker_stats.iter_mut() {
            *s = WorkerStats::default();
        }
        self.shared.work_cv.notify_all();
        while st.remaining > 0 {
            st = self.shared.done_cv.wait(st).expect("dispatch pool wait");
        }
        st.batch = None;
        let mut stats = DispatchBatchStats {
            workers: self.handles.len(),
            chunk_size: chunk,
            jobs: 0,
            chunks: 0,
            steals: 0,
            busy_seconds: Vec::new(),
        };
        if timed {
            stats.busy_seconds.reserve(st.worker_stats.len());
        }
        for ws in &st.worker_stats {
            stats.jobs += ws.jobs;
            stats.chunks += ws.chunks;
            stats.steals += ws.chunks.saturating_sub(1);
            if timed {
                stats.busy_seconds.push(ws.busy);
            }
        }
        drop(st);
        if self.shared.panicked.load(Ordering::SeqCst) {
            panic!("dispatch worker panicked");
        }
        stats
    }

    fn run_serial(
        &self,
        num_jobs: usize,
        timed: bool,
        task: DispatchTask<'_>,
    ) -> DispatchBatchStats {
        let mut scratch = self.serial_scratch.lock().expect("serial scratch lock");
        let start = timed.then(Instant::now);
        for job in 0..num_jobs {
            task(0, job, &mut scratch);
        }
        DispatchBatchStats {
            workers: 1,
            chunk_size: num_jobs,
            jobs: num_jobs as u64,
            chunks: 1,
            steals: 0,
            busy_seconds: start
                .map(|s| vec![s.elapsed().as_secs_f64()])
                .unwrap_or_default(),
        }
    }
}

impl Drop for DispatchPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("dispatch pool lock");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, worker: usize) {
    let mut scratch = DispatchScratch::default();
    let mut last_seq = 0u64;
    loop {
        let desc = {
            let mut st = shared.state.lock().expect("dispatch worker lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != last_seq {
                    if let Some(desc) = st.batch {
                        last_seq = st.seq;
                        break desc;
                    }
                }
                st = shared.work_cv.wait(st).expect("dispatch worker wait");
            }
        };
        let mut stats = WorkerStats::default();
        let start = desc.timed.then(Instant::now);
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            let begin = shared.cursor.fetch_add(desc.chunk, Ordering::Relaxed);
            if begin >= desc.num_jobs {
                break;
            }
            stats.chunks += 1;
            let end = (begin + desc.chunk).min(desc.num_jobs);
            for job in begin..end {
                (desc.task)(worker, job, &mut scratch);
                stats.jobs += 1;
            }
        }));
        if outcome.is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
        if let Some(s) = start {
            stats.busy = s.elapsed().as_secs_f64();
        }
        let mut st = shared.state.lock().expect("dispatch worker lock");
        st.worker_stats[worker] = stats;
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn config(workers: usize, chunk: Option<usize>) -> DispatchConfig {
        DispatchConfig {
            workers: Some(workers),
            chunk_size: chunk,
            mode: Some(DispatchMode::WorkStealing),
        }
    }

    #[test]
    fn every_job_runs_exactly_once_across_worker_and_chunk_counts() {
        for workers in [1usize, 2, 3, 8] {
            for chunk in [None, Some(1), Some(3), Some(64)] {
                let pool = DispatchPool::new(config(workers, chunk));
                let jobs = 37;
                let counts: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
                let stats = pool.run(jobs, false, &|_, job, _| {
                    counts[job].fetch_add(1, Ordering::SeqCst);
                });
                for (j, c) in counts.iter().enumerate() {
                    assert_eq!(
                        c.load(Ordering::SeqCst),
                        1,
                        "job {j} with {workers} workers chunk {chunk:?}"
                    );
                }
                assert_eq!(stats.jobs, jobs as u64);
                assert_eq!(stats.workers, if workers > 1 { workers } else { 1 });
            }
        }
    }

    #[test]
    fn pool_survives_many_batches_and_reuses_scratch_capacity() {
        let workers = 3;
        let pool = DispatchPool::new(config(workers, Some(2)));
        let cold = AtomicU64::new(0);
        for _ in 0..20 {
            pool.run(11, false, &|_, _, scratch| {
                if scratch.indices.capacity() < 64 {
                    cold.fetch_add(1, Ordering::SeqCst);
                }
                scratch.indices.clear();
                scratch.indices.extend(0..64usize);
            });
        }
        // 20 × 11 jobs, but each worker's arena allocates at most once —
        // every later job it claims reuses the grown capacity.
        assert!(
            cold.load(Ordering::SeqCst) <= workers as u64,
            "at most one cold arena per worker, saw {}",
            cold.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn adaptive_chunk_tracks_cohort_size() {
        let cfg = DispatchConfig::default();
        assert_eq!(cfg.resolved_chunk(4, 8), 1); // tiny cohort → chunk 1
        assert_eq!(cfg.resolved_chunk(64, 4), 4);
        assert_eq!(cfg.resolved_chunk(10_000, 8), 8); // capped at 8
        let pinned = DispatchConfig {
            chunk_size: Some(5),
            ..DispatchConfig::default()
        };
        assert_eq!(pinned.resolved_chunk(10_000, 8), 5);
    }

    #[test]
    fn steals_are_counted_when_a_worker_drains_anothers_share() {
        let pool = DispatchPool::new(config(2, Some(1)));
        // Job 0 is a straggler; the other worker must steal the rest.
        let stats = pool.run(12, true, &|_, job, _| {
            if job == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
        });
        assert_eq!(stats.jobs, 12);
        assert_eq!(stats.chunks, 12);
        assert!(
            stats.steals >= 9,
            "expected the fast worker to claim most chunks, steals = {}",
            stats.steals
        );
        assert_eq!(stats.busy_seconds.len(), 2);
        assert!(stats.busy_seconds.iter().any(|&b| b >= 0.03));
    }

    #[test]
    fn serial_pool_spawns_no_threads_and_runs_inline() {
        let pool = DispatchPool::new(config(1, None));
        assert!(pool.handles.is_empty());
        let hits = AtomicU64::new(0);
        let main_thread = std::thread::current().id();
        let stats = pool.run(5, false, &|worker, _, _| {
            assert_eq!(worker, 0);
            assert_eq!(std::thread::current().id(), main_thread);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 5);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    #[should_panic(expected = "dispatch worker panicked")]
    fn worker_panic_propagates_to_the_caller() {
        let pool = DispatchPool::new(config(2, Some(1)));
        pool.run(4, false, &|_, job, _| {
            assert!(job != 2, "boom");
        });
    }

    #[test]
    fn pool_stays_usable_after_a_panicked_batch() {
        let pool = DispatchPool::new(config(2, Some(1)));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, false, &|_, _, _| panic!("boom"));
        }));
        assert!(caught.is_err());
        let hits = AtomicU64::new(0);
        pool.run(6, false, &|_, _, _| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 6);
    }
}
