//! The buffered asynchronous scheduler (event-driven, staleness-weighted).
//!
//! Each tick dispatches at most a handful of arrivals; they still run
//! through the engine's [`DispatchPool`](super::DispatchPool), whose
//! adaptive chunk size (`jobs / (4·workers)`, clamped to ≥ 1) degrades to
//! one job per chunk for these tiny cohorts.

use super::scheduler::{
    DispatchOrder, EngineCore, RoundStats, Scheduler, StalenessWeight, TickReport,
};
use crate::config::FedConfig;
use crate::param::ParamVector;
use fedadmm_tensor::{TensorError, TensorResult};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Configuration of a buffered asynchronous schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsyncConfig {
    /// How many clients compute concurrently (the size of the device pool
    /// the server keeps busy). Plays the role of `|S_t|` in the synchronous
    /// protocol.
    pub max_concurrency: usize,
    /// Per-client virtual seconds needed to run *one* local epoch. Length
    /// must equal the client population; heterogeneous values make fast
    /// devices contribute many low-staleness updates while stragglers
    /// contribute few, stale ones.
    pub seconds_per_epoch: Vec<f64>,
    /// Staleness weighting applied to arriving updates.
    pub staleness: StalenessWeight,
    /// Evaluate the global model every this many server aggregations
    /// (evaluation is the expensive part of the simulation).
    pub eval_every: usize,
    /// Aggregate once this many weighted updates have arrived. `1` (the
    /// default) applies every arrival immediately — the legacy
    /// `AsyncSimulation` semantics; larger values give FedBuff-style
    /// buffered aggregation.
    pub aggregate_after: usize,
}

impl AsyncConfig {
    /// A homogeneous pool: every client needs `seconds_per_epoch` virtual
    /// seconds per epoch.
    pub fn homogeneous(num_clients: usize, concurrency: usize, seconds_per_epoch: f64) -> Self {
        AsyncConfig {
            max_concurrency: concurrency,
            seconds_per_epoch: vec![seconds_per_epoch; num_clients],
            staleness: StalenessWeight::Polynomial { exponent: 0.5 },
            eval_every: 10,
            aggregate_after: 1,
        }
    }

    /// A two-tier pool: a `slow_fraction` of clients is `slowdown`× slower
    /// than the rest (a simple straggler model).
    pub fn two_tier(
        num_clients: usize,
        concurrency: usize,
        base_seconds: f64,
        slow_fraction: f64,
        slowdown: f64,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let seconds = (0..num_clients)
            .map(|_| {
                if rng.gen_bool(slow_fraction.clamp(0.0, 1.0)) {
                    base_seconds * slowdown
                } else {
                    base_seconds
                }
            })
            .collect();
        AsyncConfig {
            max_concurrency: concurrency,
            seconds_per_epoch: seconds,
            staleness: StalenessWeight::Polynomial { exponent: 0.5 },
            eval_every: 10,
            aggregate_after: 1,
        }
    }

    /// Sets the staleness weighting.
    pub fn with_staleness(mut self, staleness: StalenessWeight) -> Self {
        self.staleness = staleness;
        self
    }

    /// Sets the aggregation buffer size (`K` arrivals per server update).
    pub fn with_aggregate_after(mut self, k: usize) -> Self {
        self.aggregate_after = k.max(1);
        self
    }
}

/// A client currently computing, keyed by its completion time.
struct InFlight {
    finish_time: f64,
    client_id: usize,
    /// Server version (number of aggregations) when the snapshot was taken.
    snapshot_version: usize,
    /// The model snapshot the client downloaded (shared, not copied).
    snapshot: Arc<ParamVector>,
    /// Local epochs this dispatch will run.
    epochs: usize,
    /// Derived local RNG seed for this dispatch.
    seed: u64,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.finish_time == other.finish_time && self.client_id == other.client_id
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest finish pops first.
        other
            .finish_time
            .partial_cmp(&self.finish_time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.client_id.cmp(&self.client_id))
    }
}

/// Event-driven asynchronous scheduling with staleness weighting and an
/// aggregation buffer — the legacy
/// [`AsyncSimulation`](crate::async_sim::AsyncSimulation) semantics when
/// `aggregate_after == 1`.
///
/// The schedule keeps `max_concurrency` clients computing at all times.
/// Each tick pops the earliest completion, runs that client's local update
/// against its (possibly stale) θ snapshot, scales the payload by the
/// staleness weight, and flushes the buffer through the algorithm's server
/// update once `aggregate_after` weighted updates have accumulated.
pub struct BufferedAsync {
    config: AsyncConfig,
    in_flight: BinaryHeap<InFlight>,
    busy: Vec<bool>,
    rng: SmallRng,
    buffer: Vec<crate::algorithms::ClientMessage>,
    buffered_epochs: usize,
    buffered_samples: usize,
    version: usize,
    dispatched: usize,
}

impl BufferedAsync {
    /// Creates the scheduler from its pool configuration.
    pub fn new(config: AsyncConfig) -> Self {
        BufferedAsync {
            config,
            in_flight: BinaryHeap::new(),
            busy: Vec::new(),
            rng: SmallRng::seed_from_u64(0),
            buffer: Vec::new(),
            buffered_epochs: 0,
            buffered_samples: 0,
            version: 0,
            dispatched: 0,
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> &AsyncConfig {
        &self.config
    }

    /// Number of server aggregations applied so far.
    pub fn updates_applied(&self) -> usize {
        self.version
    }

    /// Virtual time at which the next in-flight client finishes, if any.
    pub fn next_arrival(&self) -> Option<f64> {
        self.in_flight.peek().map(|job| job.finish_time)
    }

    /// Dispatches idle clients until the pool holds `max_concurrency` jobs.
    fn fill_pool(&mut self, core: &EngineCore<'_>) {
        while self.in_flight.len() < self.config.max_concurrency {
            let idle: Vec<usize> = self
                .busy
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| (!b).then_some(i))
                .collect();
            if idle.is_empty() {
                break;
            }
            let &client_id = idle.choose(&mut self.rng).expect("idle list is non-empty");
            let epochs = if core.config.system_heterogeneity && core.config.local_epochs > 1 {
                self.rng.gen_range(1..=core.config.local_epochs)
            } else {
                core.config.local_epochs
            };
            let duration = self.config.seconds_per_epoch[client_id] * epochs.max(1) as f64;
            let seed = core.config.seed
                ^ (self.dispatched as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (client_id as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            self.busy[client_id] = true;
            self.in_flight.push(InFlight {
                finish_time: core.now() + duration,
                client_id,
                snapshot_version: self.version,
                snapshot: core.broadcast(),
                epochs,
                seed,
            });
            self.dispatched += 1;
        }
    }
}

impl Scheduler for BufferedAsync {
    fn name(&self) -> &'static str {
        "buffered-async"
    }

    fn setting_label(&self, _config: &FedConfig) -> String {
        format!("async, {} concurrent", self.config.max_concurrency)
    }

    fn init(&mut self, core: &mut EngineCore<'_>) -> TensorResult<()> {
        if self.config.seconds_per_epoch.len() != core.config.num_clients {
            return Err(TensorError::InvalidArgument(format!(
                "seconds_per_epoch has {} entries but there are {} clients",
                self.config.seconds_per_epoch.len(),
                core.config.num_clients
            )));
        }
        if self.config.max_concurrency == 0 {
            return Err(TensorError::InvalidArgument(
                "max_concurrency must be at least 1".to_string(),
            ));
        }
        self.busy = vec![false; core.config.num_clients];
        self.rng = SmallRng::seed_from_u64(core.config.seed ^ 0xA517_C0DE);
        self.fill_pool(core);
        Ok(())
    }

    fn tick(&mut self, core: &mut EngineCore<'_>) -> TensorResult<TickReport> {
        let job = self
            .in_flight
            .pop()
            .ok_or_else(|| TensorError::InvalidArgument("no client is in flight".to_string()))?;
        core.advance_clock(job.finish_time);
        self.busy[job.client_id] = false;

        // Run the client's local update against its (possibly stale)
        // snapshot, through the shared dispatch path.
        let order = DispatchOrder {
            client_id: job.client_id,
            epochs: job.epochs,
            snapshot: job.snapshot,
            seed: job.seed,
        };
        let message = core.dispatch_one(&order)?;
        drop(order);

        let staleness = self.version - job.snapshot_version;
        let weight = self.config.staleness.weight(staleness);
        core.add_upload(message.upload_floats());
        core.add_wire_bytes(message.wire_bytes());

        let mut aggregated = false;
        if weight > 0.0 {
            // Scale the payload by the staleness weight and buffer it.
            let mut scaled = message;
            for p in scaled.payload.iter_mut() {
                p.scale(weight);
            }
            // Wire payloads carry the damping in their scale factor; the
            // server folds it into the per-message coefficient.
            if let Some(wire) = &mut scaled.wire {
                wire.scale *= weight;
            }
            self.buffered_epochs += scaled.epochs_run;
            self.buffered_samples += scaled.samples_processed;
            self.buffer.push(scaled);
            if self.buffer.len() >= self.config.aggregate_after {
                core.aggregate(&std::mem::take(&mut self.buffer), &mut self.rng);
                self.version += 1;
                aggregated = true;
            }
        }

        let mut report = TickReport::default();
        let mut accuracy = None;
        if aggregated && self.version.is_multiple_of(self.config.eval_every) {
            let elapsed_ms = (core.now() * 1000.0) as u64;
            let record = core.record_round(RoundStats {
                num_selected: self.config.aggregate_after,
                upload_floats: 0,
                total_local_epochs: std::mem::take(&mut self.buffered_epochs),
                samples_processed: std::mem::take(&mut self.buffered_samples),
                // Like uploads, wire bytes are accounted per event here.
                wire_bytes: 0,
                elapsed_ms,
            })?;
            accuracy = Some(record.test_accuracy);
            report.record = Some(record);
        }
        // Note: this arrival is recorded *after* any round record produced
        // above, so its staleness is attributed to the next record's
        // staleness window (the record's own window closes at evaluation).
        report
            .events
            .push(core.record_event(job.client_id, staleness, weight, accuracy));
        self.fill_pool(core);
        Ok(report)
    }
}
