//! The semi-asynchronous deadline scheduler.
//!
//! The paper motivates FedADMM by the *straggler problem*: a synchronous
//! round lasts as long as its slowest selected client. Fully asynchronous
//! aggregation (the [`BufferedAsync`](super::BufferedAsync) schedule)
//! removes the wait entirely but gives up the round structure. The
//! semi-asynchronous schedule studied here — and in semi-async FL systems
//! like SAFA / FedSAE (see PAPERS.md) — sits between the two:
//!
//! * each round the server dispatches fresh work to every *idle* selected
//!   client with the current θ snapshot;
//! * at the round **deadline** it aggregates whatever arrived, in one
//!   batch;
//! * clients that missed the deadline keep computing — their updates
//!   arrive in a later round, staleness-weighted against the rounds they
//!   missed, instead of being dropped or stalling everyone else.
//!
//! Deadlines govern *virtual* time; the real CPU work of each batch of
//! arrivals still runs through the engine's work-stealing
//! [`DispatchPool`](super::DispatchPool), so simulated stragglers never
//! serialize the simulation itself.
//!
//! Because FedADMM's dual variables absorb variable amounts of local work,
//! it tolerates the resulting mix of fresh and stale updates far better
//! than FedAvg — the engine-parity integration tests pin this down.
//!
//! **Caveat on staleness weighting.** Like the legacy asynchronous engine,
//! staleness damping multiplies the uploaded *payload* by `s(τ)`. That is
//! the natural semantics for delta-style uploads (FedADMM, FedProx,
//! SCAFFOLD, FedSGD): a damped delta is simply a smaller correction. For
//! model-upload algorithms whose server *averages* payloads (FedAvg,
//! FedPD), a damped stale model shrinks the average's total mass, so part
//! of FedAvg's degradation under this scheduler is the weighting scheme
//! itself rather than pure learning dynamics — use
//! [`StalenessWeight::Constant`] to isolate the reordering effect.

use super::scheduler::{
    derive_client_seed, derive_round_seed, DispatchOrder, EngineCore, RoundStats, Scheduler,
    StalenessWeight, TickReport,
};
use crate::algorithms::ClientMessage;
use crate::config::FedConfig;
use crate::param::ParamVector;
use fedadmm_tensor::{TensorError, TensorResult};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a semi-asynchronous (deadline) schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemiAsyncConfig {
    /// Per-client virtual seconds needed to run *one* local epoch. Length
    /// must equal the client population.
    pub seconds_per_epoch: Vec<f64>,
    /// The round deadline in virtual seconds: the server aggregates
    /// whatever arrived within this budget after the round started.
    pub round_deadline: f64,
    /// Staleness weighting applied to straggler updates that arrive after
    /// the round they were dispatched in (τ = rounds missed).
    pub staleness: StalenessWeight,
}

impl SemiAsyncConfig {
    /// A uniform-speed fleet with the given per-epoch cost and deadline.
    pub fn homogeneous(num_clients: usize, seconds_per_epoch: f64, round_deadline: f64) -> Self {
        SemiAsyncConfig {
            seconds_per_epoch: vec![seconds_per_epoch; num_clients],
            round_deadline,
            staleness: StalenessWeight::Polynomial { exponent: 0.5 },
        }
    }

    /// A two-tier fleet: a `slow_fraction` of clients is `slowdown`× slower
    /// (deterministic assignment: every ⌈1/slow_fraction⌉-th client is slow).
    pub fn two_tier(
        num_clients: usize,
        base_seconds: f64,
        slow_fraction: f64,
        slowdown: f64,
        round_deadline: f64,
    ) -> Self {
        let period = if slow_fraction <= 0.0 {
            usize::MAX
        } else {
            (1.0 / slow_fraction).round().max(1.0) as usize
        };
        let seconds = (0..num_clients)
            .map(|i| {
                if period != usize::MAX && i % period == period - 1 {
                    base_seconds * slowdown
                } else {
                    base_seconds
                }
            })
            .collect();
        SemiAsyncConfig {
            seconds_per_epoch: seconds,
            round_deadline,
            staleness: StalenessWeight::Polynomial { exponent: 0.5 },
        }
    }

    /// Sets the staleness weighting.
    pub fn with_staleness(mut self, staleness: StalenessWeight) -> Self {
        self.staleness = staleness;
        self
    }
}

/// A dispatched job that has not arrived at the server yet.
struct Pending {
    client_id: usize,
    finish_time: f64,
    /// Round in which the job was dispatched.
    dispatch_round: usize,
    snapshot: Arc<ParamVector>,
    epochs: usize,
    seed: u64,
}

/// Deadline-driven rounds with straggler carry-over (see the module docs).
pub struct SemiAsync {
    config: SemiAsyncConfig,
    pending: Vec<Pending>,
    busy: Vec<bool>,
}

impl SemiAsync {
    /// Creates the scheduler from its fleet configuration.
    pub fn new(config: SemiAsyncConfig) -> Self {
        SemiAsync {
            config,
            pending: Vec::new(),
            busy: Vec::new(),
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &SemiAsyncConfig {
        &self.config
    }

    /// Number of straggler jobs still in flight.
    pub fn stragglers_in_flight(&self) -> usize {
        self.pending.len()
    }
}

impl Scheduler for SemiAsync {
    fn name(&self) -> &'static str {
        "semi-async"
    }

    fn setting_label(&self, config: &FedConfig) -> String {
        format!(
            "semi-async, {} clients, deadline {}s",
            config.num_clients, self.config.round_deadline
        )
    }

    fn init(&mut self, core: &mut EngineCore<'_>) -> TensorResult<()> {
        if self.config.seconds_per_epoch.len() != core.config.num_clients {
            return Err(TensorError::InvalidArgument(format!(
                "seconds_per_epoch has {} entries but there are {} clients",
                self.config.seconds_per_epoch.len(),
                core.config.num_clients
            )));
        }
        if !self.config.round_deadline.is_finite() || self.config.round_deadline <= 0.0 {
            return Err(TensorError::InvalidArgument(
                "round_deadline must be positive".to_string(),
            ));
        }
        self.busy = vec![false; core.config.num_clients];
        Ok(())
    }

    fn tick(&mut self, core: &mut EngineCore<'_>) -> TensorResult<TickReport> {
        let round = core.round();
        let mut round_rng = SmallRng::seed_from_u64(derive_round_seed(
            core.config.seed ^ 0x5EA1_A57C,
            round as u64,
        ));

        // 1. Select and dispatch fresh work to idle clients with the
        //    *current* θ snapshot (zero-copy broadcast).
        let selected = core
            .selector
            .select(core.config.num_clients, &mut round_rng);
        let snapshot = core.broadcast();
        let round_start = core.now();
        for &client_id in &selected {
            if self.busy[client_id] {
                continue; // still computing a previous round's job
            }
            let epochs = core.work_schedule.epochs_for(client_id, &mut round_rng);
            let duration = self.config.seconds_per_epoch[client_id] * epochs.max(1) as f64;
            self.busy[client_id] = true;
            self.pending.push(Pending {
                client_id,
                finish_time: round_start + duration,
                dispatch_round: round,
                snapshot: snapshot.clone(),
                epochs,
                seed: derive_client_seed(core.config.seed, round as u64, client_id),
            });
        }
        drop(snapshot);
        if self.pending.is_empty() {
            return Err(TensorError::InvalidArgument(
                "semi-async round has no work in flight".to_string(),
            ));
        }

        // 2. The round ends at the deadline — or at the earliest arrival if
        //    the deadline would catch nothing (guaranteed progress).
        let mut deadline = round_start + self.config.round_deadline;
        let earliest = self
            .pending
            .iter()
            .map(|p| p.finish_time)
            .fold(f64::INFINITY, f64::min);
        if earliest > deadline {
            deadline = earliest;
        }
        core.advance_clock(deadline);

        // 3. Collect everything that made the deadline; stragglers stay in
        //    `pending` and carry their stale snapshots forward.
        let (mut arrived, still_pending): (Vec<Pending>, Vec<Pending>) = self
            .pending
            .drain(..)
            .partition(|p| p.finish_time <= deadline);
        self.pending = still_pending;
        arrived.sort_by(|a, b| {
            a.finish_time
                .partial_cmp(&b.finish_time)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.client_id.cmp(&b.client_id))
        });

        // 4. Run all arrived local updates through the shared parallel
        //    dispatch path (each against its own dispatch-time snapshot).
        let orders: Vec<DispatchOrder> = arrived
            .iter()
            .map(|p| DispatchOrder {
                client_id: p.client_id,
                epochs: p.epochs,
                snapshot: Arc::clone(&p.snapshot),
                seed: p.seed,
            })
            .collect();
        core.telemetry().on_phase_start("dispatch", round);
        let mut messages = core.dispatch(&orders)?;
        core.telemetry().on_phase_end("dispatch", round);
        drop(orders);

        // 5. Staleness-weight the stragglers' payloads (τ = rounds missed),
        //    record the arrival events, and drop zero-weight updates.
        let mut report = TickReport::default();
        let mut kept: Vec<ClientMessage> = Vec::with_capacity(messages.len());
        let mut total_epochs = 0usize;
        let mut total_samples = 0usize;
        for message in messages.drain(..) {
            let pending = arrived
                .iter()
                .find(|p| p.client_id == message.client_id)
                .expect("arrived job for every message");
            self.busy[message.client_id] = false;
            let staleness = round - pending.dispatch_round;
            let weight = self.config.staleness.weight(staleness);
            core.add_upload(message.upload_floats());
            core.add_wire_bytes(message.wire_bytes());
            report
                .events
                .push(core.record_event(message.client_id, staleness, weight, None));
            if weight > 0.0 {
                total_epochs += message.epochs_run;
                total_samples += message.samples_processed;
                let mut scaled = message;
                if weight != 1.0 {
                    for p in scaled.payload.iter_mut() {
                        p.scale(weight);
                    }
                    // Wire payloads carry the damping in their scale factor
                    // (codes cannot be scaled without decoding); the server
                    // folds it into the per-message coefficient.
                    if let Some(wire) = &mut scaled.wire {
                        wire.scale *= weight;
                    }
                }
                kept.push(scaled);
            }
        }

        // 6. Aggregate the round's arrivals in one batch and evaluate.
        let upload_floats: usize = kept.iter().map(|m| m.upload_floats()).sum();
        let wire_bytes: usize = kept.iter().map(|m| m.wire_bytes()).sum();
        if !kept.is_empty() {
            core.telemetry().on_phase_start("aggregate", round);
            core.aggregate(&kept, &mut round_rng);
            core.telemetry().on_phase_end("aggregate", round);
        }
        let record = core.record_round(RoundStats {
            num_selected: kept.len(),
            upload_floats,
            total_local_epochs: total_epochs,
            samples_processed: total_samples,
            wire_bytes,
            elapsed_ms: ((core.now() - round_start) * 1000.0) as u64,
        })?;
        report.record = Some(record);
        Ok(report)
    }
}
