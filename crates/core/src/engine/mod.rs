//! The unified federated simulation engine.
//!
//! Historically this crate had two disjoint engines — a synchronous
//! round-based `Simulation` and an event-driven `AsyncSimulation` — that
//! duplicated client selection, model broadcast, local-update dispatch and
//! server aggregation. [`RoundEngine`] unifies them: it owns all the
//! federated plumbing (datasets, per-client state, the global model, the
//! algorithm, metrics) and drives rounds through a pluggable
//! [`Scheduler`]:
//!
//! | Scheduler | Protocol | Paper connection |
//! |-----------|----------|------------------|
//! | [`SyncRounds`] | select → dispatch all → wait for all → aggregate | Figure 1/2, the paper's evaluation protocol |
//! | [`BufferedAsync`] | apply each arrival, staleness-weighted (buffer `K ≥ 1`) | the asynchronous-ADMM trade-off of Section II |
//! | [`SemiAsync`] | aggregate whatever arrived by the round deadline; carry stragglers forward | the straggler tolerance claim of Section I |
//!
//! Engine-level guarantees shared by every scheduler:
//!
//! * **Zero-copy broadcast.** θ is handed to clients as an
//!   [`Arc<ParamVector>`](std::sync::Arc) snapshot; the server mutates it
//!   copy-on-write ([`Arc::make_mut`](std::sync::Arc::make_mut)), so the
//!   synchronous path never copies the model at all and the asynchronous
//!   paths copy at most once per aggregation.
//! * **One parallel dispatch path.** All local updates run through
//!   [`EngineCore::dispatch`], backed by a persistent work-stealing
//!   [`DispatchPool`]: workers claim job chunks from a shared cursor (so
//!   stragglers never serialize a partition) and reuse per-thread scratch
//!   arenas (so steady-state dispatch allocates nothing). Every job's RNG
//!   stream is derived from `(seed, round, client_id)`, so results are
//!   byte-identical across worker counts, chunk sizes, the legacy
//!   [`DispatchMode::Static`] schedule *and* the scheduler that issued
//!   the work.
//! * **Single-pass aggregation.** Algorithms fold all payloads into θ with
//!   one fused accumulator pass
//!   ([`ParamVector::accumulate`](crate::param::ParamVector::accumulate))
//!   instead of one full `axpy` sweep per message. Large cohorts can opt
//!   into [`AggregationMode::Hierarchical`]: per-shard partial folds in
//!   parallel plus a log-depth combine.
//! * **Pluggable client-state storage.** Per-client state lives behind a
//!   [`ClientStateStore`](fedadmm_clientstore::ClientStateStore): dense
//!   in-memory (the default, byte-identical to the legacy engine), lazily
//!   sharded, or LRU spill-to-disk under a memory budget
//!   ([`RoundEngine::new_with_store`]) — which makes million-client
//!   populations simulable on a workstation.
//!
//! The legacy [`Simulation`](crate::simulation::Simulation) and
//! [`AsyncSimulation`](crate::async_sim::AsyncSimulation) types survive as
//! thin deprecated wrappers over this engine.
//!
//! ## Example
//!
//! ```
//! use fedadmm_core::engine::{RoundEngine, SyncRounds};
//! use fedadmm_core::prelude::*;
//! use fedadmm_data::synthetic::SyntheticDataset;
//! use fedadmm_nn::models::ModelSpec;
//!
//! let config = FedConfig {
//!     num_clients: 10,
//!     participation: Participation::Fraction(0.3),
//!     local_epochs: 2,
//!     batch_size: BatchSize::Size(16),
//!     local_learning_rate: 0.1,
//!     model: ModelSpec::Logistic { input_dim: 784, num_classes: 10 },
//!     seed: 7,
//!     ..FedConfig::default()
//! };
//! let (train, test) = SyntheticDataset::Mnist.generate(200, 50, 7);
//! let partition = DataDistribution::Iid.partition(&train, config.num_clients, 7);
//! let algorithm = FedAdmm::new(0.01, ServerStepSize::Constant(1.0));
//! let mut engine =
//!     RoundEngine::new(config, train, test, partition, algorithm, SyncRounds).unwrap();
//! let history = engine.run_rounds(3).unwrap();
//! assert_eq!(history.len(), 3);
//! ```

pub mod buffered;
pub mod dispatch;
pub mod scheduler;
pub mod semi_async;
pub mod sync;
pub mod wire;

pub use buffered::{AsyncConfig, BufferedAsync};
pub use dispatch::{DispatchBatchStats, DispatchConfig, DispatchMode, DispatchPool};
pub use scheduler::{
    AggregationMode, AsyncRecord, DispatchOrder, EngineCore, RoundStats, Scheduler,
    StalenessWeight, TickReport,
};
pub use semi_async::{SemiAsync, SemiAsyncConfig};
pub use sync::SyncRounds;
pub use wire::{WireGuard, WirePath, WirePathConfig};

use crate::algorithms::Algorithm;
use crate::client::ClientState;
use crate::config::FedConfig;
use crate::heterogeneity::LocalWorkSchedule;
use crate::metrics::{RoundRecord, RunHistory};
use crate::param::ParamVector;
use crate::selection::{ClientSelector, FullParticipation, UniformFraction};
use crate::trainer::evaluate;
use fedadmm_clientstore::{ClientStateStore, StoreConfig};
use fedadmm_data::partition::Partition;
use fedadmm_data::Dataset;
use fedadmm_telemetry::{NoTelemetry, Telemetry};
use fedadmm_tensor::{TensorError, TensorResult};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A federated run driven by a pluggable [`Scheduler`].
///
/// See the [module docs](self) for the architecture; the API mirrors the
/// legacy `Simulation` (`run_round`, `run_rounds`, `run_until_accuracy`,
/// accessors) plus scheduler access and the event stream of event-driven
/// schedules.
pub struct RoundEngine<A: Algorithm, S: Scheduler> {
    config: FedConfig,
    train: Dataset,
    test: Dataset,
    store: Box<dyn ClientStateStore>,
    global: Arc<ParamVector>,
    algorithm: A,
    selector: Box<dyn ClientSelector>,
    work_schedule: LocalWorkSchedule,
    scheduler: S,
    history: RunHistory,
    events: Vec<AsyncRecord>,
    clock: f64,
    cumulative_upload: usize,
    cumulative_wire_bytes: usize,
    round: usize,
    telemetry: Box<dyn Telemetry>,
    /// First event index not yet attributed to a round record.
    event_mark: usize,
    /// ρ used for the per-round optimality-gap gauge, if enabled.
    gap_rho: Option<f32>,
    /// How the server folds each round's payloads into θ.
    aggregation: AggregationMode,
    /// The persistent dispatch pool every tick's client work runs on.
    pool: DispatchPool,
    /// The resolved wire path (compression + privacy on the upload edge),
    /// `None` when uploads stay dense.
    wire: Option<WirePath>,
}

impl<A: Algorithm, S: Scheduler> RoundEngine<A, S> {
    /// Creates an engine.
    ///
    /// The global model is randomly initialised from `config.seed` (the
    /// paper: "We adopt random initialization for the global model in all
    /// algorithms, zero initialization for dual variables…"); every client
    /// starts with a copy of it and zero dual/control variates. The
    /// scheduler's own configuration is validated by its
    /// [`Scheduler::init`] hook.
    pub fn new(
        config: FedConfig,
        train: Dataset,
        test: Dataset,
        partition: Partition,
        algorithm: A,
        scheduler: S,
    ) -> TensorResult<Self> {
        Self::new_with_store(
            config,
            train,
            test,
            partition,
            algorithm,
            scheduler,
            &StoreConfig::InMemory,
        )
    }

    /// Creates an engine whose per-client state lives in the configured
    /// [`StoreConfig`] backend.
    ///
    /// [`StoreConfig::InMemory`] reproduces [`RoundEngine::new`] bit for
    /// bit; [`StoreConfig::Sharded`] materializes clients lazily on first
    /// selection; [`StoreConfig::Spill`] additionally evicts least-recently
    /// selected shards to disk under a byte budget — the backend for
    /// million-client populations.
    pub fn new_with_store(
        config: FedConfig,
        train: Dataset,
        test: Dataset,
        partition: Partition,
        mut algorithm: A,
        scheduler: S,
        store_config: &StoreConfig,
    ) -> TensorResult<Self> {
        if partition.num_clients() != config.num_clients {
            return Err(TensorError::InvalidArgument(format!(
                "partition has {} clients but the configuration expects {}",
                partition.num_clients(),
                config.num_clients
            )));
        }
        if train.feature_dim() != config.model.input_dim() {
            return Err(TensorError::InvalidArgument(format!(
                "dataset features have dimension {} but the model expects {}",
                train.feature_dim(),
                config.model.input_dim()
            )));
        }
        let mut init_rng = SmallRng::seed_from_u64(config.seed);
        let net = config.model.build(&mut init_rng);
        let global = Arc::new(ParamVector::from_vec(net.params_flat()));
        let store = store_config.build(partition.into_client_indices(), &global)?;

        algorithm.init(global.len(), config.num_clients);
        let selector: Box<dyn ClientSelector> = if algorithm.requires_full_participation() {
            Box::new(FullParticipation)
        } else {
            Box::new(UniformFraction::new(config.clients_per_round()))
        };
        let work_schedule = if algorithm.supports_variable_work() {
            LocalWorkSchedule::from_config(config.local_epochs, config.system_heterogeneity)
        } else {
            LocalWorkSchedule::Fixed(config.local_epochs)
        };
        let history = RunHistory::new(algorithm.name(), scheduler.setting_label(&config));
        let mut engine = RoundEngine {
            config,
            train,
            test,
            store,
            global,
            algorithm,
            selector,
            work_schedule,
            scheduler,
            history,
            events: Vec::new(),
            clock: 0.0,
            cumulative_upload: 0,
            cumulative_wire_bytes: 0,
            round: 0,
            telemetry: Box::new(NoTelemetry),
            event_mark: 0,
            gap_rho: None,
            aggregation: AggregationMode::SinglePass,
            pool: DispatchPool::new(DispatchConfig::default()),
            wire: WirePathConfig::default().resolve(),
        };
        let mut core = EngineCore {
            config: &engine.config,
            train: &engine.train,
            test: &engine.test,
            store: engine.store.as_mut(),
            global: &mut engine.global,
            algorithm: &mut engine.algorithm,
            selector: &*engine.selector,
            work_schedule: &engine.work_schedule,
            history: &mut engine.history,
            events: &mut engine.events,
            clock: &mut engine.clock,
            cumulative_upload: &mut engine.cumulative_upload,
            cumulative_wire_bytes: &mut engine.cumulative_wire_bytes,
            round: &mut engine.round,
            telemetry: engine.telemetry.as_mut(),
            event_mark: &mut engine.event_mark,
            aggregation: engine.aggregation,
            pool: &engine.pool,
            wire: engine.wire.as_ref(),
        };
        engine.scheduler.init(&mut core)?;
        Ok(engine)
    }

    /// Selects the server aggregation strategy.
    /// [`AggregationMode::SinglePass`] (the default) is byte-identical to
    /// the legacy engine; [`AggregationMode::Hierarchical`] folds per shard
    /// in parallel with a log-depth combine, for large cohorts. Algorithms
    /// without a [`FoldPlan`](crate::algorithms::FoldPlan) always use the
    /// sequential path.
    pub fn with_aggregation(mut self, mode: AggregationMode) -> Self {
        self.aggregation = mode;
        self
    }

    /// Rebuilds the dispatch pool from an explicit [`DispatchConfig`]
    /// (worker count, chunk size, scheduling mode). The default pool
    /// resolves everything from `FEDADMM_DISPATCH_*` environment variables
    /// and the hardware. Dispatch results are byte-identical for every
    /// configuration; only the schedule (and the wall clock) changes.
    pub fn with_dispatch(mut self, config: DispatchConfig) -> Self {
        self.pool = DispatchPool::new(config);
        self
    }

    /// Pins the dispatch pool's worker count, keeping the rest of the
    /// dispatch configuration as resolved.
    pub fn with_dispatch_workers(self, workers: usize) -> Self {
        let mut config = self.pool.config();
        config.workers = Some(workers);
        self.with_dispatch(config)
    }

    /// The dispatch pool the engine's client work runs on.
    pub fn dispatch_pool(&self) -> &DispatchPool {
        &self.pool
    }

    /// Configures the wire path (upload compression + privacy, fused into
    /// dispatch and aggregation — see [`wire`]). The default resolves
    /// `FEDADMM_WIRE_PATH` / `FEDADMM_WIRE_BITS` from the environment and
    /// is otherwise off; [`WirePathConfig::disabled`] pins it off (the
    /// dense path is byte-identical to the pre-wire engine), and
    /// [`WirePathConfig::enabled`] pins it on with an explicit quantizer.
    pub fn with_wire_path(mut self, config: WirePathConfig) -> Self {
        self.wire = config.resolve();
        self
    }

    /// The resolved wire path, if uploads are being encoded.
    pub fn wire_path(&self) -> Option<&WirePath> {
        self.wire.as_ref()
    }

    /// Caps evaluation at a fraction of the test set per round: a
    /// `fraction >= 1.0` keeps the current behavior (the full test set);
    /// smaller values evaluate on the first `⌈fraction·n⌉` samples (at
    /// least one).
    /// Large-population benchmarks use this to keep per-round evaluation
    /// from dominating wall time.
    pub fn eval_subset(mut self, fraction: f64) -> Self {
        self.config.eval_subset = if fraction >= 1.0 {
            usize::MAX
        } else {
            let n = self.test.len();
            (((n as f64) * fraction.max(0.0)).ceil() as usize).clamp(1, n.max(1))
        };
        self
    }

    /// Replaces the client-selection scheme (the default is uniform-random
    /// `C·m` clients, or full participation for algorithms that require it).
    pub fn with_selector(mut self, selector: Box<dyn ClientSelector>) -> Self {
        self.selector = selector;
        self
    }

    /// Replaces the local-work schedule (e.g. a deterministic per-client
    /// schedule for ablations).
    pub fn with_work_schedule(mut self, schedule: LocalWorkSchedule) -> Self {
        self.work_schedule = schedule;
        self
    }

    /// Installs observability hooks (e.g. a
    /// [`Recorder`](fedadmm_telemetry::Recorder)). The default is
    /// [`NoTelemetry`], whose `enabled() == false` keeps the hot path free
    /// of timing calls — an uninstrumented run is byte-identical.
    pub fn with_telemetry(mut self, telemetry: Box<dyn Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables the per-round optimality-gap gauge: after every completed
    /// round the engine computes `V_t` (equation (7), via
    /// [`diagnostics::optimality_gap`](crate::diagnostics::optimality_gap)
    /// with penalty `rho`) and reports it through
    /// [`Telemetry::on_gauge`] as `"optimality_gap"`. Opt-in because the
    /// gap is an O(total samples) computation per round.
    pub fn with_optimality_gap(mut self, rho: f32) -> Self {
        self.gap_rho = Some(rho);
        self
    }

    /// Mutable access to the installed telemetry hooks (e.g. to export a
    /// recorder's metrics mid-run).
    pub fn telemetry_mut(&mut self) -> &mut dyn Telemetry {
        self.telemetry.as_mut()
    }

    /// Removes the installed telemetry hooks (replacing them with the
    /// no-op default) and returns them — the usual way to export traces
    /// and metrics once a run finishes.
    pub fn take_telemetry(&mut self) -> Box<dyn Telemetry> {
        std::mem::replace(&mut self.telemetry, Box::new(NoTelemetry))
    }

    /// The configuration this engine runs under.
    pub fn config(&self) -> &FedConfig {
        &self.config
    }

    /// Immutable access to the algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// Mutable access to the algorithm — used by the experiments that adjust
    /// η or ρ mid-run (Figures 6 and 9).
    pub fn algorithm_mut(&mut self) -> &mut A {
        &mut self.algorithm
    }

    /// Immutable access to the scheduler.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Mutable access to the scheduler.
    pub fn scheduler_mut(&mut self) -> &mut S {
        &mut self.scheduler
    }

    /// The current global model θ.
    pub fn global_model(&self) -> &ParamVector {
        &self.global
    }

    /// Immutable access to the client states (for tests and diagnostics).
    ///
    /// # Panics
    /// Panics for sharded/spill backends, which never hold all `m` states
    /// in memory at once — use [`RoundEngine::store`] and
    /// [`ClientStateStore::for_each_state`] instead.
    pub fn clients(&self) -> &[ClientState] {
        self.store
            .dense()
            .expect("clients() requires the in-memory store; use store().for_each_state instead")
    }

    /// The client-state store backing this engine.
    pub fn store(&self) -> &dyn ClientStateStore {
        self.store.as_ref()
    }

    /// Mutable access to the store (e.g. to stream states through
    /// [`ClientStateStore::for_each_state`]).
    pub fn store_mut(&mut self) -> &mut dyn ClientStateStore {
        self.store.as_mut()
    }

    /// The round history recorded so far.
    pub fn history(&self) -> &RunHistory {
        &self.history
    }

    /// Arrival events recorded so far (event-driven schedules; empty for
    /// [`SyncRounds`]).
    pub fn events(&self) -> &[AsyncRecord] {
        &self.events
    }

    /// Number of history rounds recorded so far.
    pub fn rounds_completed(&self) -> usize {
        self.round
    }

    /// The current virtual time (0 for purely synchronous schedules).
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Cumulative floats uploaded by clients so far.
    pub fn cumulative_upload_floats(&self) -> usize {
        self.cumulative_upload
    }

    /// Cumulative client → server traffic in true wire bytes: the
    /// quantized size when the wire path encoded an upload, the dense
    /// `4 · floats` size otherwise.
    pub fn cumulative_wire_bytes(&self) -> usize {
        self.cumulative_wire_bytes
    }

    /// Evaluates the current global model on the test set, returning
    /// `(loss, accuracy)`.
    pub fn evaluate_global(&self) -> TensorResult<(f32, f32)> {
        evaluate(
            self.config.model,
            self.global.as_slice(),
            &self.test,
            self.config.eval_subset,
        )
    }

    /// Observed staleness of recorded arrivals: `(mean, max)`.
    pub fn staleness_stats(&self) -> (f64, usize) {
        if self.events.is_empty() {
            return (0.0, 0);
        }
        let sum: usize = self.events.iter().map(|r| r.staleness).sum();
        let max = self.events.iter().map(|r| r.staleness).max().unwrap_or(0);
        (sum as f64 / self.events.len() as f64, max)
    }

    /// Advances the schedule by one tick and reports what happened.
    pub fn step(&mut self) -> TensorResult<TickReport> {
        let scheduler_name = self.scheduler.name();
        let tick_round = self.round;
        self.telemetry.on_tick_start(scheduler_name, tick_round);
        // Split-borrow: the scheduler is taken out of the struct for the
        // tick so the core can borrow the rest mutably.
        let mut core = EngineCore {
            config: &self.config,
            train: &self.train,
            test: &self.test,
            store: self.store.as_mut(),
            global: &mut self.global,
            algorithm: &mut self.algorithm,
            selector: &*self.selector,
            work_schedule: &self.work_schedule,
            history: &mut self.history,
            events: &mut self.events,
            clock: &mut self.clock,
            cumulative_upload: &mut self.cumulative_upload,
            cumulative_wire_bytes: &mut self.cumulative_wire_bytes,
            round: &mut self.round,
            telemetry: self.telemetry.as_mut(),
            event_mark: &mut self.event_mark,
            aggregation: self.aggregation,
            pool: &self.pool,
            wire: self.wire.as_ref(),
        };
        let report = self.scheduler.tick(&mut core);
        self.telemetry.on_tick_end(scheduler_name, tick_round);
        let report = report?;
        if report.record.is_some() {
            if let Some(rho) = self.gap_rho {
                let clients = self.store.dense().ok_or_else(|| {
                    TensorError::InvalidArgument(
                        "optimality-gap diagnostics require the in-memory store".to_string(),
                    )
                })?;
                let gap = crate::diagnostics::optimality_gap(
                    clients,
                    &self.global,
                    rho,
                    self.config.model,
                    &self.train,
                )?;
                self.telemetry
                    .on_gauge("optimality_gap", gap.total() as f64);
            }
        }
        Ok(report)
    }

    /// Runs ticks until one produces a round record, and returns it.
    ///
    /// For [`SyncRounds`] and [`SemiAsync`] every tick is a round; for
    /// [`BufferedAsync`] this advances arrivals until the next evaluation
    /// point (bounded by an internal safety cap).
    pub fn run_round(&mut self) -> TensorResult<RoundRecord> {
        // Cap the tick count so drop-everything staleness policies cannot
        // spin forever without producing a record.
        const MAX_TICKS_PER_ROUND: usize = 10_000;
        for _ in 0..MAX_TICKS_PER_ROUND {
            if let Some(record) = self.step()?.record {
                return Ok(record);
            }
        }
        Err(TensorError::InvalidArgument(
            "scheduler produced no round record within the tick budget".to_string(),
        ))
    }

    /// Runs `rounds` additional rounds and returns the records produced.
    pub fn run_rounds(&mut self, rounds: usize) -> TensorResult<Vec<RoundRecord>> {
        let mut records = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            records.push(self.run_round()?);
        }
        Ok(records)
    }

    /// Runs until the test accuracy reaches `target` or `max_rounds` rounds
    /// have been executed. Returns the 1-based round count at which the
    /// target was reached, or `None` (after running `max_rounds` rounds).
    pub fn run_until_accuracy(
        &mut self,
        target: f32,
        max_rounds: usize,
    ) -> TensorResult<Option<usize>> {
        if let Some(r) = self.history.rounds_to_accuracy(target) {
            return Ok(Some(r));
        }
        while self.round < max_rounds {
            let record = self.run_round()?;
            if record.test_accuracy >= target {
                return Ok(Some(self.round));
            }
        }
        Ok(None)
    }

    /// Consumes the engine and returns its history.
    pub fn into_history(self) -> RunHistory {
        self.history
    }
}

/// A synchronous-round engine (the common case).
pub type SyncEngine<A> = RoundEngine<A, SyncRounds>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FedAdmm, FedAvg};
    use crate::config::{DataDistribution, Participation};
    use fedadmm_data::batching::BatchSize;
    use fedadmm_data::synthetic::SyntheticDataset;
    use fedadmm_nn::models::ModelSpec;

    fn small_config(num_clients: usize, seed: u64) -> FedConfig {
        FedConfig {
            num_clients,
            participation: Participation::Fraction(0.3),
            local_epochs: 2,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(16),
            local_learning_rate: 0.1,
            model: ModelSpec::Logistic {
                input_dim: 784,
                num_classes: 10,
            },
            seed,
            eval_subset: usize::MAX,
        }
    }

    fn make_engine<A: Algorithm, S: Scheduler>(
        algorithm: A,
        scheduler: S,
        num_clients: usize,
        samples: usize,
        seed: u64,
    ) -> RoundEngine<A, S> {
        let config = small_config(num_clients, seed);
        let (train, test) = SyntheticDataset::Mnist.generate(samples, 60, seed);
        let partition = DataDistribution::Iid.partition(&train, num_clients, seed);
        RoundEngine::new(config, train, test, partition, algorithm, scheduler).unwrap()
    }

    #[test]
    fn sync_engine_runs_rounds_and_records_metrics() {
        let mut engine = make_engine(FedAvg::new(), SyncRounds, 6, 120, 4);
        let record = engine.run_round().unwrap();
        assert_eq!(record.round, 0);
        assert_eq!(record.num_selected, 2); // 30% of 6, rounded
        assert!(record.upload_floats > 0);
        assert_eq!(record.cumulative_upload_floats, record.upload_floats);
        assert_eq!(engine.rounds_completed(), 1);
        assert!(
            engine.events().is_empty(),
            "sync schedules record no events"
        );
    }

    #[test]
    fn sync_engine_is_deterministic_in_seed() {
        let mut a = make_engine(FedAdmm::paper_default(), SyncRounds, 6, 120, 5);
        let mut b = make_engine(FedAdmm::paper_default(), SyncRounds, 6, 120, 5);
        a.run_rounds(3).unwrap();
        b.run_rounds(3).unwrap();
        // Histories agree on everything except wall-clock timing.
        let (mut ha, mut hb) = (a.history().clone(), b.history().clone());
        for r in ha.records.iter_mut().chain(hb.records.iter_mut()) {
            r.elapsed_ms = 0;
        }
        assert_eq!(ha, hb);
        assert_eq!(a.global_model(), b.global_model());
    }

    #[test]
    fn buffered_engine_reproduces_event_driven_behavior() {
        let pool = AsyncConfig::homogeneous(6, 3, 1.0);
        let mut engine = make_engine(FedAvg::new(), BufferedAsync::new(pool), 6, 120, 6);
        for _ in 0..12 {
            engine.step().unwrap();
        }
        assert_eq!(engine.events().len(), 12);
        assert!(engine.now() > 0.0);
        for pair in engine.events().windows(2) {
            assert!(pair[1].sim_time >= pair[0].sim_time);
        }
        assert_eq!(engine.scheduler().updates_applied(), 12);
    }

    #[test]
    fn buffered_engine_with_buffer_aggregates_in_batches() {
        let pool = AsyncConfig::homogeneous(6, 3, 1.0).with_aggregate_after(4);
        let mut engine = make_engine(FedAvg::new(), BufferedAsync::new(pool), 6, 120, 7);
        for _ in 0..8 {
            engine.step().unwrap();
        }
        // 8 arrivals with a buffer of 4 → exactly 2 server aggregations.
        assert_eq!(engine.scheduler().updates_applied(), 2);
    }

    #[test]
    fn semi_async_rounds_progress_under_stragglers() {
        // Deadline of 2.5s on a fleet where the straggler tier needs 3s per
        // epoch (6s per two-epoch job): fast clients make every deadline,
        // stragglers arrive a couple of rounds late.
        let fleet = SemiAsyncConfig::two_tier(8, 1.0, 0.25, 3.0, 2.5);
        let mut engine = make_engine(FedAdmm::paper_default(), SemiAsync::new(fleet), 8, 160, 8);
        let records = engine.run_rounds(10).unwrap();
        assert_eq!(records.len(), 10);
        assert!(engine.now() >= 10.0 * 2.5 - 1e-9);
        let (_, max_staleness) = engine.staleness_stats();
        assert!(
            max_staleness > 0,
            "stragglers must arrive with staleness > 0"
        );
        // Straggler carry-over: at least one event is stale but applied.
        assert!(engine
            .events()
            .iter()
            .any(|e| e.staleness > 0 && e.weight > 0.0));
    }

    #[test]
    fn semi_async_is_deterministic_in_seed() {
        let fleet = SemiAsyncConfig::two_tier(8, 1.0, 0.25, 10.0, 2.5);
        let mut a = make_engine(
            FedAdmm::paper_default(),
            SemiAsync::new(fleet.clone()),
            8,
            160,
            9,
        );
        let mut b = make_engine(FedAdmm::paper_default(), SemiAsync::new(fleet), 8, 160, 9);
        a.run_rounds(4).unwrap();
        b.run_rounds(4).unwrap();
        assert_eq!(a.history(), b.history());
        assert_eq!(a.global_model(), b.global_model());
    }

    #[test]
    fn zero_copy_broadcast_shares_the_global_allocation() {
        let mut engine = make_engine(FedAvg::new(), SyncRounds, 5, 100, 10);
        let before = engine.global_model().as_slice().as_ptr();
        engine.run_round().unwrap();
        // With no live snapshots at aggregation time the sync path mutates
        // θ in place — the allocation survives the round.
        let after = engine.global_model().as_slice().as_ptr();
        assert_eq!(before, after, "sync aggregation should not reallocate θ");
    }
}
