//! The [`Scheduler`] trait and the [`EngineCore`] facilities it drives.
//!
//! A scheduler owns *when* client work is dispatched and *when* the server
//! aggregates; the engine owns everything else (datasets, client state, the
//! global model, metrics). One tick of the scheduler corresponds to one
//! scheduling decision:
//!
//! * [`SyncRounds`](super::SyncRounds) — a tick is a full synchronous round
//!   (select → dispatch all → aggregate all → evaluate);
//! * [`BufferedAsync`](super::BufferedAsync) — a tick is one *arrival*: the
//!   earliest in-flight client finishes, its update is staleness-weighted
//!   and buffered, and the buffer is flushed to the server once it holds
//!   `aggregate_after` updates;
//! * [`SemiAsync`](super::SemiAsync) — a tick is one *deadline round*: the
//!   server aggregates whatever arrived by the deadline and carries
//!   stragglers (with their stale snapshots) into later rounds.
//!
//! The engine's dispatch facilities guarantee two properties schedulers rely
//! on:
//!
//! 1. **zero-copy broadcast** — clients download θ as an
//!    [`Arc<ParamVector>`] snapshot; no per-client copy of the model is ever
//!    made (the server clones lazily, only when it must mutate θ while
//!    stale snapshots are still alive);
//! 2. **schedule-independent randomness** — each dispatched job derives its
//!    RNG stream from `(seed, tick, client_id)`, so results do not depend
//!    on thread interleaving or on which scheduler issued the work.

use super::dispatch::{DispatchBatchStats, DispatchMode, DispatchPool, DispatchScratch};
use super::wire::{decode_message, WirePath};
use crate::algorithms::{total_upload, Algorithm, ClientMessage, FoldPlan, ServerOutcome};
use crate::client::ClientState;
use crate::config::FedConfig;
use crate::heterogeneity::LocalWorkSchedule;
use crate::metrics::{RoundRecord, RunHistory};
use crate::param::ParamVector;
use crate::selection::ClientSelector;
use crate::trainer::{evaluate, LocalEnv};
use fedadmm_clientstore::{hierarchical_dequant_sum, hierarchical_weighted_sum, ClientStateStore};
use fedadmm_data::Dataset;
use fedadmm_telemetry::{names, DispatchSummary, RoundSummary, Telemetry};
use fedadmm_tensor::{TensorError, TensorResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// How the server folds a round's payloads into θ.
///
/// The default single fused pass reproduces the legacy engine bit for bit.
/// Hierarchical aggregation is opt-in because float addition is not
/// associative: regrouping the sum by shard changes results in the last
/// ulps, so it must never be silently enabled under a byte-identity pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AggregationMode {
    /// One sequential fused accumulator pass over all payloads (the legacy
    /// behavior; byte-identical to the pre-store engine).
    #[default]
    SinglePass,
    /// Per-shard partial folds in parallel, then a log-depth pairwise
    /// combine. Requires the algorithm to expose a
    /// [`FoldPlan`](crate::algorithms::FoldPlan); falls back to
    /// [`SinglePass`](AggregationMode::SinglePass) when it does not.
    Hierarchical,
}

/// How an update's weight decays with its staleness τ (the number of server
/// aggregations since the client downloaded its model snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StalenessWeight {
    /// No damping: every update is applied at full weight (vanilla
    /// asynchronous aggregation).
    Constant,
    /// Polynomial damping `s(τ) = (1 + τ)^{-a}` (the common choice in
    /// asynchronous FL; `a = 0.5` is a typical value).
    Polynomial {
        /// Damping exponent `a ≥ 0`.
        exponent: f32,
    },
    /// Hard cutoff: updates staler than the bound are dropped entirely —
    /// the *bounded delay* assumption of asynchronous ADMM made literal.
    BoundedDelay {
        /// Maximum tolerated staleness.
        max_staleness: usize,
    },
}

impl StalenessWeight {
    /// The multiplicative weight applied to an update of staleness `tau`.
    pub fn weight(&self, tau: usize) -> f32 {
        match *self {
            StalenessWeight::Constant => 1.0,
            StalenessWeight::Polynomial { exponent } => (1.0 + tau as f32).powf(-exponent.max(0.0)),
            StalenessWeight::BoundedDelay { max_staleness } => {
                if tau > max_staleness {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }
}

/// One applied (or dropped) client arrival in an event-driven schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsyncRecord {
    /// Sequence number of the event (0-based, in application order).
    pub event: usize,
    /// Virtual time at which the update arrived at the server.
    pub sim_time: f64,
    /// The client that produced the update.
    pub client_id: usize,
    /// Staleness τ of the update (server aggregations since its snapshot).
    pub staleness: usize,
    /// The weight the update was applied with (0 means it was dropped).
    pub weight: f32,
    /// Test accuracy after applying the update (`None` between evaluation
    /// points, to keep the simulation affordable).
    pub test_accuracy: Option<f32>,
    /// Cumulative floats uploaded to the server so far.
    pub cumulative_upload_floats: usize,
}

/// A unit of client work issued by a scheduler.
#[derive(Debug, Clone)]
pub struct DispatchOrder {
    /// The client that runs the work.
    pub client_id: usize,
    /// Local epochs to run.
    pub epochs: usize,
    /// The model snapshot the client downloads (shared, never copied).
    pub snapshot: Arc<ParamVector>,
    /// Seed of the client's local RNG stream, derived from
    /// `(base seed, tick, client_id)` so results are schedule-independent.
    pub seed: u64,
}

/// What a completed aggregation contributes to the run history.
#[derive(Debug, Clone, Copy)]
pub struct RoundStats {
    /// Number of client updates aggregated (`|S_t|`, or the buffer size).
    pub num_selected: usize,
    /// Floats uploaded by clients for this record (0 for event-driven
    /// schedules, which account uploads per event instead).
    pub upload_floats: usize,
    /// Total local epochs run across the aggregated updates.
    pub total_local_epochs: usize,
    /// Total samples processed across the aggregated updates.
    pub samples_processed: usize,
    /// True wire bytes of this record's uploads (quantized size when the
    /// wire path is on, dense `4 · upload_floats` otherwise; 0 for
    /// event-driven schedules, which account uploads per event).
    pub wire_bytes: usize,
    /// Wall-clock or virtual milliseconds attributed to this record.
    pub elapsed_ms: u64,
}

/// What one scheduler tick produced.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// The history record pushed this tick, if the tick completed a round.
    pub record: Option<RoundRecord>,
    /// Arrival events recorded this tick (event-driven schedules only).
    pub events: Vec<AsyncRecord>,
}

/// Derives the seed of a client's local RNG stream from the run seed, the
/// dispatch tick and the client id. The same constants as the legacy
/// engines, so seeded runs reproduce across the refactor.
pub fn derive_client_seed(base_seed: u64, tick: u64, client_id: usize) -> u64 {
    base_seed
        ^ tick.wrapping_mul(0x517C_C1B7_2722_0A95)
        ^ (client_id as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Derives the per-round server RNG seed (selection, epoch draws,
/// algorithm server randomness) — same constant as the legacy sync engine.
pub fn derive_round_seed(base_seed: u64, round: u64) -> u64 {
    base_seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Mutable view of the engine a scheduler drives during one tick.
///
/// The engine lends the scheduler everything it needs: the federated state
/// (clients, global model, algorithm), the plumbing facilities
/// ([`EngineCore::dispatch`], [`EngineCore::aggregate`],
/// [`EngineCore::evaluate_global`]) and the bookkeeping sinks
/// ([`EngineCore::record_round`], [`EngineCore::record_event`]).
pub struct EngineCore<'a> {
    /// The run configuration.
    pub config: &'a FedConfig,
    /// The shared training set.
    pub train: &'a Dataset,
    /// The held-out test set.
    pub test: &'a Dataset,
    /// Per-client persistent state, behind the pluggable store backend.
    pub store: &'a mut dyn ClientStateStore,
    /// The global model θ (shared snapshot handle).
    pub global: &'a mut Arc<ParamVector>,
    /// The federated algorithm.
    pub algorithm: &'a mut dyn Algorithm,
    /// The client-selection scheme.
    pub selector: &'a dyn ClientSelector,
    /// The local-work (epoch count) schedule.
    pub work_schedule: &'a LocalWorkSchedule,
    pub(super) history: &'a mut RunHistory,
    pub(super) events: &'a mut Vec<AsyncRecord>,
    pub(super) clock: &'a mut f64,
    pub(super) cumulative_upload: &'a mut usize,
    pub(super) cumulative_wire_bytes: &'a mut usize,
    pub(super) round: &'a mut usize,
    /// Observability hooks (the engine's `with_telemetry` hook, or the
    /// no-op default). See [`EngineCore::telemetry`].
    pub(super) telemetry: &'a mut dyn Telemetry,
    /// Index into `events` of the first arrival not yet attributed to a
    /// round record (advanced by [`EngineCore::record_round`]).
    pub(super) event_mark: &'a mut usize,
    /// How [`EngineCore::aggregate`] folds payloads into θ.
    pub(super) aggregation: AggregationMode,
    /// The persistent worker pool behind [`EngineCore::dispatch`].
    pub(super) pool: &'a DispatchPool,
    /// The wire path (upload compression + privacy), `None` when uploads
    /// stay dense. See [`super::wire`].
    pub(super) wire: Option<&'a WirePath>,
}

/// One dispatch job in flight on the pool: the worker that claims the job
/// takes the `(order, state)` input exactly once and leaves its result.
struct JobSlot<'o, 's> {
    input: Option<(&'o DispatchOrder, &'s mut ClientState)>,
    output: Option<(usize, TensorResult<ClientMessage>, f64)>,
}

impl EngineCore<'_> {
    /// The current virtual time.
    pub fn now(&self) -> f64 {
        *self.clock
    }

    /// Advances the virtual clock (monotone; earlier times are ignored).
    pub fn advance_clock(&mut self, to: f64) {
        if to > *self.clock {
            *self.clock = to;
        }
    }

    /// Number of rounds recorded so far.
    pub fn round(&self) -> usize {
        *self.round
    }

    /// Cumulative floats uploaded so far.
    pub fn cumulative_upload(&self) -> usize {
        *self.cumulative_upload
    }

    /// Accounts client → server communication.
    pub fn add_upload(&mut self, floats: usize) {
        *self.cumulative_upload += floats;
        self.telemetry.on_upload(floats);
    }

    /// Accounts client → server communication in true wire bytes (the
    /// quantized size for wire-path uploads, `4 · floats` dense).
    pub fn add_wire_bytes(&mut self, bytes: usize) {
        *self.cumulative_wire_bytes += bytes;
        self.telemetry.on_wire_upload(bytes);
    }

    /// Cumulative wire bytes uploaded so far.
    pub fn cumulative_wire_bytes(&self) -> usize {
        *self.cumulative_wire_bytes
    }

    /// The active wire path, if uploads are being encoded.
    pub fn wire_path(&self) -> Option<&WirePath> {
        self.wire
    }

    /// The observability hooks installed on the engine (the no-op default
    /// unless `RoundEngine::with_telemetry` replaced it). External
    /// schedulers use this to emit phase markers or custom gauges.
    pub fn telemetry(&mut self) -> &mut dyn Telemetry {
        self.telemetry
    }

    /// A zero-copy broadcast handle to the current global model: clients
    /// share the allocation instead of copying θ.
    pub fn broadcast(&self) -> Arc<ParamVector> {
        Arc::clone(self.global)
    }

    /// Evaluates the global model on the test set: `(loss, accuracy)`.
    pub fn evaluate_global(&self) -> TensorResult<(f32, f32)> {
        evaluate(
            self.config.model,
            self.global.as_slice(),
            self.test,
            self.config.eval_subset,
        )
    }

    /// Runs one order synchronously on the calling thread (on the pool's
    /// serial scratch arena, so even single-order ticks allocate nothing in
    /// steady state).
    pub fn dispatch_one(&mut self, order: &DispatchOrder) -> TensorResult<ClientMessage> {
        if order.client_id >= self.store.num_clients() {
            return Err(TensorError::InvalidArgument(format!(
                "dispatch order for unknown client {}",
                order.client_id
            )));
        }
        let algorithm: &dyn Algorithm = &*self.algorithm;
        let (train, config) = (self.train, self.config);
        let wire = self.wire;
        // Timing is gated on `enabled()` so the no-op hook costs nothing.
        let timed = self.telemetry.enabled();
        // Static mode reproduces the legacy per-call clone + plain
        // `client_update` path exactly (the A/B baseline).
        let use_scratch = self.pool.mode() == DispatchMode::WorkStealing;
        let pool = self.pool;
        let mut out: Option<(TensorResult<ClientMessage>, f64)> = None;
        self.store.with_states(&[order.client_id], &mut |states| {
            let client = &mut *states[0];
            if use_scratch {
                pool.with_scratch(|scratch| {
                    let DispatchScratch {
                        indices,
                        update,
                        wire_codes,
                    } = scratch;
                    indices.clear();
                    indices.extend_from_slice(&client.indices);
                    let env = LocalEnv {
                        dataset: train,
                        indices,
                        model: config.model,
                        epochs: order.epochs,
                        batch_size: config.batch_size,
                        learning_rate: config.local_learning_rate,
                        seed: order.seed,
                    };
                    let start = timed.then(Instant::now);
                    let mut result =
                        algorithm.client_update_scratch(client, &order.snapshot, &env, update);
                    if let (Some(wire), Ok(message)) = (wire, result.as_mut()) {
                        wire.encode(message, order.seed, wire_codes);
                    }
                    let seconds = start.map_or(0.0, |s| s.elapsed().as_secs_f64());
                    out = Some((result, seconds));
                });
            } else {
                let indices = client.indices.clone();
                let env = LocalEnv {
                    dataset: train,
                    indices: &indices,
                    model: config.model,
                    epochs: order.epochs,
                    batch_size: config.batch_size,
                    learning_rate: config.local_learning_rate,
                    seed: order.seed,
                };
                let start = timed.then(Instant::now);
                let mut result = algorithm.client_update(client, &order.snapshot, &env);
                if let (Some(wire), Ok(message)) = (wire, result.as_mut()) {
                    // The legacy path allocates per job anyway; a local
                    // codes buffer keeps its semantics unchanged.
                    wire.encode(message, order.seed, &mut Vec::new());
                }
                let seconds = start.map_or(0.0, |s| s.elapsed().as_secs_f64());
                out = Some((result, seconds));
            }
            Ok(())
        })?;
        let (result, seconds) = out.expect("with_states runs the closure");
        let message = result?;
        if timed {
            self.telemetry
                .on_download(*self.round, order.client_id, order.snapshot.len());
            self.telemetry.on_client_update(
                *self.round,
                order.client_id,
                seconds,
                message.epochs_run,
                message.samples_processed,
            );
        }
        Ok(message)
    }

    /// Runs a batch of orders through the shared parallel dispatch path.
    ///
    /// Work is self-scheduled over the engine's persistent
    /// [`DispatchPool`] (or, under [`DispatchMode::Static`], the legacy
    /// round-robin scoped-thread partitioning); because each order carries
    /// its own derived seed, the outcome is independent of the thread
    /// schedule, the worker count and the chunk size. Messages are
    /// returned sorted by client id, and the first error (in client-id
    /// order) is propagated.
    ///
    /// # Panics
    /// Panics if two orders target the same client (a scheduler bug: a
    /// client cannot run two local updates concurrently).
    pub fn dispatch(&mut self, orders: &[DispatchOrder]) -> TensorResult<Vec<ClientMessage>> {
        if orders.is_empty() {
            return Ok(Vec::new());
        }
        if orders.len() == 1 {
            return Ok(vec![self.dispatch_one(&orders[0])?]);
        }
        // Validate the batch before borrowing any state: every order must
        // target a known client, and no client may appear twice.
        for order in orders {
            assert!(
                order.client_id < self.store.num_clients(),
                "dispatch order for unknown client {}",
                order.client_id
            );
        }
        let mut by_id: Vec<usize> = (0..orders.len()).collect();
        by_id.sort_by_key(|&k| orders[k].client_id);
        for pair in by_id.windows(2) {
            assert!(
                orders[pair[0]].client_id != orders[pair[1]].client_id,
                "client {} dispatched twice in one batch",
                orders[pair[1]].client_id
            );
        }
        // The ascending cohort the store materializes — O(selected) work
        // even when most of the population has never been touched.
        let ids: Vec<usize> = by_id.iter().map(|&k| orders[k].client_id).collect();
        match self.pool.mode() {
            DispatchMode::WorkStealing => self.dispatch_pooled(orders, &by_id, &ids),
            DispatchMode::Static => self.dispatch_static(orders, &by_id, &ids),
        }
    }

    /// The default batch path: jobs are claimed chunk-wise from the pool's
    /// shared cursor, each worker reusing its own scratch arena. Job slots
    /// are built (and drained) in ascending client-id order, so the result
    /// order is schedule-independent by construction.
    fn dispatch_pooled(
        &mut self,
        orders: &[DispatchOrder],
        by_id: &[usize],
        ids: &[usize],
    ) -> TensorResult<Vec<ClientMessage>> {
        let algorithm: &dyn Algorithm = &*self.algorithm;
        let (train, config) = (self.train, self.config);
        let wire = self.wire;
        // When telemetry is off no worker reads the clock: the job tuple
        // carries 0.0 and the hot path is identical to an uninstrumented
        // build.
        let timed = self.telemetry.enabled();
        let pool = self.pool;
        let mut results: Vec<(usize, TensorResult<ClientMessage>, f64)> =
            Vec::with_capacity(orders.len());
        let mut batch = DispatchBatchStats::default();
        self.store.with_states(ids, &mut |states| {
            let slots: Vec<std::sync::Mutex<JobSlot<'_, '_>>> = states
                .iter_mut()
                .zip(by_id)
                .map(|(client, &k)| {
                    std::sync::Mutex::new(JobSlot {
                        input: Some((&orders[k], &mut **client)),
                        output: None,
                    })
                })
                .collect();
            batch = pool.run(slots.len(), timed, &|_worker, job, scratch| {
                let mut slot = slots[job].lock().expect("job slot lock");
                let (order, client) = slot.input.take().expect("each job claimed once");
                let DispatchScratch {
                    indices,
                    update,
                    wire_codes,
                } = scratch;
                indices.clear();
                indices.extend_from_slice(&client.indices);
                let env = LocalEnv {
                    dataset: train,
                    indices,
                    model: config.model,
                    epochs: order.epochs,
                    batch_size: config.batch_size,
                    learning_rate: config.local_learning_rate,
                    seed: order.seed,
                };
                let start = timed.then(Instant::now);
                let mut result =
                    algorithm.client_update_scratch(client, &order.snapshot, &env, update);
                if let (Some(wire), Ok(message)) = (wire, result.as_mut()) {
                    // Privatize + quantize on the worker, through its
                    // reusable code buffer — the fused client edge.
                    wire.encode(message, order.seed, wire_codes);
                }
                let seconds = start.map_or(0.0, |s| s.elapsed().as_secs_f64());
                slot.output = Some((client.id, result, seconds));
            });
            for slot in slots {
                let slot = slot.into_inner().expect("job slot lock");
                results.push(slot.output.expect("every job ran"));
            }
            Ok(())
        })?;
        debug_assert!(results.windows(2).all(|w| w[0].0 < w[1].0));
        self.collect_messages(orders, results, batch)
    }

    /// The legacy static round-robin partitioning over freshly spawned
    /// scoped threads, kept verbatim behind [`DispatchMode::Static`] as the
    /// A/B baseline: per-job `indices.clone()`, plain (allocating)
    /// `client_update`, one thread per partition.
    fn dispatch_static(
        &mut self,
        orders: &[DispatchOrder],
        by_id: &[usize],
        ids: &[usize],
    ) -> TensorResult<Vec<ClientMessage>> {
        let algorithm: &dyn Algorithm = &*self.algorithm;
        let (train, config) = (self.train, self.config);
        let wire = self.wire;
        let timed = self.telemetry.enabled();
        let run_job = move |order: &DispatchOrder, client: &mut ClientState| {
            let indices = client.indices.clone();
            let env = LocalEnv {
                dataset: train,
                indices: &indices,
                model: config.model,
                epochs: order.epochs,
                batch_size: config.batch_size,
                learning_rate: config.local_learning_rate,
                seed: order.seed,
            };
            let start = timed.then(Instant::now);
            let mut result = algorithm.client_update(client, &order.snapshot, &env);
            if let (Some(wire), Ok(message)) = (wire, result.as_mut()) {
                // The legacy baseline allocates per job by design.
                wire.encode(message, order.seed, &mut Vec::new());
            }
            let seconds = start.map_or(0.0, |s| s.elapsed().as_secs_f64());
            (client.id, result, seconds)
        };

        let configured_workers = self.pool.workers();
        let mut results: Vec<(usize, TensorResult<ClientMessage>, f64)> =
            Vec::with_capacity(orders.len());
        // Per-partition busy seconds (sum of that partition's job times),
        // so the imbalance gauge is comparable across the two modes.
        let mut busy_seconds: Vec<f64> = Vec::new();
        let mut used_workers = 1;
        self.store.with_states(ids, &mut |states| {
            // Pair every borrowed state (aligned with `ids`, ascending by
            // client id — the same job order as the legacy dense walk) with
            // its order.
            let mut jobs: Vec<(&DispatchOrder, &mut ClientState)> = states
                .iter_mut()
                .zip(by_id)
                .map(|(client, &k)| (&orders[k], &mut **client))
                .collect();
            let workers = configured_workers.min(jobs.len());
            used_workers = workers.max(1);
            results = if workers <= 1 {
                jobs.into_iter()
                    .map(|(order, client)| run_job(order, client))
                    .collect()
            } else {
                // Static round-robin partitioning over scoped threads.
                let mut parts: Vec<Vec<(&DispatchOrder, &mut ClientState)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (k, job) in jobs.drain(..).enumerate() {
                    parts[k % workers].push(job);
                }
                let run_job = &run_job;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = parts
                        .into_iter()
                        .map(|part| {
                            scope.spawn(move || {
                                part.into_iter()
                                    .map(|(order, client)| run_job(order, client))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    let mut all = Vec::with_capacity(orders.len());
                    for handle in handles {
                        let part = handle.join().expect("dispatch worker panicked");
                        if timed {
                            busy_seconds.push(part.iter().map(|r| r.2).sum());
                        }
                        all.extend(part);
                    }
                    all
                })
            };
            Ok(())
        })?;
        // Deterministic aggregation order regardless of the thread schedule.
        results.sort_by_key(|(id, _, _)| *id);
        if timed && busy_seconds.is_empty() {
            busy_seconds.push(results.iter().map(|r| r.2).sum());
        }
        let batch = DispatchBatchStats {
            workers: used_workers,
            // 0 marks "static partition" in the dispatch telemetry.
            chunk_size: 0,
            jobs: results.len() as u64,
            chunks: used_workers as u64,
            steals: 0,
            busy_seconds,
        };
        self.collect_messages(orders, results, batch)
    }

    /// Shared dispatch tail: accounts downloads, emits the batch summary,
    /// propagates the first error in client-id order and unwraps messages.
    fn collect_messages(
        &mut self,
        orders: &[DispatchOrder],
        results: Vec<(usize, TensorResult<ClientMessage>, f64)>,
        batch: DispatchBatchStats,
    ) -> TensorResult<Vec<ClientMessage>> {
        let timed = self.telemetry.enabled();
        if timed {
            // Downloads are accounted at dispatch time: each order pulled
            // one θ snapshot of `len` floats.
            for order in orders {
                self.telemetry
                    .on_download(*self.round, order.client_id, order.snapshot.len());
            }
            self.telemetry.on_dispatch(
                *self.round,
                &DispatchSummary {
                    jobs: batch.jobs,
                    workers: batch.workers,
                    chunk_size: batch.chunk_size,
                    chunks: batch.chunks,
                    steals: batch.steals,
                    busy_seconds: &batch.busy_seconds,
                },
            );
        }
        let mut messages = Vec::with_capacity(results.len());
        for (id, result, seconds) in results {
            let message = result?;
            if timed {
                self.telemetry.on_client_update(
                    *self.round,
                    id,
                    seconds,
                    message.epochs_run,
                    message.samples_processed,
                );
            }
            messages.push(message);
        }
        Ok(messages)
    }

    /// Applies a batch of messages through the algorithm's server update.
    ///
    /// θ is mutated copy-on-write: if client snapshots of the current θ are
    /// still alive (in-flight stragglers), the allocation is cloned once;
    /// otherwise the update happens in place.
    ///
    /// Under [`AggregationMode::Hierarchical`], algorithms that expose a
    /// [`FoldPlan`] are folded as parallel per-shard partial sums plus a
    /// log-depth combine instead of one sequential fused pass; algorithms
    /// without a plan (stateful or non-linear server updates) silently use
    /// the sequential path.
    pub fn aggregate(
        &mut self,
        messages: &[ClientMessage],
        rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        let timed = self.telemetry.enabled();
        let start = timed.then(Instant::now);
        let outcome = if messages.iter().any(|m| m.wire.is_some()) {
            self.fold_compressed(messages, rng, timed)
        } else {
            match self.try_hierarchical_fold(messages, timed) {
                Some(outcome) => outcome,
                None => {
                    let global = Arc::make_mut(self.global);
                    self.algorithm
                        .server_update(global, messages, self.config.num_clients, rng)
                }
            }
        };
        if let Some(start) = start {
            self.telemetry
                .on_aggregate(*self.round, messages.len(), start.elapsed().as_secs_f64());
        }
        outcome
    }

    /// The fused compressed fold — the server half of the wire path.
    ///
    /// When every message of the batch carries a single-vector
    /// [`WirePayload`](crate::compression::WirePayload) and the algorithm
    /// exposes a [`FoldPlan`], the whole cohort is dequantize-accumulated
    /// into θ in **one** 8-lane sweep
    /// ([`vecops::dequant_axpy_fused`](fedadmm_tensor::vecops::dequant_axpy_fused)):
    /// each message contributes the affine term
    /// `cᵢ·sᵢ·(minᵢ + codeᵢ[j]·stepᵢ)`, where `cᵢ` is the plan coefficient
    /// and `sᵢ` the staleness scale the scheduler folded into the payload —
    /// no dense decompression is ever materialized. Under
    /// [`AggregationMode::Hierarchical`] the same terms are folded per
    /// shard ([`hierarchical_dequant_sum`]) with a log-depth combine.
    ///
    /// Batches the fused pass cannot express — algorithms without a plan
    /// (stateful server updates), multi-vector uploads (SCAFFOLD), or a mix
    /// of dense and wire messages — fall back to decoding each message
    /// once ([`decode_message`]) and running the algorithm's own
    /// `server_update`; correct, but with the extra O(d) sweep the fused
    /// path exists to avoid.
    ///
    /// The whole fold is bracketed by the `"fuse_pass"` telemetry span, so
    /// instrumented runs can count exactly one span per aggregation.
    fn fold_compressed(
        &mut self,
        messages: &[ClientMessage],
        rng: &mut dyn rand::RngCore,
        timed: bool,
    ) -> ServerOutcome {
        let round = *self.round;
        self.telemetry.on_phase_start("fuse_pass", round);
        let outcome = self.fold_compressed_inner(messages, rng, timed);
        self.telemetry.on_phase_end("fuse_pass", round);
        outcome
    }

    fn fold_compressed_inner(
        &mut self,
        messages: &[ClientMessage],
        rng: &mut dyn rand::RngCore,
        timed: bool,
    ) -> ServerOutcome {
        use fedadmm_tensor::vecops::DequantTerm;
        let fusable = messages
            .iter()
            .all(|m| m.wire.as_ref().is_some_and(|w| w.vectors.len() == 1));
        let plan = if fusable {
            self.algorithm.fold_plan(messages, self.config.num_clients)
        } else {
            None
        };
        let Some(plan) = plan else {
            // Naive reference fallback: one dense decode per message, then
            // the algorithm's own server update.
            let dense: Vec<ClientMessage> = messages.iter().map(decode_message).collect();
            let global = Arc::make_mut(self.global);
            return self
                .algorithm
                .server_update(global, &dense, self.config.num_clients, rng);
        };
        // One affine term per message; the staleness scale folds into the
        // plan coefficient, exactly as it would multiply a dense payload.
        let terms: Vec<(usize, DequantTerm<'_>)> = messages
            .iter()
            .zip(plan.coefficients())
            .map(|(msg, &coeff)| {
                let wire = msg.wire.as_ref().expect("fusable batch");
                let v = &wire.vectors[0];
                (
                    msg.client_id,
                    DequantTerm {
                        alpha: coeff * wire.scale,
                        min: v.min,
                        step: v.step,
                        codes: &v.codes,
                    },
                )
            })
            .collect();
        if self.aggregation == AggregationMode::Hierarchical {
            let map = self.store.shard_map();
            let mut group_of: HashMap<usize, usize> = HashMap::new();
            let mut groups: Vec<(usize, Vec<DequantTerm<'_>>)> = Vec::new();
            for (client_id, term) in terms {
                let shard = map.shard_of(client_id);
                let gi = *group_of.entry(shard).or_insert_with(|| {
                    groups.push((shard, Vec::new()));
                    groups.len() - 1
                });
                groups[gi].1.push(term);
            }
            groups.sort_by_key(|(shard, _)| *shard);
            let (delta, shard_stats) = hierarchical_dequant_sum(self.global.len(), &groups, timed);
            if timed {
                for stat in &shard_stats {
                    self.telemetry.on_shard_fold(
                        *self.round,
                        stat.shard,
                        stat.messages,
                        stat.seconds,
                    );
                }
            }
            let global = Arc::make_mut(self.global);
            match plan {
                FoldPlan::Accumulate(_) => global.axpy(1.0, &delta),
                FoldPlan::Assign(_) => global.copy_from(&delta),
            }
        } else {
            let terms: Vec<DequantTerm<'_>> = terms.into_iter().map(|(_, t)| t).collect();
            let global = Arc::make_mut(self.global);
            match plan {
                FoldPlan::Accumulate(_) => global.dequant_accumulate(&terms),
                FoldPlan::Assign(_) => global.dequant_assign(&terms),
            }
        }
        ServerOutcome {
            upload_floats: total_upload(messages),
        }
    }

    /// The hierarchical aggregation path: groups the round's first payloads
    /// by the store's shard geometry, folds each shard's group in parallel
    /// and combines the partials pairwise. Returns `None` when hierarchical
    /// mode is off, the batch is empty, or the algorithm exposes no
    /// [`FoldPlan`] — the caller then falls back to `server_update`.
    fn try_hierarchical_fold(
        &mut self,
        messages: &[ClientMessage],
        timed: bool,
    ) -> Option<ServerOutcome> {
        if self.aggregation != AggregationMode::Hierarchical || messages.is_empty() {
            return None;
        }
        let plan = self
            .algorithm
            .fold_plan(messages, self.config.num_clients)?;
        let map = self.store.shard_map();
        let mut group_of: HashMap<usize, usize> = HashMap::new();
        let mut groups: Vec<(usize, Vec<(f32, &ParamVector)>)> = Vec::new();
        for (msg, &coeff) in messages.iter().zip(plan.coefficients()) {
            let shard = map.shard_of(msg.client_id);
            let gi = *group_of.entry(shard).or_insert_with(|| {
                groups.push((shard, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push((coeff, &msg.payload[0]));
        }
        // Deterministic shard order regardless of message arrival order.
        groups.sort_by_key(|(shard, _)| *shard);
        let (delta, shard_stats) = hierarchical_weighted_sum(self.global.len(), &groups, timed);
        if timed {
            for stat in &shard_stats {
                self.telemetry
                    .on_shard_fold(*self.round, stat.shard, stat.messages, stat.seconds);
            }
        }
        let global = Arc::make_mut(self.global);
        match plan {
            FoldPlan::Accumulate(_) => global.axpy(1.0, &delta),
            FoldPlan::Assign(_) => global.copy_from(&delta),
        }
        Some(ServerOutcome {
            upload_floats: total_upload(messages),
        })
    }

    /// Evaluates θ, pushes a [`RoundRecord`] built from `stats` and returns
    /// it. Increments the round counter.
    ///
    /// The record also absorbs the staleness distribution of every arrival
    /// event recorded since the previous round closed (always zero for
    /// synchronous schedules, which record no events).
    pub fn record_round(&mut self, stats: RoundStats) -> TensorResult<RoundRecord> {
        let eval_start = self.telemetry.enabled().then(Instant::now);
        let (test_loss, test_accuracy) = self.evaluate_global()?;
        if let Some(start) = eval_start {
            self.telemetry
                .on_eval(*self.round, start.elapsed().as_secs_f64());
        }
        let window = &self.events[*self.event_mark..];
        let staleness_mean = if window.is_empty() {
            0.0
        } else {
            window.iter().map(|e| e.staleness).sum::<usize>() as f64 / window.len() as f64
        };
        let staleness_max = window.iter().map(|e| e.staleness).max().unwrap_or(0);
        *self.event_mark = self.events.len();
        // Dense bytes are what the uploads would have cost uncompressed;
        // with the wire path off the schedulers report exactly that, so
        // the ratio is 1.0 and the record is unchanged.
        let dense_bytes = 4 * stats.upload_floats;
        let wire_bytes = if stats.wire_bytes > 0 {
            stats.wire_bytes
        } else {
            dense_bytes
        };
        let dense_wire_ratio = if wire_bytes > 0 {
            dense_bytes as f64 / wire_bytes as f64
        } else {
            1.0
        };
        let record = RoundRecord {
            round: *self.round,
            test_accuracy,
            test_loss,
            num_selected: stats.num_selected,
            upload_floats: stats.upload_floats,
            cumulative_upload_floats: *self.cumulative_upload,
            total_local_epochs: stats.total_local_epochs,
            samples_processed: stats.samples_processed,
            wire_bytes,
            dense_wire_ratio,
            elapsed_ms: stats.elapsed_ms,
            staleness_mean,
            staleness_max,
        };
        self.telemetry.on_round_end(&RoundSummary {
            round: record.round,
            wall_seconds: record.elapsed_ms as f64 / 1000.0,
            num_selected: record.num_selected,
            upload_floats: record.upload_floats,
            test_accuracy: record.test_accuracy as f64,
            test_loss: record.test_loss as f64,
            staleness_mean,
            staleness_max,
        });
        if self.telemetry.enabled() {
            self.telemetry.on_gauge(
                names::STORE_RESIDENT_BYTES,
                self.store.resident_bytes() as f64,
            );
            let stats = self.store.stats();
            self.telemetry.on_store_stats(
                stats.materializations,
                stats.spill_writes,
                stats.spill_loads,
                stats.evictions,
            );
        }
        self.history.push(record.clone());
        *self.round += 1;
        Ok(record)
    }

    /// Records one arrival event (event-driven schedules), filling in the
    /// event index, current virtual time and cumulative upload count.
    pub fn record_event(
        &mut self,
        client_id: usize,
        staleness: usize,
        weight: f32,
        test_accuracy: Option<f32>,
    ) -> AsyncRecord {
        let record = AsyncRecord {
            event: self.events.len(),
            sim_time: *self.clock,
            client_id,
            staleness,
            weight,
            test_accuracy,
            cumulative_upload_floats: *self.cumulative_upload,
        };
        self.telemetry.on_arrival(client_id, staleness, weight);
        self.events.push(record.clone());
        record
    }
}

/// A round-scheduling policy driving the [`RoundEngine`](super::RoundEngine).
pub trait Scheduler: Send {
    /// Scheduler name used in labels and logs.
    fn name(&self) -> &'static str;

    /// The `setting` string recorded in the run history.
    fn setting_label(&self, config: &FedConfig) -> String {
        format!("{} clients", config.num_clients)
    }

    /// Called once before the first tick; validates the scheduler's
    /// configuration against the engine's and primes internal state (e.g.
    /// fills the in-flight pool).
    fn init(&mut self, core: &mut EngineCore<'_>) -> TensorResult<()> {
        let _ = core;
        Ok(())
    }

    /// Advances the schedule by one decision (one synchronous round, one
    /// arrival, or one deadline round) and reports what happened.
    fn tick(&mut self, core: &mut EngineCore<'_>) -> TensorResult<TickReport>;
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn setting_label(&self, config: &FedConfig) -> String {
        (**self).setting_label(config)
    }
    fn init(&mut self, core: &mut EngineCore<'_>) -> TensorResult<()> {
        (**self).init(core)
    }
    fn tick(&mut self, core: &mut EngineCore<'_>) -> TensorResult<TickReport> {
        (**self).tick(core)
    }
}
