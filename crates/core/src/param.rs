//! Flat parameter vectors in ℝ^d.
//!
//! [`ParamVector`] now lives in `fedadmm-clientstore` (the storage layer
//! owns the value types so the store backends need no dependency on this
//! crate); this module re-exports it at its historical path, so
//! `fedadmm_core::param::ParamVector` keeps working unchanged.

pub use fedadmm_clientstore::param::ParamVector;
