//! The shared local solver: mini-batch SGD with pluggable gradient
//! corrections.
//!
//! Every algorithm in the paper runs the *same* local solver (SGD) on a
//! different local objective:
//!
//! * FedAvg:   `∇f_i(w, b)`
//! * FedProx:  `∇f_i(w, b) + ρ(w − θ)`
//! * FedADMM:  `∇f_i(w, b) + y_i + ρ(w − θ)`  (Algorithm 1, line 17)
//! * SCAFFOLD: `∇f_i(w, b) − c_i + c`
//!
//! [`local_sgd`] implements the common loop and takes the correction as a
//! closure over the current parameters, so each algorithm contributes only
//! its own term. [`full_gradient`] computes the exact local gradient
//! (FedSGD), and [`evaluate`] measures loss/accuracy of a parameter vector
//! on a dataset.

use fedadmm_data::batching::{shuffle_epoch_into, BatchSize};
use fedadmm_data::Dataset;
use fedadmm_nn::loss::{accuracy, softmax_cross_entropy_into};
use fedadmm_nn::models::ModelSpec;
use fedadmm_nn::network::Network;
use fedadmm_nn::optimizer::Sgd;
use fedadmm_nn::ActivationArena;
use fedadmm_tensor::{Tensor, TensorResult};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Everything a client needs to run local training for one round.
#[derive(Debug, Clone, Copy)]
pub struct LocalEnv<'a> {
    /// The shared training set.
    pub dataset: &'a Dataset,
    /// Indices of the samples owned by this client.
    pub indices: &'a [usize],
    /// Model architecture.
    pub model: ModelSpec,
    /// Number of local epochs to run this round (`E_i`).
    pub epochs: usize,
    /// Local mini-batch size `B`.
    pub batch_size: BatchSize,
    /// Local SGD learning rate `η_i`.
    pub learning_rate: f32,
    /// Seed for batch shuffling (derived per client and round).
    pub seed: u64,
}

/// Result of a local training pass.
#[derive(Debug, Clone)]
pub struct LocalSgdResult {
    /// The parameters after local training (`w_i^{t+1}`).
    pub params: Vec<f32>,
    /// Number of mini-batch gradient steps taken.
    pub steps: usize,
    /// Number of training samples processed (epochs × local data size).
    pub samples_processed: usize,
    /// Mean training loss over all batches of the final epoch.
    pub final_epoch_loss: f32,
}

/// Runs `env.epochs` epochs of mini-batch SGD starting from `init`.
///
/// For every batch `b` the update is
/// `w ← w − η_i · (∇f_i(w, b) + correction(w))`, where `correction`
/// receives the current parameters and *adds* its terms into the gradient
/// buffer (second argument). Passing a no-op closure recovers FedAvg's
/// local problem.
pub fn local_sgd(
    env: &LocalEnv<'_>,
    init: &[f32],
    correction: impl FnMut(&[f32], &mut [f32]),
) -> TensorResult<LocalSgdResult> {
    let mut model_rng = SmallRng::seed_from_u64(env.seed ^ 0xA5A5_5A5A);
    let mut net = env.model.build(&mut model_rng);
    sgd_epochs(
        env,
        init,
        &mut net,
        &mut TrainScratch::default(),
        correction,
    )
}

/// Reusable buffers for the per-batch temporaries of the SGD loop: the
/// flattened gradient, the gathered mini-batch (features + labels), the
/// epoch shuffle order, the input tensor, and the activation arena that the
/// forward/backward sweep writes through.
///
/// Without scratch every SGD step allocates fresh vectors for each of these
/// (plus one tensor per layer per pass); with it the same buffers are
/// recycled across steps, epochs, *and* jobs — the dispatch pool keeps one
/// `TrainScratch` per worker inside its
/// [`UpdateScratch`](crate::algorithms::UpdateScratch), so the steady-state
/// SGD step performs **zero** heap allocations (pinned by
/// `tests/alloc_regression.rs`). Reuse is bit-identical to allocating
/// fresh: every buffer is fully overwritten before it is read.
#[derive(Debug)]
pub struct TrainScratch {
    /// Flat gradient buffer (`d` floats), refilled by
    /// [`Network::grads_flat_into`] every step.
    pub grads: Vec<f32>,
    /// Gathered mini-batch feature block, ping-ponged with the `input`
    /// tensor's storage so both allocations survive across steps.
    pub batch_data: Vec<f32>,
    /// Gathered mini-batch labels.
    pub batch_labels: Vec<usize>,
    /// Shuffled sample order for the current epoch; batches are consecutive
    /// `chunks(B)` of this permutation.
    pub perm: Vec<usize>,
    /// The forward pass's input tensor; its storage swaps with `batch_data`
    /// every step via [`Tensor::replace_data`].
    pub input: Tensor,
    /// Per-layer activation/gradient slots for the arena-routed
    /// forward/backward sweep.
    pub arena: ActivationArena,
}

impl Default for TrainScratch {
    fn default() -> Self {
        TrainScratch {
            grads: Vec::new(),
            batch_data: Vec::new(),
            batch_labels: Vec::new(),
            perm: Vec::new(),
            input: Tensor::zeros(&[0]),
            arena: ActivationArena::new(),
        }
    }
}

/// A reusable [`Network`] instance keyed by the [`ModelSpec`] that built it.
///
/// [`local_sgd`] instantiates a fresh network per call and then overwrites
/// *every* parameter from `init` before touching it, so the randomly
/// initialised weights (a full `d` draws from the model RNG) are pure
/// warm-up waste on the hot dispatch path. The dispatch pool keeps one
/// cache per worker inside its `UpdateScratch`, and
/// [`local_sgd_cached`] reuses the network across jobs — bit-identical to
/// building fresh, because `set_params_flat` replaces all parameters,
/// `zero_grads` runs before every backward pass, and activation caches are
/// overwritten by each forward pass.
#[derive(Debug, Default)]
pub struct NetCache {
    slot: Option<(ModelSpec, Network)>,
}

impl NetCache {
    /// Returns the cached network for `spec`, building one on first use or
    /// when the spec changed. The build seed is irrelevant: every caller
    /// overwrites the full parameter vector before reading it.
    pub fn get(&mut self, spec: ModelSpec) -> &mut Network {
        let hit = matches!(&self.slot, Some((cached, _)) if *cached == spec);
        if !hit {
            let mut rng = SmallRng::seed_from_u64(0);
            self.slot = Some((spec, spec.build(&mut rng)));
        }
        &mut self.slot.as_mut().expect("slot filled above").1
    }
}

/// [`local_sgd`] against a cached network (see [`NetCache`]) and reusable
/// per-batch buffers (see [`TrainScratch`]): identical arithmetic, minus
/// the per-call model construction and the per-step allocations.
pub fn local_sgd_cached(
    env: &LocalEnv<'_>,
    init: &[f32],
    cache: &mut NetCache,
    scratch: &mut TrainScratch,
    correction: impl FnMut(&[f32], &mut [f32]),
) -> TensorResult<LocalSgdResult> {
    sgd_epochs(env, init, cache.get(env.model), scratch, correction)
}

/// The shared epoch/batch loop of [`local_sgd`] and [`local_sgd_cached`];
/// `net`'s parameters are overwritten from `init` before the first step and
/// every `scratch` buffer is overwritten before it is read.
fn sgd_epochs(
    env: &LocalEnv<'_>,
    init: &[f32],
    net: &mut Network,
    scratch: &mut TrainScratch,
    mut correction: impl FnMut(&[f32], &mut [f32]),
) -> TensorResult<LocalSgdResult> {
    let TrainScratch {
        grads,
        batch_data,
        batch_labels,
        perm,
        input,
        arena,
    } = scratch;
    let mut params = init.to_vec();
    net.set_params_flat(&params)?;
    let sgd = Sgd::new(env.learning_rate);

    let mut batch_rng = SmallRng::seed_from_u64(env.seed);
    let batch_len = env.batch_size.resolve(env.indices.len());
    let feature_dim = env.dataset.feature_dim();
    let mut steps = 0usize;
    let mut samples = 0usize;
    let mut final_epoch_loss = 0.0f32;
    for epoch in 0..env.epochs.max(1) {
        let mut epoch_loss = 0.0f32;
        let mut epoch_batches = 0usize;
        // Same RNG consumption (and therefore the same batch order) as the
        // allocating `BatchIterator` path this loop replaced.
        shuffle_epoch_into(env.indices, &mut batch_rng, perm);
        for batch in perm.chunks(batch_len) {
            env.dataset.gather_into(batch, batch_data, batch_labels)?;
            // Ping-pong the gathered feature block with the input tensor's
            // storage so both allocations survive across steps.
            *batch_data =
                input.replace_data(std::mem::take(batch_data), &[batch.len(), feature_dim])?;
            net.forward_arena(input, arena)?;
            let loss = {
                let (logits, loss_grad) = arena.output_and_loss_grad();
                softmax_cross_entropy_into(logits, batch_labels, loss_grad)?
            };
            net.zero_grads();
            net.backward_arena(arena)?;
            net.grads_flat_into(grads);
            correction(&params, grads);
            sgd.step(&mut params, grads);
            net.set_params_flat(&params)?;
            steps += 1;
            samples += batch.len();
            epoch_loss += loss;
            epoch_batches += 1;
        }
        if epoch + 1 == env.epochs.max(1) && epoch_batches > 0 {
            final_epoch_loss = epoch_loss / epoch_batches as f32;
        }
    }
    Ok(LocalSgdResult {
        params,
        steps,
        samples_processed: samples,
        final_epoch_loss,
    })
}

/// Computes the exact (full-batch) local gradient `∇f_i(θ)` and loss at a
/// fixed parameter vector — the quantity FedSGD uploads.
pub fn full_gradient(env: &LocalEnv<'_>, at: &[f32]) -> TensorResult<(Vec<f32>, f32)> {
    let mut model_rng = SmallRng::seed_from_u64(env.seed ^ 0xA5A5_5A5A);
    let mut net = env.model.build(&mut model_rng);
    net.set_params_flat(at)?;
    let d = net.num_params();
    if env.indices.is_empty() {
        return Ok((vec![0.0; d], 0.0));
    }
    // Accumulate over chunks so that CNN activations for large local
    // datasets do not blow up memory; the gradient of the mean loss is the
    // sample-count-weighted mean of the chunk gradients.
    let chunk = 256usize;
    let mut grad_acc = vec![0.0f32; d];
    let mut loss_acc = 0.0f32;
    let mut total = 0usize;
    let mut scratch = TrainScratch::default();
    let feature_dim = env.dataset.feature_dim();
    for batch in env.indices.chunks(chunk) {
        env.dataset
            .gather_into(batch, &mut scratch.batch_data, &mut scratch.batch_labels)?;
        scratch.batch_data = scratch.input.replace_data(
            std::mem::take(&mut scratch.batch_data),
            &[batch.len(), feature_dim],
        )?;
        net.forward_arena(&scratch.input, &mut scratch.arena)?;
        let loss = {
            let (logits, loss_grad) = scratch.arena.output_and_loss_grad();
            softmax_cross_entropy_into(logits, &scratch.batch_labels, loss_grad)?
        };
        net.zero_grads();
        net.backward_arena(&mut scratch.arena)?;
        net.grads_flat_into(&mut scratch.grads);
        let w = batch.len() as f32;
        for (acc, gi) in grad_acc.iter_mut().zip(scratch.grads.iter()) {
            *acc += gi * w;
        }
        loss_acc += loss * w;
        total += batch.len();
    }
    let inv = 1.0 / total as f32;
    for g in grad_acc.iter_mut() {
        *g *= inv;
    }
    Ok((grad_acc, loss_acc * inv))
}

/// Evaluates a parameter vector on (a subset of) a dataset.
///
/// Returns `(mean_loss, accuracy)`. `max_samples` caps the number of
/// evaluated samples (the first `max_samples` are used, which is unbiased
/// because synthetic datasets interleave classes).
pub fn evaluate(
    model: ModelSpec,
    params: &[f32],
    dataset: &Dataset,
    max_samples: usize,
) -> TensorResult<(f32, f32)> {
    let mut model_rng = SmallRng::seed_from_u64(0);
    let mut net = model.build(&mut model_rng);
    net.set_params_flat(params)?;
    let n = dataset.len().min(max_samples);
    if n == 0 {
        return Ok((0.0, 0.0));
    }
    let mut loss_acc = 0.0f32;
    let mut correct_acc = 0.0f32;
    let chunk = 256usize;
    let indices: Vec<usize> = (0..n).collect();
    // Route chunks through one arena and one reused gather buffer, so a
    // whole evaluation pass performs O(1) allocations rather than O(chunks).
    let mut scratch = TrainScratch::default();
    let feature_dim = dataset.feature_dim();
    for batch in indices.chunks(chunk) {
        dataset.gather_into(batch, &mut scratch.batch_data, &mut scratch.batch_labels)?;
        scratch.batch_data = scratch.input.replace_data(
            std::mem::take(&mut scratch.batch_data),
            &[batch.len(), feature_dim],
        )?;
        net.forward_arena(&scratch.input, &mut scratch.arena)?;
        let (loss, acc) = {
            let (logits, loss_grad) = scratch.arena.output_and_loss_grad();
            (
                softmax_cross_entropy_into(logits, &scratch.batch_labels, loss_grad)?,
                accuracy(logits, &scratch.batch_labels)?,
            )
        };
        let w = batch.len() as f32;
        loss_acc += loss * w;
        correct_acc += acc * w;
    }
    Ok((loss_acc / n as f32, correct_acc / n as f32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedadmm_data::synthetic::SyntheticDataset;
    use fedadmm_tensor::vecops;

    fn small_env<'a>(dataset: &'a Dataset, indices: &'a [usize]) -> LocalEnv<'a> {
        LocalEnv {
            dataset,
            indices,
            model: ModelSpec::Logistic {
                input_dim: dataset.feature_dim(),
                num_classes: 10,
            },
            epochs: 3,
            batch_size: BatchSize::Size(16),
            learning_rate: 0.1,
            seed: 42,
        }
    }

    #[test]
    fn local_sgd_reduces_local_loss() {
        let (train, _) = SyntheticDataset::Mnist.generate(120, 10, 0);
        let indices: Vec<usize> = (0..120).collect();
        let env = small_env(&train, &indices);
        let d = env.model.num_params();
        let init = vec![0.0f32; d];
        let (_, loss_before) = full_gradient(&env, &init).unwrap();
        let result = local_sgd(&env, &init, |_, _| {}).unwrap();
        let (_, loss_after) = full_gradient(&env, &result.params).unwrap();
        assert!(loss_after < loss_before, "{loss_after} !< {loss_before}");
        assert_eq!(result.steps, 3 * (120usize.div_ceil(16)));
        assert_eq!(result.samples_processed, 3 * 120);
        assert!(result.final_epoch_loss.is_finite());
    }

    #[test]
    fn local_sgd_is_deterministic_in_seed() {
        let (train, _) = SyntheticDataset::Mnist.generate(60, 10, 1);
        let indices: Vec<usize> = (0..60).collect();
        let env = small_env(&train, &indices);
        let init = vec![0.01f32; env.model.num_params()];
        let a = local_sgd(&env, &init, |_, _| {}).unwrap();
        let b = local_sgd(&env, &init, |_, _| {}).unwrap();
        assert_eq!(a.params, b.params);
        let env2 = LocalEnv { seed: 43, ..env };
        let c = local_sgd(&env2, &init, |_, _| {}).unwrap();
        assert_ne!(a.params, c.params);
    }

    #[test]
    fn cached_scratch_path_is_bit_identical_to_local_sgd() {
        let (train, _) = SyntheticDataset::Mnist.generate(90, 10, 8);
        let indices: Vec<usize> = (0..90).collect();
        let env = small_env(&train, &indices);
        let init = vec![0.02f32; env.model.num_params()];
        let fresh = local_sgd(&env, &init, |_, _| {}).unwrap();

        let mut cache = NetCache::default();
        let mut scratch = TrainScratch::default();
        let a = local_sgd_cached(&env, &init, &mut cache, &mut scratch, |_, _| {}).unwrap();
        assert_eq!(fresh.params, a.params);
        assert_eq!(fresh.final_epoch_loss, a.final_epoch_loss);

        // A second job on the same worker reuses every buffer — both the
        // network cache and the per-batch scratch — with identical results
        // and no capacity churn.
        let grads_cap = scratch.grads.capacity();
        let data_cap = scratch.batch_data.capacity();
        let labels_cap = scratch.batch_labels.capacity();
        let b = local_sgd_cached(&env, &init, &mut cache, &mut scratch, |_, _| {}).unwrap();
        assert_eq!(fresh.params, b.params);
        assert_eq!(scratch.grads.capacity(), grads_cap);
        assert_eq!(scratch.batch_data.capacity(), data_cap);
        assert_eq!(scratch.batch_labels.capacity(), labels_cap);
    }

    #[test]
    fn proximal_correction_keeps_iterates_closer_to_anchor() {
        // With a strong proximal term the solution must stay closer to θ
        // than the unconstrained local solution — the mechanism FedProx and
        // FedADMM rely on to prevent client drift.
        let (train, _) = SyntheticDataset::Mnist.generate(80, 10, 2);
        let indices: Vec<usize> = (0..80).collect();
        let env = small_env(&train, &indices);
        let d = env.model.num_params();
        let theta = vec![0.0f32; d];
        let free = local_sgd(&env, &theta, |_, _| {}).unwrap();
        let rho = 10.0f32;
        let prox = local_sgd(&env, &theta, |w, g| {
            for ((gi, &wi), &ti) in g.iter_mut().zip(w.iter()).zip(theta.iter()) {
                *gi += rho * (wi - ti);
            }
        })
        .unwrap();
        let free_dist = vecops::dist(&free.params, &theta);
        let prox_dist = vecops::dist(&prox.params, &theta);
        assert!(prox_dist < free_dist, "{prox_dist} !< {free_dist}");
    }

    #[test]
    fn full_gradient_matches_zero_at_minimum_direction() {
        // The full gradient at a point must be a descent direction: taking a
        // small step along -g must reduce the loss.
        let (train, _) = SyntheticDataset::Mnist.generate(60, 10, 3);
        let indices: Vec<usize> = (0..60).collect();
        let env = small_env(&train, &indices);
        let init = vec![0.0f32; env.model.num_params()];
        let (g, loss0) = full_gradient(&env, &init).unwrap();
        let mut stepped = init.clone();
        vecops::axpy(-0.5, &g, &mut stepped);
        let (_, loss1) = full_gradient(&env, &stepped).unwrap();
        assert!(loss1 < loss0);
    }

    #[test]
    fn full_gradient_empty_client_is_zero() {
        let (train, _) = SyntheticDataset::Mnist.generate(20, 10, 4);
        let env = small_env(&train, &[]);
        let init = vec![0.1f32; env.model.num_params()];
        let (g, loss) = full_gradient(&env, &init).unwrap();
        assert!(g.iter().all(|&v| v == 0.0));
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn evaluate_reports_chance_accuracy_for_zero_model() {
        let (train, _) = SyntheticDataset::Mnist.generate(100, 10, 5);
        let model = ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        };
        let params = vec![0.0f32; model.num_params()];
        let (loss, acc) = evaluate(model, &params, &train, usize::MAX).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-3);
        // Zero logits predict class 0 for everything; balanced labels → 10%.
        assert!((acc - 0.1).abs() < 0.05);
    }

    #[test]
    fn evaluate_respects_subset_cap() {
        let (train, _) = SyntheticDataset::Mnist.generate(100, 10, 6);
        let model = ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        };
        let params = vec![0.0f32; model.num_params()];
        let full = evaluate(model, &params, &train, usize::MAX).unwrap();
        let subset = evaluate(model, &params, &train, 30).unwrap();
        assert!(full.0.is_finite() && subset.0.is_finite());
    }

    #[test]
    fn training_then_evaluating_beats_chance() {
        let (train, test) = SyntheticDataset::Mnist.generate(200, 100, 7);
        let indices: Vec<usize> = (0..200).collect();
        let mut env = small_env(&train, &indices);
        env.epochs = 5;
        let init = vec![0.0f32; env.model.num_params()];
        let result = local_sgd(&env, &init, |_, _| {}).unwrap();
        let (_, acc) = evaluate(env.model, &result.params, &test, usize::MAX).unwrap();
        assert!(acc > 0.3, "accuracy only {acc} (chance level is 0.1)");
    }
}
