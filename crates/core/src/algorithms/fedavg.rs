//! FedAvg (McMahan et al., AISTATS 2017) — the de-facto standard FL
//! baseline.
//!
//! Each selected client initialises its model at the current global model
//! θ, runs `E` epochs of local SGD on its own data, and uploads the
//! resulting model; the server averages the uploaded models. The paper's
//! Table I quotes its round complexity as
//! `O(1/ε² · (m−S)/(mS) + G/ε^{3/2} + B²/ε)`, which depends on the data
//! dissimilarity bound `B` and gradient bound `G` — the dependence FedADMM
//! removes.

use super::{total_upload, Algorithm, ClientMessage, FoldPlan, ServerOutcome};
use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::{local_sgd, LocalEnv};
use fedadmm_tensor::TensorResult;

/// The FedAvg algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg {
    /// Whether the server weights client models by their sample counts
    /// (`α_i = n_i/n`) instead of uniformly (`α_i = 1`). The paper uses
    /// uniform weights in its experiments.
    pub weighted_by_samples: bool,
}

impl FedAvg {
    /// Creates FedAvg with uniform client weights (the paper's choice).
    pub fn new() -> Self {
        FedAvg {
            weighted_by_samples: false,
        }
    }

    /// Creates FedAvg with sample-count-weighted aggregation.
    pub fn weighted() -> Self {
        FedAvg {
            weighted_by_samples: true,
        }
    }
}

impl Algorithm for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn supports_variable_work(&self) -> bool {
        // The paper fixes FedAvg's local epochs to E ("in order to compare
        // against baselines in their principal description").
        false
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        // Local training always starts from the downloaded global model.
        let result = local_sgd(env, global.as_slice(), |_, _| {})?;
        client.times_selected += 1;
        Ok(ClientMessage {
            client_id: client.id,
            num_samples: client.num_samples(),
            payload: vec![ParamVector::from_vec(result.params)],
            epochs_run: env.epochs,
            samples_processed: result.samples_processed,
            wire: None,
        })
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        _num_clients: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        if messages.is_empty() {
            return ServerOutcome { upload_floats: 0 };
        }
        let weights: Vec<f32> = if self.weighted_by_samples {
            let total: usize = messages.iter().map(|m| m.num_samples).sum();
            messages
                .iter()
                .map(|m| m.num_samples as f32 / total.max(1) as f32)
                .collect()
        } else {
            vec![1.0 / messages.len() as f32; messages.len()]
        };
        // θ is *replaced* by the weighted average of the uploaded models —
        // one fused pass, no zeroing sweep.
        let terms: Vec<(f32, &ParamVector)> = weights
            .iter()
            .zip(messages.iter())
            .map(|(w, msg)| (*w, &msg.payload[0]))
            .collect();
        global.assign_weighted_sum(&terms);
        ServerOutcome {
            upload_floats: total_upload(messages),
        }
    }

    fn fold_plan(&self, messages: &[ClientMessage], _num_clients: usize) -> Option<FoldPlan> {
        if messages.is_empty() {
            return None;
        }
        // θ is replaced by the weighted model average — the same weights as
        // `server_update`.
        let weights: Vec<f32> = if self.weighted_by_samples {
            let total: usize = messages.iter().map(|m| m.num_samples).sum();
            messages
                .iter()
                .map(|m| m.num_samples as f32 / total.max(1) as f32)
                .collect()
        } else {
            vec![1.0 / messages.len() as f32; messages.len()]
        };
        Some(FoldPlan::Assign(weights))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn server_averages_models_uniformly() {
        let mut alg = FedAvg::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut global = ParamVector::zeros(3);
        let messages = vec![
            ClientMessage {
                client_id: 0,
                num_samples: 1,
                payload: vec![ParamVector::from_vec(vec![1.0, 2.0, 3.0])],
                epochs_run: 1,
                samples_processed: 1,
                wire: None,
            },
            ClientMessage {
                client_id: 1,
                num_samples: 99,
                payload: vec![ParamVector::from_vec(vec![3.0, 4.0, 5.0])],
                epochs_run: 1,
                samples_processed: 99,
                wire: None,
            },
        ];
        let outcome = alg.server_update(&mut global, &messages, 10, &mut rng);
        assert_eq!(global.as_slice(), &[2.0, 3.0, 4.0]);
        assert_eq!(outcome.upload_floats, 6);
    }

    #[test]
    fn weighted_aggregation_respects_sample_counts() {
        let mut alg = FedAvg::weighted();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut global = ParamVector::zeros(1);
        let messages = vec![
            ClientMessage {
                client_id: 0,
                num_samples: 3,
                payload: vec![ParamVector::from_vec(vec![0.0])],
                epochs_run: 1,
                samples_processed: 3,
                wire: None,
            },
            ClientMessage {
                client_id: 1,
                num_samples: 1,
                payload: vec![ParamVector::from_vec(vec![4.0])],
                epochs_run: 1,
                samples_processed: 1,
                wire: None,
            },
        ];
        alg.server_update(&mut global, &messages, 2, &mut rng);
        assert_eq!(global.as_slice(), &[1.0]);
    }

    #[test]
    fn empty_round_leaves_global_unchanged() {
        let mut alg = FedAvg::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut global = ParamVector::from_vec(vec![1.0, 2.0]);
        let outcome = alg.server_update(&mut global, &[], 10, &mut rng);
        assert_eq!(global.as_slice(), &[1.0, 2.0]);
        assert_eq!(outcome.upload_floats, 0);
    }

    #[test]
    fn client_update_trains_and_uploads_model() {
        let fixture = Fixture::new(2, 40, 0);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let alg = FedAvg::new();
        let env = fixture.env(0, 2, 1);
        let msg = alg.client_update(&mut clients[0], &theta, &env).unwrap();
        assert_eq!(msg.payload.len(), 1);
        assert_eq!(msg.payload[0].len(), fixture.dim());
        // Training must move the model away from the all-zero initialisation.
        assert!(msg.payload[0].norm() > 0.0);
        assert_eq!(clients[0].times_selected, 1);
        assert_eq!(
            msg.upload_floats(),
            alg.upload_floats_per_client(fixture.dim())
        );
    }

    #[test]
    fn metadata() {
        let alg = FedAvg::new();
        assert_eq!(alg.name(), "FedAvg");
        assert!(!alg.supports_variable_work());
        assert!(!alg.requires_full_participation());
    }
}
