//! SCAFFOLD (Karimireddy et al., ICML 2020).
//!
//! SCAFFOLD corrects client drift with *control variates*: the server keeps
//! a global control variate `c`, every client keeps `c_i`, and the local
//! SGD direction is `∇f_i(w, b) − c_i + c`. After local training the client
//! refreshes its control variate (option II of the SCAFFOLD paper,
//! `c_i⁺ = c_i − c + (θ − w)/(K·η_l)`) and uploads **both** `Δw` and `Δc`,
//! which is why its per-round upload cost is `2d` — double that of
//! FedAvg/FedProx/FedADMM (a point the paper emphasises repeatedly).

use super::{total_upload, Algorithm, ClientMessage, ServerOutcome};
use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::{local_sgd, LocalEnv};
use fedadmm_tensor::TensorResult;
use parking_lot::RwLock;

/// The SCAFFOLD algorithm.
#[derive(Debug)]
pub struct Scaffold {
    /// Server step size for the model update (1.0 in the paper's setup).
    pub server_learning_rate: f32,
    /// Global control variate `c`, zero-initialised (as recommended and as
    /// stated in Section V-A of the paper). Wrapped in a lock because
    /// `client_update` (which only reads it) runs concurrently across
    /// clients.
    control: RwLock<ParamVector>,
    /// Client population size `m` (needed for the `c` update).
    num_clients: usize,
}

impl Scaffold {
    /// Creates SCAFFOLD with server step size 1.0.
    pub fn new() -> Self {
        Scaffold {
            server_learning_rate: 1.0,
            control: RwLock::new(ParamVector::zeros(0)),
            num_clients: 0,
        }
    }

    /// Returns a copy of the current global control variate (for tests and
    /// diagnostics).
    pub fn global_control(&self) -> ParamVector {
        self.control.read().clone()
    }
}

impl Default for Scaffold {
    fn default() -> Self {
        Scaffold::new()
    }
}

impl Algorithm for Scaffold {
    fn name(&self) -> &'static str {
        "SCAFFOLD"
    }

    fn init(&mut self, dim: usize, num_clients: usize) {
        *self.control.write() = ParamVector::zeros(dim);
        self.num_clients = num_clients;
    }

    fn supports_variable_work(&self) -> bool {
        // Fixed E in the paper's protocol, like FedAvg.
        false
    }

    fn upload_floats_per_client(&self, dim: usize) -> usize {
        // Δw and Δc: control variates double the upload size.
        2 * dim
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        let c_global = self.control.read().clone();
        let c_local = client.control.clone();
        let theta = global.as_slice();

        // Local steps use the drift-corrected gradient g − c_i + c.
        let result = local_sgd(env, theta, |_w, g| {
            for ((gi, &cg), &cl) in g
                .iter_mut()
                .zip(c_global.as_slice().iter())
                .zip(c_local.as_slice().iter())
            {
                *gi += cg - cl;
            }
        })?;
        let steps = result.steps.max(1);
        let new_local = ParamVector::from_vec(result.params);

        // Option II control-variate update: c_i⁺ = c_i − c + (θ − w)/(K·η_l).
        let mut new_control = client.control.clone();
        new_control.axpy(-1.0, &c_global);
        let inv = 1.0 / (steps as f32 * env.learning_rate);
        for ((nc, &t), &w) in new_control
            .as_mut_slice()
            .iter_mut()
            .zip(theta.iter())
            .zip(new_local.as_slice().iter())
        {
            *nc += (t - w) * inv;
        }

        let delta_w = new_local.sub(global);
        let delta_c = new_control.sub(&client.control);
        client.control = new_control;
        client.local_model = new_local;
        client.times_selected += 1;

        Ok(ClientMessage {
            client_id: client.id,
            num_samples: client.num_samples(),
            payload: vec![delta_w, delta_c],
            epochs_run: env.epochs,
            samples_processed: result.samples_processed,
            wire: None,
        })
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        num_clients: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        if messages.is_empty() {
            return ServerOutcome { upload_floats: 0 };
        }
        let s = messages.len() as f32;
        // θ ← θ + (η_g/|S|) Σ Δw — one fused pass over ℝ^d.
        let model_scale = self.server_learning_rate / s;
        let model_terms: Vec<(f32, &ParamVector)> = messages
            .iter()
            .map(|msg| (model_scale, &msg.payload[0]))
            .collect();
        global.accumulate(&model_terms);
        // c ← c + (1/m) Σ Δc — likewise fused.
        let m = num_clients.max(self.num_clients).max(1) as f32;
        let mut control = self.control.write();
        if control.len() != global.len() {
            *control = ParamVector::zeros(global.len());
        }
        let control_terms: Vec<(f32, &ParamVector)> = messages
            .iter()
            .map(|msg| (1.0 / m, &msg.payload[1]))
            .collect();
        control.accumulate(&control_terms);
        ServerOutcome {
            upload_floats: total_upload(messages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn upload_cost_is_doubled() {
        let alg = Scaffold::new();
        assert_eq!(alg.upload_floats_per_client(100), 200);
        let fixture = Fixture::new(1, 30, 0);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let mut alg = Scaffold::new();
        alg.init(fixture.dim(), 1);
        let env = fixture.env(0, 1, 1);
        let msg = alg.client_update(&mut clients[0], &theta, &env).unwrap();
        assert_eq!(msg.payload.len(), 2);
        assert_eq!(msg.upload_floats(), 2 * fixture.dim());
    }

    #[test]
    fn control_variates_start_at_zero_and_get_updated() {
        let fixture = Fixture::new(2, 30, 1);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let mut alg = Scaffold::new();
        alg.init(fixture.dim(), 2);
        assert_eq!(alg.global_control().norm(), 0.0);
        assert_eq!(clients[0].control.norm(), 0.0);

        let env = fixture.env(0, 2, 2);
        let msg = alg.client_update(&mut clients[0], &theta, &env).unwrap();
        // After real training the client's control variate is non-zero.
        assert!(clients[0].control.norm() > 0.0);

        let mut rng = SmallRng::seed_from_u64(0);
        let mut global = theta.clone();
        alg.server_update(&mut global, &[msg], 2, &mut rng);
        assert!(alg.global_control().norm() > 0.0);
        assert!(global.dist(&theta) > 0.0);
    }

    #[test]
    fn option_ii_control_update_formula() {
        // With zero initial control variates, c_i⁺ = (θ − w)/(K·η_l).
        let fixture = Fixture::new(1, 32, 3);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let mut alg = Scaffold::new();
        alg.init(fixture.dim(), 1);
        let env = fixture.env(0, 1, 4);
        let msg = alg.client_update(&mut clients[0], &theta, &env).unwrap();
        let steps = 32usize.div_ceil(16); // one epoch of batches of 16
        let mut expected = theta.sub(&clients[0].local_model);
        expected.scale(1.0 / (steps as f32 * env.learning_rate));
        assert!(clients[0].control.dist(&expected) < 1e-4);
        // Δc equals the new control variate since the old one was zero.
        assert!(msg.payload[1].dist(&expected) < 1e-4);
    }

    #[test]
    fn first_round_matches_fedavg_trajectory() {
        // With all control variates zero the corrected gradient equals the
        // plain gradient, so SCAFFOLD's first local model must coincide with
        // FedAvg's for the same seed.
        let fixture = Fixture::new(1, 40, 5);
        let theta = ParamVector::zeros(fixture.dim());
        let env = fixture.env(0, 2, 6);
        let mut scaffold = Scaffold::new();
        scaffold.init(fixture.dim(), 1);
        let mut c_scaffold = fixture.clients(&theta);
        let m_scaffold = scaffold
            .client_update(&mut c_scaffold[0], &theta, &env)
            .unwrap();
        let avg = super::super::FedAvg::new();
        let mut c_avg = fixture.clients(&theta);
        let m_avg = avg.client_update(&mut c_avg[0], &theta, &env).unwrap();
        // SCAFFOLD uploads Δw = w − θ with θ = 0, so payload[0] == FedAvg's w.
        assert!(m_scaffold.payload[0].dist(&m_avg.payload[0]) < 1e-5);
    }

    #[test]
    fn empty_round_is_noop() {
        let mut alg = Scaffold::new();
        alg.init(4, 10);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut global = ParamVector::from_vec(vec![1.0; 4]);
        let outcome = alg.server_update(&mut global, &[], 10, &mut rng);
        assert_eq!(outcome.upload_floats, 0);
        assert_eq!(global.as_slice(), &[1.0; 4]);
    }
}
