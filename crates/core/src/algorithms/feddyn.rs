//! FedDyn (Acar et al., ICLR 2021) — dynamic regularization.
//!
//! FedDyn is the closest published relative of FedADMM outside the ADMM
//! lineage: each client augments its loss with a *linear* correction term
//! `−⟨h_i, w⟩` plus the same quadratic proximal term `(α/2)‖w − θ‖²`, and
//! updates the correction as `h_i ← h_i − α(w_i − θ)` after local training.
//! Up to the sign convention, `h_i` plays the role of FedADMM's dual
//! variable `y_i` (indeed `h_i = −y_i` when `α = ρ`); the difference is in
//! the *server* update:
//!
//! * FedADMM tracks augmented-model differences (equation 5 of the paper);
//! * FedDyn keeps a server state `h = (α/m)·Σ_i h_i`-style running average
//!   of the corrections and sets `θ ← w̄ + (1/α)·h_server`, where `w̄` is the
//!   average of the received client models.
//!
//! Implementing FedDyn alongside FedADMM lets the ablation benches ask
//! whether the paper's gains come from the dual mechanism itself or from
//! its particular (tracking) server rule. Communication cost per round is
//! identical to FedAvg/Prox/ADMM: one `d`-vector per selected client.
//!
//! The client correction state is stored in [`ClientState::dual`] (it has
//! exactly the dual-variable role); FedDyn must therefore not share client
//! state with FedADMM within one simulation, which the [`crate::simulation`]
//! engine never does.

use super::{total_upload, Algorithm, ClientMessage, ServerOutcome};
use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::{local_sgd, LocalEnv};
use fedadmm_tensor::TensorResult;

/// The FedDyn algorithm.
#[derive(Debug, Clone)]
pub struct FedDyn {
    /// Regularization coefficient α (the analogue of FedADMM's ρ).
    pub alpha: f32,
    /// Server running correction `h` (dimension `d`, zero-initialised).
    server_h: ParamVector,
    /// Client population size `m`, fixed at [`Algorithm::init`].
    num_clients: usize,
}

impl FedDyn {
    /// Creates FedDyn with regularization coefficient `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha <= 0`.
    pub fn new(alpha: f32) -> Self {
        assert!(
            alpha > 0.0,
            "FedDyn requires a positive regularization coefficient α"
        );
        FedDyn {
            alpha,
            server_h: ParamVector::zeros(0),
            num_clients: 0,
        }
    }

    /// The server correction state `h` (for tests and diagnostics).
    pub fn server_correction(&self) -> &ParamVector {
        &self.server_h
    }
}

impl Algorithm for FedDyn {
    fn name(&self) -> &'static str {
        "FedDyn"
    }

    fn init(&mut self, dim: usize, num_clients: usize) {
        self.server_h = ParamVector::zeros(dim);
        self.num_clients = num_clients.max(1);
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        let alpha = self.alpha;
        let theta = global.as_slice();
        // h_i is stored in the dual slot; the FedDyn gradient correction is
        //   ∇R_i(w) = ∇f_i(w, b) − h_i + α(w − θ).
        let h = client.dual.as_slice().to_vec();
        let result = local_sgd(env, theta, |w, g| {
            for (((gi, &wi), &ti), &hi) in
                g.iter_mut().zip(w.iter()).zip(theta.iter()).zip(h.iter())
            {
                *gi += alpha * (wi - ti) - hi;
            }
        })?;

        // Correction update: h_i ← h_i − α(w_i^{t+1} − θ^t).
        let new_local = ParamVector::from_vec(result.params);
        let mut new_h = client.dual.clone();
        new_h.axpy(-alpha, &new_local);
        new_h.axpy(alpha, global);

        client.local_model = new_local.clone();
        client.dual = new_h;
        client.times_selected += 1;

        Ok(ClientMessage {
            client_id: client.id,
            num_samples: client.num_samples(),
            payload: vec![new_local],
            epochs_run: env.epochs,
            samples_processed: result.samples_processed,
            wire: None,
        })
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        num_clients: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        if messages.is_empty() {
            return ServerOutcome { upload_floats: 0 };
        }
        let m = if self.num_clients > 0 {
            self.num_clients
        } else {
            num_clients.max(1)
        };
        if self.server_h.len() != global.len() {
            self.server_h = ParamVector::zeros(global.len());
        }
        // Average of the received client models.
        let mut w_bar = ParamVector::zeros(global.len());
        let w = 1.0 / messages.len() as f32;
        for msg in messages {
            w_bar.axpy(w, &msg.payload[0]);
        }
        // Server correction: h ← h − (α/m) Σ_{i∈S_t} (w_i − θ).
        let scale = self.alpha / m as f32;
        for msg in messages {
            self.server_h.axpy(-scale, &msg.payload[0]);
            self.server_h.axpy(scale, global);
        }
        // θ ← w̄ − (1/α) h.
        global.copy_from(&w_bar);
        global.axpy(-1.0 / self.alpha, &self.server_h);
        ServerOutcome {
            upload_floats: total_upload(messages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::super::FedAvg;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn message(id: usize, values: Vec<f32>) -> ClientMessage {
        ClientMessage {
            client_id: id,
            num_samples: 1,
            payload: vec![ParamVector::from_vec(values)],
            epochs_run: 1,
            samples_processed: 1,
            wire: None,
        }
    }

    #[test]
    #[should_panic(expected = "positive regularization coefficient")]
    fn non_positive_alpha_is_rejected() {
        FedDyn::new(0.0);
    }

    #[test]
    fn metadata() {
        let alg = FedDyn::new(0.1);
        assert_eq!(alg.name(), "FedDyn");
        assert!(alg.supports_variable_work());
        assert!(!alg.requires_full_participation());
        assert_eq!(alg.upload_floats_per_client(77), 77);
    }

    #[test]
    fn correction_update_follows_the_feddyn_rule() {
        // After a client update, h_i^{t+1} must equal h_i^t − α(w_i^{t+1} − θ).
        let fixture = Fixture::new(1, 40, 31);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let alg = FedDyn::new(0.4);
        let env = fixture.env(0, 2, 7);
        let old_h = clients[0].dual.clone();
        alg.client_update(&mut clients[0], &theta, &env).unwrap();
        let mut expected = old_h;
        expected.axpy(-0.4, &clients[0].local_model);
        expected.axpy(0.4, &theta);
        assert!(expected.dist(&clients[0].dual) < 1e-5);
    }

    #[test]
    fn correction_is_negative_fedadmm_dual_for_matching_coefficients() {
        // With α = ρ, zero initial state and the same seed, FedDyn's h_i is
        // exactly −y_i of FedADMM after one round (both solve the same local
        // problem on the first round because h_i = y_i = 0 then).
        let fixture = Fixture::new(1, 40, 32);
        let theta = ParamVector::zeros(fixture.dim());
        let rho = 0.3;
        let env = fixture.env(0, 2, 9);

        let dyn_alg = FedDyn::new(rho);
        let mut c_dyn = fixture.clients(&theta);
        dyn_alg.client_update(&mut c_dyn[0], &theta, &env).unwrap();

        let admm = super::super::FedAdmm::new(rho, super::super::ServerStepSize::Constant(1.0))
            .with_local_init(super::super::LocalInit::GlobalModel);
        let mut c_admm = fixture.clients(&theta);
        admm.client_update(&mut c_admm[0], &theta, &env).unwrap();

        assert!(c_dyn[0].local_model.dist(&c_admm[0].local_model) < 1e-5);
        let mut negated = c_admm[0].dual.clone();
        negated.scale(-1.0);
        assert!(c_dyn[0].dual.dist(&negated) < 1e-5);
    }

    #[test]
    fn server_update_with_zero_corrections_matches_fedavg() {
        // On the first round the server correction h is still zero after the
        // update only if the received models equal θ; in general the FedDyn
        // server equals FedAvg's model average *minus* (1/α)·h. Verify the
        // closed form on a tiny example.
        let mut alg = FedDyn::new(0.5);
        alg.init(2, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        let theta0 = ParamVector::from_vec(vec![0.0, 0.0]);
        let mut theta = theta0.clone();
        let msgs = vec![message(0, vec![1.0, 0.0]), message(1, vec![0.0, 1.0])];

        let mut avg = FedAvg::new();
        let mut theta_avg = theta0.clone();
        avg.server_update(&mut theta_avg, &msgs, 4, &mut rng);

        alg.server_update(&mut theta, &msgs, 4, &mut rng);
        // h = -(α/m)·Σ(w_i − θ0) = -(0.5/4)·[1,1] = [-0.125,-0.125]
        // θ = w̄ − h/α = [0.5,0.5] + [0.25,0.25] = [0.75,0.75]
        assert!((theta.as_slice()[0] - 0.75).abs() < 1e-6);
        assert!((theta.as_slice()[1] - 0.75).abs() < 1e-6);
        // FedAvg would give [0.5, 0.5]; the correction pushes further.
        assert!(theta.as_slice()[0] > theta_avg.as_slice()[0]);
        assert_eq!(alg.server_correction().as_slice(), &[-0.125, -0.125]);
    }

    #[test]
    fn empty_round_is_a_noop() {
        let mut alg = FedDyn::new(0.1);
        alg.init(3, 5);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut theta = ParamVector::from_vec(vec![1.0, 2.0, 3.0]);
        let outcome = alg.server_update(&mut theta, &[], 5, &mut rng);
        assert_eq!(outcome.upload_floats, 0);
        assert_eq!(theta.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn small_run_improves_over_initialization() {
        let fixture = Fixture::new(2, 60, 33);
        let mut theta = ParamVector::zeros(fixture.dim());
        let mut alg = FedDyn::new(0.3);
        alg.init(fixture.dim(), 2);
        let mut clients = fixture.clients(&theta);
        let mut rng = SmallRng::seed_from_u64(5);
        let before =
            crate::trainer::evaluate(fixture.model, theta.as_slice(), &fixture.train, usize::MAX)
                .unwrap();
        for round in 0..4 {
            let mut messages = Vec::new();
            for (c, client) in clients.iter_mut().enumerate().take(2) {
                let env = fixture.env(c, 2, 200 + round);
                messages.push(alg.client_update(client, &theta, &env).unwrap());
            }
            alg.server_update(&mut theta, &messages, 2, &mut rng);
        }
        let after =
            crate::trainer::evaluate(fixture.model, theta.as_slice(), &fixture.train, usize::MAX)
                .unwrap();
        assert!(after.1 > before.1, "accuracy {} !> {}", after.1, before.1);
    }
}
