//! FedProx (Li et al., MLSys 2020).
//!
//! FedProx augments FedAvg's local problem with a proximal term: each
//! selected client approximately minimises `f_i(w) + (ρ/2)‖w − θ‖²`,
//! starting from θ. It tolerates variable local work (system
//! heterogeneity), but — as the paper demonstrates in Table V — its
//! performance is sensitive to the choice of ρ, which must be tuned per
//! dataset / system size. It is exactly FedADMM's local problem with the
//! dual variable pinned to zero (Section III-B), which the
//! `fedadmm_with_zero_dual_matches_fedprox_local_step` test exercises.

use super::{total_upload, Algorithm, ClientMessage, FoldPlan, ServerOutcome};
use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::{local_sgd, LocalEnv};
use fedadmm_tensor::TensorResult;

/// The FedProx algorithm.
#[derive(Debug, Clone, Copy)]
pub struct FedProx {
    /// Proximal coefficient ρ (the paper tunes it over
    /// `{0.001, 0.01, 0.1, 1}` for FedProx).
    pub rho: f32,
}

impl FedProx {
    /// Creates FedProx with proximal coefficient `rho`.
    pub fn new(rho: f32) -> Self {
        FedProx { rho }
    }

    /// Updates the proximal coefficient (used by the ρ-sensitivity sweeps).
    pub fn set_rho(&mut self, rho: f32) {
        self.rho = rho;
    }
}

impl Algorithm for FedProx {
    fn name(&self) -> &'static str {
        "FedProx"
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        let rho = self.rho;
        let theta = global.as_slice();
        let result = local_sgd(env, theta, |w, g| {
            // ∇ of the proximal term (ρ/2)‖w − θ‖² is ρ(w − θ).
            for ((gi, &wi), &ti) in g.iter_mut().zip(w.iter()).zip(theta.iter()) {
                *gi += rho * (wi - ti);
            }
        })?;
        client.times_selected += 1;
        Ok(ClientMessage {
            client_id: client.id,
            num_samples: client.num_samples(),
            payload: vec![ParamVector::from_vec(result.params)],
            epochs_run: env.epochs,
            samples_processed: result.samples_processed,
            wire: None,
        })
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        _num_clients: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        if messages.is_empty() {
            return ServerOutcome { upload_floats: 0 };
        }
        // θ ← (1/|S|) Σ w_i in a single fused pass (no zeroing sweep).
        let w = 1.0 / messages.len() as f32;
        let terms: Vec<(f32, &ParamVector)> =
            messages.iter().map(|msg| (w, &msg.payload[0])).collect();
        global.assign_weighted_sum(&terms);
        ServerOutcome {
            upload_floats: total_upload(messages),
        }
    }

    fn fold_plan(&self, messages: &[ClientMessage], _num_clients: usize) -> Option<FoldPlan> {
        if messages.is_empty() {
            return None;
        }
        // θ ← (1/|S|) Σ w_i — a uniform model average.
        Some(FoldPlan::Assign(vec![
            1.0 / messages.len() as f32;
            messages.len()
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn stronger_rho_keeps_clients_closer_to_global() {
        let fixture = Fixture::new(1, 60, 3);
        let theta = ParamVector::zeros(fixture.dim());
        let env = fixture.env(0, 3, 7);

        let weak = FedProx::new(0.001);
        let strong = FedProx::new(10.0);
        let mut c1 = fixture.clients(&theta);
        let mut c2 = fixture.clients(&theta);
        let m_weak = weak.client_update(&mut c1[0], &theta, &env).unwrap();
        let m_strong = strong.client_update(&mut c2[0], &theta, &env).unwrap();
        let d_weak = m_weak.payload[0].dist(&theta);
        let d_strong = m_strong.payload[0].dist(&theta);
        assert!(d_strong < d_weak, "{d_strong} !< {d_weak}");
    }

    #[test]
    fn rho_zero_recovers_fedavg_local_problem() {
        // Section III-B: setting y ≡ 0 and ρ = 0 recovers FedAvg's local
        // training problem. With identical seeds the trajectories coincide.
        let fixture = Fixture::new(1, 40, 5);
        let theta = ParamVector::zeros(fixture.dim());
        let env = fixture.env(0, 2, 11);
        let prox = FedProx::new(0.0);
        let avg = super::super::FedAvg::new();
        let mut c1 = fixture.clients(&theta);
        let mut c2 = fixture.clients(&theta);
        let m_prox = prox.client_update(&mut c1[0], &theta, &env).unwrap();
        let m_avg = avg.client_update(&mut c2[0], &theta, &env).unwrap();
        assert_eq!(m_prox.payload[0], m_avg.payload[0]);
    }

    #[test]
    fn server_averages_models() {
        let mut alg = FedProx::new(0.1);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut global = ParamVector::from_vec(vec![9.0, 9.0]);
        let messages = vec![
            ClientMessage {
                client_id: 0,
                num_samples: 1,
                payload: vec![ParamVector::from_vec(vec![2.0, 0.0])],
                epochs_run: 1,
                samples_processed: 1,
                wire: None,
            },
            ClientMessage {
                client_id: 1,
                num_samples: 1,
                payload: vec![ParamVector::from_vec(vec![0.0, 4.0])],
                epochs_run: 1,
                samples_processed: 1,
                wire: None,
            },
        ];
        alg.server_update(&mut global, &messages, 10, &mut rng);
        assert_eq!(global.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn set_rho_updates_coefficient() {
        let mut alg = FedProx::new(0.1);
        alg.set_rho(1.0);
        assert_eq!(alg.rho, 1.0);
        assert_eq!(alg.name(), "FedProx");
        assert!(alg.supports_variable_work());
    }
}
