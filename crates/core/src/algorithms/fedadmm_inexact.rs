//! FedADMM with the paper's general inexactness criterion and pluggable
//! local solvers.
//!
//! Algorithm 1 instantiates the local update as `E_i` epochs of SGD, but
//! the analysis (Theorem 1) only requires criterion (6):
//! `‖∇_w L_i(w_i^{t+1}, y_i^t, θ^t)‖² ≤ ε_i`. [`FedAdmmInexact`] implements
//! the general form: each client runs a [`LocalSolver`] (full-batch gradient
//! descent, gradient descent to a prescribed tolerance, or L-BFGS — the
//! quasi-Newton option the paper explicitly mentions) on the augmented
//! Lagrangian, then performs the same dual update and uploads the same
//! augmented-model difference as [`super::FedAdmm`].
//!
//! This is also how the paper's *system heterogeneity* story generalises
//! beyond "variable epoch counts": a slow device can use a loose `ε_i`
//! (cheap, few gradient evaluations) while a fast device solves its
//! subproblem accurately, and the convergence guarantee degrades gracefully
//! with `ε_max = max_i ε_i` (Theorem 1, equation 8).

use super::{total_upload, Algorithm, ClientMessage, ServerOutcome};
use super::{LocalInit, ServerStepSize};
use crate::client::ClientState;
use crate::param::ParamVector;
use crate::solver::{AugmentedObjective, LocalSolver};
use crate::trainer::LocalEnv;
use fedadmm_tensor::TensorResult;

/// FedADMM with inexact local solves (criterion 6) and pluggable solvers.
#[derive(Debug, Clone, Copy)]
pub struct FedAdmmInexact {
    /// Proximal coefficient ρ of the augmented Lagrangian.
    pub rho: f32,
    /// Server gathering step size η (equation 5).
    pub server_step: ServerStepSize,
    /// Local-training initialisation (warm start from `w_i` by default).
    pub local_init: LocalInit,
    /// The local solver every client runs on its subproblem.
    pub solver: LocalSolver,
}

impl FedAdmmInexact {
    /// Creates the algorithm with the given ρ, server step size, and solver.
    pub fn new(rho: f32, server_step: ServerStepSize, solver: LocalSolver) -> Self {
        assert!(
            rho > 0.0,
            "FedADMM requires a positive proximal coefficient ρ"
        );
        FedAdmmInexact {
            rho,
            server_step,
            local_init: LocalInit::LocalModel,
            solver,
        }
    }

    /// A convenient default: backtracking gradient descent until
    /// `‖∇L_i‖² ≤ ε` (capped at 2,000 gradient evaluations).
    pub fn to_tolerance(rho: f32, epsilon: f32, learning_rate: f32) -> Self {
        FedAdmmInexact::new(
            rho,
            ServerStepSize::Constant(1.0),
            LocalSolver::ToTolerance {
                epsilon,
                learning_rate,
                max_steps: 2000,
            },
        )
    }

    /// Sets the local initialisation strategy (Figure 8 ablation).
    pub fn with_local_init(mut self, init: LocalInit) -> Self {
        self.local_init = init;
        self
    }
}

impl Algorithm for FedAdmmInexact {
    fn name(&self) -> &'static str {
        "FedADMM-inexact"
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        let rho = self.rho;
        let theta = global.as_slice();
        let old_augmented = client.augmented_model(rho);

        let dual = client.dual.as_slice().to_vec();
        let objective = AugmentedObjective::new(env, theta, Some(&dual), rho);
        let init: Vec<f32> = match self.local_init {
            LocalInit::LocalModel => client.local_model.as_slice().to_vec(),
            LocalInit::GlobalModel => theta.to_vec(),
        };
        let result = self.solver.solve(&objective, &init)?;

        // Dual update (Alg. 1 line 20): y_i ← y_i + ρ(w_i^{t+1} − θ^t).
        let new_local = ParamVector::from_vec(result.params);
        let mut new_dual = client.dual.clone();
        new_dual.axpy(rho, &new_local);
        new_dual.axpy(-rho, global);

        client.local_model = new_local;
        client.dual = new_dual;
        client.times_selected += 1;

        let delta = client.augmented_model(rho).sub(&old_augmented);
        Ok(ClientMessage {
            client_id: client.id,
            num_samples: client.num_samples(),
            payload: vec![delta],
            // One full-gradient evaluation touches the whole local dataset
            // once, i.e. it costs the same as one epoch.
            epochs_run: result.gradient_evals,
            samples_processed: result.gradient_evals * client.num_samples(),
            wire: None,
        })
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        num_clients: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        if messages.is_empty() {
            return ServerOutcome { upload_floats: 0 };
        }
        // Same eq.-5 tracking update as exact FedADMM: one fused pass.
        let eta = self.server_step.resolve(messages.len(), num_clients);
        let scale = eta / messages.len() as f32;
        let terms: Vec<(f32, &ParamVector)> = messages
            .iter()
            .map(|msg| (scale, &msg.payload[0]))
            .collect();
        global.accumulate(&terms);
        ServerOutcome {
            upload_floats: total_upload(messages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;

    #[test]
    fn dual_update_and_message_match_algorithm_1() {
        let fixture = Fixture::new(1, 40, 21);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let rho = 0.5f32;
        let alg = FedAdmmInexact::to_tolerance(rho, 1e-2, 0.2);
        let env = fixture.env(0, 1, 5);
        let u_before = clients[0].augmented_model(rho);
        let old_dual = clients[0].dual.clone();
        let msg = alg.client_update(&mut clients[0], &theta, &env).unwrap();

        // Dual update of line 20.
        let mut expected_dual = old_dual;
        expected_dual.axpy(rho, &clients[0].local_model);
        expected_dual.axpy(-rho, &theta);
        assert!(expected_dual.dist(&clients[0].dual) < 1e-5);

        // Update message of equation (4).
        let expected_delta = clients[0].augmented_model(rho).sub(&u_before);
        assert!(msg.payload[0].dist(&expected_delta) < 1e-5);
        assert_eq!(msg.upload_floats(), fixture.dim());
    }

    #[test]
    fn inexact_solve_actually_meets_the_requested_tolerance() {
        let fixture = Fixture::new(1, 60, 22);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let rho = 5.0f32;
        let epsilon = 1e-2f32;
        let alg = FedAdmmInexact::to_tolerance(rho, epsilon, 0.5);
        let env = fixture.env(0, 1, 6);
        alg.client_update(&mut clients[0], &theta, &env).unwrap();
        // Recompute ‖∇L_i(w^{t+1}, y^t, θ^t)‖² with the *old* dual (zero
        // here since the client was fresh) and verify criterion (6).
        let zero_dual = vec![0.0f32; fixture.dim()];
        let objective =
            crate::solver::AugmentedObjective::new(&env, theta.as_slice(), Some(&zero_dual), rho);
        let gns = objective
            .grad_norm_sq(clients[0].local_model.as_slice())
            .unwrap();
        assert!(
            gns <= epsilon * 1.01,
            "criterion (6) violated: {gns} > {epsilon}"
        );
    }

    #[test]
    fn lbfgs_solver_variant_runs_and_uploads_one_vector() {
        let fixture = Fixture::new(2, 30, 23);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let alg = FedAdmmInexact::new(
            0.5,
            ServerStepSize::Constant(1.0),
            LocalSolver::Lbfgs {
                memory: 5,
                max_iters: 30,
                epsilon: 1e-3,
            },
        );
        let env = fixture.env(0, 1, 7);
        let msg = alg.client_update(&mut clients[0], &theta, &env).unwrap();
        assert_eq!(msg.payload.len(), 1);
        assert!(msg.epochs_run >= 1);
        assert_eq!(alg.name(), "FedADMM-inexact");
    }

    #[test]
    fn server_update_matches_tracking_rule() {
        let mut alg = FedAdmmInexact::to_tolerance(0.1, 1e-2, 0.1);
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut global = ParamVector::from_vec(vec![0.0, 0.0]);
        let messages = vec![ClientMessage {
            client_id: 0,
            num_samples: 1,
            payload: vec![ParamVector::from_vec(vec![1.0, -1.0])],
            epochs_run: 1,
            samples_processed: 1,
            wire: None,
        }];
        alg.server_update(&mut global, &messages, 10, &mut rng);
        assert_eq!(global.as_slice(), &[1.0, -1.0]);
        let empty = alg.server_update(&mut global, &[], 10, &mut rng);
        assert_eq!(empty.upload_floats, 0);
    }

    #[test]
    fn global_init_and_warm_start_are_both_supported() {
        let fixture = Fixture::new(1, 30, 24);
        let theta = ParamVector::zeros(fixture.dim());
        let alg =
            FedAdmmInexact::to_tolerance(0.5, 1e-2, 0.2).with_local_init(LocalInit::GlobalModel);
        assert_eq!(alg.local_init, LocalInit::GlobalModel);
        let mut clients = fixture.clients(&theta);
        let env = fixture.env(0, 1, 8);
        alg.client_update(&mut clients[0], &theta, &env).unwrap();
    }

    #[test]
    #[should_panic(expected = "positive proximal coefficient")]
    fn zero_rho_is_rejected() {
        FedAdmmInexact::new(
            0.0,
            ServerStepSize::Constant(1.0),
            LocalSolver::GradientDescent {
                steps: 1,
                learning_rate: 0.1,
            },
        );
    }
}
