//! FedPD (Zhang et al., IEEE TSP 2021) — the closest prior primal-dual
//! method.
//!
//! FedPD also equips every client with a dual variable and an augmented
//! Lagrangian, but differs from FedADMM in the two ways the paper's Related
//! Work section calls out:
//!
//! 1. **Full participation** — *all* clients update their local models and
//!    dual variables at every round (`requires_full_participation` is true),
//!    which is exactly the property the paper argues is unrealistic at scale;
//! 2. **Probabilistic communication** — with probability `p` the round ends
//!    with every client uploading its augmented model and the server
//!    averaging them; otherwise there is no communication at all, so the
//!    global model update frequency is limited by `p`.
//!
//! It is included as an optional extension (the paper excludes it from the
//! experimental comparison because of the full-participation requirement);
//! the ablation benches use it to quantify that computation/communication
//! overhead.

use super::{Algorithm, ClientMessage, ServerOutcome};
use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::{local_sgd, LocalEnv};
use fedadmm_tensor::TensorResult;
use rand::Rng;

/// The FedPD algorithm.
#[derive(Debug, Clone, Copy)]
pub struct FedPd {
    /// Proximal coefficient ρ of the augmented Lagrangian.
    pub rho: f32,
    /// Probability that a round ends with server communication.
    pub communication_probability: f64,
}

impl FedPd {
    /// Creates FedPD.
    ///
    /// # Panics
    /// Panics if `rho <= 0` or the probability is outside `(0, 1]`.
    pub fn new(rho: f32, communication_probability: f64) -> Self {
        assert!(
            rho > 0.0,
            "FedPD requires a positive proximal coefficient ρ"
        );
        assert!(
            communication_probability > 0.0 && communication_probability <= 1.0,
            "communication probability must lie in (0, 1]"
        );
        FedPd {
            rho,
            communication_probability,
        }
    }
}

impl Algorithm for FedPd {
    fn name(&self) -> &'static str {
        "FedPD"
    }

    fn requires_full_participation(&self) -> bool {
        true
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        let rho = self.rho;
        let theta = global.as_slice();
        let dual = client.dual.as_slice().to_vec();
        // Same local problem as FedADMM: minimise the augmented Lagrangian,
        // warm-started from the stored local model.
        let result = local_sgd(env, client.local_model.as_slice(), |w, g| {
            for (((gi, &wi), &ti), &yi) in g
                .iter_mut()
                .zip(w.iter())
                .zip(theta.iter())
                .zip(dual.iter())
            {
                *gi += yi + rho * (wi - ti);
            }
        })?;
        let new_local = ParamVector::from_vec(result.params);
        let mut new_dual = client.dual.clone();
        new_dual.axpy(rho, &new_local);
        new_dual.axpy(-rho, global);
        client.local_model = new_local;
        client.dual = new_dual;
        client.times_selected += 1;

        // FedPD clients report their augmented model x_i = w_i + y_i/ρ; the
        // server averages these when a communication round fires.
        let augmented = client.augmented_model(rho);
        Ok(ClientMessage {
            client_id: client.id,
            num_samples: client.num_samples(),
            payload: vec![augmented],
            epochs_run: env.epochs,
            samples_processed: result.samples_processed,
            wire: None,
        })
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        _num_clients: usize,
        rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        if messages.is_empty() {
            return ServerOutcome { upload_floats: 0 };
        }
        // With probability p the clients communicate and the server averages
        // the augmented models; otherwise the round involves no uploads and
        // the global model is left unchanged.
        if !rng.gen_bool(self.communication_probability) {
            return ServerOutcome { upload_floats: 0 };
        }
        // θ is replaced by the uniform average of the uploaded models —
        // one fused pass, no zeroing sweep.
        let w = 1.0 / messages.len() as f32;
        let terms: Vec<(f32, &ParamVector)> =
            messages.iter().map(|msg| (w, &msg.payload[0])).collect();
        global.assign_weighted_sum(&terms);
        ServerOutcome {
            upload_floats: messages.iter().map(|m| m.upload_floats()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validation() {
        assert!(std::panic::catch_unwind(|| FedPd::new(0.0, 0.5)).is_err());
        assert!(std::panic::catch_unwind(|| FedPd::new(0.1, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| FedPd::new(0.1, 1.5)).is_err());
        let alg = FedPd::new(0.1, 0.5);
        assert_eq!(alg.name(), "FedPD");
        assert!(alg.requires_full_participation());
    }

    #[test]
    fn communication_probability_gates_uploads() {
        let mut alg = FedPd::new(0.1, 0.5);
        let mut rng = SmallRng::seed_from_u64(7);
        let message = ClientMessage {
            client_id: 0,
            num_samples: 1,
            payload: vec![ParamVector::from_vec(vec![2.0, 4.0])],
            epochs_run: 1,
            samples_processed: 1,
            wire: None,
        };
        let mut communicated = 0usize;
        let mut silent = 0usize;
        for _ in 0..200 {
            let mut global = ParamVector::zeros(2);
            let outcome =
                alg.server_update(&mut global, std::slice::from_ref(&message), 1, &mut rng);
            if outcome.upload_floats > 0 {
                communicated += 1;
                assert_eq!(global.as_slice(), &[2.0, 4.0]);
            } else {
                silent += 1;
                assert_eq!(global.as_slice(), &[0.0, 0.0]);
            }
        }
        // Both branches must occur with p = 0.5 over 200 trials.
        assert!(
            communicated > 50 && silent > 50,
            "{communicated} vs {silent}"
        );
    }

    #[test]
    fn always_communicating_fedpd_averages_augmented_models() {
        let mut alg = FedPd::new(0.1, 1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let messages = vec![
            ClientMessage {
                client_id: 0,
                num_samples: 1,
                payload: vec![ParamVector::from_vec(vec![2.0])],
                epochs_run: 1,
                samples_processed: 1,
                wire: None,
            },
            ClientMessage {
                client_id: 1,
                num_samples: 1,
                payload: vec![ParamVector::from_vec(vec![4.0])],
                epochs_run: 1,
                samples_processed: 1,
                wire: None,
            },
        ];
        let mut global = ParamVector::zeros(1);
        let outcome = alg.server_update(&mut global, &messages, 2, &mut rng);
        assert_eq!(global.as_slice(), &[3.0]);
        assert_eq!(outcome.upload_floats, 2);
    }

    #[test]
    fn client_update_maintains_dual_like_fedadmm() {
        let fixture = Fixture::new(1, 30, 9);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let alg = FedPd::new(0.2, 1.0);
        let env = fixture.env(0, 1, 10);
        alg.client_update(&mut clients[0], &theta, &env).unwrap();
        // y = ρ(w − θ) after the first update from zero dual.
        let mut expected = clients[0].local_model.sub(&theta);
        expected.scale(0.2);
        assert!(clients[0].dual.dist(&expected) < 1e-5);
    }
}
