//! Adaptive server optimizers (the `FedOpt` family) as extension baselines.
//!
//! The paper generalises FedAvg's server update with a *gathering step size*
//! η (equation 5) and observes that different η suit different regimes
//! (Figure 6). A complementary line of work — FedOpt / FedAdam / FedYogi
//! (Reddi et al., ICLR 2021) — instead treats the averaged client delta
//! `Δ̄^t = (1/|S_t|) Σ_{i∈S_t} (w_i^{t+1} − θ^t)` as a *pseudo-gradient* and
//! applies a first-order server optimizer to it. Implementing that family
//! here lets the ablation benches separate two effects the paper argues
//! about:
//!
//! * how much of FedADMM's speedup comes from the *dual variables* (client
//!   side), versus
//! * how much a smarter *server-side* update rule alone can recover.
//!
//! [`FedOpt`] keeps the exact FedAvg client protocol (fixed `E` local
//! epochs, upload of one `d`-vector per selected client) and only changes
//! the server aggregation, so its communication cost per round is identical
//! to FedAvg/Prox/ADMM.

use super::{total_upload, Algorithm, ClientMessage, ServerOutcome};
use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::{local_sgd, LocalEnv};
use fedadmm_tensor::TensorResult;
use serde::{Deserialize, Serialize};

/// The server-side update rule applied to the averaged pseudo-gradient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerOptimizer {
    /// `θ ← θ + lr · Δ̄` — plain server SGD on the pseudo-gradient.
    /// `lr = 1` recovers FedAvg exactly.
    Sgd {
        /// Server learning rate.
        lr: f32,
    },
    /// FedAvgM: heavy-ball momentum on the pseudo-gradient,
    /// `m ← β·m + Δ̄`, `θ ← θ + lr · m`.
    Momentum {
        /// Server learning rate.
        lr: f32,
        /// Momentum coefficient β ∈ [0, 1).
        beta: f32,
    },
    /// FedAdagrad: per-coordinate accumulated second moments,
    /// `v ← v + Δ̄²`, `θ ← θ + lr · Δ̄ / (√v + ε)`.
    Adagrad {
        /// Server learning rate.
        lr: f32,
        /// Numerical-stability constant ε.
        eps: f32,
    },
    /// FedAdam: exponential moving averages of first and second moments
    /// with bias correction.
    Adam {
        /// Server learning rate.
        lr: f32,
        /// First-moment decay β₁.
        beta1: f32,
        /// Second-moment decay β₂.
        beta2: f32,
        /// Numerical-stability constant ε.
        eps: f32,
    },
    /// FedYogi: like Adam but with the sign-controlled second-moment update
    /// `v ← v − (1−β₂)·sign(v − Δ̄²)·Δ̄²`, which reacts more conservatively
    /// to heterogeneous client updates.
    Yogi {
        /// Server learning rate.
        lr: f32,
        /// First-moment decay β₁.
        beta1: f32,
        /// Second-moment decay β₂.
        beta2: f32,
        /// Numerical-stability constant ε.
        eps: f32,
    },
}

impl ServerOptimizer {
    /// The FedAvgM default of the FedOpt paper (β = 0.9, server lr 1).
    pub fn momentum_default() -> Self {
        ServerOptimizer::Momentum { lr: 1.0, beta: 0.9 }
    }

    /// The FedAdam default of the FedOpt paper.
    pub fn adam_default() -> Self {
        ServerOptimizer::Adam {
            lr: 0.05,
            beta1: 0.9,
            beta2: 0.99,
            eps: 1e-3,
        }
    }

    /// The FedYogi default of the FedOpt paper.
    pub fn yogi_default() -> Self {
        ServerOptimizer::Yogi {
            lr: 0.05,
            beta1: 0.9,
            beta2: 0.99,
            eps: 1e-3,
        }
    }

    /// The FedAdagrad default of the FedOpt paper.
    pub fn adagrad_default() -> Self {
        ServerOptimizer::Adagrad {
            lr: 0.05,
            eps: 1e-3,
        }
    }

    /// Human-readable name of the resulting federated algorithm.
    pub fn algorithm_name(&self) -> &'static str {
        match self {
            ServerOptimizer::Sgd { .. } => "FedOpt(SGD)",
            ServerOptimizer::Momentum { .. } => "FedAvgM",
            ServerOptimizer::Adagrad { .. } => "FedAdagrad",
            ServerOptimizer::Adam { .. } => "FedAdam",
            ServerOptimizer::Yogi { .. } => "FedYogi",
        }
    }
}

/// Mutable server-side optimizer state (moments), allocated at `init`.
#[derive(Debug, Clone, Default)]
struct ServerOptState {
    /// First moment / momentum buffer `m`.
    momentum: Vec<f32>,
    /// Second moment buffer `v`.
    second: Vec<f32>,
    /// Number of server steps taken (for Adam bias correction).
    steps: usize,
}

impl ServerOptState {
    fn reset(&mut self, dim: usize) {
        self.momentum = vec![0.0; dim];
        self.second = vec![0.0; dim];
        self.steps = 0;
    }

    /// Applies one server-optimizer step: `global ← global + update(delta)`.
    fn apply(&mut self, opt: ServerOptimizer, global: &mut ParamVector, delta: &ParamVector) {
        debug_assert_eq!(global.len(), delta.len());
        if self.momentum.len() != global.len() {
            self.reset(global.len());
        }
        self.steps += 1;
        let d = delta.as_slice();
        let g = global.as_mut_slice();
        match opt {
            ServerOptimizer::Sgd { lr } => {
                for (gi, &di) in g.iter_mut().zip(d.iter()) {
                    *gi += lr * di;
                }
            }
            ServerOptimizer::Momentum { lr, beta } => {
                for ((mi, gi), &di) in self.momentum.iter_mut().zip(g.iter_mut()).zip(d.iter()) {
                    *mi = beta * *mi + di;
                    *gi += lr * *mi;
                }
            }
            ServerOptimizer::Adagrad { lr, eps } => {
                for ((vi, gi), &di) in self.second.iter_mut().zip(g.iter_mut()).zip(d.iter()) {
                    *vi += di * di;
                    *gi += lr * di / (vi.sqrt() + eps);
                }
            }
            ServerOptimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let t = self.steps as f32;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                for (((mi, vi), gi), &di) in self
                    .momentum
                    .iter_mut()
                    .zip(self.second.iter_mut())
                    .zip(g.iter_mut())
                    .zip(d.iter())
                {
                    *mi = beta1 * *mi + (1.0 - beta1) * di;
                    *vi = beta2 * *vi + (1.0 - beta2) * di * di;
                    let m_hat = *mi / bc1;
                    let v_hat = *vi / bc2;
                    *gi += lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
            ServerOptimizer::Yogi {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let t = self.steps as f32;
                let bc1 = 1.0 - beta1.powf(t);
                for (((mi, vi), gi), &di) in self
                    .momentum
                    .iter_mut()
                    .zip(self.second.iter_mut())
                    .zip(g.iter_mut())
                    .zip(d.iter())
                {
                    *mi = beta1 * *mi + (1.0 - beta1) * di;
                    let d2 = di * di;
                    *vi -= (1.0 - beta2) * (*vi - d2).signum() * d2;
                    let m_hat = *mi / bc1;
                    *gi += lr * m_hat / (vi.max(0.0).sqrt() + eps);
                }
            }
        }
    }
}

/// FedOpt: the FedAvg client protocol with an adaptive server optimizer.
#[derive(Debug, Clone)]
pub struct FedOpt {
    /// The server-side update rule.
    pub optimizer: ServerOptimizer,
    state: ServerOptState,
}

impl FedOpt {
    /// Creates a FedOpt instance with the given server optimizer.
    pub fn new(optimizer: ServerOptimizer) -> Self {
        FedOpt {
            optimizer,
            state: ServerOptState::default(),
        }
    }

    /// FedAvgM with the FedOpt-paper defaults.
    pub fn avgm() -> Self {
        FedOpt::new(ServerOptimizer::momentum_default())
    }

    /// FedAdam with the FedOpt-paper defaults.
    pub fn adam() -> Self {
        FedOpt::new(ServerOptimizer::adam_default())
    }

    /// FedYogi with the FedOpt-paper defaults.
    pub fn yogi() -> Self {
        FedOpt::new(ServerOptimizer::yogi_default())
    }

    /// FedAdagrad with the FedOpt-paper defaults.
    pub fn adagrad() -> Self {
        FedOpt::new(ServerOptimizer::adagrad_default())
    }
}

impl Algorithm for FedOpt {
    fn name(&self) -> &'static str {
        self.optimizer.algorithm_name()
    }

    fn init(&mut self, dim: usize, _num_clients: usize) {
        self.state.reset(dim);
    }

    fn supports_variable_work(&self) -> bool {
        // Matches FedAvg's protocol (fixed E) so that server-side effects are
        // isolated from system-heterogeneity effects in ablations.
        false
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        // FedAvg-style local training from the downloaded global model; the
        // upload is the *delta* w_i^{t+1} − θ^t (the pseudo-gradient share).
        let result = local_sgd(env, global.as_slice(), |_, _| {})?;
        client.times_selected += 1;
        let mut delta = ParamVector::from_vec(result.params);
        delta.axpy(-1.0, global);
        Ok(ClientMessage {
            client_id: client.id,
            num_samples: client.num_samples(),
            payload: vec![delta],
            epochs_run: env.epochs,
            samples_processed: result.samples_processed,
            wire: None,
        })
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        _num_clients: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        if messages.is_empty() {
            return ServerOutcome { upload_floats: 0 };
        }
        // Pseudo-gradient: the uniform average of the uploaded deltas,
        // computed with one fused pass.
        let mut avg = ParamVector::zeros(global.len());
        let w = 1.0 / messages.len() as f32;
        let terms: Vec<(f32, &ParamVector)> =
            messages.iter().map(|msg| (w, &msg.payload[0])).collect();
        avg.assign_weighted_sum(&terms);
        self.state.apply(self.optimizer, global, &avg);
        ServerOutcome {
            upload_floats: total_upload(messages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::super::FedAvg;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn message(id: usize, values: Vec<f32>) -> ClientMessage {
        ClientMessage {
            client_id: id,
            num_samples: 1,
            payload: vec![ParamVector::from_vec(values)],
            epochs_run: 1,
            samples_processed: 1,
            wire: None,
        }
    }

    #[test]
    fn names_follow_the_fedopt_family() {
        assert_eq!(FedOpt::avgm().name(), "FedAvgM");
        assert_eq!(FedOpt::adam().name(), "FedAdam");
        assert_eq!(FedOpt::yogi().name(), "FedYogi");
        assert_eq!(FedOpt::adagrad().name(), "FedAdagrad");
        assert_eq!(
            FedOpt::new(ServerOptimizer::Sgd { lr: 1.0 }).name(),
            "FedOpt(SGD)"
        );
    }

    #[test]
    fn sgd_with_unit_lr_matches_fedavg_server_update() {
        // FedAvg averages *models*; FedOpt(SGD, lr=1) adds the averaged
        // *delta* to θ. With the same messages, θ_new must agree.
        let theta = ParamVector::from_vec(vec![1.0, -1.0, 0.5]);
        let w1 = vec![2.0, 0.0, 1.5];
        let w2 = vec![0.0, -2.0, -0.5];

        let mut avg_alg = FedAvg::new();
        let mut theta_avg = theta.clone();
        let mut rng = SmallRng::seed_from_u64(0);
        avg_alg.server_update(
            &mut theta_avg,
            &[message(0, w1.clone()), message(1, w2.clone())],
            10,
            &mut rng,
        );

        let mut opt_alg = FedOpt::new(ServerOptimizer::Sgd { lr: 1.0 });
        opt_alg.init(3, 10);
        let delta1: Vec<f32> = w1
            .iter()
            .zip(theta.as_slice())
            .map(|(w, t)| w - t)
            .collect();
        let delta2: Vec<f32> = w2
            .iter()
            .zip(theta.as_slice())
            .map(|(w, t)| w - t)
            .collect();
        let mut theta_opt = theta.clone();
        opt_alg.server_update(
            &mut theta_opt,
            &[message(0, delta1), message(1, delta2)],
            10,
            &mut rng,
        );
        assert!(theta_avg.dist(&theta_opt) < 1e-6);
    }

    #[test]
    fn momentum_accumulates_across_rounds() {
        let mut alg = FedOpt::new(ServerOptimizer::Momentum { lr: 1.0, beta: 0.5 });
        alg.init(1, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut theta = ParamVector::zeros(1);
        // Round 1: m = 1, θ = 1. Round 2: m = 0.5·1 + 1 = 1.5, θ = 2.5.
        alg.server_update(&mut theta, &[message(0, vec![1.0])], 4, &mut rng);
        assert!((theta.as_slice()[0] - 1.0).abs() < 1e-6);
        alg.server_update(&mut theta, &[message(0, vec![1.0])], 4, &mut rng);
        assert!((theta.as_slice()[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_is_lr_scaled_sign() {
        // On the first step, m̂ = Δ and v̂ = Δ², so the update is
        // lr·Δ/(|Δ|+ε) ≈ lr·sign(Δ) for |Δ| ≫ ε.
        let mut alg = FedOpt::new(ServerOptimizer::Adam {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.99,
            eps: 1e-8,
        });
        alg.init(2, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut theta = ParamVector::zeros(2);
        alg.server_update(&mut theta, &[message(0, vec![5.0, -3.0])], 4, &mut rng);
        assert!((theta.as_slice()[0] - 0.1).abs() < 1e-4);
        assert!((theta.as_slice()[1] + 0.1).abs() < 1e-4);
    }

    #[test]
    fn adagrad_damps_repeated_large_coordinates() {
        let mut alg = FedOpt::new(ServerOptimizer::Adagrad { lr: 1.0, eps: 1e-8 });
        alg.init(1, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut theta = ParamVector::zeros(1);
        alg.server_update(&mut theta, &[message(0, vec![2.0])], 4, &mut rng);
        let first_step = theta.as_slice()[0];
        let before = theta.as_slice()[0];
        alg.server_update(&mut theta, &[message(0, vec![2.0])], 4, &mut rng);
        let second_step = theta.as_slice()[0] - before;
        assert!(second_step < first_step, "{second_step} !< {first_step}");
        assert!(second_step > 0.0);
    }

    #[test]
    fn yogi_second_moment_stays_nonnegative() {
        let mut alg = FedOpt::new(ServerOptimizer::Yogi {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.99,
            eps: 1e-3,
        });
        alg.init(1, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut theta = ParamVector::zeros(1);
        for round in 0..20 {
            let sign = if round % 2 == 0 { 1.0 } else { -1.0 };
            alg.server_update(&mut theta, &[message(0, vec![sign * 0.5])], 4, &mut rng);
            assert!(theta.as_slice()[0].is_finite());
        }
        assert!(alg.state.second[0] >= 0.0);
    }

    #[test]
    fn empty_round_is_a_noop() {
        let mut alg = FedOpt::adam();
        alg.init(2, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut theta = ParamVector::from_vec(vec![1.0, 2.0]);
        let outcome = alg.server_update(&mut theta, &[], 4, &mut rng);
        assert_eq!(outcome.upload_floats, 0);
        assert_eq!(theta.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn client_update_uploads_delta_of_dimension_d() {
        let fixture = Fixture::new(1, 40, 11);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let alg = FedOpt::avgm();
        let env = fixture.env(0, 2, 1);
        let msg = alg.client_update(&mut clients[0], &theta, &env).unwrap();
        assert_eq!(msg.upload_floats(), fixture.dim());
        assert!(msg.payload[0].norm() > 0.0);
        assert_eq!(alg.upload_floats_per_client(fixture.dim()), fixture.dim());
        assert!(!alg.supports_variable_work());
        assert!(!alg.requires_full_participation());
    }

    #[test]
    fn fedopt_reduces_training_loss_in_a_small_run() {
        // End-to-end sanity check: three rounds of FedAdam on a two-client
        // fixture must move the model away from the all-zero initial loss.
        let fixture = Fixture::new(2, 60, 21);
        let mut theta = ParamVector::zeros(fixture.dim());
        let mut alg = FedOpt::new(ServerOptimizer::Adam {
            lr: 0.5,
            beta1: 0.9,
            beta2: 0.99,
            eps: 1e-3,
        });
        alg.init(fixture.dim(), 2);
        let mut clients = fixture.clients(&theta);
        let mut rng = SmallRng::seed_from_u64(3);
        let initial =
            crate::trainer::evaluate(fixture.model, theta.as_slice(), &fixture.train, usize::MAX)
                .unwrap();
        for round in 0..3 {
            let mut messages = Vec::new();
            for (c, client) in clients.iter_mut().enumerate().take(2) {
                let env = fixture.env(c, 2, 100 + round);
                messages.push(alg.client_update(client, &theta, &env).unwrap());
            }
            alg.server_update(&mut theta, &messages, 2, &mut rng);
        }
        let trained =
            crate::trainer::evaluate(fixture.model, theta.as_slice(), &fixture.train, usize::MAX)
                .unwrap();
        assert!(trained.0 < initial.0, "loss {} !< {}", trained.0, initial.0);
    }
}
