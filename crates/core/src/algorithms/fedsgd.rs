//! FedSGD — distributed synchronous SGD over the selected clients.
//!
//! Each selected client computes its exact local gradient at the current
//! global model and uploads it; the server takes one gradient-descent step
//! with the averaged gradient. FedSGD makes minimal progress per round
//! (one step), which is why the paper uses it as the unit of the "speedup"
//! column in Table III: every other method is measured by how many times
//! fewer rounds it needs than FedSGD.

use super::{total_upload, Algorithm, ClientMessage, FoldPlan, ServerOutcome};
use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::{full_gradient, LocalEnv};
use fedadmm_tensor::TensorResult;

/// The FedSGD algorithm.
#[derive(Debug, Clone, Copy)]
pub struct FedSgd {
    /// Server gradient-descent step size applied to the averaged gradient.
    pub server_learning_rate: f32,
}

impl FedSgd {
    /// Creates FedSGD with the given server step size (the experiments use
    /// the same value as the clients' local SGD learning rate).
    pub fn new(server_learning_rate: f32) -> Self {
        FedSgd {
            server_learning_rate,
        }
    }
}

impl Algorithm for FedSgd {
    fn name(&self) -> &'static str {
        "FedSGD"
    }

    fn supports_variable_work(&self) -> bool {
        // FedSGD performs exactly one full-gradient evaluation per round;
        // there is no local-epoch knob to randomise.
        false
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        let (grad, _loss) = full_gradient(env, global.as_slice())?;
        client.times_selected += 1;
        let samples = client.num_samples();
        Ok(ClientMessage {
            client_id: client.id,
            num_samples: samples,
            payload: vec![ParamVector::from_vec(grad)],
            epochs_run: 1,
            samples_processed: samples,
            wire: None,
        })
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        _num_clients: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        if messages.is_empty() {
            return ServerOutcome { upload_floats: 0 };
        }
        let step = -self.server_learning_rate / messages.len() as f32;
        for msg in messages {
            global.axpy(step, &msg.payload[0]);
        }
        ServerOutcome {
            upload_floats: total_upload(messages),
        }
    }

    fn fold_plan(&self, messages: &[ClientMessage], _num_clients: usize) -> Option<FoldPlan> {
        if messages.is_empty() {
            return None;
        }
        // One server GD step on the mean gradient: θ += Σ (−α/|S|)·g_i.
        let step = -self.server_learning_rate / messages.len() as f32;
        Some(FoldPlan::Accumulate(vec![step; messages.len()]))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use crate::trainer::evaluate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn one_round_reduces_global_loss() {
        let fixture = Fixture::new(4, 30, 1);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let mut alg = FedSgd::new(0.5);
        let mut global = theta.clone();
        let (loss_before, _) =
            evaluate(fixture.model, global.as_slice(), &fixture.test, usize::MAX).unwrap();

        let mut messages = Vec::new();
        for (i, client) in clients.iter_mut().enumerate().take(4) {
            let env = fixture.env(i, 1, 100 + i as u64);
            messages.push(alg.client_update(client, &global, &env).unwrap());
        }
        let mut rng = SmallRng::seed_from_u64(0);
        alg.server_update(&mut global, &messages, 4, &mut rng);
        let (loss_after, _) =
            evaluate(fixture.model, global.as_slice(), &fixture.test, usize::MAX).unwrap();
        assert!(loss_after < loss_before, "{loss_after} !< {loss_before}");
    }

    #[test]
    fn server_step_is_average_of_gradients() {
        let mut alg = FedSgd::new(1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut global = ParamVector::from_vec(vec![1.0, 1.0]);
        let messages = vec![
            ClientMessage {
                client_id: 0,
                num_samples: 1,
                payload: vec![ParamVector::from_vec(vec![2.0, 0.0])],
                epochs_run: 1,
                samples_processed: 1,
                wire: None,
            },
            ClientMessage {
                client_id: 1,
                num_samples: 1,
                payload: vec![ParamVector::from_vec(vec![0.0, 4.0])],
                epochs_run: 1,
                samples_processed: 1,
                wire: None,
            },
        ];
        alg.server_update(&mut global, &messages, 2, &mut rng);
        // θ ← θ − 1.0 · mean(g) = [1,1] − [1,2] = [0,−1]
        assert_eq!(global.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn metadata_and_costs() {
        let alg = FedSgd::new(0.1);
        assert_eq!(alg.name(), "FedSGD");
        assert!(!alg.supports_variable_work());
        assert_eq!(alg.upload_floats_per_client(123), 123);
    }
}
