//! Federated optimization algorithms.
//!
//! [`FedAdmm`] is the paper's contribution (Algorithm 1). The baselines it
//! is evaluated against are implemented with the same interface so that the
//! simulation engine and experiment harness can treat them uniformly:
//!
//! | Algorithm    | Local objective                     | Upload per client | Notes |
//! |--------------|-------------------------------------|------------------:|-------|
//! | [`FedSgd`]   | exact gradient at θ                 | `d`               | one server GD step per round |
//! | [`FedAvg`]   | `f_i(w)`                            | `d`               | fixed `E` local epochs |
//! | [`FedProx`]  | `f_i(w) + (ρ/2)‖w−θ‖²`              | `d`               | variable epochs, ρ needs tuning |
//! | [`Scaffold`] | `f_i(w)` with control variates      | `2d`              | doubles upload cost |
//! | [`FedAdmm`]  | `f_i(w) + y_iᵀ(w−θ) + (ρ/2)‖w−θ‖²`  | `d`               | dual variables, tracking server update |
//! | [`FedPd`]    | augmented Lagrangian                | `d` (on comm rounds) | full participation, probabilistic communication |
//!
//! Table I of the paper compares their round complexities; the
//! per-algorithm module documentation quotes the relevant row.

mod fedadmm;
mod fedadmm_inexact;
mod fedavg;
mod feddyn;
mod fedpd;
mod fedprox;
mod fedsgd;
mod scaffold;
mod server_opt;

pub use fedadmm::{FedAdmm, LocalInit, ServerStepSize};
pub use fedadmm_inexact::FedAdmmInexact;
pub use fedavg::FedAvg;
pub use feddyn::FedDyn;
pub use fedpd::FedPd;
pub use fedprox::FedProx;
pub use fedsgd::FedSgd;
pub use scaffold::Scaffold;
pub use server_opt::{FedOpt, ServerOptimizer};

use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::LocalEnv;
use fedadmm_tensor::TensorResult;

/// The message a selected client uploads to the server at the end of a
/// round.
#[derive(Debug, Clone)]
pub struct ClientMessage {
    /// Which client produced the message.
    pub client_id: usize,
    /// Number of samples held by the client (used by weighted aggregation).
    pub num_samples: usize,
    /// The uploaded vectors. Most algorithms upload a single vector in ℝ^d;
    /// SCAFFOLD uploads two (`Δw` and `Δc`), which is exactly why its
    /// communication cost per round is double (Section III-B).
    pub payload: Vec<ParamVector>,
    /// Local epochs actually run (computation accounting).
    pub epochs_run: usize,
    /// Samples processed during local training (computation accounting).
    pub samples_processed: usize,
    /// Compressed wire representation produced by the engine's wire path
    /// (`None` on the dense path). When present the dense `payload` is
    /// empty — the quantized codes *are* the upload — and the server folds
    /// them directly through the engine's `fold_compressed` pass.
    pub wire: Option<crate::compression::WirePayload>,
}

impl ClientMessage {
    /// Number of model coordinates this message uploads to the server
    /// (dense floats or quantized codes — both count coordinates, so the
    /// paper's `d`-per-client accounting is representation-independent).
    pub fn upload_floats(&self) -> usize {
        let dense: usize = self.payload.iter().map(|p| p.len()).sum();
        let coded = self.wire.as_ref().map_or(0, |w| w.coords());
        dense + coded
    }

    /// Bytes this message occupies on the wire: the quantized size when the
    /// wire path encoded it, `4 · upload_floats` for dense uploads.
    pub fn wire_bytes(&self) -> usize {
        match &self.wire {
            Some(w) => w.wire_bytes(),
            None => 4 * self.upload_floats(),
        }
    }
}

/// What the server did with the round's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOutcome {
    /// Floats uploaded from clients to the server this round. For most
    /// algorithms this is `Σ_i upload_floats(message_i)`; FedPD uploads
    /// nothing on its non-communication rounds.
    pub upload_floats: usize,
}

/// Reusable per-worker buffers for [`Algorithm::client_update_scratch`].
///
/// The dispatch pool keeps one of these per worker thread and hands it to
/// every job the worker runs, so algorithms that override the scratch entry
/// point allocate their O(d) temporaries once per worker instead of once
/// per job. Buffers carry arbitrary leftover contents between jobs — users
/// must `clear()` before filling.
#[derive(Debug, Default)]
pub struct UpdateScratch {
    /// Parameter-sized buffer (FedADMM: the pre-update augmented model).
    pub param: Vec<f32>,
    /// Dual-sized buffer (FedADMM: the dual snapshot read during SGD).
    pub dual: Vec<f32>,
    /// Cached local-training network, rebuilt only when the model spec
    /// changes (see [`crate::trainer::NetCache`]).
    pub net: crate::trainer::NetCache,
    /// Per-batch SGD temporaries (flat gradient, gathered mini-batch),
    /// reused across steps and jobs (see [`crate::trainer::TrainScratch`]).
    pub train: crate::trainer::TrainScratch,
}

/// A linear description of an algorithm's server fold, consumed by the
/// engine's opt-in hierarchical (tree) aggregation.
///
/// When [`Algorithm::server_update`] is a *linear* function of the round's
/// first payloads — `θ ← θ + Σ_k c_k·p_k` or `θ ← Σ_k c_k·p_k` — the
/// algorithm can expose the coefficients here and the engine may compute
/// the sum as parallel per-shard partial folds plus a log-depth combine
/// instead of one sequential fused pass. Coefficients are aligned with the
/// message slice they were derived from.
#[derive(Debug, Clone, PartialEq)]
pub enum FoldPlan {
    /// `θ ← θ + Σ_k coeff_k · payload_k` (FedADMM's tracking update,
    /// FedSGD's gradient step).
    Accumulate(Vec<f32>),
    /// `θ ← Σ_k coeff_k · payload_k` (FedAvg/FedProx model averaging).
    Assign(Vec<f32>),
}

impl FoldPlan {
    /// The per-message coefficients, regardless of kind.
    pub fn coefficients(&self) -> &[f32] {
        match self {
            FoldPlan::Accumulate(c) | FoldPlan::Assign(c) => c,
        }
    }
}

/// A federated optimization algorithm.
///
/// The simulation engine drives each round as:
/// 1. select `S_t` (respecting [`Algorithm::requires_full_participation`]),
/// 2. call [`Algorithm::client_update`] for every selected client (in
///    parallel — the method takes `&self` so algorithm-global state is
///    read-only during local training),
/// 3. call [`Algorithm::server_update`] with the collected messages.
pub trait Algorithm: Send + Sync {
    /// Algorithm name as used in the paper's tables ("FedADMM", "FedAvg"…).
    fn name(&self) -> &'static str;

    /// Called once before the first round with the model dimension `d` and
    /// the client population size `m`. Algorithms that keep server-side
    /// state (SCAFFOLD's control variate) allocate it here.
    fn init(&mut self, _dim: usize, _num_clients: usize) {}

    /// Whether this algorithm requires every client to participate in every
    /// round (true only for FedPD among the implemented methods).
    fn requires_full_participation(&self) -> bool {
        false
    }

    /// Whether this algorithm applies system heterogeneity (variable local
    /// epochs) under the paper's protocol. FedAvg and SCAFFOLD run the fixed
    /// maximum `E`; FedADMM, FedProx and FedPD tolerate variable work.
    fn supports_variable_work(&self) -> bool {
        true
    }

    /// Upload cost in floats per selected client and round, for a model of
    /// dimension `d`.
    fn upload_floats_per_client(&self, dim: usize) -> usize {
        dim
    }

    /// Local update of one selected client: trains on the client's data
    /// starting from (its view of) the global model `global`, mutates the
    /// client's persistent state, and returns the upload message.
    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage>;

    /// Scratch-aware variant of [`Algorithm::client_update`], called by the
    /// dispatch pool with the worker's reusable [`UpdateScratch`].
    ///
    /// The default ignores the scratch and delegates, so algorithms only
    /// override this when per-job temporaries are worth recycling.
    /// Overrides MUST be bit-identical to `client_update` — the engine's
    /// byte-identity pins (golden digests, parity tests) run through this
    /// entry point.
    fn client_update_scratch(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
        scratch: &mut UpdateScratch,
    ) -> TensorResult<ClientMessage> {
        let _ = scratch;
        self.client_update(client, global, env)
    }

    /// Server aggregation: consumes the round's messages and updates the
    /// global model in place.
    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        num_clients: usize,
        rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome;

    /// The linear [`FoldPlan`] equivalent to [`Algorithm::server_update`]
    /// for this batch, if one exists. `None` (the default) means the server
    /// update is stateful or non-linear and the engine must call
    /// `server_update` even under hierarchical aggregation. Implementations
    /// must keep the plan consistent with `server_update` up to
    /// floating-point summation order.
    fn fold_plan(&self, messages: &[ClientMessage], num_clients: usize) -> Option<FoldPlan> {
        let _ = (messages, num_clients);
        None
    }
}

impl Algorithm for Box<dyn Algorithm> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
    fn init(&mut self, dim: usize, num_clients: usize) {
        self.as_mut().init(dim, num_clients)
    }
    fn requires_full_participation(&self) -> bool {
        self.as_ref().requires_full_participation()
    }
    fn supports_variable_work(&self) -> bool {
        self.as_ref().supports_variable_work()
    }
    fn upload_floats_per_client(&self, dim: usize) -> usize {
        self.as_ref().upload_floats_per_client(dim)
    }
    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        self.as_ref().client_update(client, global, env)
    }
    fn client_update_scratch(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
        scratch: &mut UpdateScratch,
    ) -> TensorResult<ClientMessage> {
        self.as_ref()
            .client_update_scratch(client, global, env, scratch)
    }
    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        num_clients: usize,
        rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        self.as_mut()
            .server_update(global, messages, num_clients, rng)
    }
    fn fold_plan(&self, messages: &[ClientMessage], num_clients: usize) -> Option<FoldPlan> {
        self.as_ref().fold_plan(messages, num_clients)
    }
}

/// Sums the payload upload sizes of a round's messages (shared by the
/// simple algorithms' `server_update` implementations).
pub(crate) fn total_upload(messages: &[ClientMessage]) -> usize {
    messages.iter().map(|m| m.upload_floats()).sum()
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for algorithm unit tests.

    use crate::client::ClientState;
    use crate::param::ParamVector;
    use crate::trainer::LocalEnv;
    use fedadmm_data::batching::BatchSize;
    use fedadmm_data::synthetic::SyntheticDataset;
    use fedadmm_data::Dataset;
    use fedadmm_nn::models::ModelSpec;

    /// A small, fast test fixture: a logistic model on a tiny synthetic
    /// MNIST-like dataset split across a few clients.
    pub struct Fixture {
        /// The training dataset shared by all clients.
        pub train: Dataset,
        /// Held-out test dataset.
        pub test: Dataset,
        /// The model specification used by all clients.
        pub model: ModelSpec,
        /// Per-client index lists.
        pub client_indices: Vec<Vec<usize>>,
    }

    impl Fixture {
        /// Builds the fixture with `clients` clients and `per_client`
        /// samples per client.
        pub fn new(clients: usize, per_client: usize, seed: u64) -> Self {
            let (train, test) = SyntheticDataset::Mnist.generate(clients * per_client, 50, seed);
            let client_indices: Vec<Vec<usize>> = (0..clients)
                .map(|c| (c * per_client..(c + 1) * per_client).collect())
                .collect();
            Fixture {
                train,
                test,
                model: ModelSpec::Logistic {
                    input_dim: 784,
                    num_classes: 10,
                },
                client_indices,
            }
        }

        /// Model dimension `d`.
        pub fn dim(&self) -> usize {
            self.model.num_params()
        }

        /// Fresh per-client state, all starting from `theta`.
        pub fn clients(&self, theta: &ParamVector) -> Vec<ClientState> {
            self.client_indices
                .iter()
                .enumerate()
                .map(|(i, idx)| ClientState::new(i, idx.clone(), theta))
                .collect()
        }

        /// A `LocalEnv` for client `i`.
        pub fn env<'a>(&'a self, client: usize, epochs: usize, seed: u64) -> LocalEnv<'a> {
            LocalEnv {
                dataset: &self.train,
                indices: &self.client_indices[client],
                model: self.model,
                epochs,
                batch_size: BatchSize::Size(16),
                learning_rate: 0.1,
                seed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_message_upload_floats_counts_all_payloads() {
        let msg = ClientMessage {
            client_id: 0,
            num_samples: 5,
            payload: vec![ParamVector::zeros(10), ParamVector::zeros(10)],
            epochs_run: 1,
            samples_processed: 5,
            wire: None,
        };
        assert_eq!(msg.upload_floats(), 20);
        assert_eq!(total_upload(&[msg.clone(), msg]), 40);
    }

    #[test]
    fn boxed_algorithm_delegates() {
        let mut alg: Box<dyn Algorithm> = Box::new(FedAvg::new());
        assert_eq!(alg.name(), "FedAvg");
        assert_eq!(alg.upload_floats_per_client(100), 100);
        assert!(!alg.requires_full_participation());
        alg.init(10, 5);
    }
}
