//! FedADMM — Algorithm 1 of the paper.
//!
//! Each client `i` keeps a primal–dual pair `(w_i, y_i)`. When selected at
//! round `t` it:
//!
//! 1. downloads θ^t,
//! 2. approximately minimises the local augmented Lagrangian
//!    `L_i(w, y_i^t, θ^t) = f_i(w) + (y_i^t)ᵀ(w − θ^t) + (ρ/2)‖w − θ^t‖²`
//!    by running `E_i` epochs of SGD **warm-started from its stored local
//!    model `w_i^t`** (the paper's Figure 8 shows that warm start is
//!    decisively better than re-starting from θ^t; both options are exposed
//!    through [`LocalInit`]),
//! 3. updates its dual variable `y_i^{t+1} = y_i^t + ρ(w_i^{t+1} − θ^t)`
//!    (Algorithm 1, line 20),
//! 4. uploads the *augmented-model difference*
//!    `Δ_i^t = (w_i^{t+1} + y_i^{t+1}/ρ) − (w_i^t + y_i^t/ρ)` (equation 4),
//!    which is a single vector in ℝ^d — the same upload size as
//!    FedAvg/FedProx.
//!
//! The server then applies the tracking update (equation 5)
//! `θ^{t+1} = θ^t + (η/|S_t|) Σ_{i∈S_t} Δ_i^t`, where the gathering step
//! size η is either a constant (η = 1 gives the fastest training) or the
//! participation ratio `|S_t|/m` (the theoretically analysed choice that
//! damps oscillations under strong heterogeneity) — see [`ServerStepSize`].
//!
//! Table I: FedADMM needs `O(1/ε · m/S)` rounds with **no** data-dissimilarity
//! or bounded-gradient assumptions, and its ρ can be a constant independent
//! of the system size (Theorem 1 / Remark 1).

use super::{total_upload, Algorithm, ClientMessage, FoldPlan, ServerOutcome, UpdateScratch};
use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::{local_sgd, local_sgd_cached, LocalEnv};
use fedadmm_tensor::{vecops, TensorResult};
use serde::{Deserialize, Serialize};

/// The server gathering step size η of equation (5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerStepSize {
    /// A fixed η. The paper observes η = 1 gives fast training and explores
    /// η ∈ {0.5, 1.0, 1.5} in Figure 6.
    Constant(f32),
    /// η = |S_t|/m — "helps to eliminate oscillatory behaviors when
    /// significant heterogeneity is detected" and is the choice analysed in
    /// Theorem 1.
    ParticipationRatio,
}

impl ServerStepSize {
    /// Resolves the step size for a round with `selected` active clients out
    /// of `total` clients.
    pub fn resolve(&self, selected: usize, total: usize) -> f32 {
        match *self {
            ServerStepSize::Constant(eta) => eta,
            ServerStepSize::ParticipationRatio => {
                if total == 0 {
                    0.0
                } else {
                    selected as f32 / total as f32
                }
            }
        }
    }
}

/// How a selected client initialises its local training (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalInit {
    /// Warm-start from the stored local model `w_i^t` (option I in the
    /// paper; "yields superior results in all cases" and is the default).
    LocalModel,
    /// Restart from the downloaded global model θ^t (option II).
    GlobalModel,
}

/// The FedADMM algorithm (Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct FedAdmm {
    /// Proximal coefficient ρ of the augmented Lagrangian. The paper fixes
    /// ρ = 0.01 across *all* experiments — no per-setting tuning.
    pub rho: f32,
    /// Server gathering step size η.
    pub server_step: ServerStepSize,
    /// Local-training initialisation (warm start by default).
    pub local_init: LocalInit,
}

impl FedAdmm {
    /// Creates FedADMM with the given ρ and server step size, using the
    /// paper's default warm-start initialisation.
    pub fn new(rho: f32, server_step: ServerStepSize) -> Self {
        assert!(
            rho > 0.0,
            "FedADMM requires a positive proximal coefficient ρ"
        );
        FedAdmm {
            rho,
            server_step,
            local_init: LocalInit::LocalModel,
        }
    }

    /// The paper's default configuration: ρ = 0.01, η = 1, warm start.
    pub fn paper_default() -> Self {
        FedAdmm::new(0.01, ServerStepSize::Constant(1.0))
    }

    /// Sets the local initialisation strategy (Figure 8 ablation).
    pub fn with_local_init(mut self, init: LocalInit) -> Self {
        self.local_init = init;
        self
    }

    /// Adjusts ρ mid-run (the dynamic-ρ schedule of Figure 9).
    ///
    /// # Panics
    /// Panics if `rho <= 0`.
    pub fn set_rho(&mut self, rho: f32) {
        assert!(
            rho > 0.0,
            "FedADMM requires a positive proximal coefficient ρ"
        );
        self.rho = rho;
    }

    /// Adjusts the server step size mid-run (the η schedule of Figure 6).
    pub fn set_server_step(&mut self, step: ServerStepSize) {
        self.server_step = step;
    }
}

impl Algorithm for FedAdmm {
    fn name(&self) -> &'static str {
        "FedADMM"
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        let rho = self.rho;
        let theta = global.as_slice();

        // Augmented model before the update: u_i^t = w_i^t + y_i^t / ρ.
        let old_augmented = client.augmented_model(rho);

        // Local training on the augmented Lagrangian (Alg. 1 lines 14–19):
        //   ∇_w L_i(w) = ∇f_i(w, b) + y_i + ρ(w − θ).
        let init: &[f32] = match self.local_init {
            LocalInit::LocalModel => client.local_model.as_slice(),
            LocalInit::GlobalModel => theta,
        };
        let dual = client.dual.as_slice().to_vec();
        let result = local_sgd(env, init, |w, g| {
            for (((gi, &wi), &ti), &yi) in g
                .iter_mut()
                .zip(w.iter())
                .zip(theta.iter())
                .zip(dual.iter())
            {
                *gi += yi + rho * (wi - ti);
            }
        })?;

        // Dual update (Alg. 1 line 20): y_i ← y_i + ρ(w_i^{t+1} − θ^t).
        let new_local = ParamVector::from_vec(result.params);
        let mut new_dual = client.dual.clone();
        new_dual.axpy(rho, &new_local);
        new_dual.axpy(-rho, global);

        client.local_model = new_local;
        client.dual = new_dual;
        client.times_selected += 1;

        // Update message (eq. 4): Δ_i = u_i^{t+1} − u_i^t.
        let delta = client.augmented_model(rho).sub(&old_augmented);
        Ok(ClientMessage {
            client_id: client.id,
            num_samples: client.num_samples(),
            payload: vec![delta],
            epochs_run: env.epochs,
            samples_processed: result.samples_processed,
            wire: None,
        })
    }

    /// The allocation-free variant the dispatch pool drives: the augmented
    /// model and the dual snapshot live in the worker's reusable scratch,
    /// the local-training network is cached across jobs (skipping the
    /// discarded random init that `client_update` pays per call), the dual
    /// update runs in place, and the uploaded Δ is fused into a single
    /// pass — the only per-job allocation left is the payload itself.
    /// Every elementary f32 operation matches [`FedAdmm::client_update`]
    /// in kind and order, so results are bit-identical (pinned by the
    /// engine-parity golden digest).
    fn client_update_scratch(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
        scratch: &mut UpdateScratch,
    ) -> TensorResult<ClientMessage> {
        let rho = self.rho;
        let theta = global.as_slice();
        let UpdateScratch {
            param: old_augmented,
            dual: dual_snapshot,
            net,
            train,
        } = scratch;

        // u_i^t = w_i^t + y_i^t / ρ, built in the reusable param buffer
        // (same copy-then-axpy as `ClientState::augmented_model`).
        old_augmented.clear();
        old_augmented.extend_from_slice(client.local_model.as_slice());
        vecops::axpy(1.0 / rho, client.dual.as_slice(), old_augmented);

        let init: &[f32] = match self.local_init {
            LocalInit::LocalModel => client.local_model.as_slice(),
            LocalInit::GlobalModel => theta,
        };
        dual_snapshot.clear();
        dual_snapshot.extend_from_slice(client.dual.as_slice());
        let dual: &[f32] = dual_snapshot;
        let result = local_sgd_cached(env, init, net, train, |w, g| {
            for (((gi, &wi), &ti), &yi) in g
                .iter_mut()
                .zip(w.iter())
                .zip(theta.iter())
                .zip(dual.iter())
            {
                *gi += yi + rho * (wi - ti);
            }
        })?;

        // Dual update in place: y_i ← y_i + ρ(w_i^{t+1} − θ^t).
        let new_local = ParamVector::from_vec(result.params);
        client.dual.axpy(rho, &new_local);
        client.dual.axpy(-rho, global);

        client.local_model = new_local;
        client.times_selected += 1;

        // Δ_i = u_i^{t+1} − u_i^t, with u^{t+1} formed on the fly: each
        // element is w + (1/ρ)·y − old, the same mul/add/sub sequence the
        // unfused path performs via augmented_model + sub.
        let inv_rho = 1.0 / rho;
        let delta: Vec<f32> = client
            .local_model
            .as_slice()
            .iter()
            .zip(client.dual.as_slice())
            .zip(old_augmented.iter())
            .map(|((&w, &y), &old)| (w + inv_rho * y) - old)
            .collect();
        Ok(ClientMessage {
            client_id: client.id,
            num_samples: client.num_samples(),
            payload: vec![ParamVector::from_vec(delta)],
            epochs_run: env.epochs,
            samples_processed: result.samples_processed,
            wire: None,
        })
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        num_clients: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        if messages.is_empty() {
            return ServerOutcome { upload_floats: 0 };
        }
        // Tracking update (eq. 5): θ ← θ + (η / |S_t|) Σ Δ_i, folded into θ
        // in a single fused pass over ℝ^d.
        let eta = self.server_step.resolve(messages.len(), num_clients);
        let scale = eta / messages.len() as f32;
        let terms: Vec<(f32, &ParamVector)> = messages
            .iter()
            .map(|msg| (scale, &msg.payload[0]))
            .collect();
        global.accumulate(&terms);
        ServerOutcome {
            upload_floats: total_upload(messages),
        }
    }

    fn fold_plan(&self, messages: &[ClientMessage], num_clients: usize) -> Option<FoldPlan> {
        if messages.is_empty() {
            return None;
        }
        // The tracking update is linear in the uploaded deltas: the same
        // (η / |S_t|) coefficient on every Δ_i as `server_update`.
        let eta = self.server_step.resolve(messages.len(), num_clients);
        let scale = eta / messages.len() as f32;
        Some(FoldPlan::Accumulate(vec![scale; messages.len()]))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::Fixture;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn server_step_size_resolution() {
        assert_eq!(ServerStepSize::Constant(1.5).resolve(10, 100), 1.5);
        assert_eq!(ServerStepSize::ParticipationRatio.resolve(10, 100), 0.1);
        assert_eq!(ServerStepSize::ParticipationRatio.resolve(5, 0), 0.0);
    }

    #[test]
    fn paper_default_configuration() {
        let alg = FedAdmm::paper_default();
        assert_eq!(alg.rho, 0.01);
        assert_eq!(alg.server_step, ServerStepSize::Constant(1.0));
        assert_eq!(alg.local_init, LocalInit::LocalModel);
        assert_eq!(alg.name(), "FedADMM");
        assert!(alg.supports_variable_work());
        assert!(!alg.requires_full_participation());
    }

    #[test]
    #[should_panic(expected = "positive proximal coefficient")]
    fn zero_rho_is_rejected() {
        FedAdmm::new(0.0, ServerStepSize::Constant(1.0));
    }

    #[test]
    fn dual_update_follows_line_20() {
        // After a client update, y_i^{t+1} must equal y_i^t + ρ(w_i^{t+1} − θ^t).
        let fixture = Fixture::new(1, 40, 2);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let alg = FedAdmm::new(0.5, ServerStepSize::Constant(1.0));
        let env = fixture.env(0, 2, 3);
        let old_dual = clients[0].dual.clone();
        alg.client_update(&mut clients[0], &theta, &env).unwrap();
        let mut expected = old_dual;
        expected.axpy(0.5, &clients[0].local_model);
        expected.axpy(-0.5, &theta);
        let err = expected.dist(&clients[0].dual);
        assert!(err < 1e-5, "dual update deviates by {err}");
    }

    #[test]
    fn update_message_is_augmented_model_difference() {
        let fixture = Fixture::new(1, 40, 4);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let alg = FedAdmm::new(0.1, ServerStepSize::Constant(1.0));
        let env = fixture.env(0, 1, 5);
        let u_before = clients[0].augmented_model(0.1);
        let msg = alg.client_update(&mut clients[0], &theta, &env).unwrap();
        let u_after = clients[0].augmented_model(0.1);
        let expected = u_after.sub(&u_before);
        assert!(msg.payload[0].dist(&expected) < 1e-5);
        // Same upload size as FedAvg/FedProx: exactly one d-vector.
        assert_eq!(msg.upload_floats(), fixture.dim());
    }

    #[test]
    fn first_round_message_equals_fedprox_style_delta() {
        // With zero-initialised duals and w_i^0 = θ^0, the first-round
        // message is (w^1 + y^1/ρ) − θ^0 = 2 w^1 − 2θ... verified here via
        // the closed form: u^1 − u^0 = (w^1 − w^0) + (y^1 − y^0)/ρ
        //                            = (w^1 − θ) + (w^1 − θ) = 2(w^1 − θ).
        let fixture = Fixture::new(1, 30, 6);
        let theta = ParamVector::zeros(fixture.dim());
        let mut clients = fixture.clients(&theta);
        let alg = FedAdmm::new(0.01, ServerStepSize::Constant(1.0));
        let env = fixture.env(0, 1, 9);
        let msg = alg.client_update(&mut clients[0], &theta, &env).unwrap();
        let mut expected = clients[0].local_model.sub(&theta);
        expected.scale(2.0);
        assert!(msg.payload[0].dist(&expected) < 1e-4);
    }

    #[test]
    fn fedadmm_with_zero_dual_matches_fedprox_local_step() {
        // Section III-B: with y ≡ 0 FedADMM's local problem *is* FedProx's.
        // A freshly initialised client has zero dual, so the first local
        // model (not the message) must coincide with FedProx's for the same
        // seed, ρ, and global-model initialisation.
        let fixture = Fixture::new(1, 40, 7);
        let theta = ParamVector::zeros(fixture.dim());
        let env = fixture.env(0, 2, 13);
        let rho = 0.3;

        let admm = FedAdmm::new(rho, ServerStepSize::Constant(1.0))
            .with_local_init(LocalInit::GlobalModel);
        let mut c_admm = fixture.clients(&theta);
        admm.client_update(&mut c_admm[0], &theta, &env).unwrap();

        let prox = super::super::FedProx::new(rho);
        let mut c_prox = fixture.clients(&theta);
        let m_prox = prox.client_update(&mut c_prox[0], &theta, &env).unwrap();

        assert!(c_admm[0].local_model.dist(&m_prox.payload[0]) < 1e-5);
    }

    #[test]
    fn server_tracking_update() {
        let mut alg = FedAdmm::new(0.01, ServerStepSize::Constant(1.0));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut global = ParamVector::from_vec(vec![1.0, 1.0]);
        let messages = vec![
            ClientMessage {
                client_id: 0,
                num_samples: 1,
                payload: vec![ParamVector::from_vec(vec![2.0, 0.0])],
                epochs_run: 1,
                samples_processed: 1,
                wire: None,
            },
            ClientMessage {
                client_id: 1,
                num_samples: 1,
                payload: vec![ParamVector::from_vec(vec![0.0, -2.0])],
                epochs_run: 1,
                samples_processed: 1,
                wire: None,
            },
        ];
        alg.server_update(&mut global, &messages, 100, &mut rng);
        // θ ← θ + (1/2)ΣΔ = [1,1] + [1,-1] = [2,0]
        assert_eq!(global.as_slice(), &[2.0, 0.0]);

        // With η = |S|/m the update is scaled down by S/m.
        let mut alg2 = FedAdmm::new(0.01, ServerStepSize::ParticipationRatio);
        let mut global2 = ParamVector::from_vec(vec![1.0, 1.0]);
        alg2.server_update(&mut global2, &messages, 100, &mut rng);
        assert!((global2.as_slice()[0] - 1.02).abs() < 1e-6);
        assert!((global2.as_slice()[1] - 0.98).abs() < 1e-6);
    }

    #[test]
    fn scratch_client_update_is_bit_identical_to_plain_path() {
        // Two clients updated through both entry points over two rounds —
        // the second round exercises scratch reuse with dirty buffers.
        let fixture = Fixture::new(2, 30, 11);
        let alg = FedAdmm::new(0.05, ServerStepSize::Constant(1.0));
        let theta0 = ParamVector::zeros(fixture.dim());
        let theta1 = ParamVector::from_vec(vec![0.02; fixture.dim()]);
        let mut plain = fixture.clients(&theta0);
        let mut scratched = fixture.clients(&theta0);
        let mut scratch = UpdateScratch::default();
        for (round, theta) in [&theta0, &theta1].into_iter().enumerate() {
            for c in 0..2 {
                let env = fixture.env(c, 2, (round * 10 + c) as u64);
                let a = alg.client_update(&mut plain[c], theta, &env).unwrap();
                let b = alg
                    .client_update_scratch(&mut scratched[c], theta, &env, &mut scratch)
                    .unwrap();
                assert_eq!(
                    a.payload[0], b.payload[0],
                    "payload round {round} client {c}"
                );
                assert_eq!(a.num_samples, b.num_samples);
                assert_eq!(a.epochs_run, b.epochs_run);
                assert_eq!(a.samples_processed, b.samples_processed);
                assert_eq!(plain[c].local_model, scratched[c].local_model);
                assert_eq!(plain[c].dual, scratched[c].dual);
                assert_eq!(plain[c].times_selected, scratched[c].times_selected);
            }
        }
    }

    #[test]
    fn setters_adjust_hyperparameters() {
        let mut alg = FedAdmm::paper_default();
        alg.set_rho(0.1);
        assert_eq!(alg.rho, 0.1);
        alg.set_server_step(ServerStepSize::Constant(0.5));
        assert_eq!(alg.server_step, ServerStepSize::Constant(0.5));
    }

    #[test]
    fn warm_start_and_global_init_differ_after_first_round() {
        // After one round the stored local model differs from θ, so the two
        // initialisation strategies produce different second-round results.
        let fixture = Fixture::new(1, 40, 8);
        let theta = ParamVector::zeros(fixture.dim());
        let env = fixture.env(0, 2, 17);

        let warm = FedAdmm::new(0.01, ServerStepSize::Constant(1.0));
        let cold = warm.with_local_init(LocalInit::GlobalModel);

        let mut c_warm = fixture.clients(&theta);
        let mut c_cold = fixture.clients(&theta);
        // Round 1 (identical: both start from w = θ = 0).
        warm.client_update(&mut c_warm[0], &theta, &env).unwrap();
        cold.client_update(&mut c_cold[0], &theta, &env).unwrap();
        // Round 2 from a shifted global model.
        let theta2 = ParamVector::from_vec(vec![0.05; fixture.dim()]);
        let env2 = fixture.env(0, 2, 18);
        warm.client_update(&mut c_warm[0], &theta2, &env2).unwrap();
        cold.client_update(&mut c_cold[0], &theta2, &env2).unwrap();
        assert!(c_warm[0].local_model.dist(&c_cold[0].local_model) > 1e-6);
    }
}
