//! Lossy upload compression (uniform quantization) as an algorithm adapter.
//!
//! The paper's efficiency claim is that FedADMM reduces the *number* of
//! communication rounds while keeping the per-round upload at `d` floats.
//! A complementary (and composable) lever is shrinking the upload itself:
//! quantizing each uploaded vector to `b` bits per coordinate cuts the bytes
//! on the wire by `32/b×` at the cost of bounded quantization error — error
//! that FedADMM is naturally robust to, because Theorem 1 already tolerates
//! inexact local solutions (the quantization error simply adds to `ε_i`).
//!
//! * [`Quantizer`] implements uniform `b`-bit quantization with an optional
//!   unbiased stochastic-rounding mode (the standard QSGD-style trick:
//!   `E[dequantize(quantize(x))] = x`);
//! * [`QuantizedAlgorithm`] wraps any [`Algorithm`] and passes every
//!   uploaded vector through quantize → dequantize, so a simulation
//!   faithfully sees the *information loss* of compressed uploads while the
//!   server-side code remains unchanged. Byte accounting for the compressed
//!   messages is exposed through [`QuantizedAlgorithm::compressed_bytes`]
//!   (the `ClientMessage` float counters keep reporting the uncompressed
//!   `d`, since they count model *coordinates* communicated).

use crate::algorithms::{Algorithm, ClientMessage, ServerOutcome};
use crate::client::ClientState;
use crate::param::ParamVector;
use crate::trainer::LocalEnv;
use fedadmm_tensor::TensorResult;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Uniform `b`-bit quantizer over the range of each individual vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quantizer {
    /// Bits per coordinate, between 1 and 16.
    pub bits: u8,
    /// Whether to use unbiased stochastic rounding instead of
    /// round-to-nearest.
    pub stochastic: bool,
}

/// A quantized vector: per-vector affine parameters plus one code per
/// coordinate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVector {
    /// Minimum of the original vector (the value code 0 decodes to).
    pub min: f32,
    /// Quantization step; code `k` decodes to `min + k · step`.
    pub step: f32,
    /// One code per coordinate (stored in a `u16` regardless of `bits`; the
    /// wire-size accounting uses `bits`).
    pub codes: Vec<u16>,
    /// Bits per coordinate used to produce the codes.
    pub bits: u8,
}

impl QuantizedVector {
    /// Bytes this vector occupies on the wire: `⌈bits·len/8⌉` for the codes
    /// plus the two `f32` affine parameters.
    pub fn wire_bytes(&self) -> usize {
        (self.bits as usize * self.codes.len()).div_ceil(8) + 8
    }

    /// Decodes back to `f32` coordinates.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes
            .iter()
            .map(|&k| self.min + k as f32 * self.step)
            .collect()
    }
}

/// The compressed (and optionally privatized) representation of one client
/// upload, attached to a `ClientMessage` by the engine's wire path.
///
/// Staleness damping lands in [`WirePayload::scale`] rather than in the
/// codes: quantized coordinates cannot be scaled in place without decoding,
/// so the schedulers multiply the scale and the server folds it into the
/// per-message fold coefficient — the decode-scale-accumulate still happens
/// in one pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirePayload {
    /// Multiplier folded into the server-side fold coefficient (1.0 for a
    /// fresh arrival; staleness weights multiply into it).
    pub scale: f32,
    /// One quantized vector per dense payload vector the algorithm produced.
    pub vectors: Vec<QuantizedVector>,
}

impl WirePayload {
    /// Total bytes on the wire (codes + affine parameters + the scale).
    pub fn wire_bytes(&self) -> usize {
        4 + self.vectors.iter().map(|v| v.wire_bytes()).sum::<usize>()
    }

    /// Total coded coordinates across all vectors.
    pub fn coords(&self) -> usize {
        self.vectors.iter().map(|v| v.codes.len()).sum()
    }
}

impl Quantizer {
    /// Creates a quantizer.
    ///
    /// # Panics
    /// Panics unless `1 ≤ bits ≤ 16`.
    pub fn new(bits: u8, stochastic: bool) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "supported quantization widths are 1–16 bits"
        );
        Quantizer { bits, stochastic }
    }

    /// Number of quantization levels (`2^bits`).
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Quantizes `values`. The `seed` drives stochastic rounding (ignored in
    /// deterministic mode).
    pub fn quantize(&self, values: &[f32], seed: u64) -> QuantizedVector {
        let mut codes = Vec::with_capacity(values.len());
        let (min, step) = self.quantize_into(values, seed, &mut codes);
        QuantizedVector {
            min,
            step,
            codes,
            bits: self.bits,
        }
    }

    /// Quantizes `values` into a reusable code buffer (cleared and refilled,
    /// so steady-state callers pay no allocation), returning the affine
    /// `(min, step)` decode parameters. Produces exactly the codes
    /// [`Quantizer::quantize`] would for the same seed — the engine's wire
    /// path calls this from the per-worker dispatch scratch.
    pub fn quantize_into(&self, values: &[f32], seed: u64, codes: &mut Vec<u16>) -> (f32, f32) {
        assert!(!values.is_empty(), "cannot quantize an empty vector");
        let (min, max) = fedadmm_tensor::vecops::min_max(values);
        let levels = self.levels() as f32;
        let range = (max - min).max(f32::EPSILON);
        let step = range / (levels - 1.0);
        // One multiply per element instead of a divide — this loop runs per
        // upload on the wire hot path.
        let inv_step = 1.0 / step;
        codes.clear();
        if self.stochastic {
            // Stochastic rounding as `⌊x + U⌋` with `U` uniform in [0, 1):
            // the carry fires with probability exactly frac(x), and the
            // whole dither is one add on top of the affine map. `x ≥ 0`
            // (min subtracted), so the `u16` cast truncates = floors, and
            // only the upper bound needs clamping. Each raw `u64` supplies
            // the 24-bit dithers for two consecutive elements.
            const U24: f32 = 1.0 / (1u32 << 24) as f32;
            let top = levels - 1.0;
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut pairs = values.chunks_exact(2);
            for pair in &mut pairs {
                let bits = rng.next_u64();
                let u0 = (bits as u32 >> 8) as f32 * U24;
                let u1 = ((bits >> 40) as u32) as f32 * U24;
                codes.push(((pair[0] - min) * inv_step + u0).min(top) as u16);
                codes.push(((pair[1] - min) * inv_step + u1).min(top) as u16);
            }
            if let [last] = pairs.remainder() {
                let u0 = (rng.next_u32() >> 8) as f32 * U24;
                codes.push(((last - min) * inv_step + u0).min(top) as u16);
            }
        } else {
            codes.extend(
                values
                    .iter()
                    .map(|&v| ((v - min) * inv_step).round().clamp(0.0, levels - 1.0) as u16),
            );
        }
        (min, step)
    }

    /// Worst-case absolute error per coordinate for a vector whose values
    /// span `range`: half a quantization step (deterministic) or a full step
    /// (stochastic).
    pub fn max_error(&self, range: f32) -> f32 {
        let step = range.max(f32::EPSILON) / (self.levels() as f32 - 1.0);
        if self.stochastic {
            step
        } else {
            step / 2.0
        }
    }

    /// Compression ratio versus uncompressed `f32` uploads.
    pub fn compression_ratio(&self) -> f64 {
        32.0 / self.bits as f64
    }
}

/// Wraps an algorithm so that every uploaded vector is quantized (and
/// immediately dequantized, so the rest of the pipeline is unchanged while
/// the information loss is faithfully simulated).
#[derive(Debug, Clone)]
pub struct QuantizedAlgorithm<A> {
    inner: A,
    quantizer: Quantizer,
}

impl<A: Algorithm> QuantizedAlgorithm<A> {
    /// Wraps `inner` with the given quantizer.
    pub fn new(inner: A, quantizer: Quantizer) -> Self {
        QuantizedAlgorithm { inner, quantizer }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The quantizer in use.
    pub fn quantizer(&self) -> Quantizer {
        self.quantizer
    }

    /// Bytes actually uploaded per client per round for a model of dimension
    /// `dim` (compare with the uncompressed `4 · upload_floats_per_client`).
    pub fn compressed_bytes(&self, dim: usize) -> usize {
        let vectors = self.inner.upload_floats_per_client(dim) / dim.max(1);
        vectors * ((self.quantizer.bits as usize * dim).div_ceil(8) + 8)
    }
}

impl<A: Algorithm> Algorithm for QuantizedAlgorithm<A> {
    fn name(&self) -> &'static str {
        "quantized"
    }

    fn init(&mut self, dim: usize, num_clients: usize) {
        self.inner.init(dim, num_clients);
    }

    fn requires_full_participation(&self) -> bool {
        self.inner.requires_full_participation()
    }

    fn supports_variable_work(&self) -> bool {
        self.inner.supports_variable_work()
    }

    fn upload_floats_per_client(&self, dim: usize) -> usize {
        self.inner.upload_floats_per_client(dim)
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        let mut message = self.inner.client_update(client, global, env)?;
        for (k, payload) in message.payload.iter_mut().enumerate() {
            let raw = payload.as_slice();
            let quantized = self.quantizer.quantize(raw, env.seed ^ (k as u64) << 48);
            *payload = ParamVector::from_vec(quantized.dequantize());
        }
        Ok(message)
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        num_clients: usize,
        rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        self.inner.server_update(global, messages, num_clients, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FedAdmm, ServerStepSize};
    use crate::config::{DataDistribution, FedConfig, Participation};
    use crate::engine::{RoundEngine, SyncRounds};
    use fedadmm_data::batching::BatchSize;
    use fedadmm_data::synthetic::SyntheticDataset;
    use fedadmm_nn::models::ModelSpec;

    #[test]
    fn round_trip_error_is_within_half_a_step() {
        let q = Quantizer::new(8, false);
        let values: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let encoded = q.quantize(&values, 0);
        let decoded = encoded.dequantize();
        let range = 6.0f32;
        let bound = q.max_error(range) * 1.001;
        for (a, b) in values.iter().zip(decoded.iter()) {
            assert!(
                (a - b).abs() <= bound,
                "error {} exceeds {}",
                (a - b).abs(),
                bound
            );
        }
    }

    #[test]
    fn more_bits_mean_less_error_and_less_compression() {
        let coarse = Quantizer::new(2, false);
        let fine = Quantizer::new(12, false);
        assert!(fine.max_error(1.0) < coarse.max_error(1.0));
        assert!(coarse.compression_ratio() > fine.compression_ratio());
        assert_eq!(coarse.levels(), 4);
        assert_eq!(Quantizer::new(16, false).levels(), 65536);
    }

    #[test]
    fn stochastic_rounding_is_unbiased_on_average() {
        let q = Quantizer::new(2, true); // very coarse so the bias would show
        let value = 0.3f32; // sits strictly between two of the 4 levels of [0, 1]
        let values = vec![0.0f32, 1.0, value]; // pin the range to [0, 1]
        let n = 20_000;
        let mut sum = 0.0f64;
        for seed in 0..n {
            let decoded = q.quantize(&values, seed).dequantize();
            sum += decoded[2] as f64;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - value as f64).abs() < 0.01,
            "stochastic rounding is biased: {mean}"
        );
    }

    #[test]
    fn wire_bytes_account_for_bit_width() {
        let q = Quantizer::new(4, false);
        let encoded = q.quantize(&[0.0f32; 1000], 0);
        // 4 bits × 1000 = 500 bytes of codes + 8 bytes of affine parameters.
        assert_eq!(encoded.wire_bytes(), 508);
        let q1 = Quantizer::new(1, false);
        assert_eq!(q1.quantize(&[0.0f32; 7], 0).wire_bytes(), 1 + 8);
    }

    #[test]
    fn constant_vectors_survive_quantization_exactly() {
        let q = Quantizer::new(3, false);
        let encoded = q.quantize(&[2.5f32; 16], 1);
        for v in encoded.dequantize() {
            assert!((v - 2.5).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "1–16 bits")]
    fn unsupported_bit_width_is_rejected() {
        Quantizer::new(0, false);
    }

    #[test]
    fn quantized_fedadmm_still_learns_at_8_bits() {
        let config = FedConfig {
            num_clients: 8,
            participation: Participation::Fraction(0.3),
            local_epochs: 2,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(16),
            local_learning_rate: 0.1,
            model: ModelSpec::Logistic {
                input_dim: 784,
                num_classes: 10,
            },
            seed: 4,
            eval_subset: usize::MAX,
        };
        let (train, test) = SyntheticDataset::Mnist.generate(400, 100, 4);
        let partition = DataDistribution::Iid.partition(&train, 8, 4);
        let algorithm = QuantizedAlgorithm::new(
            FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
            Quantizer::new(8, true),
        );
        assert_eq!(algorithm.inner().name(), "FedADMM");
        let d = config.model.num_params();
        assert!(
            algorithm.compressed_bytes(d) < 4 * d / 3,
            "8-bit codes should be ~4× smaller"
        );
        let mut sim =
            RoundEngine::new(config, train, test, partition, algorithm, SyncRounds).unwrap();
        let (_, acc0) = sim.evaluate_global().unwrap();
        sim.run_rounds(10).unwrap();
        assert!(
            sim.history().best_accuracy() > acc0 + 0.15,
            "8-bit quantized uploads failed to learn: {acc0} → {}",
            sim.history().best_accuracy()
        );
    }

    #[test]
    fn aggressive_quantization_degrades_but_does_not_diverge() {
        let config = FedConfig {
            num_clients: 6,
            participation: Participation::Fraction(0.5),
            local_epochs: 1,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(16),
            local_learning_rate: 0.1,
            model: ModelSpec::Logistic {
                input_dim: 784,
                num_classes: 10,
            },
            seed: 6,
            eval_subset: usize::MAX,
        };
        let (train, test) = SyntheticDataset::Mnist.generate(240, 60, 6);
        let partition = DataDistribution::Iid.partition(&train, 6, 6);
        let algorithm = QuantizedAlgorithm::new(
            FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
            Quantizer::new(2, true),
        );
        let mut sim =
            RoundEngine::new(config, train, test, partition, algorithm, SyncRounds).unwrap();
        sim.run_rounds(6).unwrap();
        assert!(sim
            .history()
            .accuracy_series()
            .iter()
            .all(|a| a.is_finite()));
        assert!(sim.global_model().as_slice().iter().all(|v| v.is_finite()));
    }
}
