//! Per-round metrics, communication accounting, and run summaries.

use serde::{Deserialize, Serialize};

/// Everything measured about one communication round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index `t` (0-based).
    pub round: usize,
    /// Accuracy of the global model on the (held-out) test set after the
    /// round's server update.
    pub test_accuracy: f32,
    /// Mean test loss of the global model.
    pub test_loss: f32,
    /// Number of clients selected this round `|S_t|`.
    pub num_selected: usize,
    /// Number of floats uploaded by clients this round (communication cost;
    /// SCAFFOLD uploads 2d per client, FedPD only uploads on communication
    /// rounds).
    pub upload_floats: usize,
    /// Cumulative uploaded floats up to and including this round.
    pub cumulative_upload_floats: usize,
    /// Total local epochs run across selected clients (computation cost).
    pub total_local_epochs: usize,
    /// Total samples processed by local training this round.
    pub samples_processed: usize,
    /// True wire bytes of this round's uploads: the quantized size when
    /// the engine's wire path encoded them, the dense `4 · upload_floats`
    /// otherwise. (Defaults to 0 when parsing pre-wire histories.)
    #[serde(default)]
    pub wire_bytes: usize,
    /// Dense-to-wire compression ratio of this round's uploads (≈4 at
    /// 8-bit quantization; 1.0 for dense uploads and pre-wire histories).
    #[serde(default = "dense_ratio_one")]
    pub dense_wire_ratio: f64,
    /// Wall-clock duration of the round in milliseconds (simulation time,
    /// reported for reference only).
    pub elapsed_ms: u64,
    /// Mean staleness τ of the arrival events folded into this round
    /// (0 for synchronous schedules, which have no stale arrivals).
    pub staleness_mean: f64,
    /// Maximum staleness τ among this round's arrival events.
    pub staleness_max: usize,
}

/// Serde default for [`RoundRecord::dense_wire_ratio`]: pre-wire histories
/// were dense, so their ratio is 1.
fn dense_ratio_one() -> f64 {
    1.0
}

/// The full history of a federated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunHistory {
    /// Name of the algorithm that produced this history.
    pub algorithm: String,
    /// Free-form label of the experimental setting (dataset, distribution…).
    pub setting: String,
    /// Per-round records in order.
    pub records: Vec<RoundRecord>,
}

impl RunHistory {
    /// Creates an empty history for an algorithm/setting pair.
    pub fn new(algorithm: impl Into<String>, setting: impl Into<String>) -> Self {
        RunHistory {
            algorithm: algorithm.into(),
            setting: setting.into(),
            records: Vec::new(),
        }
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no rounds have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a round record.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// The first round (1-based count of rounds, as the paper reports) at
    /// which the test accuracy reached `target`, or `None` if it never did.
    pub fn rounds_to_accuracy(&self, target: f32) -> Option<usize> {
        self.records
            .iter()
            .position(|r| r.test_accuracy >= target)
            .map(|idx| idx + 1)
    }

    /// Best test accuracy seen so far.
    pub fn best_accuracy(&self) -> f32 {
        self.records
            .iter()
            .map(|r| r.test_accuracy)
            .fold(0.0, f32::max)
    }

    /// Test accuracy after the final recorded round.
    pub fn final_accuracy(&self) -> f32 {
        self.records.last().map(|r| r.test_accuracy).unwrap_or(0.0)
    }

    /// Total uploaded floats across all rounds.
    pub fn total_upload_floats(&self) -> usize {
        self.records
            .last()
            .map(|r| r.cumulative_upload_floats)
            .unwrap_or(0)
    }

    /// Total local epochs across all rounds (computation cost).
    pub fn total_local_epochs(&self) -> usize {
        self.records.iter().map(|r| r.total_local_epochs).sum()
    }

    /// Accuracy series (one entry per round), e.g. for plotting Figure 3.
    pub fn accuracy_series(&self) -> Vec<f32> {
        self.records.iter().map(|r| r.test_accuracy).collect()
    }

    /// Serialises the history as JSON lines (one record per line, prefixed
    /// by a header line describing the run).
    ///
    /// The header goes through the same `serde_json` serializer as the
    /// records (not hand-formatted strings), so labels containing quotes or
    /// backslashes stay valid JSON and [`RunHistory::from_json_lines`]
    /// round-trips every history exactly.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        let header = serde_json::json!({
            "algorithm": self.algorithm,
            "setting": self.setting,
        });
        out.push_str(&serde_json::to_string(&header).expect("history header serialises"));
        out.push('\n');
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).expect("round records serialise"));
            out.push('\n');
        }
        out
    }

    /// Parses a history back from its [`RunHistory::to_json_lines`] output.
    ///
    /// Returns `None` when the header line is missing/malformed or any
    /// record line fails to parse.
    pub fn from_json_lines(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        let header: serde_json::Value = serde_json::from_str(lines.next()?).ok()?;
        let mut history = RunHistory::new(
            header["algorithm"].as_str()?.to_string(),
            header["setting"].as_str()?.to_string(),
        );
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            history.push(serde_json::from_str(line).ok()?);
        }
        Some(history)
    }
}

/// Relative speedup of reaching a target accuracy, `baseline / ours`
/// (e.g. Table III reports speedups relative to FedSGD).
///
/// Returns `None` when either run never reached the target.
pub fn speedup(ours: Option<usize>, baseline: Option<usize>) -> Option<f64> {
    match (ours, baseline) {
        (Some(o), Some(b)) if o > 0 => Some(b as f64 / o as f64),
        _ => None,
    }
}

/// Communication-round reduction of `ours` over the best of `baselines`
/// (the bottom row of Table III), in percent.
///
/// Returns `None` if `ours` never reached the target or no baseline did.
pub fn reduction_over_best_baseline(
    ours: Option<usize>,
    baselines: &[Option<usize>],
) -> Option<f64> {
    let ours = ours?;
    let best = baselines.iter().filter_map(|b| *b).min()?;
    if best == 0 {
        return None;
    }
    Some(100.0 * (1.0 - ours as f64 / best as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, acc: f32) -> RoundRecord {
        RoundRecord {
            round,
            test_accuracy: acc,
            test_loss: 1.0 - acc,
            num_selected: 10,
            upload_floats: 100,
            cumulative_upload_floats: 100 * (round + 1),
            total_local_epochs: 20,
            samples_processed: 1000,
            wire_bytes: 400,
            dense_wire_ratio: 1.0,
            elapsed_ms: 5,
            staleness_mean: 0.5,
            staleness_max: round,
        }
    }

    #[test]
    fn pre_wire_records_parse_with_dense_defaults() {
        // A record serialized before the wire path existed: no wire_bytes,
        // no dense_wire_ratio.
        let legacy = r#"{"round":0,"test_accuracy":0.5,"test_loss":0.5,
            "num_selected":4,"upload_floats":100,"cumulative_upload_floats":100,
            "total_local_epochs":8,"samples_processed":400,"elapsed_ms":3,
            "staleness_mean":0.0,"staleness_max":0}"#;
        let r: RoundRecord = serde_json::from_str(legacy).unwrap();
        assert_eq!(r.wire_bytes, 0);
        assert_eq!(r.dense_wire_ratio, 1.0);
    }

    #[test]
    fn rounds_to_accuracy_finds_first_crossing() {
        let mut h = RunHistory::new("FedADMM", "test");
        for (i, acc) in [0.2, 0.5, 0.8, 0.7, 0.9].iter().enumerate() {
            h.push(record(i, *acc));
        }
        assert_eq!(h.rounds_to_accuracy(0.8), Some(3));
        assert_eq!(h.rounds_to_accuracy(0.15), Some(1));
        assert_eq!(h.rounds_to_accuracy(0.95), None);
        assert_eq!(h.len(), 5);
        assert!(!h.is_empty());
    }

    #[test]
    fn summary_statistics() {
        let mut h = RunHistory::new("FedAvg", "test");
        h.push(record(0, 0.3));
        h.push(record(1, 0.6));
        h.push(record(2, 0.5));
        assert_eq!(h.best_accuracy(), 0.6);
        assert_eq!(h.final_accuracy(), 0.5);
        assert_eq!(h.total_upload_floats(), 300);
        assert_eq!(h.total_local_epochs(), 60);
        assert_eq!(h.accuracy_series(), vec![0.3, 0.6, 0.5]);
    }

    #[test]
    fn empty_history_defaults() {
        let h = RunHistory::new("X", "Y");
        assert_eq!(h.rounds_to_accuracy(0.5), None);
        assert_eq!(h.best_accuracy(), 0.0);
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.total_upload_floats(), 0);
    }

    #[test]
    fn speedup_and_reduction() {
        assert_eq!(speedup(Some(10), Some(100)), Some(10.0));
        assert_eq!(speedup(None, Some(100)), None);
        assert_eq!(speedup(Some(10), None), None);
        // FedADMM 10 rounds vs best baseline 19 rounds → 47.4% fewer rounds
        // (the paper's Table III, MNIST 100 clients IID).
        let red = reduction_over_best_baseline(Some(10), &[Some(19), Some(29), Some(27)]).unwrap();
        assert!((red - 47.368).abs() < 0.01);
        assert_eq!(reduction_over_best_baseline(None, &[Some(5)]), None);
        assert_eq!(reduction_over_best_baseline(Some(5), &[None]), None);
    }

    #[test]
    fn json_lines_output() {
        let mut h = RunHistory::new("FedADMM", "MNIST IID");
        h.push(record(0, 0.4));
        let s = h.to_json_lines();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("FedADMM"));
        assert!(s.contains("test_accuracy"));
    }

    #[test]
    fn json_lines_round_trip_through_serde() {
        let mut h = RunHistory::new("FedADMM", "MNIST \"IID\" α=0.5 \\ 100 clients");
        h.push(record(0, 0.4));
        h.push(record(1, 0.6));
        let text = h.to_json_lines();
        // Every line — including the header with quotes and backslashes in
        // the setting label — must be valid JSON on its own.
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["setting"].is_null() || v["setting"].as_str().is_some());
        }
        let back = RunHistory::from_json_lines(&text).unwrap();
        assert_eq!(h, back);
        // The schema surfaces the staleness fields wired in from the engine.
        assert!(text.contains("staleness_mean"));
        assert!(text.contains("staleness_max"));
        assert_eq!(RunHistory::from_json_lines("not json"), None);
    }

    #[test]
    fn record_serde_roundtrip() {
        let r = record(3, 0.77);
        let json = serde_json::to_string(&r).unwrap();
        let back: RoundRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
