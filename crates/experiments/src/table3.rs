//! Table III — communication rounds to reach a target accuracy, with the
//! speedup over FedSGD and the reduction over the best-performing baseline.
//!
//! The paper's Table III covers MNIST with 100 and 1,000 clients, FMNIST
//! with 1,000 clients and CIFAR-10 with 1,000 clients, each under IID and
//! non-IID client data, for FedSGD / FedADMM / FedAvg / FedProx / SCAFFOLD.
//! The headline numbers are an average 72% (up to 87%) reduction in rounds
//! for FedADMM over the best baseline.

use crate::common::{
    format_rounds, format_speedup, render_table, table3_suite, ExperimentReport, Scale, Setting,
};
use fedadmm_core::metrics::{reduction_over_best_baseline, speedup};
use fedadmm_core::prelude::DataDistribution;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_tensor::TensorResult;
use serde_json::json;

/// The dataset / population combinations of Table III (the `usize` is the
/// paper's client-population for that column).
pub fn table3_settings() -> Vec<(SyntheticDataset, usize)> {
    vec![
        (SyntheticDataset::Mnist, 100),
        (SyntheticDataset::Mnist, 1000),
        (SyntheticDataset::Fmnist, 1000),
        (SyntheticDataset::Cifar10, 1000),
    ]
}

/// Result of one column of Table III.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ColumnResult {
    /// Column label, e.g. "MNIST (50 clients) IID".
    pub label: String,
    /// Rounds to target per algorithm, in suite order.
    pub rounds: Vec<(String, Option<usize>)>,
    /// FedADMM's reduction over the best baseline, in percent.
    pub reduction_percent: Option<f64>,
}

/// Runs one column (one dataset/population/distribution combination).
pub fn run_column(setting: &Setting) -> TensorResult<ColumnResult> {
    let mut rounds = Vec::new();
    for (name, algorithm) in table3_suite(setting) {
        let (r, _history) = setting.run_to_target(algorithm)?;
        rounds.push((name.to_string(), r));
    }
    let fedadmm = rounds
        .iter()
        .find(|(n, _)| n == "FedADMM")
        .and_then(|(_, r)| *r);
    let baselines: Vec<Option<usize>> = rounds
        .iter()
        .filter(|(n, _)| n != "FedADMM" && n != "FedSGD")
        .map(|(_, r)| *r)
        .collect();
    Ok(ColumnResult {
        label: setting.label(),
        rounds,
        reduction_percent: reduction_over_best_baseline(fedadmm, &baselines),
    })
}

/// Regenerates Table III at the requested scale.
pub fn run(scale: Scale) -> TensorResult<ExperimentReport> {
    let mut columns = Vec::new();
    for (dataset, paper_clients) in table3_settings() {
        for distribution in [DataDistribution::Iid, DataDistribution::NonIidShards] {
            let setting = Setting::for_dataset(dataset, distribution, paper_clients, scale);
            columns.push((setting, run_column(&setting)?));
        }
    }

    // Render: one row per algorithm, one column per setting, plus the
    // speedup over FedSGD in parentheses and a final "Reduction" row.
    let algorithm_names = ["FedSGD", "FedADMM", "FedAvg", "FedProx", "SCAFFOLD"];
    let mut rows = Vec::new();
    for name in algorithm_names {
        let mut row = vec![name.to_string()];
        for (setting, column) in &columns {
            let rounds = column
                .rounds
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, r)| *r);
            let fedsgd = column
                .rounds
                .iter()
                .find(|(n, _)| n == "FedSGD")
                .and_then(|(_, r)| *r);
            let cell = if name == "FedSGD" {
                format_rounds(rounds, setting.max_rounds)
            } else {
                format!(
                    "{}({})",
                    format_rounds(rounds, setting.max_rounds),
                    format_speedup(speedup(rounds, fedsgd))
                )
            };
            row.push(cell);
        }
        rows.push(row);
    }
    let mut reduction_row = vec!["Reduction".to_string()];
    for (_, column) in &columns {
        reduction_row.push(match column.reduction_percent {
            Some(p) => format!("{p:.1}%"),
            None => "-".to_string(),
        });
    }
    rows.push(reduction_row);

    let mut headers: Vec<String> = vec!["Method".to_string()];
    headers.extend(columns.iter().map(|(_, c)| c.label.clone()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rendered = render_table(&header_refs, &rows);

    Ok(ExperimentReport {
        name: "table3".to_string(),
        description: "Rounds to target accuracy with speedup vs FedSGD (Table III)".to_string(),
        rendered,
        data: json!(columns.iter().map(|(_, c)| c).collect::<Vec<_>>()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_column_reports_all_algorithms() {
        let setting = Setting::for_dataset(
            SyntheticDataset::Mnist,
            DataDistribution::Iid,
            100,
            Scale::Smoke,
        );
        let column = run_column(&setting).unwrap();
        assert_eq!(column.rounds.len(), 5);
        assert!(column.label.contains("IID"));
    }

    #[test]
    fn fedadmm_beats_fedsgd_in_smoke_column() {
        // The qualitative Table III shape at the smallest scale: FedADMM
        // reaches the (modest) target in no more rounds than FedSGD.
        let setting = Setting::for_dataset(
            SyntheticDataset::Mnist,
            DataDistribution::Iid,
            100,
            Scale::Smoke,
        );
        let column = run_column(&setting).unwrap();
        let get = |name: &str| {
            column
                .rounds
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, r)| *r)
                .unwrap_or(setting.max_rounds + 1)
        };
        assert!(get("FedADMM") <= get("FedSGD"));
    }
}
