//! Figures 3 and 4 — behaviour as the client population grows.
//!
//! Figure 3 plots convergence paths (test accuracy per round) for FMNIST
//! (IID) and CIFAR-10 (non-IID) at 100, 500 and 1,000 clients, with
//! hyperparameters tuned once at the 100-client scale and then frozen; the
//! paper's conclusion is that FedADMM's lead *grows* with the population.
//! Figure 4 reports the complementary rounds-to-target numbers for the
//! reversed settings (FMNIST non-IID, CIFAR-10 IID) together with the
//! reduction over the best baseline.

use crate::common::{format_rounds, render_table, table3_suite, ExperimentReport, Scale, Setting};
use fedadmm_core::metrics::reduction_over_best_baseline;
use fedadmm_core::prelude::DataDistribution;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_tensor::TensorResult;
use serde_json::json;

/// The client populations swept by Figures 3 and 4 (the paper's values; the
/// scaled/smoke configurations shrink them through [`Setting::for_dataset`]).
pub const PAPER_POPULATIONS: [usize; 3] = [100, 500, 1000];

/// Accuracy-per-round series for every algorithm under one setting
/// (one panel of Figure 3).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ConvergencePanel {
    /// Panel label, e.g. "Fmnist (50 clients) IID".
    pub label: String,
    /// Target accuracy shown as the dashed line in the paper's plots.
    pub target_accuracy: f32,
    /// Accuracy series per algorithm.
    pub series: Vec<(String, Vec<f32>)>,
}

/// Runs one convergence panel for `rounds` rounds.
pub fn run_panel(setting: &Setting, rounds: usize) -> TensorResult<ConvergencePanel> {
    let mut series = Vec::new();
    for (name, algorithm) in table3_suite(setting) {
        let history = setting.run_rounds(algorithm, rounds)?;
        series.push((name.to_string(), history.accuracy_series()));
    }
    Ok(ConvergencePanel {
        label: setting.label(),
        target_accuracy: setting.target_accuracy,
        series,
    })
}

/// Regenerates Figure 3 (convergence paths across populations) and Figure 4
/// (rounds-to-target across populations, reversed settings).
pub fn run(scale: Scale) -> TensorResult<ExperimentReport> {
    let rounds = match scale {
        Scale::Smoke => 8,
        Scale::Scaled => 30,
        Scale::Paper => 100,
    };
    // Figure 3 panels: FMNIST IID and CIFAR-10 non-IID across populations.
    let mut panels = Vec::new();
    for &population in &PAPER_POPULATIONS {
        for (dataset, distribution) in [
            (SyntheticDataset::Fmnist, DataDistribution::Iid),
            (SyntheticDataset::Cifar10, DataDistribution::NonIidShards),
        ] {
            let setting = Setting::for_dataset(dataset, distribution, population, scale);
            panels.push(run_panel(&setting, rounds)?);
        }
    }

    // Figure 4: rounds-to-target for the reversed settings, plus reduction.
    let mut fig4_rows = Vec::new();
    let mut fig4_data = Vec::new();
    for &population in &PAPER_POPULATIONS {
        for (dataset, distribution) in [
            (SyntheticDataset::Fmnist, DataDistribution::NonIidShards),
            (SyntheticDataset::Cifar10, DataDistribution::Iid),
        ] {
            let setting = Setting::for_dataset(dataset, distribution, population, scale);
            let mut rounds_per_alg = Vec::new();
            for (name, algorithm) in table3_suite(&setting) {
                let (r, _) = setting.run_to_target(algorithm)?;
                rounds_per_alg.push((name.to_string(), r));
            }
            let fedadmm = rounds_per_alg
                .iter()
                .find(|(n, _)| n == "FedADMM")
                .and_then(|(_, r)| *r);
            let baselines: Vec<Option<usize>> = rounds_per_alg
                .iter()
                .filter(|(n, _)| n != "FedADMM" && n != "FedSGD")
                .map(|(_, r)| *r)
                .collect();
            let reduction = reduction_over_best_baseline(fedadmm, &baselines);
            let mut row = vec![setting.label()];
            for (_, r) in &rounds_per_alg {
                row.push(format_rounds(*r, setting.max_rounds));
            }
            row.push(
                reduction
                    .map(|p| format!("{p:.1}%"))
                    .unwrap_or_else(|| "-".to_string()),
            );
            fig4_rows.push(row);
            fig4_data.push(json!({
                "label": setting.label(),
                "rounds": rounds_per_alg,
                "reduction_percent": reduction,
            }));
        }
    }

    let mut rendered =
        String::from("Figure 3 — final accuracy after the round budget, per population:\n");
    let mut fig3_rows = Vec::new();
    for panel in &panels {
        let mut row = vec![panel.label.clone()];
        for (name, series) in &panel.series {
            row.push(format!(
                "{}={:.3}",
                name,
                series.last().copied().unwrap_or(0.0)
            ));
        }
        fig3_rows.push(row);
    }
    rendered.push_str(&render_table(
        &[
            "Setting", "FedSGD", "FedADMM", "FedAvg", "FedProx", "SCAFFOLD",
        ],
        &fig3_rows,
    ));
    rendered
        .push_str("\nFigure 4 — rounds to target accuracy per population (reversed settings):\n");
    rendered.push_str(&render_table(
        &[
            "Setting",
            "FedSGD",
            "FedADMM",
            "FedAvg",
            "FedProx",
            "SCAFFOLD",
            "Reduction",
        ],
        &fig4_rows,
    ));

    Ok(ExperimentReport {
        name: "fig3_fig4".to_string(),
        description: "Scaling with the client population (Figures 3 and 4)".to_string(),
        rendered,
        data: json!({ "fig3_panels": panels, "fig4": fig4_data }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_produces_series_for_every_algorithm() {
        let setting = Setting::for_dataset(
            SyntheticDataset::Fmnist,
            DataDistribution::Iid,
            100,
            Scale::Smoke,
        );
        let panel = run_panel(&setting, 3).unwrap();
        assert_eq!(panel.series.len(), 5);
        for (_, series) in &panel.series {
            assert_eq!(series.len(), 3);
        }
    }
}
