//! Figure 8 — local-training initialisation: warm start (`w_i`) vs the
//! global model (`θ`).
//!
//! The paper compares initialising each selected client's local SGD from
//! its stored local model (option I, warm start) against re-initialising
//! from the downloaded global model (option II), across server step sizes.
//! Warm starting wins in every case, which is the paper's argument for
//! clients storing `w_i` between rounds.

use crate::common::{render_table, ExperimentReport, Scale, Setting};
use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_tensor::TensorResult;
use serde_json::json;

/// One accuracy series for an initialisation / step-size combination.
#[derive(Debug, Clone, serde::Serialize)]
pub struct InitSeries {
    /// "I (warm start)" or "II (global model)".
    pub init: String,
    /// Server step-size rule.
    pub eta: String,
    /// Accuracy per round.
    pub accuracy: Vec<f32>,
}

/// Runs FedADMM with the given initialisation and step size.
pub fn run_variant(
    setting: &Setting,
    init: LocalInit,
    step: ServerStepSize,
    rounds: usize,
) -> TensorResult<InitSeries> {
    let algorithm = FedAdmm::new(crate::common::SUBSTRATE_RHO, step).with_local_init(init);
    let history = setting.run_rounds(Box::new(algorithm), rounds)?;
    Ok(InitSeries {
        init: match init {
            LocalInit::LocalModel => "I (warm start w_i)".to_string(),
            LocalInit::GlobalModel => "II (global model θ)".to_string(),
        },
        eta: match step {
            ServerStepSize::Constant(eta) => format!("eta={eta}"),
            ServerStepSize::ParticipationRatio => "eta=|S|/m".to_string(),
        },
        accuracy: history.accuracy_series(),
    })
}

/// Regenerates Figure 8.
pub fn run(scale: Scale) -> TensorResult<ExperimentReport> {
    let rounds = match scale {
        Scale::Smoke => 8,
        Scale::Scaled => 40,
        Scale::Paper => 100,
    };
    let setting = Setting::for_dataset(
        SyntheticDataset::Fmnist,
        DataDistribution::NonIidShards,
        100,
        scale,
    );
    let steps = [
        ServerStepSize::Constant(1.0),
        ServerStepSize::ParticipationRatio,
    ];
    let mut series = Vec::new();
    let mut rows = Vec::new();
    for step in steps {
        for init in [LocalInit::LocalModel, LocalInit::GlobalModel] {
            let s = run_variant(&setting, init, step, rounds)?;
            rows.push(vec![
                s.init.clone(),
                s.eta.clone(),
                format!("{:.3}", s.accuracy.last().copied().unwrap_or(0.0)),
                format!("{:.3}", s.accuracy.iter().copied().fold(0.0f32, f32::max)),
            ]);
            series.push(s);
        }
    }
    let rendered = render_table(
        &["Initialisation", "Server step", "Final acc", "Best acc"],
        &rows,
    );
    Ok(ExperimentReport {
        name: "fig8".to_string(),
        description: "Warm-start vs global-model local initialisation (Figure 8)".to_string(),
        rendered,
        data: json!({ "setting": setting.label(), "series": series }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_produce_series() {
        let setting = Setting::for_dataset(
            SyntheticDataset::Fmnist,
            DataDistribution::Iid,
            100,
            Scale::Smoke,
        );
        let warm = run_variant(
            &setting,
            LocalInit::LocalModel,
            ServerStepSize::Constant(1.0),
            3,
        )
        .unwrap();
        let cold = run_variant(
            &setting,
            LocalInit::GlobalModel,
            ServerStepSize::Constant(1.0),
            3,
        )
        .unwrap();
        assert_eq!(warm.accuracy.len(), 3);
        assert_eq!(cold.accuracy.len(), 3);
        assert!(warm.init.contains("warm start"));
        assert!(cold.init.contains("global model"));
    }
}
