//! Table IV and Figure 7 — the effect of the local epoch budget `E`.
//!
//! The paper reports the rounds FedADMM needs to reach 97% (MNIST) / 45%
//! (CIFAR-10) for E ∈ {1, 5, 10}: more local work per round means fewer
//! rounds, and convergence never breaks even with a fixed learning rate —
//! a consequence of the strongly convex local subproblems (Theorem 1).

use crate::common::{format_rounds, render_table, ExperimentReport, Scale, Setting};
use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_tensor::TensorResult;
use serde_json::json;

/// The local-epoch budgets swept by Table IV.
pub const EPOCH_BUDGETS: [usize; 3] = [1, 5, 10];

/// Rounds-to-target for FedADMM at one (dataset, distribution, E) point.
pub fn run_point(
    dataset: SyntheticDataset,
    distribution: DataDistribution,
    epochs: usize,
    scale: Scale,
) -> TensorResult<(Option<usize>, f32)> {
    let mut setting = Setting::for_dataset(dataset, distribution, 100, scale);
    setting.local_epochs = epochs;
    // Table IV isolates the effect of E, so clients run exactly E epochs.
    setting.system_heterogeneity = false;
    let (rounds, history) = setting.run_to_target(Box::new(FedAdmm::new(
        crate::common::SUBSTRATE_RHO,
        ServerStepSize::Constant(1.0),
    )))?;
    Ok((rounds, history.best_accuracy()))
}

/// Regenerates Table IV / Figure 7.
pub fn run(scale: Scale) -> TensorResult<ExperimentReport> {
    let budgets: Vec<usize> = match scale {
        Scale::Smoke => vec![1, 3],
        _ => EPOCH_BUDGETS.to_vec(),
    };
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for dataset in [SyntheticDataset::Mnist, SyntheticDataset::Cifar10] {
        for distribution in [DataDistribution::Iid, DataDistribution::NonIidShards] {
            let mut row = vec![format!("{dataset:?} {}", distribution.label())];
            let mut cells = Vec::new();
            for &epochs in &budgets {
                let (rounds, best) = run_point(dataset, distribution, epochs, scale)?;
                let budget = Setting::for_dataset(dataset, distribution, 100, scale).max_rounds;
                row.push(format!("E={epochs}: {}", format_rounds(rounds, budget)));
                cells.push(json!({ "epochs": epochs, "rounds": rounds, "best_accuracy": best }));
            }
            rows.push(row);
            data.push(json!({
                "dataset": format!("{dataset:?}"),
                "distribution": distribution.label(),
                "points": cells,
            }));
        }
    }
    let mut headers = vec!["Setting".to_string()];
    headers.extend(budgets.iter().map(|e| format!("rounds @ E={e}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rendered = render_table(&header_refs, &rows);
    Ok(ExperimentReport {
        name: "table4_fig7".to_string(),
        description: "Rounds to target accuracy vs local epoch budget E (Table IV / Figure 7)"
            .to_string(),
        rendered,
        data: json!(data),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_local_work_never_hurts_round_count() {
        // The Table IV trend: E=3 needs no more rounds than E=1 to reach the
        // same (modest, smoke-scale) target.
        let (r1, _) = run_point(
            SyntheticDataset::Mnist,
            DataDistribution::Iid,
            1,
            Scale::Smoke,
        )
        .unwrap();
        let (r3, _) = run_point(
            SyntheticDataset::Mnist,
            DataDistribution::Iid,
            3,
            Scale::Smoke,
        )
        .unwrap();
        let budget = Setting::for_dataset(
            SyntheticDataset::Mnist,
            DataDistribution::Iid,
            100,
            Scale::Smoke,
        )
        .max_rounds;
        let r1 = r1.unwrap_or(budget + 1);
        let r3 = r3.unwrap_or(budget + 1);
        assert!(r3 <= r1, "E=3 took {r3} rounds but E=1 took {r1}");
    }
}
