//! Table V and Figure 9 — sensitivity to the proximal coefficient ρ.
//!
//! Table V compares FedProx with ρ ∈ {0.01, 0.1, 1} against FedADMM with a
//! single fixed ρ (0.01 in the paper; the substrate-calibrated
//! [`SUBSTRATE_RHO`] here), on MNIST and FMNIST with 200 and 500 clients
//! (IID and non-IID). The paper's finding: FedProx's best ρ changes across
//! settings (and its performance in ρ is not monotone), while FedADMM with
//! a constant ρ dominates every tested FedProx instance. Figure 9 adds a
//! dynamic ρ schedule for FedADMM (small ρ early, larger ρ later).

use crate::common::{format_rounds, render_table, ExperimentReport, Scale, Setting, SUBSTRATE_RHO};
use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_tensor::TensorResult;
use serde_json::json;

/// The FedProx ρ values swept by Table V.
pub const PROX_RHOS: [f32; 3] = [0.01, 0.1, 1.0];

/// Rounds-to-target for one algorithm instance under one setting.
fn rounds_for(setting: &Setting, algorithm: Box<dyn Algorithm>) -> TensorResult<Option<usize>> {
    Ok(setting.run_to_target(algorithm)?.0)
}

/// Runs FedADMM with ρ switched from `rho_before` to `rho_after` at
/// `switch_round` (Figure 9's dynamic adaptation).
pub fn run_rho_schedule(
    setting: &Setting,
    rho_before: f32,
    rho_after: f32,
    switch_round: usize,
    rounds: usize,
) -> TensorResult<Vec<f32>> {
    let mut sim = setting.build_sim(FedAdmm::new(rho_before, ServerStepSize::Constant(1.0)))?;
    sim.run_rounds(switch_round.min(rounds))?;
    sim.algorithm_mut().set_rho(rho_after);
    if rounds > switch_round {
        sim.run_rounds(rounds - switch_round)?;
    }
    Ok(sim.into_history().accuracy_series())
}

/// Regenerates Table V and Figure 9.
pub fn run(scale: Scale) -> TensorResult<ExperimentReport> {
    let populations: Vec<usize> = match scale {
        Scale::Smoke => vec![200],
        _ => vec![200, 500],
    };
    let datasets = match scale {
        Scale::Smoke => vec![SyntheticDataset::Mnist],
        _ => vec![SyntheticDataset::Mnist, SyntheticDataset::Fmnist],
    };

    let mut rows = Vec::new();
    let mut data = Vec::new();
    for dataset in &datasets {
        for &population in &populations {
            for distribution in [DataDistribution::Iid, DataDistribution::NonIidShards] {
                let setting = Setting::for_dataset(*dataset, distribution, population, scale);
                let budget = setting.max_rounds;
                let admm = rounds_for(
                    &setting,
                    Box::new(FedAdmm::new(SUBSTRATE_RHO, ServerStepSize::Constant(1.0))),
                )?;
                let mut row = vec![setting.label(), format_rounds(admm, budget)];
                let mut prox_cells = Vec::new();
                for &rho in &PROX_RHOS {
                    let prox = rounds_for(&setting, Box::new(FedProx::new(rho)))?;
                    row.push(format_rounds(prox, budget));
                    prox_cells.push(json!({ "rho": rho, "rounds": prox }));
                }
                rows.push(row);
                data.push(json!({
                    "label": setting.label(),
                    "fedadmm_fixed_rho": SUBSTRATE_RHO,
                    "fedadmm_rounds": admm,
                    "fedprox": prox_cells,
                }));
            }
        }
    }

    // Figure 9: dynamic ρ for FedADMM (increase ρ mid-run).
    let fig9_setting = Setting::for_dataset(
        SyntheticDataset::Fmnist,
        DataDistribution::NonIidShards,
        200,
        scale,
    );
    let rounds = match scale {
        Scale::Smoke => 6,
        Scale::Scaled => 30,
        Scale::Paper => 100,
    };
    let switch = rounds / 2;
    // The paper starts with a small ρ (efficient incorporation of local data
    // while the global model is uninformed) and increases it later (reduce
    // the client/global discrepancy). The substrate-calibrated analogue of
    // the paper's 0.01 → 0.1 schedule is SUBSTRATE_RHO/3 → 3·SUBSTRATE_RHO.
    let rho_small = SUBSTRATE_RHO / 3.0;
    let rho_large = SUBSTRATE_RHO * 3.0;
    let fixed_small = run_rho_schedule(&fig9_setting, rho_small, rho_small, switch, rounds)?;
    let fixed_large = run_rho_schedule(&fig9_setting, rho_large, rho_large, switch, rounds)?;
    let dynamic = run_rho_schedule(&fig9_setting, rho_small, rho_large, switch, rounds)?;

    let mut rendered = render_table(
        &[
            "Setting",
            "FedADMM(fixed)",
            "FedProx(0.01)",
            "FedProx(0.1)",
            "FedProx(1)",
        ],
        &rows,
    );
    rendered.push_str("\nFigure 9 — dynamic ρ for FedADMM (final accuracy):\n");
    rendered.push_str(&render_table(
        &["rho schedule", "final acc"],
        &[
            vec![
                format!("{rho_small} throughout"),
                format!("{:.3}", fixed_small.last().copied().unwrap_or(0.0)),
            ],
            vec![
                format!("{rho_large} throughout"),
                format!("{:.3}", fixed_large.last().copied().unwrap_or(0.0)),
            ],
            vec![
                format!("{rho_small} -> {rho_large} @ round {switch}"),
                format!("{:.3}", dynamic.last().copied().unwrap_or(0.0)),
            ],
        ],
    ));

    Ok(ExperimentReport {
        name: "table5_fig9".to_string(),
        description:
            "ρ sensitivity of FedProx vs fixed-ρ FedADMM, and dynamic ρ (Table V / Figure 9)"
                .to_string(),
        rendered,
        data: json!({
            "table5": data,
            "fig9": {
                "setting": fig9_setting.label(),
                "rho_small_fixed": fixed_small,
                "rho_large_fixed": fixed_large,
                "dynamic": dynamic,
                "rho_small": rho_small,
                "rho_large": rho_large,
                "switch_round": switch,
            }
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_schedule_runs_and_switches() {
        let setting = Setting::for_dataset(
            SyntheticDataset::Mnist,
            DataDistribution::Iid,
            200,
            Scale::Smoke,
        );
        let series = run_rho_schedule(&setting, 0.01, 0.1, 2, 4).unwrap();
        assert_eq!(series.len(), 4);
        assert!(series.iter().all(|a| (0.0..=1.0).contains(a)));
    }
}
