//! Shared experiment infrastructure: scales, settings, algorithm suites,
//! run helpers and table rendering.

use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_data::Dataset;
use fedadmm_nn::models::ModelSpec;
use fedadmm_tensor::TensorResult;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// How large an experiment to run.
///
/// The paper's experiments use 100–1,000 clients, the full 50k–60k-sample
/// datasets and the two CNNs from Table II. That configuration is available
/// as [`Scale::Paper`], but the default reproduction ([`Scale::Scaled`])
/// shrinks the client population, dataset and model so that a full table
/// regenerates on a laptop CPU in minutes while preserving the comparisons
/// the paper makes (who wins, by roughly what factor). [`Scale::Smoke`] is
/// the few-second configuration used by integration tests and Criterion
/// benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-scale configuration for CI and benches.
    Smoke,
    /// Minutes-scale configuration (the default for the `experiments` binary).
    Scaled,
    /// The paper's configuration (CNNs, 100–1,000 clients, full-size data).
    Paper,
}

impl Scale {
    /// Parses a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "scaled" => Some(Scale::Scaled),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// A complete experimental setting: dataset, partition, population, local
/// solver configuration, round budget and target accuracy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Setting {
    /// Which synthetic dataset stands in for the paper's dataset.
    pub dataset: SyntheticDataset,
    /// IID / non-IID / imbalanced client data distribution.
    pub distribution: DataDistribution,
    /// Client population size `m`.
    pub num_clients: usize,
    /// Number of training samples to generate.
    pub train_size: usize,
    /// Number of test samples to generate.
    pub test_size: usize,
    /// Maximum local epochs `E`.
    pub local_epochs: usize,
    /// Local batch size `B`.
    pub batch_size: BatchSize,
    /// Local SGD learning rate.
    pub local_lr: f32,
    /// Round budget (the paper uses 100; "100+" means the target was not
    /// reached within the budget).
    pub max_rounds: usize,
    /// Target test accuracy for rounds-to-accuracy comparisons.
    pub target_accuracy: f32,
    /// Model trained by every client.
    pub model: ModelSpec,
    /// Whether clients draw variable local epochs (system heterogeneity).
    pub system_heterogeneity: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Setting {
    /// Builds the setting corresponding to one of the paper's
    /// dataset/population combinations at the requested scale.
    ///
    /// `paper_clients` is the population the paper uses (100, 200, 500 or
    /// 1,000); smaller scales shrink it proportionally.
    pub fn for_dataset(
        dataset: SyntheticDataset,
        distribution: DataDistribution,
        paper_clients: usize,
        scale: Scale,
    ) -> Setting {
        let (num_clients, samples_per_client, test_size, max_rounds) = match scale {
            Scale::Smoke => (paper_clients.clamp(8, 16), 20, 200, 15),
            Scale::Scaled => ((paper_clients / 2).clamp(20, 100), 100, 500, 60),
            Scale::Paper => (
                paper_clients,
                dataset.reference_train_size() / paper_clients.max(1),
                10_000,
                100,
            ),
        };
        let model = match scale {
            Scale::Paper => match dataset {
                SyntheticDataset::Mnist | SyntheticDataset::Fmnist => ModelSpec::Cnn1,
                SyntheticDataset::Cifar10 => ModelSpec::Cnn2,
            },
            Scale::Scaled => ModelSpec::Mlp {
                input_dim: dataset.feature_dim(),
                hidden_dim: 32,
                num_classes: 10,
            },
            Scale::Smoke => ModelSpec::Mlp {
                input_dim: dataset.feature_dim(),
                hidden_dim: 16,
                num_classes: 10,
            },
        };
        // Paper targets: 97% (MNIST), 80% (FMNIST), 45% (CIFAR-10). The
        // synthetic stand-ins support similar orderings but not identical
        // ceilings, so the scaled targets are adjusted per preset and
        // recorded in EXPERIMENTS.md.
        let target_accuracy = match (scale, dataset) {
            (Scale::Paper, SyntheticDataset::Mnist) => 0.97,
            (Scale::Paper, SyntheticDataset::Fmnist) => 0.80,
            (Scale::Paper, SyntheticDataset::Cifar10) => 0.45,
            (Scale::Scaled, SyntheticDataset::Mnist) => 0.90,
            (Scale::Scaled, SyntheticDataset::Fmnist) => 0.75,
            (Scale::Scaled, SyntheticDataset::Cifar10) => 0.45,
            (Scale::Smoke, SyntheticDataset::Mnist) => 0.60,
            (Scale::Smoke, SyntheticDataset::Fmnist) => 0.50,
            (Scale::Smoke, SyntheticDataset::Cifar10) => 0.30,
        };
        // The paper: E = 5, B = 200 for MNIST/100 clients; E = 20 with B = 10
        // (non-IID) or full batch (IID) for the 1,000-client settings. The
        // scaled settings keep the small-E/small-B shape for tractability.
        let (local_epochs, batch_size) = match scale {
            Scale::Paper => {
                if paper_clients >= 1000 {
                    (
                        20,
                        if distribution == DataDistribution::Iid {
                            BatchSize::Full
                        } else {
                            BatchSize::Size(10)
                        },
                    )
                } else {
                    (5, BatchSize::Size(200))
                }
            }
            Scale::Scaled => (5, BatchSize::Size(16)),
            Scale::Smoke => (2, BatchSize::Size(10)),
        };
        Setting {
            dataset,
            distribution,
            num_clients,
            train_size: num_clients * samples_per_client,
            test_size,
            local_epochs,
            batch_size,
            local_lr: 0.1,
            max_rounds,
            target_accuracy,
            model,
            system_heterogeneity: true,
            seed: 42,
        }
    }

    /// Short label such as "MNIST (50 clients) non-IID".
    pub fn label(&self) -> String {
        format!(
            "{:?} ({} clients) {}",
            self.dataset,
            self.num_clients,
            self.distribution.label()
        )
    }

    /// Generates the train/test datasets for this setting.
    pub fn generate_data(&self) -> (Dataset, Dataset) {
        self.dataset
            .generate(self.train_size, self.test_size, self.seed)
    }

    /// Converts this setting into the core [`FedConfig`].
    pub fn fed_config(&self) -> FedConfig {
        FedConfig {
            num_clients: self.num_clients,
            participation: Participation::Fraction(0.1),
            local_epochs: self.local_epochs,
            system_heterogeneity: self.system_heterogeneity,
            batch_size: self.batch_size,
            local_learning_rate: self.local_lr,
            model: self.model,
            seed: self.seed,
            eval_subset: usize::MAX,
        }
    }

    /// Builds a ready-to-run synchronous engine for a boxed `algorithm`.
    pub fn build_simulation(
        &self,
        algorithm: Box<dyn Algorithm>,
    ) -> TensorResult<SyncEngine<Box<dyn Algorithm>>> {
        self.build_sim(algorithm)
    }

    /// Builds a ready-to-run synchronous engine for a concrete algorithm
    /// type, preserving access to its hyperparameter setters through
    /// [`RoundEngine::algorithm_mut`] (needed by the η / ρ mid-run
    /// adjustments of Figures 6 and 9).
    pub fn build_sim<A: Algorithm>(&self, algorithm: A) -> TensorResult<SyncEngine<A>> {
        let (train, test) = self.generate_data();
        let partition = self
            .distribution
            .partition(&train, self.num_clients, self.seed);
        RoundEngine::new(
            self.fed_config(),
            train,
            test,
            partition,
            algorithm,
            SyncRounds,
        )
    }

    /// Builds an engine with an arbitrary [`Scheduler`] — the entry point
    /// for semi-asynchronous and buffered-asynchronous experiment variants.
    pub fn build_with_scheduler<A: Algorithm, S: Scheduler>(
        &self,
        algorithm: A,
        scheduler: S,
    ) -> TensorResult<RoundEngine<A, S>> {
        let (train, test) = self.generate_data();
        let partition = self
            .distribution
            .partition(&train, self.num_clients, self.seed);
        RoundEngine::new(
            self.fed_config(),
            train,
            test,
            partition,
            algorithm,
            scheduler,
        )
    }

    /// Runs `algorithm` until the target accuracy or the round budget is
    /// exhausted. Returns the 1-based round count (or `None`) and the full
    /// history.
    pub fn run_to_target(
        &self,
        algorithm: Box<dyn Algorithm>,
    ) -> TensorResult<(Option<usize>, RunHistory)> {
        let mut sim = self.build_simulation(algorithm)?;
        let rounds = sim.run_until_accuracy(self.target_accuracy, self.max_rounds)?;
        Ok((rounds, sim.into_history()))
    }

    /// Runs `algorithm` for exactly `rounds` rounds and returns the history.
    pub fn run_rounds(
        &self,
        algorithm: Box<dyn Algorithm>,
        rounds: usize,
    ) -> TensorResult<RunHistory> {
        let mut sim = self.build_simulation(algorithm)?;
        sim.run_rounds(rounds)?;
        Ok(sim.into_history())
    }
}

/// The fixed FedADMM proximal coefficient used across *all* experiments on
/// the synthetic substrate.
///
/// The paper fixes ρ = 0.01 for its PyTorch CNNs on real MNIST/FMNIST/
/// CIFAR-10. Remark 1 of the paper states that ρ should be of the order of
/// the local loss's smoothness constant L; the synthetic stand-in datasets
/// have larger feature magnitudes (hence larger L) than normalised image
/// pixels, so the equivalent constant for this substrate is larger. It is
/// calibrated **once** (ρ = 0.3) and then used unchanged in every
/// experiment, which is exactly the paper's "no per-setting tuning" claim —
/// in contrast to FedProx, whose ρ must be re-tuned per setting (Table V).
pub const SUBSTRATE_RHO: f32 = 0.3;

/// The algorithm line-up of Table III, in the paper's row order.
///
/// FedADMM uses the fixed substrate constant [`SUBSTRATE_RHO`] and η = 1;
/// FedProx uses ρ = 0.1 (a typical tuned value); FedSGD's server step
/// equals the local learning rate.
pub fn table3_suite(setting: &Setting) -> Vec<(&'static str, Box<dyn Algorithm>)> {
    vec![
        (
            "FedSGD",
            Box::new(FedSgd::new(setting.local_lr)) as Box<dyn Algorithm>,
        ),
        (
            "FedADMM",
            Box::new(FedAdmm::new(SUBSTRATE_RHO, ServerStepSize::Constant(1.0))),
        ),
        ("FedAvg", Box::new(FedAvg::new())),
        ("FedProx", Box::new(FedProx::new(0.1))),
        ("SCAFFOLD", Box::new(Scaffold::new())),
    ]
}

/// A rendered experiment artefact: a human-readable table plus the raw data
/// as JSON for further processing (EXPERIMENTS.md, plots, regression checks).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment identifier ("table3", "fig6", ...).
    pub name: String,
    /// One-line description referencing the paper artefact.
    pub description: String,
    /// Human-readable rendering (aligned text table / series listing).
    pub rendered: String,
    /// Machine-readable results.
    pub data: Value,
}

impl ExperimentReport {
    /// Prints the report to stdout in the format the binary emits.
    pub fn print(&self) {
        println!("== {} — {} ==", self.name, self.description);
        println!("{}", self.rendered);
    }
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a rounds-to-accuracy result the way the paper's tables do:
/// the round count, or `"100+"`-style when the budget was exhausted.
pub fn format_rounds(rounds: Option<usize>, budget: usize) -> String {
    match rounds {
        Some(r) => r.to_string(),
        None => format!("{budget}+"),
    }
}

/// Formats a speedup multiplier ("12.5x") or "-" when unavailable.
pub fn format_speedup(speedup: Option<f64>) -> String {
    match speedup {
        Some(s) => format!("{s:.1}x"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("Scaled"), Some(Scale::Scaled));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_uses_cnns_and_paper_targets() {
        let s = Setting::for_dataset(
            SyntheticDataset::Mnist,
            DataDistribution::Iid,
            100,
            Scale::Paper,
        );
        assert_eq!(s.model, ModelSpec::Cnn1);
        assert_eq!(s.target_accuracy, 0.97);
        assert_eq!(s.local_epochs, 5);
        assert_eq!(s.num_clients, 100);
        let s = Setting::for_dataset(
            SyntheticDataset::Cifar10,
            DataDistribution::Iid,
            1000,
            Scale::Paper,
        );
        assert_eq!(s.model, ModelSpec::Cnn2);
        assert_eq!(s.local_epochs, 20);
        assert_eq!(s.batch_size, BatchSize::Full);
        let s_noniid = Setting::for_dataset(
            SyntheticDataset::Cifar10,
            DataDistribution::NonIidShards,
            1000,
            Scale::Paper,
        );
        assert_eq!(s_noniid.batch_size, BatchSize::Size(10));
    }

    #[test]
    fn smoke_scale_is_small() {
        let s = Setting::for_dataset(
            SyntheticDataset::Mnist,
            DataDistribution::NonIidShards,
            1000,
            Scale::Smoke,
        );
        assert!(s.num_clients <= 16);
        assert!(s.train_size <= 16 * 20);
        assert!(s.max_rounds <= 15);
        assert!(matches!(s.model, ModelSpec::Mlp { .. }));
        assert!(s.label().contains("non-IID"));
    }

    #[test]
    fn setting_builds_runnable_simulation() {
        let s = Setting::for_dataset(
            SyntheticDataset::Mnist,
            DataDistribution::Iid,
            100,
            Scale::Smoke,
        );
        let mut sim = s.build_simulation(Box::new(FedAvg::new())).unwrap();
        let record = sim.run_round().unwrap();
        assert!(record.test_accuracy >= 0.0);
    }

    #[test]
    fn table3_suite_has_five_algorithms_in_paper_order() {
        let s = Setting::for_dataset(
            SyntheticDataset::Mnist,
            DataDistribution::Iid,
            100,
            Scale::Smoke,
        );
        let suite = table3_suite(&s);
        let names: Vec<&str> = suite.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["FedSGD", "FedADMM", "FedAvg", "FedProx", "SCAFFOLD"]
        );
    }

    #[test]
    fn render_table_aligns_columns() {
        let table = render_table(
            &["Method", "Rounds"],
            &[
                vec!["FedADMM".to_string(), "10".to_string()],
                vec!["FedAvg".to_string(), "19".to_string()],
            ],
        );
        assert!(table.contains("Method"));
        assert!(table.contains("FedADMM  10"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_rounds(Some(12), 100), "12");
        assert_eq!(format_rounds(None, 100), "100+");
        assert_eq!(format_speedup(Some(29.7)), "29.7x");
        assert_eq!(format_speedup(None), "-");
    }
}
