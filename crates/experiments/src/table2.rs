//! Table II — experimental setup: model sizes, datasets and target
//! accuracies.
//!
//! This experiment verifies that the reproduction's model architectures
//! match the paper's parameter counts exactly (CNN 1: 1,663,370 parameters
//! for MNIST/FMNIST; CNN 2: 1,105,098 parameters for CIFAR-10) and records
//! the target accuracies used by the rounds-to-accuracy comparisons.

use crate::common::{render_table, ExperimentReport, Scale, Setting};
use fedadmm_core::prelude::DataDistribution;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_nn::models::ModelSpec;
use fedadmm_tensor::TensorResult;
use serde_json::json;

/// Regenerates Table II.
pub fn run(scale: Scale) -> TensorResult<ExperimentReport> {
    let entries = [
        (
            ModelSpec::Cnn1,
            SyntheticDataset::Mnist,
            1_663_370usize,
            0.97f32,
        ),
        (ModelSpec::Cnn1, SyntheticDataset::Fmnist, 1_663_370, 0.80),
        (ModelSpec::Cnn2, SyntheticDataset::Cifar10, 1_105_098, 0.45),
    ];
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for (model, dataset, paper_params, paper_target) in entries {
        let built = model.num_params();
        let scaled = Setting::for_dataset(dataset, DataDistribution::Iid, 100, scale);
        rows.push(vec![
            model.name(),
            format!("{built}"),
            format!("{paper_params}"),
            format!("{dataset:?}"),
            format!("{paper_target:.2}"),
            format!("{:.2}", scaled.target_accuracy),
            scaled.model.name(),
        ]);
        data.push(json!({
            "model": model.name(),
            "params_built": built,
            "params_paper": paper_params,
            "dataset": format!("{dataset:?}"),
            "paper_target": paper_target,
            "scale_target": scaled.target_accuracy,
            "scale_model": scaled.model.name(),
        }));
    }
    let rendered = render_table(
        &[
            "Model",
            "# params (built)",
            "# params (paper)",
            "Dataset",
            "Paper target",
            "This-scale target",
            "This-scale model",
        ],
        &rows,
    );
    Ok(ExperimentReport {
        name: "table2".to_string(),
        description: "Experimental setup: model sizes and target accuracies (Table II)".to_string(),
        rendered,
        data: json!(data),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_paper_exactly() {
        let report = run(Scale::Smoke).unwrap();
        let rows = report.data.as_array().unwrap();
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert_eq!(row["params_built"], row["params_paper"], "row {row}");
        }
        assert!(report.rendered.contains("1663370"));
        assert!(report.rendered.contains("1105098"));
    }

    #[test]
    fn paper_scale_uses_paper_targets() {
        let report = run(Scale::Paper).unwrap();
        let rows = report.data.as_array().unwrap();
        assert_eq!(rows[0]["scale_target"], rows[0]["paper_target"]);
        assert_eq!(rows[0]["scale_model"], "CNN1");
        assert_eq!(rows[2]["scale_model"], "CNN2");
    }
}
