//! Figure 6 — the effect of the server gathering step size η.
//!
//! The paper runs FedADMM with η ∈ {0.5, 1.0, 1.5} on a 100-client system
//! (IID and non-IID) and additionally shows that *decreasing* η at a later
//! stage of training (round 60) improves the final accuracy by incorporating
//! past information more cautiously. The observations: η = 1 is consistently
//! good, η = 1.5 stalls under non-IID data, and a late decrease helps.

use crate::common::{render_table, ExperimentReport, Scale, Setting};
use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_tensor::TensorResult;
use serde_json::json;

/// The η values swept by Figure 6.
pub const ETAS: [f32; 3] = [0.5, 1.0, 1.5];

/// One accuracy series for a fixed η (or an η schedule).
#[derive(Debug, Clone, serde::Serialize)]
pub struct EtaSeries {
    /// Description of the step-size rule ("eta=1.0", "eta=1.5->0.5@30"…).
    pub label: String,
    /// Test accuracy per round.
    pub accuracy: Vec<f32>,
}

/// Runs FedADMM with a fixed η for `rounds` rounds.
pub fn run_fixed_eta(setting: &Setting, eta: f32, rounds: usize) -> TensorResult<EtaSeries> {
    let algorithm = FedAdmm::new(crate::common::SUBSTRATE_RHO, ServerStepSize::Constant(eta));
    let history = setting.run_rounds(Box::new(algorithm), rounds)?;
    Ok(EtaSeries {
        label: format!("eta={eta}"),
        accuracy: history.accuracy_series(),
    })
}

/// Runs FedADMM with η switched from `eta_before` to `eta_after` at
/// `switch_round` (the paper switches at round 60 of 100).
pub fn run_eta_schedule(
    setting: &Setting,
    eta_before: f32,
    eta_after: f32,
    switch_round: usize,
    rounds: usize,
) -> TensorResult<EtaSeries> {
    let mut sim = setting.build_sim(FedAdmm::new(
        crate::common::SUBSTRATE_RHO,
        ServerStepSize::Constant(eta_before),
    ))?;
    sim.run_rounds(switch_round.min(rounds))?;
    sim.algorithm_mut()
        .set_server_step(ServerStepSize::Constant(eta_after));
    if rounds > switch_round {
        sim.run_rounds(rounds - switch_round)?;
    }
    Ok(EtaSeries {
        label: format!("eta={eta_before}->{eta_after}@{switch_round}"),
        accuracy: sim.into_history().accuracy_series(),
    })
}

/// Regenerates Figure 6.
pub fn run(scale: Scale) -> TensorResult<ExperimentReport> {
    let rounds = match scale {
        Scale::Smoke => 8,
        Scale::Scaled => 40,
        Scale::Paper => 100,
    };
    let switch_round = (rounds * 3) / 5; // the paper switches at 60/100.
    let mut panels = Vec::new();
    let mut rows = Vec::new();
    for distribution in [DataDistribution::Iid, DataDistribution::NonIidShards] {
        let setting = Setting::for_dataset(SyntheticDataset::Fmnist, distribution, 100, scale);
        let mut series = Vec::new();
        for eta in ETAS {
            series.push(run_fixed_eta(&setting, eta, rounds)?);
        }
        series.push(run_eta_schedule(&setting, 1.5, 0.5, switch_round, rounds)?);
        series.push(run_eta_schedule(&setting, 1.0, 0.5, switch_round, rounds)?);
        for s in &series {
            rows.push(vec![
                setting.label(),
                s.label.clone(),
                format!("{:.3}", s.accuracy.last().copied().unwrap_or(0.0)),
                format!("{:.3}", s.accuracy.iter().copied().fold(0.0f32, f32::max)),
            ]);
        }
        panels.push(json!({ "setting": setting.label(), "series": series }));
    }
    let rendered = render_table(
        &["Setting", "Step-size rule", "Final acc", "Best acc"],
        &rows,
    );
    Ok(ExperimentReport {
        name: "fig6".to_string(),
        description: "Server gathering step size η sweep and mid-run decrease (Figure 6)"
            .to_string(),
        rendered,
        data: json!(panels),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_schedule_switches_mid_run() {
        let setting = Setting::for_dataset(
            SyntheticDataset::Fmnist,
            DataDistribution::Iid,
            100,
            Scale::Smoke,
        );
        let series = run_eta_schedule(&setting, 1.5, 0.5, 2, 4).unwrap();
        assert_eq!(series.accuracy.len(), 4);
        assert!(series.label.contains("1.5->0.5"));
    }

    #[test]
    fn fixed_eta_produces_full_series() {
        let setting = Setting::for_dataset(
            SyntheticDataset::Fmnist,
            DataDistribution::Iid,
            100,
            Scale::Smoke,
        );
        let series = run_fixed_eta(&setting, 1.0, 3).unwrap();
        assert_eq!(series.accuracy.len(), 3);
    }
}
