//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <name> [--scale smoke|scaled|paper] [--json <path>]
//! experiments all    [--scale smoke|scaled|paper] [--json <path>]
//! experiments list
//! ```

use fedadmm_experiments::common::{ExperimentReport, Scale};
use fedadmm_experiments::{
    fig3_fig4, fig5, fig6, fig8, table2, table3, table4_fig7, table5_fig9, table6_fig10,
};
use std::io::Write;
use std::process::ExitCode;

const EXPERIMENTS: &[&str] = &[
    "table2",
    "table3",
    "fig3_fig4",
    "fig5",
    "fig6",
    "table4_fig7",
    "fig8",
    "table5_fig9",
    "table6_fig10",
];

fn run_one(name: &str, scale: Scale) -> Result<ExperimentReport, String> {
    let result = match name {
        "table2" => table2::run(scale),
        "table3" => table3::run(scale),
        "fig3_fig4" | "fig3" | "fig4" => fig3_fig4::run(scale),
        "fig5" => fig5::run(scale),
        "fig6" => fig6::run(scale),
        "table4_fig7" | "table4" | "fig7" => table4_fig7::run(scale),
        "fig8" => fig8::run(scale),
        "table5_fig9" | "table5" | "fig9" => table5_fig9::run(scale),
        "table6_fig10" | "table6" | "fig10" => table6_fig10::run(scale),
        other => {
            return Err(format!(
                "unknown experiment '{other}'; try `experiments list`"
            ))
        }
    };
    result.map_err(|e| format!("experiment '{name}' failed: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: experiments <name>|all|list [--scale smoke|scaled|paper] [--json <path>]"
        );
        return ExitCode::FAILURE;
    }
    let name = args[0].clone();
    if name == "list" {
        println!("available experiments:");
        for e in EXPERIMENTS {
            println!("  {e}");
        }
        return ExitCode::SUCCESS;
    }

    let mut scale = Scale::Scaled;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(value) = args.get(i + 1) {
                    match Scale::parse(value) {
                        Some(s) => scale = s,
                        None => {
                            eprintln!("unknown scale '{value}' (expected smoke|scaled|paper)");
                            return ExitCode::FAILURE;
                        }
                    }
                    i += 2;
                } else {
                    eprintln!("--scale requires a value");
                    return ExitCode::FAILURE;
                }
            }
            "--json" => {
                if let Some(value) = args.get(i + 1) {
                    json_path = Some(value.clone());
                    i += 2;
                } else {
                    eprintln!("--json requires a path");
                    return ExitCode::FAILURE;
                }
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let names: Vec<&str> = if name == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![name.as_str()]
    };
    let mut reports = Vec::new();
    for n in names {
        match run_one(n, scale) {
            Ok(report) => {
                report.print();
                println!();
                reports.push(report);
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialise");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
            Ok(()) => println!("wrote JSON results to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
