//! Figure 5 — adaptability to heterogeneous data without hyperparameter
//! tuning.
//!
//! Setting: 200 clients, E = 10, B = 50, FMNIST (target 80%) and CIFAR-10
//! (target 45%), IID and non-IID. FedADMM runs with *fixed* learning rate
//! 0.1 and ρ = 0.01 while the baselines are tuned; the paper's point is
//! that FedADMM still reaches the target in fewer rounds in every case —
//! the dual variables adapt to the data distribution automatically.

use crate::common::{format_rounds, render_table, table3_suite, ExperimentReport, Scale, Setting};
use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_tensor::TensorResult;
use serde_json::json;

/// Builds the Figure 5 setting for one dataset/distribution at a scale.
pub fn fig5_setting(
    dataset: SyntheticDataset,
    distribution: DataDistribution,
    scale: Scale,
) -> Setting {
    let mut setting = Setting::for_dataset(dataset, distribution, 200, scale);
    // The paper's Figure 5 protocol: E = 10, B = 50.
    match scale {
        Scale::Paper => {
            setting.local_epochs = 10;
            setting.batch_size = BatchSize::Size(50);
        }
        Scale::Scaled => {
            setting.local_epochs = 10;
            setting.batch_size = BatchSize::Size(16);
        }
        Scale::Smoke => {
            setting.local_epochs = 3;
            setting.batch_size = BatchSize::Size(10);
        }
    }
    setting
}

/// Regenerates Figure 5.
pub fn run(scale: Scale) -> TensorResult<ExperimentReport> {
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for dataset in [SyntheticDataset::Fmnist, SyntheticDataset::Cifar10] {
        for distribution in [DataDistribution::Iid, DataDistribution::NonIidShards] {
            let setting = fig5_setting(dataset, distribution, scale);
            let mut per_alg = Vec::new();
            for (name, algorithm) in table3_suite(&setting) {
                let (rounds, history) = setting.run_to_target(algorithm)?;
                per_alg.push((name.to_string(), rounds, history.best_accuracy()));
            }
            let mut row = vec![setting.label()];
            for (_, rounds, _) in &per_alg {
                row.push(format_rounds(*rounds, setting.max_rounds));
            }
            rows.push(row);
            data.push(json!({
                "label": setting.label(),
                "target": setting.target_accuracy,
                "results": per_alg
                    .iter()
                    .map(|(n, r, best)| json!({"algorithm": n, "rounds": r, "best_accuracy": best}))
                    .collect::<Vec<_>>(),
            }));
        }
    }
    let rendered = render_table(
        &[
            "Setting", "FedSGD", "FedADMM", "FedAvg", "FedProx", "SCAFFOLD",
        ],
        &rows,
    );
    Ok(ExperimentReport {
        name: "fig5".to_string(),
        description:
            "Adaptability to heterogeneous data with fixed FedADMM hyperparameters (Figure 5)"
                .to_string(),
        rendered,
        data: json!(data),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setting_follows_figure5_protocol() {
        let s = fig5_setting(
            SyntheticDataset::Fmnist,
            DataDistribution::NonIidShards,
            Scale::Paper,
        );
        assert_eq!(s.local_epochs, 10);
        assert_eq!(s.batch_size, BatchSize::Size(50));
        assert_eq!(s.num_clients, 200);
        let s = fig5_setting(
            SyntheticDataset::Fmnist,
            DataDistribution::Iid,
            Scale::Smoke,
        );
        assert!(s.local_epochs <= 3);
    }
}
