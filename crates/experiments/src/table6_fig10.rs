//! Table VI and Figure 10 — imbalanced client data volumes.
//!
//! The paper's most realistic setting: the label-sorted data is split into
//! 10,000 shards and 200 clients (grouped into 100 groups) receive a number
//! of shards equal to their group index, producing heavily imbalanced data
//! volumes (Table VI reports mean 300 / stdev 171 for FMNIST and mean 250 /
//! stdev 142.5 for CIFAR-10). Figure 10 shows FedADMM reaching the highest
//! accuracy of all methods under this distribution, with E = 10 and B = 50.

use crate::common::{render_table, table3_suite, ExperimentReport, Scale, Setting};
use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_tensor::TensorResult;
use serde_json::json;

/// Builds the imbalanced-volume setting for a dataset at a scale.
pub fn imbalanced_setting(dataset: SyntheticDataset, scale: Scale) -> Setting {
    // The paper: 200 clients in 100 groups, 10,000 shards over the whole
    // training set. Smaller scales keep the group construction but shrink
    // the counts proportionally so every group still has at least one shard.
    let (num_clients, num_groups, samples_per_shard) = match scale {
        Scale::Smoke => (10, 5, 4),
        Scale::Scaled => (50, 25, 5),
        Scale::Paper => (
            200,
            100,
            if dataset == SyntheticDataset::Cifar10 {
                5
            } else {
                6
            },
        ),
    };
    let train_size = match scale {
        Scale::Paper => dataset.reference_train_size(),
        // Enough shards for the triangular group allocation plus remainder.
        _ => {
            let group_size = num_clients / num_groups;
            let shards_needed: usize =
                (1..=num_groups).map(|g| g * group_size).sum::<usize>() + num_groups;
            shards_needed * samples_per_shard
        }
    };
    let num_shards = train_size / samples_per_shard;
    let mut setting = Setting::for_dataset(dataset, DataDistribution::Iid, 200, scale);
    setting.num_clients = num_clients;
    setting.train_size = train_size;
    setting.distribution = DataDistribution::ImbalancedGroups {
        num_groups,
        num_shards,
    };
    match scale {
        Scale::Paper => {
            setting.local_epochs = 10;
            setting.batch_size = BatchSize::Size(50);
        }
        Scale::Scaled => {
            setting.local_epochs = 5;
            setting.batch_size = BatchSize::Size(16);
        }
        Scale::Smoke => {
            setting.local_epochs = 2;
            setting.batch_size = BatchSize::Size(8);
        }
    }
    setting
}

/// Regenerates Table VI (partition statistics) and Figure 10 (accuracy of
/// every algorithm under the imbalanced distribution).
pub fn run(scale: Scale) -> TensorResult<ExperimentReport> {
    let rounds = match scale {
        Scale::Smoke => 6,
        Scale::Scaled => 30,
        Scale::Paper => 100,
    };
    let mut stat_rows = Vec::new();
    let mut fig10_rows = Vec::new();
    let mut data = Vec::new();
    for dataset in [SyntheticDataset::Fmnist, SyntheticDataset::Cifar10] {
        let setting = imbalanced_setting(dataset, scale);
        // Table VI: per-client volume statistics of the partition.
        let (train, _) = setting.generate_data();
        let partition = setting
            .distribution
            .partition(&train, setting.num_clients, setting.seed);
        let (mean, stdev) = partition.size_stats();
        stat_rows.push(vec![
            format!("{dataset:?}"),
            setting.num_clients.to_string(),
            train.len().to_string(),
            format!("{mean:.1}"),
            format!("{stdev:.2}"),
        ]);

        // Figure 10: final/best accuracy per algorithm after the budget.
        let mut per_alg = Vec::new();
        for (name, algorithm) in table3_suite(&setting) {
            let history = setting.run_rounds(algorithm, rounds)?;
            per_alg.push((
                name.to_string(),
                history.final_accuracy(),
                history.best_accuracy(),
            ));
        }
        let mut row = vec![format!("{dataset:?}")];
        for (_, _final_acc, best) in &per_alg {
            row.push(format!("{best:.3}"));
        }
        fig10_rows.push(row);
        data.push(json!({
            "dataset": format!("{dataset:?}"),
            "clients": setting.num_clients,
            "samples": train.len(),
            "mean": mean,
            "stdev": stdev,
            "accuracy": per_alg
                .iter()
                .map(|(n, f, b)| json!({"algorithm": n, "final": f, "best": b}))
                .collect::<Vec<_>>(),
        }));
    }
    let mut rendered = String::from("Table VI — imbalanced partition statistics:\n");
    rendered.push_str(&render_table(
        &["Dataset", "Clients", "Samples", "Mean", "Stdev"],
        &stat_rows,
    ));
    rendered.push_str("\nFigure 10 — best accuracy within the round budget:\n");
    rendered.push_str(&render_table(
        &[
            "Dataset", "FedSGD", "FedADMM", "FedAvg", "FedProx", "SCAFFOLD",
        ],
        &fig10_rows,
    ));
    Ok(ExperimentReport {
        name: "table6_fig10".to_string(),
        description: "Imbalanced client data volumes (Table VI / Figure 10)".to_string(),
        rendered,
        data: json!(data),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalanced_setting_produces_skewed_volumes() {
        let setting = imbalanced_setting(SyntheticDataset::Fmnist, Scale::Smoke);
        let (train, _) = setting.generate_data();
        let partition = setting
            .distribution
            .partition(&train, setting.num_clients, setting.seed);
        let (mean, stdev) = partition.size_stats();
        assert!(mean > 0.0);
        assert!(
            stdev > 0.2 * mean,
            "stdev {stdev} not imbalanced enough for mean {mean}"
        );
        assert_eq!(partition.num_clients(), setting.num_clients);
    }

    #[test]
    fn paper_scale_matches_table6_construction() {
        let setting = imbalanced_setting(SyntheticDataset::Cifar10, Scale::Paper);
        assert_eq!(setting.num_clients, 200);
        assert_eq!(setting.train_size, 50_000);
        match setting.distribution {
            DataDistribution::ImbalancedGroups {
                num_groups,
                num_shards,
            } => {
                assert_eq!(num_groups, 100);
                assert_eq!(num_shards, 10_000);
            }
            other => panic!("unexpected distribution {other:?}"),
        }
    }
}
