//! # fedadmm-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! FedADMM paper's evaluation (Section V). One module per experiment:
//!
//! | Module           | Paper artefact | What it reports |
//! |------------------|----------------|-----------------|
//! | [`table2`]       | Table II       | model sizes and target accuracies |
//! | [`table3`]       | Table III      | rounds to target accuracy + speedups over FedSGD + reduction over the best baseline |
//! | [`fig3_fig4`]    | Figures 3 & 4  | convergence paths / rounds-to-target across client populations |
//! | [`fig5`]         | Figure 5       | adaptability to heterogeneous data (fixed FedADMM hyperparameters) |
//! | [`fig6`]         | Figure 6       | server step-size η sweep, including a mid-run decrease |
//! | [`table4_fig7`]  | Table IV & Fig 7 | effect of the local epoch count `E` |
//! | [`fig8`]         | Figure 8       | warm-start vs global-model local initialisation |
//! | [`table5_fig9`]  | Table V & Fig 9 | ρ sensitivity of FedProx vs fixed-ρ FedADMM, and a dynamic ρ schedule |
//! | [`table6_fig10`] | Table VI & Fig 10 | imbalanced client data volumes |
//!
//! Every experiment accepts a [`common::Scale`] so the same code serves the
//! fast CI/bench configuration (`Scale::Smoke`), the default laptop-scale
//! reproduction (`Scale::Scaled`) and the full paper-scale setting
//! (`Scale::Paper`, which uses the real CNN architectures and 1,000-client
//! populations — expect hours of CPU time).
//!
//! The `experiments` binary exposes each module as a sub-command:
//!
//! ```text
//! experiments table3 --scale scaled
//! experiments fig6   --scale smoke
//! experiments all    --scale smoke
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod fig3_fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod table2;
pub mod table3;
pub mod table4_fig7;
pub mod table5_fig9;
pub mod table6_fig10;

pub use common::{ExperimentReport, Scale};
