//! Table III — rounds to a target accuracy for all five algorithms.
//!
//! Regenerates the table at smoke scale (printed before the timings), then
//! benchmarks one communication round of each algorithm under the MNIST-like
//! non-IID setting — the per-round cost whose product with the table's round
//! counts is the total training cost the paper argues about.

use criterion::{criterion_group, criterion_main, Criterion};
use fedadmm_bench::{bench_suite, print_report, smoke_simulation};
use fedadmm_core::prelude::DataDistribution;
use fedadmm_experiments::common::Scale;
use fedadmm_experiments::table3;

fn bench_table3(c: &mut Criterion) {
    let report = table3::run(Scale::Smoke).expect("table3 smoke run succeeds");
    print_report(&report);

    let mut group = c.benchmark_group("table3_one_round_non_iid");
    group.sample_size(10);
    for (name, algorithm) in bench_suite() {
        group.bench_function(name, |bench| {
            let mut sim =
                smoke_simulation(algorithm.clone_boxed(), DataDistribution::NonIidShards, 1);
            bench.iter(|| sim.run_round().unwrap());
        });
    }
    group.finish();
}

/// Helper trait to clone boxed algorithms for repeated bench setup.
trait CloneBoxed {
    fn clone_boxed(&self) -> Box<dyn fedadmm_core::algorithms::Algorithm>;
}

impl CloneBoxed for Box<dyn fedadmm_core::algorithms::Algorithm> {
    fn clone_boxed(&self) -> Box<dyn fedadmm_core::algorithms::Algorithm> {
        use fedadmm_core::algorithms::*;
        // Rebuild by name — the bench suite only contains the standard five.
        match self.name() {
            "FedSGD" => Box::new(FedSgd::new(0.1)),
            "FedADMM" => Box::new(FedAdmm::paper_default()),
            "FedAvg" => Box::new(FedAvg::new()),
            "FedProx" => Box::new(FedProx::new(0.1)),
            "SCAFFOLD" => Box::new(Scaffold::new()),
            other => panic!("unknown algorithm {other}"),
        }
    }
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
