//! Micro-benchmarks of the tensor kernels behind local training: matrix
//! multiplication, 2-D convolution (the paper's 5×5 'same' convolutions)
//! and max pooling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedadmm_tensor::{init, ops, Tensor};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = SmallRng::seed_from_u64(0);
    for &n in &[32usize, 64, 128] {
        let a = init::randn(&[n, n], 0.0, 1.0, &mut rng);
        let b = init::randn(&[n, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap())
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_5x5_same");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(1);
    // One MNIST-shaped batch through the paper's first CNN 1 convolution
    // (1→32 channels) and one CIFAR-shaped batch through CNN 2's (3→32).
    let cases = [
        ("mnist_batch8_1to32", 8usize, 1usize, 28usize, 32usize),
        ("cifar_batch8_3to32", 8, 3, 32, 32),
    ];
    for (name, batch, in_c, hw, out_c) in cases {
        let input = init::randn(&[batch, in_c, hw, hw], 0.0, 1.0, &mut rng);
        let weight = init::randn(&[out_c, in_c, 5, 5], 0.0, 0.1, &mut rng);
        let bias = Tensor::zeros(&[out_c]);
        group.bench_function(format!("forward_{name}"), |bench| {
            bench.iter(|| {
                ops::conv2d_forward(black_box(&input), black_box(&weight), &bias, 1, 2).unwrap()
            })
        });
        let out = ops::conv2d_forward(&input, &weight, &bias, 1, 2).unwrap();
        group.bench_function(format!("backward_{name}"), |bench| {
            bench.iter(|| {
                ops::conv2d_backward(black_box(&input), black_box(&weight), &out, 1, 2).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_pooling(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let input = init::randn(&[8, 32, 28, 28], 0.0, 1.0, &mut rng);
    c.bench_function("max_pool2d_2x2_batch8x32x28x28", |bench| {
        bench.iter(|| ops::max_pool2d_forward(black_box(&input), 2, 2).unwrap())
    });
}

criterion_group!(benches, bench_matmul, bench_conv2d, bench_pooling);
criterion_main!(benches);
