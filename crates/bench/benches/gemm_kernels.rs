//! Micro-benchmarks of the training GEMM kernels: the naive reference
//! kernels the repo shipped with versus the blocked, register-tiled
//! replacements and the fused matmul+bias(+ReLU) dense-layer kernel.
//!
//! Shapes mirror the two training regimes:
//! * MLP-sized — the `[32, 784]`-batch hidden-layer products of the bench
//!   harness's train-bound scenario (forward `A·Bᵀ`, backward `Aᵀ·B` for
//!   dW and `A·B` for dX);
//! * conv-sized — the per-sample `[out_ch, k²·in_ch] · [k²·in_ch, h·w]`
//!   im2col product of CNN1's second convolution.
//!
//! Every variant writes into a pre-allocated output so the comparison is
//! pure kernel arithmetic, exactly as on the arena-backed hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedadmm_tensor::ops::{self, reference};
use fedadmm_tensor::Tensor;
use std::hint::black_box;

/// Deterministic small-magnitude values; no RNG needed for throughput.
fn ramp_tensor(dims: &[usize], mul: i64, offset: i64) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|i| ((i as i64 * mul + offset).rem_euclid(17) - 8) as f32 * 0.25)
        .collect();
    Tensor::from_vec(data, dims).unwrap()
}

/// (label, m, k, n): C[m×n] = A[m×k] · B[k×n].
const AB_SHAPES: [(&str, usize, usize, usize); 2] = [
    ("mlp_dx_32x128x784", 32, 128, 784),
    ("conv_im2col_64x800x196", 64, 800, 196),
];

fn bench_gemm_ab(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels");
    for &(label, m, k, n) in &AB_SHAPES {
        let a = ramp_tensor(&[m, k], 3, 1);
        let b = ramp_tensor(&[k, n], 5, 2);
        let mut out_vec = vec![0.0f32; m * n];
        let mut out = Tensor::zeros(&[m, n]);
        group.bench_with_input(BenchmarkId::new("naive", label), &label, |bench, _| {
            bench.iter(|| {
                reference::matmul_into(
                    black_box(a.data()),
                    black_box(b.data()),
                    black_box(&mut out_vec),
                    m,
                    k,
                    n,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", label), &label, |bench, _| {
            bench.iter(|| ops::gemm_into(black_box(&a), black_box(&b), black_box(&mut out)))
        });
    }
    group.finish();
}

fn bench_gemm_transposes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_transpose_kernels");
    // The MLP hidden layer's other two products: dW = Xᵀ·G and the fused
    // forward's X·Wᵀ (weight stored `[out_features, in_features]`).
    let (batch, in_dim, out_dim) = (32usize, 784usize, 128usize);
    let x = ramp_tensor(&[batch, in_dim], 3, 1);
    let g = ramp_tensor(&[batch, out_dim], 5, 2);
    let w = ramp_tensor(&[out_dim, in_dim], 7, 3);
    let mut dw_vec = vec![0.0f32; in_dim * out_dim];
    let mut dw = Tensor::zeros(&[in_dim, out_dim]);
    let mut y_vec = vec![0.0f32; batch * out_dim];
    let mut y = Tensor::zeros(&[batch, out_dim]);
    group.bench_function("at_b_dw_784x128/naive", |bench| {
        bench.iter(|| {
            reference::matmul_at_b_into(
                black_box(x.data()),
                black_box(g.data()),
                black_box(&mut dw_vec),
                batch,
                in_dim,
                out_dim,
            )
        })
    });
    group.bench_function("at_b_dw_784x128/blocked", |bench| {
        bench.iter(|| ops::gemm_at_b_into(black_box(&x), black_box(&g), black_box(&mut dw)))
    });
    group.bench_function("a_bt_fwd_32x128/naive", |bench| {
        bench.iter(|| {
            reference::matmul_a_bt_into(
                black_box(x.data()),
                black_box(w.data()),
                black_box(&mut y_vec),
                batch,
                in_dim,
                out_dim,
            )
        })
    });
    group.bench_function("a_bt_fwd_32x128/blocked", |bench| {
        bench.iter(|| ops::gemm_a_bt_into(black_box(&x), black_box(&w), black_box(&mut y)))
    });
    group.finish();
}

fn bench_fused_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_linear");
    let (batch, in_dim, out_dim) = (32usize, 784usize, 128usize);
    let x = ramp_tensor(&[batch, in_dim], 3, 1);
    let w = ramp_tensor(&[out_dim, in_dim], 5, 2);
    let bias = ramp_tensor(&[out_dim], 7, 3);
    let mut out = Tensor::zeros(&[batch, out_dim]);
    // Unfused baseline: matmul into the buffer, then bias, then ReLU —
    // three passes over the output, as the pre-fusion layer stack did.
    group.bench_function("mlp_32x784x128/separate", |bench| {
        bench.iter(|| {
            ops::gemm_a_bt_into(black_box(&x), black_box(&w), black_box(&mut out)).unwrap();
            for row in out.data_mut().chunks_mut(out_dim) {
                for (o, &bv) in row.iter_mut().zip(bias.data().iter()) {
                    *o += bv;
                }
            }
            // Same NaN-collapsing mask test as the fused kernel.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            for o in out.data_mut().iter_mut() {
                if !(*o > 0.0) {
                    *o = 0.0;
                }
            }
        })
    });
    group.bench_function("mlp_32x784x128/fused", |bench| {
        bench.iter(|| {
            ops::linear_forward_into(
                black_box(&x),
                black_box(&w),
                black_box(&bias),
                black_box(&mut out),
                true,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm_ab,
    bench_gemm_transposes,
    bench_fused_linear
);
criterion_main!(benches);
