//! Figure 8 — warm-start vs global-model local initialisation.
//!
//! Regenerates the comparison, then benchmarks one FedADMM round under each
//! initialisation (the costs are identical; the accuracy difference is what
//! the experiment report shows).

use criterion::{criterion_group, criterion_main, Criterion};
use fedadmm_bench::{print_report, smoke_simulation};
use fedadmm_core::algorithms::{FedAdmm, LocalInit, ServerStepSize};
use fedadmm_core::prelude::DataDistribution;
use fedadmm_experiments::common::Scale;
use fedadmm_experiments::fig8;

fn bench_fig8(c: &mut Criterion) {
    let report = fig8::run(Scale::Smoke).expect("fig8 smoke run succeeds");
    print_report(&report);

    let mut group = c.benchmark_group("fig8_fedadmm_round_by_local_init");
    group.sample_size(10);
    for (label, init) in [
        ("warm_start_local_model", LocalInit::LocalModel),
        ("restart_from_global", LocalInit::GlobalModel),
    ] {
        group.bench_function(label, |bench| {
            let algorithm = FedAdmm::new(0.01, ServerStepSize::Constant(1.0)).with_local_init(init);
            let mut sim = smoke_simulation(Box::new(algorithm), DataDistribution::NonIidShards, 17);
            bench.iter(|| sim.run_round().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
