//! Table IV / Figure 7 — the effect of the local epoch budget E.
//!
//! Regenerates the rounds-to-target-vs-E table, then benchmarks one FedADMM
//! round at E ∈ {1, 5, 10}: the per-round cost grows with E (the paper's
//! trade-off between local computation and communication rounds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedadmm_bench::print_report;
use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_experiments::common::Scale;
use fedadmm_experiments::table4_fig7;
use fedadmm_nn::models::ModelSpec;

fn bench_table4(c: &mut Criterion) {
    let report = table4_fig7::run(Scale::Smoke).expect("table4 smoke run succeeds");
    print_report(&report);

    let mut group = c.benchmark_group("table4_fedadmm_round_by_local_epochs");
    group.sample_size(10);
    for &epochs in &table4_fig7::EPOCH_BUDGETS {
        let config = FedConfig {
            num_clients: 10,
            participation: Participation::Fraction(0.2),
            local_epochs: epochs,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(10),
            local_learning_rate: 0.1,
            model: ModelSpec::Mlp {
                input_dim: 784,
                hidden_dim: 16,
                num_classes: 10,
            },
            seed: 13,
            eval_subset: 200,
        };
        let (train, test) = SyntheticDataset::Mnist.generate(300, 200, 13);
        let partition = DataDistribution::Iid.partition(&train, 10, 13);
        group.bench_with_input(BenchmarkId::from_parameter(epochs), &epochs, |bench, _| {
            let mut sim = RoundEngine::new(
                config,
                train.clone(),
                test.clone(),
                partition.clone(),
                FedAdmm::paper_default(),
                SyncRounds,
            )
            .unwrap();
            bench.iter(|| sim.run_round().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
