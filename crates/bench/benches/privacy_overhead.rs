//! Cost of the privacy extensions: per-round overhead and accuracy impact.
//!
//! The paper's footnote 1 claims differential privacy and secure
//! multi-party computation compose with FedADMM. This bench quantifies that
//! composition on the smoke setting:
//!
//! * the report compares rounds-to-target for plain FedADMM against
//!   DP-FedADMM at increasing noise multipliers (the accuracy cost of
//!   privacy);
//! * the Criterion group times one round with and without the Gaussian
//!   mechanism and one secure-aggregation masking pass (the computational
//!   cost, which is negligible next to local training).

use criterion::{criterion_group, criterion_main, Criterion};
use fedadmm_bench::smoke_simulation;
use fedadmm_core::algorithms::{Algorithm, FedAdmm, ServerStepSize};
use fedadmm_core::prelude::DataDistribution;
use fedadmm_privacy::dp::GaussianMechanism;
use fedadmm_privacy::secure_agg::SecureAggregator;
use fedadmm_privacy::wrapper::PrivateAlgorithm;

const RHO: f32 = 0.3;
const TARGET: f32 = 0.6;
const BUDGET: usize = 40;

fn bench_privacy(c: &mut Criterion) {
    // Accuracy impact of increasing noise.
    println!("\n[privacy @ smoke scale] DP-FedADMM accuracy cost (non-IID, target {TARGET})");
    println!("{:<26} | rounds to target | best accuracy", "mechanism");
    let configs: Vec<(&str, Option<GaussianMechanism>)> = vec![
        ("no privacy", None),
        ("clip C=20, σ=0", Some(GaussianMechanism::new(20.0, 0.0))),
        (
            "clip C=20, σ=1e-3",
            Some(GaussianMechanism::new(20.0, 1e-3)),
        ),
        (
            "clip C=20, σ=5e-3",
            Some(GaussianMechanism::new(20.0, 5e-3)),
        ),
    ];
    for (label, mechanism) in &configs {
        let algorithm: Box<dyn Algorithm> = match mechanism {
            None => Box::new(FedAdmm::new(RHO, ServerStepSize::Constant(1.0))),
            Some(m) => Box::new(PrivateAlgorithm::new(
                FedAdmm::new(RHO, ServerStepSize::Constant(1.0)),
                *m,
            )),
        };
        let mut sim = smoke_simulation(algorithm, DataDistribution::NonIidShards, 23);
        let rounds = sim
            .run_until_accuracy(TARGET, BUDGET)
            .expect("run succeeds");
        println!(
            "{:<26} | {:>16} | {:>13.3}",
            label,
            rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| format!("{BUDGET}+")),
            sim.history().best_accuracy()
        );
    }

    // Per-round computational overhead.
    let mut group = c.benchmark_group("privacy_round_cost");
    group.sample_size(10);
    group.bench_function("fedadmm_plain_round", |b| {
        let mut sim = smoke_simulation(
            Box::new(FedAdmm::new(RHO, ServerStepSize::Constant(1.0))),
            DataDistribution::NonIidShards,
            3,
        );
        b.iter(|| sim.run_round().unwrap());
    });
    group.bench_function("fedadmm_dp_round", |b| {
        let mut sim = smoke_simulation(
            Box::new(PrivateAlgorithm::new(
                FedAdmm::new(RHO, ServerStepSize::Constant(1.0)),
                GaussianMechanism::new(20.0, 1e-3),
            )),
            DataDistribution::NonIidShards,
            3,
        );
        b.iter(|| sim.run_round().unwrap());
    });
    group.bench_function("secure_agg_mask_10_clients_cnn2", |b| {
        // Masking cost for 10 clients and the CNN 2 dimension of Table II.
        let participants: Vec<usize> = (0..10).collect();
        let dim = 1_105_098;
        let agg = SecureAggregator::new(7, &participants, dim);
        let update = vec![0.01f32; dim];
        b.iter(|| {
            let mut masked = update.clone();
            agg.apply_mask(3, &mut masked);
            masked
        });
    });
    group.finish();
}

criterion_group!(benches, bench_privacy);
criterion_main!(benches);
