//! Table VI / Figure 10 — imbalanced client data volumes.
//!
//! Regenerates the partition statistics and the best-accuracy comparison,
//! then benchmarks one round of FedADMM and FedAvg under the imbalanced
//! partition (rounds touch clients with very different data volumes, so the
//! per-round cost has higher variance than in the balanced settings).

use criterion::{criterion_group, criterion_main, Criterion};
use fedadmm_bench::print_report;
use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_experiments::common::Scale;
use fedadmm_experiments::table6_fig10;

fn bench_table6(c: &mut Criterion) {
    let report = table6_fig10::run(Scale::Smoke).expect("table6 smoke run succeeds");
    print_report(&report);

    let setting = table6_fig10::imbalanced_setting(SyntheticDataset::Fmnist, Scale::Smoke);
    let mut group = c.benchmark_group("table6_one_round_imbalanced");
    group.sample_size(10);
    group.bench_function("FedADMM", |bench| {
        let mut sim = setting
            .build_simulation(Box::new(FedAdmm::paper_default()))
            .expect("imbalanced setting is valid");
        bench.iter(|| sim.run_round().unwrap());
    });
    group.bench_function("FedAvg", |bench| {
        let mut sim = setting
            .build_simulation(Box::new(FedAvg::new()))
            .expect("imbalanced setting is valid");
        bench.iter(|| sim.run_round().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
