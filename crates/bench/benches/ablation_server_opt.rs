//! Ablation — client-side dual variables versus server-side adaptivity.
//!
//! FedADMM's speedup could in principle come from two places: the dual
//! variables guiding *local* training, or the tracking rule used by the
//! *server*. This bench pits FedADMM against algorithms that only change the
//! server side (FedAvgM, FedAdam, FedYogi) and against FedDyn (which has a
//! dual-like client state but a different server rule), measuring the cost
//! of one communication round under the non-IID setting. Accuracy
//! comparisons over full runs live in `examples/server_optimizers.rs`; the
//! Criterion numbers here confirm that none of the server-side variants add
//! measurable per-round cost (they all touch O(d) state once per round).

use criterion::{criterion_group, criterion_main, Criterion};
use fedadmm_bench::smoke_simulation;
use fedadmm_core::algorithms::{Algorithm, FedAdmm, FedAvg, FedDyn, FedOpt};
use fedadmm_core::prelude::DataDistribution;

fn suite() -> Vec<(&'static str, Box<dyn Algorithm>)> {
    vec![
        ("FedAvg", Box::new(FedAvg::new()) as Box<dyn Algorithm>),
        ("FedAvgM", Box::new(FedOpt::avgm())),
        ("FedAdam", Box::new(FedOpt::adam())),
        ("FedYogi", Box::new(FedOpt::yogi())),
        ("FedDyn", Box::new(FedDyn::new(0.3))),
        ("FedADMM", Box::new(FedAdmm::paper_default())),
    ]
}

fn rebuild(name: &str) -> Box<dyn Algorithm> {
    match name {
        "FedAvg" => Box::new(FedAvg::new()),
        "FedAvgM" => Box::new(FedOpt::avgm()),
        "FedAdam" => Box::new(FedOpt::adam()),
        "FedYogi" => Box::new(FedOpt::yogi()),
        "FedDyn" => Box::new(FedDyn::new(0.3)),
        "FedADMM" => Box::new(FedAdmm::paper_default()),
        other => panic!("unknown algorithm {other}"),
    }
}

fn bench_server_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_server_opt_one_round_non_iid");
    group.sample_size(10);
    for (name, _) in suite() {
        group.bench_function(name, |bench| {
            let mut sim = smoke_simulation(rebuild(name), DataDistribution::NonIidShards, 3);
            bench.iter(|| sim.run_round().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_server_opt);
criterion_main!(benches);
