//! Micro-benchmarks of the alternative local solvers of criterion (6).
//!
//! Times one client-side local solve of the augmented-Lagrangian subproblem
//! (3) under each implemented solver: the paper's fixed-epoch SGD
//! (Algorithm 1), full-batch gradient descent, gradient descent run to the
//! inexactness criterion, and L-BFGS. The absolute times depend on the
//! substrate, but the *relative* cost shows how a client can trade accuracy
//! (ε_i) for work — the system-heterogeneity mechanism of Section III-A.

use criterion::{criterion_group, criterion_main, Criterion};
use fedadmm_core::algorithms::{Algorithm, FedAdmm, FedAdmmInexact, ServerStepSize};
use fedadmm_core::client::ClientState;
use fedadmm_core::param::ParamVector;
use fedadmm_core::solver::LocalSolver;
use fedadmm_core::trainer::LocalEnv;
use fedadmm_data::batching::BatchSize;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_data::Dataset;
use fedadmm_nn::models::ModelSpec;

const RHO: f32 = 0.3;

struct Workbench {
    train: Dataset,
    indices: Vec<usize>,
    model: ModelSpec,
}

impl Workbench {
    fn new() -> Self {
        let (train, _) = SyntheticDataset::Mnist.generate(200, 10, 5);
        Workbench {
            train,
            indices: (0..200).collect(),
            model: ModelSpec::Logistic {
                input_dim: 784,
                num_classes: 10,
            },
        }
    }

    fn env(&self, epochs: usize) -> LocalEnv<'_> {
        LocalEnv {
            dataset: &self.train,
            indices: &self.indices,
            model: self.model,
            epochs,
            batch_size: BatchSize::Size(20),
            learning_rate: 0.1,
            seed: 11,
        }
    }

    fn fresh_client(&self) -> (ClientState, ParamVector) {
        let theta = ParamVector::zeros(self.model.num_params());
        (ClientState::new(0, self.indices.clone(), &theta), theta)
    }
}

fn bench_local_solvers(c: &mut Criterion) {
    let bench_data = Workbench::new();
    let mut group = c.benchmark_group("fedadmm_local_solve");
    group.sample_size(10);

    group.bench_function("sgd_3_epochs_algorithm_1", |b| {
        let alg = FedAdmm::new(RHO, ServerStepSize::Constant(1.0));
        let env = bench_data.env(3);
        b.iter(|| {
            let (mut client, theta) = bench_data.fresh_client();
            alg.client_update(&mut client, &theta, &env).unwrap()
        });
    });

    let solvers: Vec<(&str, LocalSolver)> = vec![
        (
            "gradient_descent_10_steps",
            LocalSolver::GradientDescent {
                steps: 10,
                learning_rate: 0.5,
            },
        ),
        (
            "gd_to_tolerance_eps_0.05",
            LocalSolver::ToTolerance {
                epsilon: 0.05,
                learning_rate: 0.5,
                max_steps: 200,
            },
        ),
        (
            "lbfgs_memory_10",
            LocalSolver::Lbfgs {
                memory: 10,
                max_iters: 25,
                epsilon: 0.05,
            },
        ),
    ];
    for (label, solver) in solvers {
        group.bench_function(label, |b| {
            let alg = FedAdmmInexact::new(RHO, ServerStepSize::Constant(1.0), solver);
            let env = bench_data.env(1);
            b.iter(|| {
                let (mut client, theta) = bench_data.fresh_client();
                alg.client_update(&mut client, &theta, &env).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_solvers);
criterion_main!(benches);
