//! Micro-benchmarks of the chunked flat-vector kernels ([`vecops`]) on the
//! hot dispatch/aggregation path: the fused multi-term `axpy` behind server
//! aggregation, the weighted payload sum behind hierarchical folds, and
//! their dequantize-accumulate twins behind the wire path's fused
//! compressed fold, at the paper's logistic dimension (d = 7 850) and at an
//! odd off-lane length that exercises the scalar remainder tail.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedadmm_tensor::vecops;
use std::hint::black_box;

/// Deterministic small-magnitude values; no RNG needed for throughput.
fn ramp(n: usize, mul: i64, offset: i64) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as i64 * mul + offset).rem_euclid(17) - 8) as f32)
        .collect()
}

const LENGTHS: [usize; 2] = [7_850, 4_097];

fn bench_axpy_fused(c: &mut Criterion) {
    let mut group = c.benchmark_group("vecops_axpy_fused");
    for &n in &LENGTHS {
        let terms: Vec<Vec<f32>> = (0..8).map(|t| ramp(n, 3 + t, t)).collect();
        let xs: Vec<&[f32]> = terms.iter().map(|x| x.as_slice()).collect();
        let alphas: Vec<f32> = (0..8).map(|t| 0.125 + t as f32 * 0.01).collect();
        let mut out = ramp(n, 5, 11);
        group.bench_with_input(BenchmarkId::new("terms8", n), &n, |bench, _| {
            bench.iter(|| {
                vecops::axpy_fused(black_box(&alphas), black_box(&xs), black_box(&mut out))
            })
        });
    }
    group.finish();
}

fn bench_weighted_sum_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("vecops_weighted_sum_into");
    for &n in &LENGTHS {
        let terms: Vec<Vec<f32>> = (0..8).map(|t| ramp(n, 7 + t, 2 * t)).collect();
        let xs: Vec<&[f32]> = terms.iter().map(|x| x.as_slice()).collect();
        let alphas: Vec<f32> = (0..8).map(|t| 0.2 + t as f32 * 0.05).collect();
        let mut out = vec![0.0f32; n];
        group.bench_with_input(BenchmarkId::new("terms8", n), &n, |bench, _| {
            bench.iter(|| {
                vecops::weighted_sum_into(black_box(&alphas), black_box(&xs), black_box(&mut out))
            })
        });
    }
    group.finish();
}

/// Deterministic u16 codes covering the full 8-bit range.
fn code_ramp(n: usize, mul: usize, offset: usize) -> Vec<u16> {
    (0..n).map(|i| ((i * mul + offset) % 256) as u16).collect()
}

fn bench_dequant_fold(c: &mut Criterion) {
    use vecops::DequantTerm;
    let mut group = c.benchmark_group("vecops_dequant_fold");
    for &n in &LENGTHS {
        let codes: Vec<Vec<u16>> = (0..8).map(|t| code_ramp(n, 3 + t, t)).collect();
        let terms: Vec<DequantTerm<'_>> = codes
            .iter()
            .enumerate()
            .map(|(t, codes)| DequantTerm {
                alpha: 0.125 + t as f32 * 0.01,
                min: -1.0 - t as f32 * 0.1,
                step: 2.0 / 255.0,
                codes,
            })
            .collect();
        // The fused server fold: dequantize-accumulate 8 coded uploads into
        // θ in one sweep — compare against `vecops_axpy_fused/terms8` to see
        // what the affine decode costs on top of the dense fold.
        let mut out = ramp(n, 5, 11);
        group.bench_with_input(BenchmarkId::new("axpy_terms8", n), &n, |bench, _| {
            bench.iter(|| vecops::dequant_axpy_fused(black_box(&terms), black_box(&mut out)))
        });
        // The hierarchical per-shard variant (overwrite instead of
        // accumulate), mirroring `vecops_weighted_sum_into`.
        let mut sum = vec![0.0f32; n];
        group.bench_with_input(BenchmarkId::new("sum_terms8", n), &n, |bench, _| {
            bench.iter(|| vecops::dequant_sum_into(black_box(&terms), black_box(&mut sum)))
        });
    }
    group.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("vecops_reductions");
    for &n in &LENGTHS {
        let x = ramp(n, 3, 1);
        let y = ramp(n, 5, 2);
        group.bench_with_input(BenchmarkId::new("dot", n), &n, |bench, _| {
            bench.iter(|| vecops::dot(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("dist", n), &n, |bench, _| {
            bench.iter(|| vecops::dist(black_box(&x), black_box(&y)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_axpy_fused,
    bench_weighted_sum_into,
    bench_dequant_fold,
    bench_reductions
);
criterion_main!(benches);
