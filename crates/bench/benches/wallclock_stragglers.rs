//! Wall-clock ablation: fixed vs variable local work on a heterogeneous
//! device fleet, the timing-model cost itself, and the straggler tax of
//! synchronous rounds versus the unified engine's `SemiAsync` deadline
//! scheduler.
//!
//! Complements the rounds-based tables of the paper with the
//! `fedadmm-system` wall-clock view: the report compares the simulated time
//! of 50 synchronous rounds under fixed-`E` (FedAvg/SCAFFOLD protocol) and
//! variable-`E_i` (FedADMM/FedProx protocol) local work on a tiered fleet,
//! plus a deadline policy that drops stragglers. A second report runs real
//! training through `RoundEngine` with the `SyncRounds` and `SemiAsync`
//! schedulers on the same two-tier fleet, showing the virtual-time gap the
//! deadline protocol closes. The Criterion groups time the `RoundTiming`
//! computation for paper-scale rounds (1,000 clients, 100 selected) and
//! one `SemiAsync` engine round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedadmm_core::engine::scheduler::derive_round_seed;
use fedadmm_core::engine::{RoundEngine, SemiAsync, SemiAsyncConfig, StalenessWeight, SyncRounds};
use fedadmm_core::prelude::{
    BatchSize, DataDistribution, FedAdmm, FedConfig, Participation, ServerStepSize,
};
use fedadmm_core::selection::{ClientSelector, UniformFraction};
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_nn::models::ModelSpec;
use fedadmm_system::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const MODEL_DIM: usize = 1_663_370; // CNN 1 of Table II
const LOCAL_SAMPLES: usize = 600;
const MAX_EPOCHS: usize = 5;

fn fleet(num_clients: usize) -> DevicePopulation {
    DevicePopulation::tiered(
        num_clients,
        &[
            (DeviceClass::EdgeGateway, 0.05),
            (DeviceClass::HighEnd, 0.25),
            (DeviceClass::MidRange, 0.5),
            (DeviceClass::LowEnd, 0.2),
        ],
        42,
    )
}

fn round_work(selected: &[usize], variable: bool, rng: &mut SmallRng) -> Vec<ClientRoundWork> {
    selected
        .iter()
        .map(|&c| ClientRoundWork {
            client_id: c,
            samples_processed: if variable {
                rng.gen_range(1..=MAX_EPOCHS) * LOCAL_SAMPLES
            } else {
                MAX_EPOCHS * LOCAL_SAMPLES
            },
            download_floats: MODEL_DIM,
            upload_floats: MODEL_DIM,
        })
        .collect()
}

fn report() {
    let devices = fleet(100);
    let network = NetworkModel::default();
    let mut rng = SmallRng::seed_from_u64(9);
    let mut fixed = WallClockTrace::new();
    let mut variable = WallClockTrace::new();
    let mut deadline = WallClockTrace::new();
    for _ in 0..50 {
        let mut ids: Vec<usize> = (0..100).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        ids.truncate(10);
        let fixed_work = round_work(&ids, false, &mut rng);
        let variable_work = round_work(&ids, true, &mut rng);
        fixed.push(&RoundTiming::compute(
            &fixed_work,
            &devices,
            &network,
            StragglerPolicy::WaitForAll,
        ));
        variable.push(&RoundTiming::compute(
            &variable_work,
            &devices,
            &network,
            StragglerPolicy::WaitForAll,
        ));
        deadline.push(&RoundTiming::compute(
            &fixed_work,
            &devices,
            &network,
            StragglerPolicy::Deadline { seconds: 30.0 },
        ));
    }
    println!("\n[wall clock @ 100 clients, 50 rounds, CNN 1]");
    println!(
        "fixed E (FedAvg/SCAFFOLD) : {:>8.0}s total, 0 updates dropped",
        fixed.total_seconds()
    );
    println!(
        "variable E (FedADMM/Prox)  : {:>8.0}s total, 0 updates dropped ({:.0}% faster)",
        variable.total_seconds(),
        100.0 * (1.0 - variable.total_seconds() / fixed.total_seconds())
    );
    println!(
        "fixed E + 30 s deadline    : {:>8.0}s total, {} updates dropped",
        deadline.total_seconds(),
        deadline.total_dropped()
    );
}

/// A small two-tier training setup shared by the engine-level comparison
/// and the `SemiAsync` round benchmark.
fn engine_setup() -> (FedConfig, SemiAsyncConfig) {
    let num_clients = 16;
    let config = FedConfig {
        num_clients,
        participation: Participation::Count(4),
        local_epochs: 2,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 16,
            num_classes: 10,
        },
        seed: 13,
        eval_subset: 200,
    };
    // 25% of the fleet is 8× slower; the deadline admits the fast tier.
    let fleet = SemiAsyncConfig::two_tier(num_clients, 1.0, 0.25, 8.0, 2.5)
        .with_staleness(StalenessWeight::Polynomial { exponent: 0.5 });
    (config, fleet)
}

fn semi_async_report() {
    let (config, fleet) = engine_setup();
    let (train, test) = SyntheticDataset::Mnist.generate(320, 200, 13);
    let partition = DataDistribution::NonIidShards.partition(&train, config.num_clients, 13);
    let rounds = 12;

    // Synchronous: every round costs the slowest selected client's time.
    let mut sync = RoundEngine::new(
        config,
        train.clone(),
        test.clone(),
        partition.clone(),
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        SyncRounds,
    )
    .expect("sync engine builds");
    let mut sync_virtual = 0.0f64;
    // Replay the engine's selection stream (same seed derivation as
    // SyncRounds) so each round is priced by its actually-selected
    // slowest client, not the fleet-wide maximum.
    let selector = UniformFraction::new(config.clients_per_round());
    for round in 0..rounds {
        let mut selection_rng =
            SmallRng::seed_from_u64(derive_round_seed(config.seed, round as u64));
        let selected = selector.select(config.num_clients, &mut selection_rng);
        let record = sync.run_round().expect("sync round succeeds");
        let per_epoch = selected
            .iter()
            .map(|&c| fleet.seconds_per_epoch[c])
            .fold(0.0f64, f64::max);
        sync_virtual +=
            per_epoch * (record.total_local_epochs as f64 / record.num_selected.max(1) as f64);
    }
    let (_, sync_acc) = sync.evaluate_global().expect("sync eval succeeds");

    // Semi-async: rounds end at the deadline; stragglers carry forward.
    let mut semi = RoundEngine::new(
        engine_setup().0,
        train,
        test,
        partition,
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        SemiAsync::new(fleet),
    )
    .expect("semi-async engine builds");
    semi.run_rounds(rounds).expect("semi-async rounds succeed");
    let (_, semi_acc) = semi.evaluate_global().expect("semi eval succeeds");
    let (mean_staleness, max_staleness) = semi.staleness_stats();

    println!("\n[straggler tax @ 16 clients, {rounds} rounds, 25% of devices 8x slower]");
    println!(
        "synchronous (wait-for-all) : {:>7.1}s virtual, accuracy {:.3}",
        sync_virtual, sync_acc
    );
    println!(
        "semi-async  (2.5s deadline): {:>7.1}s virtual, accuracy {:.3} \
         (staleness mean {:.2}, max {})",
        semi.now(),
        semi_acc,
        mean_staleness,
        max_staleness
    );
}

fn bench_wallclock(c: &mut Criterion) {
    report();
    semi_async_report();

    let mut engine_group = c.benchmark_group("semi_async_engine_round");
    engine_group.sample_size(10);
    engine_group.bench_function("fedadmm_16c_deadline", |b| {
        let (config, fleet) = engine_setup();
        let (train, test) = SyntheticDataset::Mnist.generate(320, 200, 13);
        let partition = DataDistribution::NonIidShards.partition(&train, config.num_clients, 13);
        let mut engine = RoundEngine::new(
            config,
            train,
            test,
            partition,
            FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
            SemiAsync::new(fleet),
        )
        .expect("semi-async engine builds");
        b.iter(|| engine.run_round().expect("round succeeds"));
    });
    engine_group.finish();

    let mut group = c.benchmark_group("round_timing_model");
    for &(num_clients, selected) in &[(100usize, 10usize), (1000, 100)] {
        let devices = fleet(num_clients);
        let network = NetworkModel::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let ids: Vec<usize> = (0..selected).collect();
        let work = round_work(&ids, true, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("compute", format!("{num_clients}c_{selected}s")),
            &work,
            |b, work| {
                b.iter(|| {
                    RoundTiming::compute(work, &devices, &network, StragglerPolicy::WaitForAll)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wallclock);
criterion_main!(benches);
