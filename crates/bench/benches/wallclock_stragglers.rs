//! Wall-clock ablation: fixed vs variable local work on a heterogeneous
//! device fleet, and the timing-model cost itself.
//!
//! Complements the rounds-based tables of the paper with the
//! `fedadmm-system` wall-clock view: the report compares the simulated time
//! of 50 synchronous rounds under fixed-`E` (FedAvg/SCAFFOLD protocol) and
//! variable-`E_i` (FedADMM/FedProx protocol) local work on a tiered fleet,
//! plus a deadline policy that drops stragglers. The Criterion group times
//! the `RoundTiming` computation for paper-scale rounds (1,000 clients,
//! 100 selected), showing the system model adds negligible simulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedadmm_system::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const MODEL_DIM: usize = 1_663_370; // CNN 1 of Table II
const LOCAL_SAMPLES: usize = 600;
const MAX_EPOCHS: usize = 5;

fn fleet(num_clients: usize) -> DevicePopulation {
    DevicePopulation::tiered(
        num_clients,
        &[
            (DeviceClass::EdgeGateway, 0.05),
            (DeviceClass::HighEnd, 0.25),
            (DeviceClass::MidRange, 0.5),
            (DeviceClass::LowEnd, 0.2),
        ],
        42,
    )
}

fn round_work(
    selected: &[usize],
    variable: bool,
    rng: &mut SmallRng,
) -> Vec<ClientRoundWork> {
    selected
        .iter()
        .map(|&c| ClientRoundWork {
            client_id: c,
            samples_processed: if variable {
                rng.gen_range(1..=MAX_EPOCHS) * LOCAL_SAMPLES
            } else {
                MAX_EPOCHS * LOCAL_SAMPLES
            },
            download_floats: MODEL_DIM,
            upload_floats: MODEL_DIM,
        })
        .collect()
}

fn report() {
    let devices = fleet(100);
    let network = NetworkModel::default();
    let mut rng = SmallRng::seed_from_u64(9);
    let mut fixed = WallClockTrace::new();
    let mut variable = WallClockTrace::new();
    let mut deadline = WallClockTrace::new();
    for _ in 0..50 {
        let mut ids: Vec<usize> = (0..100).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        ids.truncate(10);
        let fixed_work = round_work(&ids, false, &mut rng);
        let variable_work = round_work(&ids, true, &mut rng);
        fixed.push(&RoundTiming::compute(&fixed_work, &devices, &network, StragglerPolicy::WaitForAll));
        variable.push(&RoundTiming::compute(
            &variable_work,
            &devices,
            &network,
            StragglerPolicy::WaitForAll,
        ));
        deadline.push(&RoundTiming::compute(
            &fixed_work,
            &devices,
            &network,
            StragglerPolicy::Deadline { seconds: 30.0 },
        ));
    }
    println!("\n[wall clock @ 100 clients, 50 rounds, CNN 1]");
    println!("fixed E (FedAvg/SCAFFOLD) : {:>8.0}s total, 0 updates dropped", fixed.total_seconds());
    println!(
        "variable E (FedADMM/Prox)  : {:>8.0}s total, 0 updates dropped ({:.0}% faster)",
        variable.total_seconds(),
        100.0 * (1.0 - variable.total_seconds() / fixed.total_seconds())
    );
    println!(
        "fixed E + 30 s deadline    : {:>8.0}s total, {} updates dropped",
        deadline.total_seconds(),
        deadline.total_dropped()
    );
}

fn bench_wallclock(c: &mut Criterion) {
    report();

    let mut group = c.benchmark_group("round_timing_model");
    for &(num_clients, selected) in &[(100usize, 10usize), (1000, 100)] {
        let devices = fleet(num_clients);
        let network = NetworkModel::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let ids: Vec<usize> = (0..selected).collect();
        let work = round_work(&ids, true, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("compute", format!("{num_clients}c_{selected}s")),
            &work,
            |b, work| {
                b.iter(|| {
                    RoundTiming::compute(work, &devices, &network, StragglerPolicy::WaitForAll)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wallclock);
criterion_main!(benches);
