//! Figures 3 and 4 — scaling with the client population.
//!
//! Regenerates the scaled-down convergence panels and rounds-to-target
//! table, then benchmarks one FedADMM round at increasing population sizes
//! (with the participation fraction fixed at C = 0.1, as in the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedadmm_bench::print_report;
use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_experiments::common::Scale;
use fedadmm_experiments::fig3_fig4;
use fedadmm_nn::models::ModelSpec;

fn bench_fig3_fig4(c: &mut Criterion) {
    let report = fig3_fig4::run(Scale::Smoke).expect("fig3/fig4 smoke run succeeds");
    print_report(&report);

    let mut group = c.benchmark_group("fig3_one_fedadmm_round_vs_population");
    group.sample_size(10);
    for &clients in &[10usize, 20, 40] {
        let config = FedConfig {
            num_clients: clients,
            participation: Participation::Fraction(0.1),
            local_epochs: 2,
            system_heterogeneity: true,
            batch_size: BatchSize::Size(10),
            local_learning_rate: 0.1,
            model: ModelSpec::Mlp {
                input_dim: 784,
                hidden_dim: 16,
                num_classes: 10,
            },
            seed: 5,
            eval_subset: 200,
        };
        let (train, test) = SyntheticDataset::Fmnist.generate(clients * 20, 200, 5);
        let partition = DataDistribution::NonIidShards.partition(&train, clients, 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &clients,
            |bench, _| {
                let mut sim = RoundEngine::new(
                    config,
                    train.clone(),
                    test.clone(),
                    partition.clone(),
                    FedAdmm::paper_default(),
                    SyncRounds,
                )
                .unwrap();
                bench.iter(|| sim.run_round().unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3_fig4);
criterion_main!(benches);
