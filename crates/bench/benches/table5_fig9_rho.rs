//! Table V / Figure 9 — sensitivity to the proximal coefficient ρ.
//!
//! Regenerates the FedProx-ρ sweep against fixed-ρ FedADMM and the dynamic
//! ρ schedule, then benchmarks one round of FedProx and FedADMM across ρ
//! values (cost is ρ-independent; the experiment report shows the accuracy
//! story).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedadmm_bench::{print_report, smoke_simulation};
use fedadmm_core::algorithms::{FedAdmm, FedProx, ServerStepSize};
use fedadmm_core::prelude::DataDistribution;
use fedadmm_experiments::common::Scale;
use fedadmm_experiments::table5_fig9;

fn bench_table5(c: &mut Criterion) {
    let report = table5_fig9::run(Scale::Smoke).expect("table5 smoke run succeeds");
    print_report(&report);

    let mut group = c.benchmark_group("table5_one_round_by_rho");
    group.sample_size(10);
    for &rho in &table5_fig9::PROX_RHOS {
        group.bench_with_input(BenchmarkId::new("FedProx", rho), &rho, |bench, &rho| {
            let mut sim = smoke_simulation(
                Box::new(FedProx::new(rho)),
                DataDistribution::NonIidShards,
                19,
            );
            bench.iter(|| sim.run_round().unwrap());
        });
    }
    group.bench_function("FedADMM_rho_0.01", |bench| {
        let mut sim = smoke_simulation(
            Box::new(FedAdmm::new(0.01, ServerStepSize::Constant(1.0))),
            DataDistribution::NonIidShards,
            19,
        );
        bench.iter(|| sim.run_round().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
