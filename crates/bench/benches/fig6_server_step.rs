//! Figure 6 — server gathering step size η.
//!
//! Regenerates the η sweep (including the mid-run decrease), then
//! benchmarks one FedADMM round per η value; the cost is η-independent, so
//! the timing acts as a regression check that the step-size rule stays off
//! the hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedadmm_bench::{print_report, smoke_simulation};
use fedadmm_core::algorithms::{FedAdmm, ServerStepSize};
use fedadmm_core::prelude::DataDistribution;
use fedadmm_experiments::common::Scale;
use fedadmm_experiments::fig6;

fn bench_fig6(c: &mut Criterion) {
    let report = fig6::run(Scale::Smoke).expect("fig6 smoke run succeeds");
    print_report(&report);

    let mut group = c.benchmark_group("fig6_fedadmm_round_by_eta");
    group.sample_size(10);
    for &eta in &fig6::ETAS {
        group.bench_with_input(BenchmarkId::from_parameter(eta), &eta, |bench, &eta| {
            let mut sim = smoke_simulation(
                Box::new(FedAdmm::new(0.01, ServerStepSize::Constant(eta))),
                DataDistribution::NonIidShards,
                11,
            );
            bench.iter(|| sim.run_round().unwrap());
        });
    }
    group.bench_function("participation_ratio", |bench| {
        let mut sim = smoke_simulation(
            Box::new(FedAdmm::new(0.01, ServerStepSize::ParticipationRatio)),
            DataDistribution::NonIidShards,
            11,
        );
        bench.iter(|| sim.run_round().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
