//! Figure 5 — adaptability to heterogeneous data.
//!
//! Regenerates the rounds-to-target comparison with fixed FedADMM
//! hyperparameters, then benchmarks one FedADMM round under IID vs non-IID
//! client data (same data volume; the cost difference is dominated by batch
//! structure, the accuracy difference by the label skew).

use criterion::{criterion_group, criterion_main, Criterion};
use fedadmm_bench::{print_report, smoke_simulation};
use fedadmm_core::algorithms::FedAdmm;
use fedadmm_core::prelude::DataDistribution;
use fedadmm_experiments::common::Scale;
use fedadmm_experiments::fig5;

fn bench_fig5(c: &mut Criterion) {
    let report = fig5::run(Scale::Smoke).expect("fig5 smoke run succeeds");
    print_report(&report);

    let mut group = c.benchmark_group("fig5_fedadmm_round_by_distribution");
    group.sample_size(10);
    for (label, distribution) in [
        ("iid", DataDistribution::Iid),
        ("non_iid", DataDistribution::NonIidShards),
    ] {
        group.bench_function(label, |bench| {
            let mut sim = smoke_simulation(Box::new(FedAdmm::paper_default()), distribution, 9);
            bench.iter(|| sim.run_round().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
