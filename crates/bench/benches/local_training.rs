//! Benchmarks of one client's local update — the unit of work every
//! federated round is built from — for each algorithm's local objective
//! (plain, proximal, augmented-Lagrangian, control-variate-corrected).

use criterion::{criterion_group, criterion_main, Criterion};
use fedadmm_bench::small_mlp;
use fedadmm_core::algorithms::{Algorithm, FedAdmm, FedAvg, FedProx, Scaffold};
use fedadmm_core::client::ClientState;
use fedadmm_core::param::ParamVector;
use fedadmm_core::trainer::LocalEnv;
use fedadmm_data::batching::BatchSize;
use fedadmm_data::synthetic::SyntheticDataset;
use std::hint::black_box;

fn bench_client_update(c: &mut Criterion) {
    let (train, _) = SyntheticDataset::Mnist.generate(256, 16, 0);
    let indices: Vec<usize> = (0..64).collect();
    let model = small_mlp();
    let theta = ParamVector::zeros(model.num_params());
    let env = LocalEnv {
        dataset: &train,
        indices: &indices,
        model,
        epochs: 2,
        batch_size: BatchSize::Size(16),
        learning_rate: 0.1,
        seed: 7,
    };

    let mut group = c.benchmark_group("client_update_2_epochs_64_samples");
    group.sample_size(20);
    let mut scaffold = Scaffold::new();
    scaffold.init(model.num_params(), 4);
    let algorithms: Vec<(&str, Box<dyn Algorithm>)> = vec![
        ("FedAvg", Box::new(FedAvg::new())),
        ("FedProx_rho0.1", Box::new(FedProx::new(0.1))),
        ("FedADMM_rho0.01", Box::new(FedAdmm::paper_default())),
        ("SCAFFOLD", Box::new(scaffold)),
    ];
    for (name, algorithm) in algorithms {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut client = ClientState::new(0, indices.clone(), &theta);
                algorithm
                    .client_update(black_box(&mut client), black_box(&theta), &env)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_client_update);
criterion_main!(benches);
